// End-to-end reproduction of the paper's flow for one benchmark:
//   1. run the PowerStone-like workload on the MR32 simulator,
//   2. collect its instruction and data traces,
//   3. run the analytical explorer for the paper's K budgets,
//   4. print the Table 7-30 style optimal-instance tables.
//
// Usage: powerstone_explore [--benchmark=crc] [--save-traces=dir]
#include <cstdio>
#include <string>

#include "analytic/explorer.hpp"
#include "explore/report.hpp"
#include "support/cli.hpp"
#include "trace/trace_io.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  const ces::ArgParser args(argc, argv);
  const std::string name = args.GetString("benchmark", "crc");

  const ces::workloads::Workload* workload =
      ces::workloads::FindWorkload(name);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'; available:", name.c_str());
    for (const auto& w : ces::workloads::AllWorkloads()) {
      std::fprintf(stderr, " %s", w.name.c_str());
    }
    std::fputc('\n', stderr);
    return 1;
  }

  std::printf("running %s (%s) on the MR32 simulator...\n",
              workload->name.c_str(), workload->description.c_str());
  const ces::workloads::WorkloadRun run = ces::workloads::Run(*workload);
  if (run.stop != ces::sim::StopReason::kHalted || !run.output_matches) {
    std::fprintf(stderr, "workload failed verification\n");
    return 1;
  }
  std::printf("ok: %llu instructions retired, output verified against the "
              "golden model\n\n",
              static_cast<unsigned long long>(run.retired));

  const std::string save_dir = args.GetString("save-traces", "");
  if (!save_dir.empty()) {
    ces::trace::SaveToFile(save_dir + "/" + name + ".instr.ctr",
                           run.instruction_trace);
    ces::trace::SaveToFile(save_dir + "/" + name + ".data.ctr",
                           run.data_trace);
    std::printf("traces saved under %s/\n\n", save_dir.c_str());
  }

  for (const ces::trace::Trace* trace :
       {&run.data_trace, &run.instruction_trace}) {
    const ces::analytic::Explorer explorer(*trace);
    std::printf("%s trace: N=%llu  N'=%llu  max-misses=%llu\n",
                ces::trace::ToString(trace->kind),
                static_cast<unsigned long long>(explorer.stats().n),
                static_cast<unsigned long long>(explorer.stats().n_unique),
                static_cast<unsigned long long>(explorer.stats().max_misses));
    const ces::explore::OptimalTable table = ces::explore::BuildOptimalTable(
        name, ces::trace::ToString(trace->kind), explorer);
    std::fputs(ces::explore::RenderOptimalTable(table).c_str(), stdout);
    std::fputc('\n', stdout);
  }
  return 0;
}
