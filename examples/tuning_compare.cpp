// Compares the traditional design-simulate-analyze loop (Figure 1a) against
// the analytical flow (Figure 1b) on one workload: same answers, very
// different costs. This is the paper's motivating experiment in miniature.
//
// Usage: tuning_compare [--benchmark=fir] [--fraction=0.05] [--max-bits=10]
#include <cstdio>
#include <string>

#include "explore/strategy.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/strip.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  const ces::ArgParser args(argc, argv);
  const std::string name = args.GetString("benchmark", "fir");
  const double fraction = args.GetDouble("fraction", 0.05);
  const auto max_bits = static_cast<std::uint32_t>(args.GetInt("max-bits", 10));

  const ces::workloads::Workload* workload =
      ces::workloads::FindWorkload(name);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
    return 1;
  }
  const ces::workloads::WorkloadRun run = ces::workloads::Run(*workload);
  const ces::trace::Trace& trace = run.data_trace;
  const ces::trace::TraceStats stats = ces::trace::ComputeStats(trace);
  const auto k = static_cast<std::uint64_t>(
      fraction * static_cast<double>(stats.max_misses));
  std::printf("%s data trace: N=%llu N'=%llu, K=%llu (%.0f%% of max misses)\n\n",
              name.c_str(), static_cast<unsigned long long>(stats.n),
              static_cast<unsigned long long>(stats.n_unique),
              static_cast<unsigned long long>(k), fraction * 100);

  ces::AsciiTable table(
      {"Strategy", "Time", "Simulated refs", "Agrees"});
  std::vector<ces::analytic::DesignPoint> reference_points;
  for (const auto& strategy : ces::explore::AllStrategies()) {
    const ces::explore::StrategyResult result =
        strategy->Explore(trace, k, max_bits);
    bool agrees = true;
    if (reference_points.empty()) {
      reference_points = result.points;
    } else {
      agrees = result.points.size() == reference_points.size();
      for (std::size_t i = 0; agrees && i < result.points.size(); ++i) {
        agrees = result.points[i].assoc == reference_points[i].assoc;
      }
    }
    table.AddRow({strategy->name(), ces::FormatSeconds(result.seconds),
                  ces::FormatWithThousands(result.simulated_references),
                  agrees ? "yes" : "NO"});
  }
  std::fputs(table.ToString().c_str(), stdout);

  std::puts("\nOptimal instances (all strategies agree):");
  ces::AsciiTable points({"Depth", "Assoc", "Warm misses"});
  for (const auto& point : reference_points) {
    points.AddRow({std::to_string(point.depth), std::to_string(point.assoc),
                   std::to_string(point.warm_misses)});
  }
  std::fputs(points.ToString().c_str(), stdout);
  return 0;
}
