// Energy-aware selection (the paper's future-work direction): among all
// (depth, assoc) instances meeting the miss budget, rank by estimated total
// energy (CACTI-lite dynamic energy + off-chip miss penalty) and show the
// size/miss Pareto front.
//
// Usage: energy_aware [--benchmark=engine] [--fraction=0.10]
#include <cstdio>
#include <string>

#include "analytic/explorer.hpp"
#include "explore/pareto.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  const ces::ArgParser args(argc, argv);
  const std::string name = args.GetString("benchmark", "engine");
  const double fraction = args.GetDouble("fraction", 0.10);

  const ces::workloads::Workload* workload =
      ces::workloads::FindWorkload(name);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
    return 1;
  }
  const ces::workloads::WorkloadRun run = ces::workloads::Run(*workload);
  const ces::analytic::Explorer explorer(run.data_trace);
  const ces::analytic::ExplorationResult result =
      explorer.SolveFraction(fraction);
  std::printf("%s data trace, K=%llu (%.0f%% of max misses)\n\n", name.c_str(),
              static_cast<unsigned long long>(result.k), fraction * 100);

  const auto ranked = ces::explore::RankByEnergy(
      result.points, explorer.stats().n, explorer.stats().n_unique);
  ces::AsciiTable table({"Rank", "Depth", "Assoc", "Size (words)",
                         "Warm misses", "Energy/access (nJ)", "Total (uJ)",
                         "Access (ns)"});
  char buf[32];
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const auto& entry = ranked[i];
    std::vector<std::string> row = {std::to_string(i + 1),
                                    std::to_string(entry.point.depth),
                                    std::to_string(entry.point.assoc),
                                    std::to_string(entry.point.size_words()),
                                    std::to_string(entry.point.warm_misses)};
    std::snprintf(buf, sizeof(buf), "%.3f", entry.estimate.read_energy_nj);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", entry.total_energy_nj / 1000.0);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", entry.estimate.access_time_ns);
    row.emplace_back(buf);
    table.AddRow(std::move(row));
  }
  std::fputs(table.ToString().c_str(), stdout);

  std::puts("\nPareto front over (size, warm misses):");
  ces::AsciiTable front({"Depth", "Assoc", "Size (words)", "Warm misses"});
  for (const auto& point : ces::explore::ParetoFront(result.points)) {
    front.AddRow({std::to_string(point.depth), std::to_string(point.assoc),
                  std::to_string(point.size_words()),
                  std::to_string(point.warm_misses)});
  }
  std::fputs(front.ToString().c_str(), stdout);
  return 0;
}
