// Unified vs split L1 organisation study: at equal total capacity, compare
// (a) split instruction/data caches — each sized by simulating the two
// streams — against (b) one unified cache fed the merged program-order
// stream. Reports misses and the CPI estimate of the in-order performance
// model. The expected embedded-systems shape: split wins once the capacity
// is large enough for both working sets; tiny unified caches can win by
// letting the dominant stream take more than half.
//
// Usage: unified_vs_split [--benchmark=des] [--assoc=2]
#include <cstdio>
#include <string>

#include "cache/sim.hpp"
#include "explore/performance.hpp"
#include "isa/assembler.hpp"
#include "sim/cpu.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  const ces::ArgParser args(argc, argv);
  const std::string name = args.GetString("benchmark", "des");
  const auto assoc = static_cast<std::uint32_t>(args.GetInt("assoc", 2));

  const ces::workloads::Workload* workload =
      ces::workloads::FindWorkload(name);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
    return 1;
  }
  const ces::isa::Program program = ces::isa::Assemble(workload->assembly);
  const ces::sim::RunResult run =
      ces::sim::RunProgram(program, name, 200'000'000, /*keep_combined=*/true);
  if (run.stop != ces::sim::StopReason::kHalted ||
      run.output != workload->expected_output) {
    std::fprintf(stderr, "workload failed verification\n");
    return 1;
  }

  std::printf("%s: %llu instructions, %llu data accesses, %u-way caches\n\n",
              name.c_str(), static_cast<unsigned long long>(run.retired),
              static_cast<unsigned long long>(run.data_trace.size()), assoc);

  ces::AsciiTable table({"Total words", "Split I+D misses", "Split CPI",
                         "Unified misses", "Unified CPI", "Winner"});
  char buf[32];
  for (std::uint32_t total_words = 64; total_words <= 4096; total_words *= 2) {
    // Split: half the capacity each.
    ces::cache::CacheConfig half;
    half.depth = total_words / 2 / assoc;
    half.assoc = assoc;
    if (half.depth == 0 || !half.IsValid()) continue;
    const auto i_stats = ces::cache::SimulateTrace(run.instruction_trace, half);
    const auto d_stats = ces::cache::SimulateTrace(run.data_trace, half);
    const auto split = ces::explore::EstimatePerformance(
        run.retired, i_stats.misses, d_stats.accesses, d_stats.misses);

    // Unified: all capacity in one cache fed in program order.
    ces::cache::CacheConfig whole;
    whole.depth = total_words / assoc;
    whole.assoc = assoc;
    ces::cache::Cache unified(whole);
    std::uint64_t unified_i_misses = 0;
    std::uint64_t unified_d_misses = 0;
    for (const ces::trace::Access& access : run.combined) {
      const auto outcome = unified.Access(access.addr, access.is_write);
      if (outcome != ces::cache::AccessOutcome::kHit) {
        if (access.kind == ces::trace::StreamKind::kInstruction) {
          ++unified_i_misses;
        } else {
          ++unified_d_misses;
        }
      }
    }
    const auto unified_perf = ces::explore::EstimatePerformance(
        run.retired, unified_i_misses, run.data_trace.size(),
        unified_d_misses);

    const std::uint64_t split_misses = i_stats.misses + d_stats.misses;
    const std::uint64_t unified_misses = unified_i_misses + unified_d_misses;
    std::vector<std::string> row = {
        std::to_string(total_words), ces::FormatWithThousands(split_misses)};
    std::snprintf(buf, sizeof(buf), "%.3f", split.cpi);
    row.emplace_back(buf);
    row.push_back(ces::FormatWithThousands(unified_misses));
    std::snprintf(buf, sizeof(buf), "%.3f", unified_perf.cpi);
    row.emplace_back(buf);
    row.emplace_back(split.cpi < unified_perf.cpi        ? "split"
                     : unified_perf.cpi < split.cpi ? "unified"
                                                    : "tie");
    table.AddRow(std::move(row));
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
