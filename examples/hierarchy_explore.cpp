// Two-level hierarchy exploration (extension): use the analytical explorer
// to pick the L1 instruction and data caches (smallest instances meeting a
// miss budget), then sweep the unified L2 over the merged program-order
// reference stream and report AMAT and energy-ish cost per configuration.
//
// Usage: hierarchy_explore [--benchmark=compress] [--fraction=0.10]
#include <cstdio>
#include <string>

#include "analytic/explorer.hpp"
#include "cache/hierarchy.hpp"
#include "isa/assembler.hpp"
#include "sim/cpu.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

namespace {

ces::cache::CacheConfig PickL1(const ces::trace::Trace& trace,
                               double fraction) {
  const ces::analytic::Explorer explorer(trace);
  const auto result = explorer.SolveFraction(fraction);
  const ces::analytic::DesignPoint* best = result.SmallestCache();
  ces::cache::CacheConfig config;
  config.depth = best->depth;
  config.assoc = best->assoc;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const ces::ArgParser args(argc, argv);
  const std::string name = args.GetString("benchmark", "compress");
  const double fraction = args.GetDouble("fraction", 0.10);

  const ces::workloads::Workload* workload =
      ces::workloads::FindWorkload(name);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
    return 1;
  }
  const ces::isa::Program program = ces::isa::Assemble(workload->assembly);
  const ces::sim::RunResult run =
      ces::sim::RunProgram(program, name, 200'000'000, /*keep_combined=*/true);
  if (run.stop != ces::sim::StopReason::kHalted ||
      run.output != workload->expected_output) {
    std::fprintf(stderr, "workload failed verification\n");
    return 1;
  }

  ces::cache::HierarchyConfig config;
  config.l1i = PickL1(run.instruction_trace, fraction);
  config.l1d = PickL1(run.data_trace, fraction);
  std::printf(
      "analytically chosen L1s (smallest meeting %.0f%% budget):\n"
      "  L1I: %s\n  L1D: %s\n\n",
      fraction * 100, config.l1i.ToString().c_str(),
      config.l1d.ToString().c_str());

  ces::AsciiTable table({"L2 depth", "L2 assoc", "L2 size (words)",
                         "L2 miss rate", "Memory accesses", "AMAT (ns)"});
  char buf[32];
  for (std::uint32_t depth = 128; depth <= 4096; depth *= 2) {
    for (std::uint32_t assoc : {1u, 4u}) {
      config.l2.depth = depth;
      config.l2.assoc = assoc;
      const ces::cache::HierarchyStats stats =
          ces::cache::SimulateHierarchy(run.combined, config);
      std::vector<std::string> row = {std::to_string(depth),
                                      std::to_string(assoc),
                                      std::to_string(config.l2.size_words())};
      std::snprintf(buf, sizeof(buf), "%.4f", stats.l2.miss_rate());
      row.emplace_back(buf);
      row.push_back(ces::FormatWithThousands(stats.memory_accesses));
      std::snprintf(buf, sizeof(buf), "%.3f", stats.Amat());
      row.emplace_back(buf);
      table.AddRow(std::move(row));
    }
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
