// The paper's complete flow with the repository's own toolchain: compile a
// MiniC program, execute it on the traced MR32 simulator, and run the
// analytical cache exploration on the resulting reference streams.
//
// Usage: compile_and_explore [--source=path.mc] [--fraction=0.05]
// Without --source, a built-in sieve + matrix-multiply benchmark is used.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analytic/explorer.hpp"
#include "cc/compiler.hpp"
#include "explore/report.hpp"
#include "sim/cpu.hpp"
#include "support/cli.hpp"

namespace {

// A small embedded-flavoured benchmark: sieve of Eratosthenes feeding a
// fixed-point matrix multiply.
constexpr const char* kDefaultSource = R"(
int flags[512];
int a[64];
int b[64];
int c[64];

int sieve() {
  int count = 0;
  int i;
  for (i = 2; i < 512; i = i + 1) flags[i] = 1;
  for (i = 2; i < 512; i = i + 1) {
    if (flags[i]) {
      count = count + 1;
      int k;
      for (k = i + i; k < 512; k = k + i) flags[k] = 0;
    }
  }
  return count;
}

int matmul() {
  int i; int j; int k;
  for (i = 0; i < 8; i = i + 1) {
    for (j = 0; j < 8; j = j + 1) {
      a[i * 8 + j] = (i + 1) * (j + 2);
      b[i * 8 + j] = (i * j) % 7 - 3;
    }
  }
  for (i = 0; i < 8; i = i + 1) {
    for (j = 0; j < 8; j = j + 1) {
      int acc = 0;
      for (k = 0; k < 8; k = k + 1) acc = acc + a[i * 8 + k] * b[k * 8 + j];
      c[i * 8 + j] = acc >> 4;
    }
  }
  int checksum = 0;
  for (i = 0; i < 64; i = i + 1) checksum = checksum * 31 + c[i];
  return checksum;
}

int main() {
  int round;
  for (round = 0; round < 4; round = round + 1) {
    out(sieve());
    out(matmul());
  }
  return 0;
}
)";

}  // namespace

int main(int argc, char** argv) {
  const ces::ArgParser args(argc, argv);
  std::string source = kDefaultSource;
  const std::string path = args.GetString("source", "");
  if (!path.empty()) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  }

  try {
    const std::string assembly = ces::cc::Compile(source);
    std::printf("compiled %zu lines of MiniC into %zu lines of MR32 assembly\n",
                static_cast<std::size_t>(
                    std::count(source.begin(), source.end(), '\n')),
                static_cast<std::size_t>(
                    std::count(assembly.begin(), assembly.end(), '\n')));
    const ces::isa::Program program = ces::isa::Assemble(assembly);
    const ces::sim::RunResult run = ces::sim::RunProgram(program, "minic");
    if (run.stop != ces::sim::StopReason::kHalted) {
      std::fprintf(stderr, "program did not halt cleanly\n");
      return 1;
    }
    std::printf("executed %llu instructions; %zu output bytes\n\n",
                static_cast<unsigned long long>(run.retired),
                run.output.size());

    const double fraction = args.GetDouble("fraction", 0.05);
    for (const ces::trace::Trace* trace :
         {&run.instruction_trace, &run.data_trace}) {
      const ces::analytic::Explorer explorer(*trace);
      std::printf("%s trace: N=%llu N'=%llu max-misses=%llu\n",
                  ces::trace::ToString(trace->kind),
                  static_cast<unsigned long long>(explorer.stats().n),
                  static_cast<unsigned long long>(explorer.stats().n_unique),
                  static_cast<unsigned long long>(explorer.stats().max_misses));
      const auto table = ces::explore::BuildOptimalTable(
          "minic", ces::trace::ToString(trace->kind), explorer,
          {fraction, fraction * 2, fraction * 4});
      std::fputs(ces::explore::RenderOptimalTable(table).c_str(), stdout);
      std::fputc('\n', stdout);
    }
  } catch (const ces::cc::CompileError& error) {
    std::fprintf(stderr, "compile error: %s\n", error.what());
    return 1;
  }
  return 0;
}
