// Trace tooling: generate, convert and inspect reference traces.
//
//   trace_inspect gen --benchmark=crc --out=traces/      (workload traces)
//   trace_inspect stats --trace=foo.ctr                  (Table 5/6 row)
//   trace_inspect convert --trace=foo.ctr --out=foo.trc  (binary <-> text)
//   trace_inspect profile --trace=foo.ctr --depth=64     (miss histogram)
#include <cstdio>
#include <string>

#include "cache/stack.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/strip.hpp"
#include "trace/trace_io.hpp"
#include "workloads/workloads.hpp"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: trace_inspect <gen|stats|convert|profile> [flags]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const ces::ArgParser args(argc, argv);
  if (args.positional().empty()) return Usage();
  const std::string command = args.positional()[0];

  if (command == "gen") {
    const std::string name = args.GetString("benchmark", "crc");
    const std::string out = args.GetString("out", ".");
    const auto* workload = ces::workloads::FindWorkload(name);
    if (workload == nullptr) {
      std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
      return 1;
    }
    const auto run = ces::workloads::Run(*workload);
    if (!run.output_matches) {
      std::fprintf(stderr, "golden-model mismatch\n");
      return 1;
    }
    ces::trace::SaveToFile(out + "/" + name + ".instr.ctr",
                           run.instruction_trace);
    ces::trace::SaveToFile(out + "/" + name + ".data.ctr", run.data_trace);
    std::printf("wrote %s/%s.{instr,data}.ctr\n", out.c_str(), name.c_str());
    return 0;
  }

  const std::string path = args.GetString("trace", "");
  if (path.empty()) return Usage();
  const ces::trace::Trace trace = ces::trace::LoadFromFile(path);

  if (command == "stats") {
    const auto stats = ces::trace::ComputeStats(trace);
    std::printf("%-12s N=%-10llu N'=%-8llu max-misses=%llu\n",
                trace.name.empty() ? path.c_str() : trace.name.c_str(),
                static_cast<unsigned long long>(stats.n),
                static_cast<unsigned long long>(stats.n_unique),
                static_cast<unsigned long long>(stats.max_misses));
    return 0;
  }
  if (command == "convert") {
    const std::string out = args.GetString("out", "");
    if (out.empty()) return Usage();
    ces::trace::SaveToFile(out, trace);
    std::printf("wrote %s\n", out.c_str());
    return 0;
  }
  if (command == "profile") {
    const auto depth = static_cast<std::uint32_t>(args.GetInt("depth", 64));
    std::uint32_t bits = 0;
    while ((1u << bits) < depth) ++bits;
    const auto profile =
        ces::cache::ComputeStackProfile(ces::trace::Strip(trace), bits);
    std::printf("depth %u: cold=%llu\n", 1u << bits,
                static_cast<unsigned long long>(profile.cold));
    ces::AsciiTable table({"Stack distance", "Accesses", "Misses at A=d"});
    for (std::size_t d = 0; d < profile.hist.size() && d <= 16; ++d) {
      table.AddRow({std::to_string(d), std::to_string(profile.hist[d]),
                    d == 0 ? "-" : std::to_string(profile.MissesAtAssoc(
                                       static_cast<std::uint32_t>(d)))});
    }
    std::fputs(table.ToString().c_str(), stdout);
    return 0;
  }
  return Usage();
}
