// Quickstart: explore the cache design space of a memory-reference trace.
//
// Uses the paper's own ten-reference running example by default, or any
// trace file:   quickstart [--trace=path.trc] [--k=0]
//
// Prints the stripped-trace statistics and, for the requested miss budget,
// the optimal (depth, associativity) set with the exact warm-miss counts —
// the output of Figure 1b's "Algorithmic $ Instance Generator".
#include <cstdio>
#include <string>

#include "analytic/explorer.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/strip.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"

int main(int argc, char** argv) {
  const ces::ArgParser args(argc, argv);

  ces::trace::Trace trace;
  const std::string path = args.GetString("trace", "");
  if (path.empty()) {
    trace = ces::trace::PaperExampleTrace();
    std::puts("No --trace given; using the paper's running example (Table 1).");
  } else {
    trace = ces::trace::LoadFromFile(path);
  }

  const ces::analytic::Explorer explorer(trace);
  const ces::trace::TraceStats& stats = explorer.stats();
  std::printf("trace: %s  N=%llu  N'=%llu  max-misses=%llu\n\n",
              trace.name.empty() ? "(unnamed)" : trace.name.c_str(),
              static_cast<unsigned long long>(stats.n),
              static_cast<unsigned long long>(stats.n_unique),
              static_cast<unsigned long long>(stats.max_misses));

  const auto k = static_cast<std::uint64_t>(args.GetInt("k", 0));
  const ces::analytic::ExplorationResult result = explorer.Solve(k);

  std::printf("Optimal cache instances for K = %llu warm misses:\n",
              static_cast<unsigned long long>(k));
  ces::AsciiTable table({"Depth", "Assoc", "Size (words)", "Warm misses"});
  for (const ces::analytic::DesignPoint& point : result.points) {
    table.AddRow({std::to_string(point.depth), std::to_string(point.assoc),
                  std::to_string(point.size_words()),
                  std::to_string(point.warm_misses)});
  }
  std::fputs(table.ToString().c_str(), stdout);

  const ces::analytic::DesignPoint* best = result.SmallestCache();
  if (best != nullptr) {
    std::printf("\nSmallest feasible cache: depth %u x %u ways = %llu words\n",
                best->depth, best->assoc,
                static_cast<unsigned long long>(best->size_words()));
  }
  std::printf("(prelude %.3f ms, solve %.3f ms)\n",
              result.prelude_seconds * 1e3, result.solve_seconds * 1e3);
  return 0;
}
