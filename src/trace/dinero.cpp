#include "trace/dinero.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace ces::trace {

Trace ReadDinero(std::istream& is, StreamKind select) {
  Trace trace;
  trace.kind = select;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    char* cursor = nullptr;
    const long label = std::strtol(line.c_str(), &cursor, 10);
    if (cursor == line.c_str() || label < 0 || label > 2) {
      throw std::runtime_error("dinero: bad label at line " +
                               std::to_string(line_number));
    }
    char* end = nullptr;
    const unsigned long address = std::strtoul(cursor, &end, 16);
    if (end == cursor) {
      throw std::runtime_error("dinero: bad address at line " +
                               std::to_string(line_number));
    }
    const bool is_fetch = label == static_cast<long>(DineroLabel::kInstructionFetch);
    if (is_fetch != (select == StreamKind::kInstruction)) continue;
    trace.refs.push_back(static_cast<std::uint32_t>(address >> 2));
  }
  return trace;
}

void WriteDinero(std::ostream& os, const Trace& trace) {
  const int label = trace.kind == StreamKind::kInstruction
                        ? static_cast<int>(DineroLabel::kInstructionFetch)
                        : static_cast<int>(DineroLabel::kRead);
  char buf[32];
  for (std::uint32_t ref : trace.refs) {
    std::snprintf(buf, sizeof(buf), "%d %x\n", label, ref << 2);
    os << buf;
  }
}

}  // namespace ces::trace
