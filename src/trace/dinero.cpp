#include "trace/dinero.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>

#include "support/error.hpp"
#include "support/metrics.hpp"

namespace ces::trace {

using support::Error;
using support::ErrorCategory;
using support::MetricsRegistry;

Trace ReadDinero(std::istream& is, StreamKind select,
                 MetricsRegistry* metrics) {
  constexpr const char* kContext = "dinero";
  Trace trace;
  trace.kind = select;
  std::string line;
  std::uint64_t line_number = 0;
  std::uint64_t skipped = 0;
  std::uint64_t filtered = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') {
      ++skipped;
      continue;
    }
    char* cursor = nullptr;
    const long label = std::strtol(line.c_str(), &cursor, 10);
    if (cursor == line.c_str() || label < 0 || label > 2) {
      throw Error(ErrorCategory::kParse, kContext,
                  "bad label in '" + line + "'", line_number);
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long address = std::strtoull(cursor, &end, 16);
    if (end == cursor) {
      throw Error(ErrorCategory::kParse, kContext,
                  "bad address in '" + line + "'", line_number);
    }
    // Byte addresses up to 34 bits are legal (they are word addresses << 2);
    // anything wider would silently wrap the 32-bit word address.
    if (errno == ERANGE || (address >> 2) > 0xffffffffull) {
      throw Error(ErrorCategory::kRange, kContext,
                  "address in '" + line +
                      "' exceeds the 32-bit word address space",
                  line_number);
    }
    for (const char* p = end; *p != '\0'; ++p) {
      if (std::isspace(static_cast<unsigned char>(*p)) == 0) {
        throw Error(ErrorCategory::kParse, kContext,
                    "trailing garbage in '" + line + "'", line_number);
      }
    }
    const bool is_fetch =
        label == static_cast<long>(DineroLabel::kInstructionFetch);
    if (is_fetch != (select == StreamKind::kInstruction)) {
      ++filtered;
      continue;
    }
    trace.refs.push_back(
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(address) >> 2));
  }
  MetricsRegistry::Add(metrics, "trace.refs_parsed", trace.refs.size());
  MetricsRegistry::Add(metrics, "trace.lines_skipped", skipped);
  MetricsRegistry::Add(metrics, "dinero.records_filtered", filtered);
  return trace;
}

void WriteDinero(std::ostream& os, const Trace& trace) {
  const int label = trace.kind == StreamKind::kInstruction
                        ? static_cast<int>(DineroLabel::kInstructionFetch)
                        : static_cast<int>(DineroLabel::kRead);
  char buf[32];
  for (std::uint32_t ref : trace.refs) {
    // Widen before shifting: word -> byte addresses overflow u32 for any
    // ref >= 2^30, which would silently corrupt high addresses.
    const std::uint64_t byte_address = static_cast<std::uint64_t>(ref) << 2;
    std::snprintf(buf, sizeof(buf), "%d %llx\n", label,
                  static_cast<unsigned long long>(byte_address));
    os << buf;
  }
}

}  // namespace ces::trace
