// Dinero III trace format interoperability.
//
// Dinero ("din") input is the lingua franca of classic cache studies — the
// same ecosystem the paper's one-pass baselines ([16][17], Cheetah/Dinero)
// live in. Each line is `label address` with label 0 = data read, 1 = data
// write, 2 = instruction fetch, and a hex byte address.
//
// This library analyses word-granular streams (fixed one-word lines), so
// reading converts byte addresses to word addresses (>> 2) and writing
// converts back (<< 2, widened to 64 bits — word addresses above 2^30 need
// byte addresses of up to 34 bits).
#pragma once

#include <iosfwd>

#include "trace/trace.hpp"

namespace ces::support {
class MetricsRegistry;
}  // namespace ces::support

namespace ces::trace {

enum class DineroLabel : int {
  kRead = 0,
  kWrite = 1,
  kInstructionFetch = 2,
};

// Reads a din stream, keeping only the records matching `select`
// (instruction fetches, or reads+writes for data). Strict: throws
// support::Error (kParse for bad labels/addresses/trailing garbage, kRange
// for byte addresses whose word address exceeds 32 bits) naming the line.
// Records "trace.refs_parsed", "trace.lines_skipped" and
// "dinero.records_filtered" into `metrics` when provided.
Trace ReadDinero(std::istream& is, StreamKind select,
                 support::MetricsRegistry* metrics = nullptr);

// Writes the trace as din records (label 2 for instruction traces, label 0
// for data traces — read/write distinction is not tracked internally).
void WriteDinero(std::ostream& os, const Trace& trace);

}  // namespace ces::trace
