#include "trace/trace_view.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <ostream>
#include <utility>

#include "support/error.hpp"
#include "support/metrics.hpp"
#include "trace/trace_io.hpp"

namespace ces::trace {

namespace {

using support::Error;
using support::ErrorCategory;

constexpr char kMagic[4] = {'C', 'T', 'R', 'C'};
constexpr char kMagicCompressed[4] = {'C', 'T', 'R', 'Z'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 20;  // magic + version + kind + bits + count

// Pages fully behind the read cursor are dropped in batches of this many
// payload bytes — large enough that madvise overhead is noise, small enough
// that the resident window stays well under any realistic memory cap.
constexpr std::uint64_t kReleaseWindowBytes = std::uint64_t{4} << 20;

std::uint32_t DecodeU32Le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void WriteU32Le(std::ostream& os, std::uint32_t value) {
  const unsigned char bytes[4] = {
      static_cast<unsigned char>(value & 0xff),
      static_cast<unsigned char>((value >> 8) & 0xff),
      static_cast<unsigned char>((value >> 16) & 0xff),
      static_cast<unsigned char>((value >> 24) & 0xff)};
  os.write(reinterpret_cast<const char*>(bytes), sizeof(bytes));
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

MemoryTraceView::MemoryTraceView(std::shared_ptr<const Trace> trace)
    : trace_(std::move(trace)) {}

std::size_t MemoryTraceView::Read(std::uint64_t begin, std::uint32_t* out,
                                  std::size_t max) const {
  const std::uint64_t total = trace_->refs.size();
  if (begin >= total) return 0;
  const std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(max, total - begin));
  std::memcpy(out, trace_->refs.data() + begin, n * sizeof(std::uint32_t));
  return n;
}

MmapTraceView::MmapTraceView(const std::string& path,
                             support::MetricsRegistry* metrics,
                             bool release_behind)
    : release_behind_(release_behind) {
  const char* context = "trace-mmap";
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw Error(ErrorCategory::kIo, context, "cannot open " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw Error(ErrorCategory::kIo, context, "cannot stat " + path);
  }
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  if (file_size < kHeaderBytes) {
    ::close(fd);
    throw Error(ErrorCategory::kTruncated, context,
                "file shorter than the 20-byte CTRC header: " + path,
                Error::kNoLine, 0);
  }
  map_len_ = static_cast<std::size_t>(file_size);
  map_ = ::mmap(nullptr, map_len_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    throw Error(ErrorCategory::kIo, context, "mmap failed: " + path);
  }
  const auto* bytes = static_cast<const unsigned char*>(map_);
  if (std::memcmp(bytes, kMagicCompressed, sizeof(kMagicCompressed)) == 0) {
    throw Error(ErrorCategory::kUnsupported, context,
                "compressed (CTRZ) file; varints are not random-access — "
                "use LoadFromFile",
                Error::kNoLine, 0);
  }
  if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0) {
    throw Error(ErrorCategory::kFormat, context, "bad magic (expected CTRC)",
                Error::kNoLine, 0);
  }
  const std::uint32_t version = DecodeU32Le(bytes + 4);
  if (version != kVersion) {
    throw Error(ErrorCategory::kFormat, context,
                "unsupported version " + std::to_string(version) +
                    " (expected " + std::to_string(kVersion) + ")");
  }
  const std::uint32_t raw_kind = DecodeU32Le(bytes + 8);
  if (raw_kind > static_cast<std::uint32_t>(StreamKind::kData)) {
    throw Error(ErrorCategory::kFormat, context,
                "unknown stream kind " + std::to_string(raw_kind));
  }
  kind_ = static_cast<StreamKind>(raw_kind);
  address_bits_ = DecodeU32Le(bytes + 12);
  if (address_bits_ == 0 || address_bits_ > 32) {
    throw Error(ErrorCategory::kValidation, context,
                "address_bits " + std::to_string(address_bits_) +
                    " outside [1, 32]");
  }
  count_ = DecodeU32Le(bytes + 16);
  const std::uint64_t needed = kHeaderBytes + count_ * 4;
  if (needed > file_size) {
    throw Error(ErrorCategory::kValidation, context,
                "header count " + std::to_string(count_) + " needs >= " +
                    std::to_string(needed - kHeaderBytes) +
                    " payload bytes but only " +
                    std::to_string(file_size - kHeaderBytes) + " remain");
  }
  payload_ = bytes + kHeaderBytes;
#ifdef POSIX_MADV_SEQUENTIAL
  ::posix_madvise(map_, map_len_, POSIX_MADV_SEQUENTIAL);
#endif
  // The view hands out exactly `count_` references, the same number the
  // stream reader would have parsed — recorded up front so a run's metrics
  // line is byte-identical between the mmap and in-memory paths.
  support::MetricsRegistry::Add(metrics, "trace.refs_parsed", count_);
}

MmapTraceView::~MmapTraceView() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

std::size_t MmapTraceView::Read(std::uint64_t begin, std::uint32_t* out,
                                std::size_t max) const {
  if (begin >= count_) return 0;
  const std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(max, count_ - begin));
  const unsigned char* p = payload_ + begin * 4;
  for (std::size_t i = 0; i < n; ++i, p += 4) {
    const std::uint32_t ref = DecodeU32Le(p);
    if (address_bits_ < 32 && (ref >> address_bits_) != 0) {
      throw Error(ErrorCategory::kValidation, "trace-mmap",
                  "reference " + std::to_string(begin + i) +
                      " exceeds address_bits=" + std::to_string(address_bits_));
    }
    out[i] = ref;
  }
  if (release_behind_) ReleaseBehind(begin + n);
  return n;
}

void MmapTraceView::ReleaseBehind(std::uint64_t consumed_refs) const {
#ifdef MADV_DONTNEED
  const std::uint64_t consumed_map_bytes = kHeaderBytes + consumed_refs * 4;
  std::lock_guard<std::mutex> lock(release_mutex_);
  if (consumed_map_bytes < released_bytes_ + kReleaseWindowBytes) return;
  static const std::uint64_t kPage =
      static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t floor = consumed_map_bytes / kPage * kPage;
  if (floor <= released_bytes_) return;
  // Clean file-backed pages: DONTNEED just drops them from the resident
  // set; a later backwards read refaults from the page cache or disk.
  ::madvise(static_cast<char*>(map_) + released_bytes_,
            static_cast<std::size_t>(floor - released_bytes_), MADV_DONTNEED);
  released_bytes_ = floor;
#else
  (void)consumed_refs;
#endif
}

std::unique_ptr<MmapTraceView> TryOpenMmap(
    const std::string& path, support::MetricsRegistry* metrics) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return nullptr;
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return nullptr;
  return std::make_unique<MmapTraceView>(path, metrics);
}

std::unique_ptr<TraceView> OpenTraceView(const std::string& path,
                                         TraceIoMode mode,
                                         support::MetricsRegistry* metrics) {
  // Mirror LoadFromFile's dispatch: .trc is text by extension, everything
  // else is sniffed by magic. Only raw CTRC payloads are random-access.
  if (mode != TraceIoMode::kMemory && !EndsWith(path, ".trc")) {
    if (auto view = TryOpenMmap(path, metrics)) return view;
  }
  auto trace = std::make_shared<const Trace>(LoadFromFile(path, metrics));
  return std::make_unique<MemoryTraceView>(std::move(trace));
}

Trace MaterializeTrace(const TraceView& view) {
  Trace out;
  out.address_bits = view.address_bits();
  out.kind = view.kind();
  out.name = view.name();
  out.refs.reserve(static_cast<std::size_t>(view.size()));
  view.ForEachChunk([&out](const std::uint32_t* refs, std::size_t n) {
    out.refs.insert(out.refs.end(), refs, refs + n);
  });
  return out;
}

void WriteCompressed(std::ostream& os, const TraceView& view) {
  os.write(kMagicCompressed, sizeof(kMagicCompressed));
  WriteU32Le(os, kVersion);
  WriteU32Le(os, static_cast<std::uint32_t>(view.kind()));
  WriteU32Le(os, view.address_bits());
  WriteU32Le(os, internal::CheckedRefCount(
                     static_cast<std::size_t>(view.size()),
                     "trace-compressed"));
  std::int64_t previous = 0;
  view.ForEachChunk([&os, &previous](const std::uint32_t* refs,
                                     std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto ref = static_cast<std::int64_t>(refs[i]);
      internal::WriteVarint(os, internal::ZigZag(ref - previous));
      previous = ref;
    }
  });
}

}  // namespace ces::trace
