#include "trace/synthetic.hpp"

#include "support/check.hpp"

namespace ces::trace {

Trace PaperExampleTrace() {
  // Table 1 of the paper, reconstructed from the stripped trace (Table 2),
  // the zero/one sets (Table 3) and the MRCT (Table 4):
  //   ids       1    2    3    4    1    5    2    4    1    3
  //   A3..A0  1011 1100 0110 0011 1011 0100 1100 0011 1011 0110
  Trace trace;
  trace.refs = {0xB, 0xC, 0x6, 0x3, 0xB, 0x4, 0xC, 0x3, 0xB, 0x6};
  trace.address_bits = 4;
  trace.kind = StreamKind::kData;
  trace.name = "paper-example";
  return trace;
}

Trace SequentialLoop(std::uint32_t base, std::uint32_t length,
                     std::uint32_t iterations) {
  CES_CHECK(length > 0);
  Trace trace;
  trace.name = "sequential-loop";
  trace.refs.reserve(static_cast<std::size_t>(length) * iterations);
  for (std::uint32_t pass = 0; pass < iterations; ++pass) {
    for (std::uint32_t i = 0; i < length; ++i) {
      trace.refs.push_back(base + i);
    }
  }
  return trace;
}

Trace StridedSweep(std::uint32_t base, std::uint32_t stride,
                   std::uint32_t count, std::uint32_t passes) {
  CES_CHECK(count > 0);
  Trace trace;
  trace.name = "strided-sweep";
  trace.refs.reserve(static_cast<std::size_t>(count) * passes);
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    for (std::uint32_t i = 0; i < count; ++i) {
      trace.refs.push_back(base + i * stride);
    }
  }
  return trace;
}

Trace RandomWorkingSet(Rng& rng, std::uint32_t working_set,
                       std::uint32_t length, std::uint32_t base) {
  CES_CHECK(working_set > 0);
  Trace trace;
  trace.name = "random-working-set";
  trace.refs.reserve(length);
  for (std::uint32_t i = 0; i < length; ++i) {
    trace.refs.push_back(
        base + static_cast<std::uint32_t>(rng.NextBounded(working_set)));
  }
  return trace;
}

Trace LocalityMix(Rng& rng, std::uint32_t hot_size, std::uint32_t cold_size,
                  std::uint32_t length, double hot_fraction) {
  CES_CHECK(hot_size > 0);
  CES_CHECK(cold_size > 0);
  Trace trace;
  trace.name = "locality-mix";
  trace.refs.reserve(length);
  const std::uint32_t cold_base = hot_size + 1024;
  std::uint32_t cursor = 0;
  std::uint32_t run_left = 0;
  bool in_hot = true;
  for (std::uint32_t i = 0; i < length; ++i) {
    if (run_left == 0) {
      in_hot = rng.NextBool(hot_fraction);
      if (in_hot) {
        cursor = static_cast<std::uint32_t>(rng.NextBounded(hot_size));
        run_left = 4 + static_cast<std::uint32_t>(rng.NextBounded(28));
      } else {
        cursor = cold_base +
                 static_cast<std::uint32_t>(rng.NextBounded(cold_size));
        run_left = 1 + static_cast<std::uint32_t>(rng.NextBounded(7));
      }
    }
    trace.refs.push_back(cursor);
    const std::uint32_t limit = in_hot ? hot_size : cold_base + cold_size;
    if (cursor + 1 < limit || !in_hot) ++cursor;
    --run_left;
  }
  return trace;
}

}  // namespace ces::trace
