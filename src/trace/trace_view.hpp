// Out-of-core trace access: the TraceView abstraction.
//
// Everything upstream of this header assumed a trace is a materialised
// std::vector<uint32_t>; that caps exploration at traces that fit in RAM.
// A TraceView is the minimal read surface the analytic prelude, the
// streaming statistics and the ingest pipeline actually need: header fields
// plus chunked sequential access to the reference sequence. Three
// implementations:
//
//  * MemoryTraceView — wraps an in-memory Trace (the compatibility path;
//    every format the readers understand can be loaded behind it).
//  * MmapTraceView — maps a raw binary CTRC file and decodes references
//    straight out of the page cache. The header is validated up front
//    (magic, version, kind, address_bits, count against the file size);
//    payload pages are faulted in lazily as the scan advances and, for the
//    default sequential pattern, *released* behind the read cursor
//    (MADV_DONTNEED), so a full pass over a trace 10x larger than the
//    memory budget keeps the resident set flat.
//  * OpenTraceView — factory with graceful fallback: CTRC files get the
//    mmap view, everything else (text, CTRZ, missing mmap support) loads
//    through the ordinary in-memory readers.
//
// Reads validate each reference against the declared address_bits exactly
// like the in-memory readers, so a corrupt payload surfaces as the same
// structured support::Error instead of poisoning downstream analysis.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "trace/trace.hpp"

namespace ces::support {
class MetricsRegistry;
}  // namespace ces::support

namespace ces::trace {

// How a tool resolves a trace path to a view. kAuto picks mmap for raw
// binary CTRC files and the in-memory path otherwise; kMmap prefers mmap
// but still falls back gracefully for formats that cannot be mapped; kMemory
// forces the materialised path (the pre-existing behaviour).
enum class TraceIoMode : std::uint8_t { kAuto = 0, kMemory, kMmap };

class TraceView {
 public:
  virtual ~TraceView() = default;

  virtual std::uint64_t size() const = 0;
  virtual std::uint32_t address_bits() const = 0;
  virtual StreamKind kind() const = 0;
  virtual const std::string& name() const = 0;

  // Copies up to `max` references starting at position `begin` into `out`;
  // returns the number copied (0 iff begin >= size()). Monotone forward
  // scans are the intended pattern — implementations may release memory
  // behind the read cursor; reading backwards stays correct but may refault
  // pages. Throws support::Error (kValidation) when a decoded reference
  // exceeds the declared address_bits.
  virtual std::size_t Read(std::uint64_t begin, std::uint32_t* out,
                           std::size_t max) const = 0;

  // One sequential pass in bounded chunks: fn(const std::uint32_t* refs,
  // std::size_t n) is invoked with consecutive slices covering the whole
  // sequence.
  template <typename Fn>
  void ForEachChunk(Fn&& fn) const {
    constexpr std::size_t kChunkRefs = std::size_t{1} << 16;
    std::uint32_t buffer[kChunkRefs];
    std::uint64_t at = 0;
    for (;;) {
      const std::size_t got = Read(at, buffer, kChunkRefs);
      if (got == 0) return;
      fn(static_cast<const std::uint32_t*>(buffer), got);
      at += got;
    }
  }
};

// In-memory adapter: shares ownership of the wrapped trace, so a view can
// outlive the store entry it came from.
class MemoryTraceView final : public TraceView {
 public:
  explicit MemoryTraceView(std::shared_ptr<const Trace> trace);

  std::uint64_t size() const override { return trace_->refs.size(); }
  std::uint32_t address_bits() const override { return trace_->address_bits; }
  StreamKind kind() const override { return trace_->kind; }
  const std::string& name() const override { return trace_->name; }
  std::size_t Read(std::uint64_t begin, std::uint32_t* out,
                   std::size_t max) const override;

  const std::shared_ptr<const Trace>& trace() const { return trace_; }

 private:
  std::shared_ptr<const Trace> trace_;
};

// Memory-mapped CTRC file. Construction validates the header and maps the
// payload read-only; references are decoded little-endian out of the
// mapping, so the view is byte-order independent like the stream reader.
// Throws support::Error — kIo (open/map failure), kFormat (bad magic or
// version), kUnsupported (a CTRZ file; varints are not random-access),
// kValidation (bad kind/address_bits, or a count larger than the file).
class MmapTraceView final : public TraceView {
 public:
  explicit MmapTraceView(const std::string& path,
                         support::MetricsRegistry* metrics = nullptr,
                         bool release_behind = true);
  ~MmapTraceView() override;

  MmapTraceView(const MmapTraceView&) = delete;
  MmapTraceView& operator=(const MmapTraceView&) = delete;

  std::uint64_t size() const override { return count_; }
  std::uint32_t address_bits() const override { return address_bits_; }
  StreamKind kind() const override { return kind_; }
  const std::string& name() const override { return name_; }
  std::size_t Read(std::uint64_t begin, std::uint32_t* out,
                   std::size_t max) const override;

  // CTRC carries no name field; the ingest pipeline labels the view with
  // the uploader-declared display name.
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  void ReleaseBehind(std::uint64_t consumed_refs) const;

  std::uint64_t count_ = 0;
  std::uint32_t address_bits_ = 32;
  StreamKind kind_ = StreamKind::kData;
  std::string name_;
  void* map_ = nullptr;
  std::size_t map_len_ = 0;
  const unsigned char* payload_ = nullptr;  // first byte of the ref array
  bool release_behind_ = true;
  // Bytes of payload already madvised away, owned by release_mutex_ so
  // concurrent readers of a shared view stay safe.
  mutable std::mutex release_mutex_;
  mutable std::uint64_t released_bytes_ = 0;
};

// Maps `path` when it is a raw binary CTRC file; returns nullptr when the
// file does not exist or carries a different format (the caller falls back
// to the in-memory readers). Corrupt CTRC files still throw — silently
// reloading a damaged file through a slower path would mask the damage.
std::unique_ptr<MmapTraceView> TryOpenMmap(
    const std::string& path, support::MetricsRegistry* metrics = nullptr);

// Factory with graceful fallback (see TraceIoMode). Never returns nullptr;
// throws support::Error when the trace cannot be loaded at all.
std::unique_ptr<TraceView> OpenTraceView(
    const std::string& path, TraceIoMode mode = TraceIoMode::kAuto,
    support::MetricsRegistry* metrics = nullptr);

// Materialises a view back into an in-memory Trace (one sequential pass).
// The escape hatch for consumers that genuinely need the full vector, e.g.
// the joint explorer's interleaver.
Trace MaterializeTrace(const TraceView& view);

// Streams a view into the compressed CTRZ wire format (zigzag deltas as
// LEB128 varints) without materialising the reference vector — the at-rest
// codec of the ingest spill pipeline.
void WriteCompressed(std::ostream& os, const TraceView& view);

}  // namespace ces::trace
