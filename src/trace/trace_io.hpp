// Trace serialisation.
//
// Two interchangeable formats:
//  * Text (.trc): '#'-prefixed header lines, then one lower-case hex word
//    address per line. Human-readable, diff-friendly, Dinero-style.
//  * Binary (.ctr): magic "CTRC", version, kind, address bits, count, then a
//    little-endian u32 array. Compact for the large workload traces.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace ces::trace {

void WriteText(std::ostream& os, const Trace& trace);
// Throws std::runtime_error on malformed input.
Trace ReadText(std::istream& is);

void WriteBinary(std::ostream& os, const Trace& trace);
Trace ReadBinary(std::istream& is);

// Compressed binary (.ctrz): magic "CTRZ", then zigzag-encoded address
// deltas as LEB128 varints. Reference streams are delta-friendly
// (instruction fetch is mostly +1), so this typically shrinks instruction
// traces by ~4x over the raw format.
void WriteCompressed(std::ostream& os, const Trace& trace);
Trace ReadCompressed(std::istream& is);

// File helpers; format chosen by extension: ".trc" text, ".ctrz" compressed
// binary, anything else raw binary. Loading detects raw-vs-compressed by
// magic regardless of extension. Throw std::runtime_error on IO failure.
void SaveToFile(const std::string& path, const Trace& trace);
Trace LoadFromFile(const std::string& path);

}  // namespace ces::trace
