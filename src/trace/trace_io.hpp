// Trace serialisation.
//
// Three interchangeable formats:
//  * Text (.trc): '#'-prefixed header lines, then one lower-case hex word
//    address per line. Human-readable, diff-friendly, Dinero-style.
//  * Binary (.ctr): magic "CTRC", version, kind, address bits, count, then a
//    little-endian u32 array. Compact for the large workload traces.
//  * Compressed binary (.ctrz): magic "CTRZ", same header, then zigzag
//    address deltas as LEB128 varints (see WriteCompressed below).
//
// All readers are strict: they throw support::Error with a stable category
// (and the offending line or byte offset) on malformed input — trailing
// garbage on hex lines, addresses exceeding the declared address_bits,
// unknown `kind` headers, header counts larger than the remaining stream,
// truncated streams. They never over-allocate on attacker-controlled counts:
// binary payloads are read incrementally with a capped pre-reservation.
//
// Every reader takes an optional support::MetricsRegistry* and records
// "trace.refs_parsed", "trace.lines_skipped", "trace.headers_ignored" (text)
// and "trace.bytes_read" (binary); nullptr disables collection.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace ces::support {
class MetricsRegistry;
}  // namespace ces::support

namespace ces::trace {

void WriteText(std::ostream& os, const Trace& trace);
// Throws support::Error (kParse/kRange/kValidation) naming the line.
Trace ReadText(std::istream& is,
               support::MetricsRegistry* metrics = nullptr);

void WriteBinary(std::ostream& os, const Trace& trace);
// Throws support::Error: kFormat (bad magic/version/kind), kUnsupported
// (a CTRZ stream — use ReadCompressed or LoadFromFile), kValidation
// (impossible header count or out-of-range reference), kTruncated.
Trace ReadBinary(std::istream& is,
                 support::MetricsRegistry* metrics = nullptr);

// Compressed binary (.ctrz): zigzag-encoded address deltas as LEB128
// varints. Reference streams are delta-friendly (instruction fetch is
// mostly +1), so this typically shrinks instruction traces by ~4x over the
// raw format.
void WriteCompressed(std::ostream& os, const Trace& trace);
Trace ReadCompressed(std::istream& is,
                     support::MetricsRegistry* metrics = nullptr);

// File helpers; format chosen by extension: ".trc" text, ".ctrz" compressed
// binary, anything else raw binary. Loading detects raw-vs-compressed by
// magic regardless of extension. Throw support::Error (kIo) on IO failure.
void SaveToFile(const std::string& path, const Trace& trace);
Trace LoadFromFile(const std::string& path,
                   support::MetricsRegistry* metrics = nullptr);

namespace internal {

// The CTRC/CTRZ header stores the reference count as a u32. Writers (and the
// streaming-ingest path, which commits the count before any payload arrives)
// funnel through this instead of a bare cast, so a trace of 2^32 or more
// references is a structured kRange error rather than a silently wrapped
// count field. Unit-testable without allocating 2^32 references.
std::uint32_t CheckedRefCount(std::size_t count, const char* context);

// LEB128 varint and zigzag primitives of the CTRZ payload, shared with the
// streaming compressor in trace_view.cpp. ReadVarint rejects encodings that
// are overlong (a continuation chain past 10 bytes), overflowing (high bits
// of the 10th byte that cannot fit a u64) or non-canonical (a most-
// significant group of zero, i.e. two byte strings decoding to one value)
// with kFormat; a stream ending mid-varint is kTruncated.
std::uint64_t ZigZag(std::int64_t value);
std::int64_t UnZigZag(std::uint64_t encoded);
void WriteVarint(std::ostream& os, std::uint64_t value);

}  // namespace internal

}  // namespace ces::trace
