// Trace stripping (paper section 2.2, Tables 1-2).
//
// Stripping reduces a trace of N references to its N' unique references and
// rewrites the trace as a sequence of compact identifiers. Identifiers are
// assigned in order of first appearance, 0-based (the paper numbers them from
// 1 in its running example; reports add 1 when echoing the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace ces::trace {

struct StrippedTrace {
  // id -> original word address, in order of first appearance.
  std::vector<std::uint32_t> unique;
  // The trace rewritten as reference identifiers.
  std::vector<std::uint32_t> ids;
  // is_first[j] is true iff position j is the first (cold) occurrence of
  // ids[j]. Cold occurrences are excluded from all miss counts.
  std::vector<bool> is_first;
  std::uint32_t address_bits = 32;

  std::size_t size() const { return ids.size(); }
  std::size_t unique_count() const { return unique.size(); }

  // Number of non-cold positions: size() - unique_count().
  std::size_t warm_count() const { return size() - unique_count(); }
};

class TraceView;

// Strips a trace with a hash table in O(N) expected time (the paper's
// section 2.4 recommends exactly this over the N log N sort).
StrippedTrace Strip(const Trace& trace);

// Streaming strip over a TraceView: one bounded-chunk pass, never
// materialising the raw reference vector. line_words > 1 fuses the
// WithLineSize re-blocking into the same pass; the result is field-for-field
// identical to Strip(WithLineSize(Materialize(view), line_words)).
StrippedTrace Strip(const TraceView& view, std::uint32_t line_words = 1);

// Basic statistics reported by Tables 5-6 of the paper.
struct TraceStats {
  std::uint64_t n = 0;           // trace length N
  std::uint64_t n_unique = 0;    // unique references N'
  std::uint64_t max_misses = 0;  // non-cold misses of a depth-1 direct-mapped
                                 // cache (the paper's normalisation constant)
};

TraceStats ComputeStats(const Trace& trace);
TraceStats ComputeStats(const StrippedTrace& stripped);

// Bounded-memory statistics over a TraceView: O(N') state (the unique-
// reference table) instead of the O(N) id/is_first vectors a full strip
// carries, so stats over an out-of-core trace keep the resident set flat.
// Identical results to ComputeStats(Strip(view, line_words)).
TraceStats ComputeStats(const TraceView& view, std::uint32_t line_words = 1);

// Number of address bits that can actually vary across the unique references
// of the trace; levels beyond this depth cannot split any BCAT node further.
std::uint32_t SignificantAddressBits(const StrippedTrace& stripped);

}  // namespace ces::trace
