// Memory-reference traces.
//
// A trace is the sequence of memory references produced by running the target
// application on an instrumented processor simulator (paper section 2.2). The
// analytical explorer fixes the cache line size at one word, so references
// are stored as *word* addresses; `WithLineSize` re-blocks a trace for the
// line-size extension.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ces::trace {

enum class StreamKind : std::uint8_t {
  kInstruction = 0,
  kData = 1,
};

inline const char* ToString(StreamKind kind) {
  return kind == StreamKind::kInstruction ? "instruction" : "data";
}

struct Trace {
  std::vector<std::uint32_t> refs;  // word addresses, in program order
  std::uint32_t address_bits = 32;  // significant low bits of each reference
  StreamKind kind = StreamKind::kData;
  std::string name;  // benchmark name, used in reports

  std::size_t size() const { return refs.size(); }
  bool empty() const { return refs.empty(); }
};

// Re-blocks a trace for a cache line of `words_per_line` words (a power of
// two): each reference becomes its line address. With words_per_line == 1
// this is the identity. This implements the paper's future-work line-size
// axis without touching the core algorithm.
Trace WithLineSize(const Trace& trace, std::uint32_t words_per_line);

// One record of the merged (program-order) reference stream: instruction
// fetches and data accesses interleaved exactly as the CPU issued them.
// Used by the memory-hierarchy simulator, where the interleaving decides
// what the shared L2 sees.
struct Access {
  std::uint32_t addr = 0;  // word address
  StreamKind kind = StreamKind::kInstruction;
  bool is_write = false;
};

using AccessSequence = std::vector<Access>;

}  // namespace ces::trace
