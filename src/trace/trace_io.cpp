#include "trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ces::trace {
namespace {

constexpr char kMagic[4] = {'C', 'T', 'R', 'C'};
constexpr char kMagicCompressed[4] = {'C', 'T', 'R', 'Z'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t ZigZag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t UnZigZag(std::uint64_t encoded) {
  return static_cast<std::int64_t>(encoded >> 1) ^
         -static_cast<std::int64_t>(encoded & 1);
}

void WriteVarint(std::ostream& os, std::uint64_t value) {
  while (value >= 0x80) {
    os.put(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  os.put(static_cast<char>(value));
}

std::uint64_t ReadVarint(std::istream& is) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    const int byte = is.get();
    if (byte == std::char_traits<char>::eof() || shift > 63) {
      throw std::runtime_error("trace: truncated varint");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

void WriteU32(std::ostream& os, std::uint32_t value) {
  const std::array<unsigned char, 4> bytes = {
      static_cast<unsigned char>(value & 0xff),
      static_cast<unsigned char>((value >> 8) & 0xff),
      static_cast<unsigned char>((value >> 16) & 0xff),
      static_cast<unsigned char>((value >> 24) & 0xff)};
  os.write(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

std::uint32_t ReadU32(std::istream& is) {
  std::array<unsigned char, 4> bytes;
  is.read(reinterpret_cast<char*>(bytes.data()), bytes.size());
  if (!is) throw std::runtime_error("trace: truncated binary stream");
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

}  // namespace

void WriteText(std::ostream& os, const Trace& trace) {
  os << "# ces trace v1\n";
  os << "# name " << (trace.name.empty() ? "-" : trace.name) << "\n";
  os << "# kind " << ToString(trace.kind) << "\n";
  os << "# address_bits " << trace.address_bits << "\n";
  char buf[16];
  for (std::uint32_t ref : trace.refs) {
    std::snprintf(buf, sizeof(buf), "%x\n", ref);
    os << buf;
  }
}

Trace ReadText(std::istream& is) {
  Trace trace;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string key;
      header >> key;
      if (key == "name") {
        header >> trace.name;
        if (trace.name == "-") trace.name.clear();
      } else if (key == "kind") {
        std::string kind;
        header >> kind;
        trace.kind = kind == "instruction" ? StreamKind::kInstruction
                                           : StreamKind::kData;
      } else if (key == "address_bits") {
        header >> trace.address_bits;
      }
      continue;
    }
    char* end = nullptr;
    const unsigned long value = std::strtoul(line.c_str(), &end, 16);
    if (end == line.c_str()) {
      throw std::runtime_error("trace: malformed line '" + line + "'");
    }
    trace.refs.push_back(static_cast<std::uint32_t>(value));
  }
  return trace;
}

void WriteBinary(std::ostream& os, const Trace& trace) {
  os.write(kMagic, sizeof(kMagic));
  WriteU32(os, kVersion);
  WriteU32(os, static_cast<std::uint32_t>(trace.kind));
  WriteU32(os, trace.address_bits);
  WriteU32(os, static_cast<std::uint32_t>(trace.refs.size()));
  for (std::uint32_t ref : trace.refs) WriteU32(os, ref);
}

Trace ReadBinary(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("trace: bad magic");
  }
  const std::uint32_t version = ReadU32(is);
  if (version != kVersion) throw std::runtime_error("trace: bad version");
  Trace trace;
  trace.kind = static_cast<StreamKind>(ReadU32(is));
  trace.address_bits = ReadU32(is);
  const std::uint32_t count = ReadU32(is);
  trace.refs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) trace.refs.push_back(ReadU32(is));
  return trace;
}

void WriteCompressed(std::ostream& os, const Trace& trace) {
  os.write(kMagicCompressed, sizeof(kMagicCompressed));
  WriteU32(os, kVersion);
  WriteU32(os, static_cast<std::uint32_t>(trace.kind));
  WriteU32(os, trace.address_bits);
  WriteU32(os, static_cast<std::uint32_t>(trace.refs.size()));
  std::uint32_t previous = 0;
  for (std::uint32_t ref : trace.refs) {
    const std::int64_t delta =
        static_cast<std::int64_t>(ref) - static_cast<std::int64_t>(previous);
    WriteVarint(os, ZigZag(delta));
    previous = ref;
  }
}

Trace ReadCompressed(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagicCompressed, sizeof(magic)) != 0) {
    throw std::runtime_error("trace: bad compressed magic");
  }
  if (ReadU32(is) != kVersion) throw std::runtime_error("trace: bad version");
  Trace trace;
  trace.kind = static_cast<StreamKind>(ReadU32(is));
  trace.address_bits = ReadU32(is);
  const std::uint32_t count = ReadU32(is);
  trace.refs.reserve(count);
  std::int64_t previous = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    previous += UnZigZag(ReadVarint(is));
    trace.refs.push_back(static_cast<std::uint32_t>(previous));
  }
  return trace;
}

void SaveToFile(const std::string& path, const Trace& trace) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("trace: cannot open " + path);
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".trc") {
    WriteText(os, trace);
  } else if (path.size() >= 5 && path.substr(path.size() - 5) == ".ctrz") {
    WriteCompressed(os, trace);
  } else {
    WriteBinary(os, trace);
  }
}

Trace LoadFromFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("trace: cannot open " + path);
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".trc") {
    return ReadText(is);
  }
  // Dispatch raw vs compressed by magic, not extension.
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is) throw std::runtime_error("trace: truncated file " + path);
  is.seekg(0);
  if (std::memcmp(magic, kMagicCompressed, sizeof(magic)) == 0) {
    return ReadCompressed(is);
  }
  return ReadBinary(is);
}

}  // namespace ces::trace
