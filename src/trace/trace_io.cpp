#include "trace/trace_io.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/trace_event.hpp"

namespace ces::trace {
namespace {

using support::Error;
using support::ErrorCategory;
using support::MetricsRegistry;

constexpr char kMagic[4] = {'C', 'T', 'R', 'C'};
constexpr char kMagicCompressed[4] = {'C', 'T', 'R', 'Z'};
constexpr std::uint32_t kVersion = 1;

// Upper bound on the refs pre-reservation. A corrupt header can declare any
// count; reading incrementally past this cap means a 4-byte lie can cost at
// most 4 MiB up front instead of gigabytes.
constexpr std::uint32_t kMaxPreallocRefs = 1u << 20;

using internal::UnZigZag;
using internal::WriteVarint;
using internal::ZigZag;

std::uint64_t ReadVarint(std::istream& is, const char* context) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    const int byte = is.get();
    if (byte == std::char_traits<char>::eof()) {
      throw Error(ErrorCategory::kTruncated, context,
                  "stream ended inside a varint");
    }
    if (shift > 63) {
      throw Error(ErrorCategory::kFormat, context,
                  "varint longer than 10 bytes");
    }
    const std::uint64_t group = static_cast<std::uint64_t>(byte & 0x7f);
    if (shift == 63 && group > 1) {
      // The 10th byte contributes bits 63..69 of the value; anything beyond
      // bit 63 cannot fit a u64, so accepting it would silently drop the
      // high bits and let two distinct byte streams decode to one value.
      throw Error(ErrorCategory::kFormat, context,
                  "varint overflows 64 bits");
    }
    if (group == 0 && shift > 0 && (byte & 0x80) == 0) {
      // A most-significant group of zero is an overlong encoding (for
      // example 0x80 0x00 for 0): the canonical form is shorter, so this
      // byte string and the canonical one would alias the same value.
      throw Error(ErrorCategory::kFormat, context,
                  "non-canonical varint (overlong encoding)");
    }
    value |= group << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

void WriteU32(std::ostream& os, std::uint32_t value) {
  const std::array<unsigned char, 4> bytes = {
      static_cast<unsigned char>(value & 0xff),
      static_cast<unsigned char>((value >> 8) & 0xff),
      static_cast<unsigned char>((value >> 16) & 0xff),
      static_cast<unsigned char>((value >> 24) & 0xff)};
  os.write(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

std::uint32_t ReadU32(std::istream& is, const char* context) {
  std::array<unsigned char, 4> bytes;
  is.read(reinterpret_cast<char*>(bytes.data()), bytes.size());
  if (!is) {
    throw Error(ErrorCategory::kTruncated, context,
                "stream ended inside a u32 field");
  }
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

// Bytes between the current position and the end of the stream, or -1 when
// the stream is not seekable (then readers fall back to purely incremental
// reads; truncation still surfaces, just without the up-front count check).
std::int64_t RemainingBytes(std::istream& is) {
  const std::istream::pos_type here = is.tellg();
  if (here == std::istream::pos_type(-1)) return -1;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(here);
  if (end == std::istream::pos_type(-1) || !is) {
    is.clear();
    is.seekg(here);
    return -1;
  }
  return static_cast<std::int64_t>(end - here);
}

// True when every reference must fit the declared address width.
bool ExceedsAddressBits(std::uint32_t ref, std::uint32_t address_bits) {
  return address_bits < 32 &&
         (static_cast<std::uint64_t>(ref) >>
          address_bits) != 0;
}

void ValidateAddressBits(std::uint32_t address_bits, const char* context,
                         std::uint64_t line = Error::kNoLine) {
  if (address_bits == 0 || address_bits > 32) {
    throw Error(ErrorCategory::kValidation, context,
                "address_bits " + std::to_string(address_bits) +
                    " outside [1, 32]",
                line);
  }
}

void ValidateKindField(std::uint32_t raw, const char* context) {
  if (raw > static_cast<std::uint32_t>(StreamKind::kData)) {
    throw Error(ErrorCategory::kFormat, context,
                "unknown stream kind " + std::to_string(raw));
  }
}

// Shared header + payload reader for the two binary formats; `compressed`
// selects the payload decoding. The magic has already been consumed.
Trace ReadBinaryPayload(std::istream& is, bool compressed,
                        MetricsRegistry* metrics) {
  const char* context = compressed ? "trace-compressed" : "trace-binary";
  support::ScopedTraceSpan span(compressed ? "trace.read_compressed"
                                           : "trace.read_binary");
  const std::uint32_t version = ReadU32(is, context);
  if (version != kVersion) {
    throw Error(ErrorCategory::kFormat, context,
                "unsupported version " + std::to_string(version) +
                    " (expected " + std::to_string(kVersion) + ")");
  }
  Trace trace;
  const std::uint32_t raw_kind = ReadU32(is, context);
  ValidateKindField(raw_kind, context);
  trace.kind = static_cast<StreamKind>(raw_kind);
  trace.address_bits = ReadU32(is, context);
  ValidateAddressBits(trace.address_bits, context);
  const std::uint32_t count = ReadU32(is, context);

  // A raw payload needs 4 bytes per reference, a compressed one at least 1
  // (a varint is never empty). Checking the declared count against the
  // remaining stream rejects corrupt headers before any allocation.
  const std::int64_t remaining = RemainingBytes(is);
  const std::uint64_t min_bytes_needed =
      static_cast<std::uint64_t>(count) * (compressed ? 1 : 4);
  if (remaining >= 0 &&
      min_bytes_needed > static_cast<std::uint64_t>(remaining)) {
    throw Error(ErrorCategory::kValidation, context,
                "header count " + std::to_string(count) + " needs >= " +
                    std::to_string(min_bytes_needed) + " bytes but only " +
                    std::to_string(remaining) + " remain");
  }
  trace.refs.reserve(std::min(count, kMaxPreallocRefs));

  std::int64_t previous = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t ref;
    if (compressed) {
      previous += UnZigZag(ReadVarint(is, context));
      if (previous < 0 || previous > 0xffffffffll) {
        throw Error(ErrorCategory::kRange, context,
                    "reference " + std::to_string(i) +
                        " decodes outside the 32-bit address space");
      }
      ref = static_cast<std::uint32_t>(previous);
    } else {
      ref = ReadU32(is, context);
    }
    if (ExceedsAddressBits(ref, trace.address_bits)) {
      throw Error(ErrorCategory::kValidation, context,
                  "reference " + std::to_string(i) + " exceeds address_bits=" +
                      std::to_string(trace.address_bits));
    }
    trace.refs.push_back(ref);
  }
  MetricsRegistry::Add(metrics, "trace.refs_parsed", trace.refs.size());
  return trace;
}

bool IsBlank(const std::string& line) {
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

}  // namespace

void WriteText(std::ostream& os, const Trace& trace) {
  os << "# ces trace v1\n";
  os << "# name " << (trace.name.empty() ? "-" : trace.name) << "\n";
  os << "# kind " << ToString(trace.kind) << "\n";
  os << "# address_bits " << trace.address_bits << "\n";
  char buf[16];
  for (std::uint32_t ref : trace.refs) {
    std::snprintf(buf, sizeof(buf), "%x\n", ref);
    os << buf;
  }
}

Trace ReadText(std::istream& is, MetricsRegistry* metrics) {
  constexpr const char* kContext = "trace-text";
  support::ScopedTraceSpan span("trace.read_text");
  Trace trace;
  std::string line;
  std::uint64_t line_number = 0;
  std::uint64_t skipped = 0;
  std::uint64_t ignored_headers = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    if (IsBlank(line)) {
      ++skipped;
      continue;
    }
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string key;
      header >> key;
      if (key == "name") {
        // The name is everything after the key, edge whitespace trimmed —
        // `header >> name` would stop at the first space and silently
        // corrupt round-trips of names like "qsort (small)".
        std::string rest;
        std::getline(header, rest);
        const auto first = rest.find_first_not_of(" \t");
        if (first == std::string::npos) {
          trace.name.clear();
        } else {
          const auto last = rest.find_last_not_of(" \t");
          trace.name = rest.substr(first, last - first + 1);
        }
        if (trace.name == "-") trace.name.clear();
      } else if (key == "kind") {
        std::string kind;
        header >> kind;
        if (kind == "instruction") {
          trace.kind = StreamKind::kInstruction;
        } else if (kind == "data") {
          trace.kind = StreamKind::kData;
        } else {
          throw Error(ErrorCategory::kParse, kContext,
                      "unknown kind '" + kind + "'", line_number);
        }
      } else if (key == "address_bits") {
        std::uint64_t bits = 0;
        if (!(header >> bits)) {
          throw Error(ErrorCategory::kParse, kContext,
                      "malformed address_bits header", line_number);
        }
        if (bits == 0 || bits > 32) {
          throw Error(ErrorCategory::kValidation, kContext,
                      "address_bits " + std::to_string(bits) +
                          " outside [1, 32]",
                      line_number);
        }
        trace.address_bits = static_cast<std::uint32_t>(bits);
      } else if (key == "ces") {
        // The "# ces trace v1" banner WriteText emits; nothing to record.
      } else {
        // Unknown header keys are tolerated for forward compatibility, but
        // counted so an unexpected producer shows up in the run metrics.
        ++ignored_headers;
      }
      continue;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(line.c_str(), &end, 16);
    if (end == line.c_str()) {
      throw Error(ErrorCategory::kParse, kContext,
                  "malformed address '" + line + "'", line_number);
    }
    if (errno == ERANGE || value > 0xffffffffull) {
      throw Error(ErrorCategory::kRange, kContext,
                  "address '" + line + "' does not fit in 32 bits",
                  line_number);
    }
    for (const char* p = end; *p != '\0'; ++p) {
      if (std::isspace(static_cast<unsigned char>(*p)) == 0) {
        throw Error(ErrorCategory::kParse, kContext,
                    "trailing garbage after address: '" + line + "'",
                    line_number);
      }
    }
    const auto ref = static_cast<std::uint32_t>(value);
    if (ExceedsAddressBits(ref, trace.address_bits)) {
      throw Error(ErrorCategory::kValidation, kContext,
                  "address '" + line + "' exceeds address_bits=" +
                      std::to_string(trace.address_bits),
                  line_number);
    }
    trace.refs.push_back(ref);
  }
  MetricsRegistry::Add(metrics, "trace.refs_parsed", trace.refs.size());
  MetricsRegistry::Add(metrics, "trace.lines_skipped", skipped);
  MetricsRegistry::Add(metrics, "trace.headers_ignored", ignored_headers);
  return trace;
}

void WriteBinary(std::ostream& os, const Trace& trace) {
  os.write(kMagic, sizeof(kMagic));
  WriteU32(os, kVersion);
  WriteU32(os, static_cast<std::uint32_t>(trace.kind));
  WriteU32(os, trace.address_bits);
  WriteU32(os, internal::CheckedRefCount(trace.refs.size(), "trace-binary"));
  for (std::uint32_t ref : trace.refs) WriteU32(os, ref);
}

Trace ReadBinary(std::istream& is, MetricsRegistry* metrics) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is) {
    throw Error(ErrorCategory::kTruncated, "trace-binary",
                "stream shorter than the 4-byte magic", Error::kNoLine, 0);
  }
  if (std::memcmp(magic, kMagicCompressed, sizeof(kMagicCompressed)) == 0) {
    throw Error(ErrorCategory::kUnsupported, "trace-binary",
                "compressed (CTRZ) stream; use ReadCompressed or "
                "LoadFromFile",
                Error::kNoLine, 0);
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw Error(ErrorCategory::kFormat, "trace-binary",
                "bad magic (expected CTRC)", Error::kNoLine, 0);
  }
  return ReadBinaryPayload(is, /*compressed=*/false, metrics);
}

void WriteCompressed(std::ostream& os, const Trace& trace) {
  os.write(kMagicCompressed, sizeof(kMagicCompressed));
  WriteU32(os, kVersion);
  WriteU32(os, static_cast<std::uint32_t>(trace.kind));
  WriteU32(os, trace.address_bits);
  WriteU32(os,
           internal::CheckedRefCount(trace.refs.size(), "trace-compressed"));
  std::uint32_t previous = 0;
  for (std::uint32_t ref : trace.refs) {
    const std::int64_t delta =
        static_cast<std::int64_t>(ref) - static_cast<std::int64_t>(previous);
    WriteVarint(os, ZigZag(delta));
    previous = ref;
  }
}

Trace ReadCompressed(std::istream& is, MetricsRegistry* metrics) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is) {
    throw Error(ErrorCategory::kTruncated, "trace-compressed",
                "stream shorter than the 4-byte magic", Error::kNoLine, 0);
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) == 0) {
    throw Error(ErrorCategory::kUnsupported, "trace-compressed",
                "raw (CTRC) stream; use ReadBinary or LoadFromFile",
                Error::kNoLine, 0);
  }
  if (std::memcmp(magic, kMagicCompressed, sizeof(kMagicCompressed)) != 0) {
    throw Error(ErrorCategory::kFormat, "trace-compressed",
                "bad magic (expected CTRZ)", Error::kNoLine, 0);
  }
  return ReadBinaryPayload(is, /*compressed=*/true, metrics);
}

void SaveToFile(const std::string& path, const Trace& trace) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw Error(ErrorCategory::kIo, "trace-file", "cannot open " + path);
  }
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".trc") {
    WriteText(os, trace);
  } else if (path.size() >= 5 && path.substr(path.size() - 5) == ".ctrz") {
    WriteCompressed(os, trace);
  } else {
    WriteBinary(os, trace);
  }
  if (!os) {
    throw Error(ErrorCategory::kIo, "trace-file", "write failed: " + path);
  }
}

Trace LoadFromFile(const std::string& path, MetricsRegistry* metrics) {
  support::ScopedTraceSpan span("trace.load");
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw Error(ErrorCategory::kIo, "trace-file", "cannot open " + path);
  }
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".trc") {
    return ReadText(is, metrics);
  }
  // Dispatch raw vs compressed by magic, not extension.
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is) {
    throw Error(ErrorCategory::kTruncated, "trace-file",
                "file shorter than the 4-byte magic: " + path, Error::kNoLine,
                0);
  }
  is.seekg(0);
  if (std::memcmp(magic, kMagicCompressed, sizeof(magic)) == 0) {
    return ReadCompressed(is, metrics);
  }
  return ReadBinary(is, metrics);
}

namespace internal {

std::uint32_t CheckedRefCount(std::size_t count, const char* context) {
  if (count > 0xffffffffull) {
    throw Error(ErrorCategory::kRange, context,
                "trace has " + std::to_string(count) +
                    " references; the header count field is a u32 "
                    "(max 4294967295)");
  }
  return static_cast<std::uint32_t>(count);
}

std::uint64_t ZigZag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t UnZigZag(std::uint64_t encoded) {
  return static_cast<std::int64_t>(encoded >> 1) ^
         -static_cast<std::int64_t>(encoded & 1);
}

void WriteVarint(std::ostream& os, std::uint64_t value) {
  while (value >= 0x80) {
    os.put(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  os.put(static_cast<char>(value));
}

}  // namespace internal

}  // namespace ces::trace
