// Synthetic reference-stream generators.
//
// Used by the property tests and micro-benchmarks to cover trace shapes the
// workload suite may not hit (pathological conflict patterns, tiny working
// sets, pure randomness). Every generator is deterministic given its Rng.
#pragma once

#include <cstdint>

#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace ces::trace {

// The paper's running example (Table 1): ten 4-bit references over five
// unique addresses. Golden input for the unit tests.
Trace PaperExampleTrace();

// `iterations` passes over a contiguous loop of `length` word addresses
// starting at `base` — the classic embedded instruction-fetch pattern.
Trace SequentialLoop(std::uint32_t base, std::uint32_t length,
                     std::uint32_t iterations);

// Strided sweep: `passes` passes over `count` addresses spaced by `stride`.
// With stride a multiple of the cache depth this is the worst-case conflict
// generator.
Trace StridedSweep(std::uint32_t base, std::uint32_t stride,
                   std::uint32_t count, std::uint32_t passes);

// Uniform random references over a working set of `working_set` addresses.
Trace RandomWorkingSet(Rng& rng, std::uint32_t working_set,
                       std::uint32_t length, std::uint32_t base = 0);

// Locality mix modelling an embedded kernel: mostly short sequential runs
// inside a hot region, with occasional jumps to a cold region.
// `hot_fraction` of references land in the hot region.
Trace LocalityMix(Rng& rng, std::uint32_t hot_size, std::uint32_t cold_size,
                  std::uint32_t length, double hot_fraction = 0.9);

}  // namespace ces::trace
