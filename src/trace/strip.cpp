#include "trace/strip.hpp"

#include <unordered_map>

#include "support/check.hpp"
#include "trace/trace_view.hpp"

namespace ces::trace {

namespace {

// Shared by the streaming entry points: the shift that re-blocks word
// addresses into line addresses, validated exactly like WithLineSize.
std::uint32_t LineShift(std::uint32_t words_per_line) {
  CES_CHECK(words_per_line != 0);
  CES_CHECK((words_per_line & (words_per_line - 1)) == 0);
  std::uint32_t shift = 0;
  while ((1u << shift) < words_per_line) ++shift;
  return shift;
}

std::uint32_t BlockedAddressBits(std::uint32_t address_bits,
                                 std::uint32_t shift) {
  return address_bits > shift ? address_bits - shift : 1;
}

}  // namespace

Trace WithLineSize(const Trace& trace, std::uint32_t words_per_line) {
  CES_CHECK(words_per_line != 0);
  CES_CHECK((words_per_line & (words_per_line - 1)) == 0);
  std::uint32_t shift = 0;
  while ((1u << shift) < words_per_line) ++shift;

  Trace out;
  out.kind = trace.kind;
  out.name = trace.name;
  out.address_bits = trace.address_bits > shift ? trace.address_bits - shift : 1;
  out.refs.reserve(trace.refs.size());
  for (std::uint32_t ref : trace.refs) out.refs.push_back(ref >> shift);
  return out;
}

StrippedTrace Strip(const Trace& trace) {
  StrippedTrace out;
  out.address_bits = trace.address_bits;
  out.ids.reserve(trace.refs.size());
  out.is_first.reserve(trace.refs.size());

  std::unordered_map<std::uint32_t, std::uint32_t> id_of;
  id_of.reserve(trace.refs.size() / 4 + 16);
  for (std::uint32_t ref : trace.refs) {
    const auto [it, inserted] =
        id_of.try_emplace(ref, static_cast<std::uint32_t>(out.unique.size()));
    if (inserted) out.unique.push_back(ref);
    out.ids.push_back(it->second);
    out.is_first.push_back(inserted);
  }
  return out;
}

StrippedTrace Strip(const TraceView& view, std::uint32_t line_words) {
  const std::uint32_t shift = LineShift(line_words);
  StrippedTrace out;
  out.address_bits = BlockedAddressBits(view.address_bits(), shift);
  const auto total = static_cast<std::size_t>(view.size());
  out.ids.reserve(total);
  out.is_first.reserve(total);

  std::unordered_map<std::uint32_t, std::uint32_t> id_of;
  id_of.reserve(total / 4 + 16);
  view.ForEachChunk([&](const std::uint32_t* refs, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t ref = refs[i] >> shift;
      const auto [it, inserted] = id_of.try_emplace(
          ref, static_cast<std::uint32_t>(out.unique.size()));
      if (inserted) out.unique.push_back(ref);
      out.ids.push_back(it->second);
      out.is_first.push_back(inserted);
    }
  });
  return out;
}

TraceStats ComputeStats(const Trace& trace) {
  return ComputeStats(Strip(trace));
}

TraceStats ComputeStats(const TraceView& view, std::uint32_t line_words) {
  const std::uint32_t shift = LineShift(line_words);
  TraceStats stats;
  std::unordered_map<std::uint32_t, std::uint32_t> id_of;
  // max_misses counts warm positions whose id differs from the immediate
  // predecessor, so a running previous id is all the per-position state the
  // pass needs — the unique table is the only growing structure.
  std::uint32_t previous_id = 0;
  bool have_previous = false;
  view.ForEachChunk([&](const std::uint32_t* refs, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t ref = refs[i] >> shift;
      const auto [it, inserted] = id_of.try_emplace(
          ref, static_cast<std::uint32_t>(id_of.size()));
      ++stats.n;
      if (!inserted && have_previous && it->second != previous_id) {
        ++stats.max_misses;
      }
      previous_id = it->second;
      have_previous = true;
    }
  });
  stats.n_unique = id_of.size();
  return stats;
}

TraceStats ComputeStats(const StrippedTrace& stripped) {
  TraceStats stats;
  stats.n = stripped.size();
  stats.n_unique = stripped.unique_count();
  // A direct-mapped cache of depth 1 holds exactly the last reference, so a
  // non-cold access hits iff it repeats its immediate predecessor.
  for (std::size_t j = 1; j < stripped.ids.size(); ++j) {
    if (!stripped.is_first[j] && stripped.ids[j] != stripped.ids[j - 1]) {
      ++stats.max_misses;
    }
  }
  return stats;
}

std::uint32_t SignificantAddressBits(const StrippedTrace& stripped) {
  if (stripped.unique.empty()) return 0;
  std::uint32_t differing = 0;
  const std::uint32_t base = stripped.unique.front();
  for (std::uint32_t addr : stripped.unique) differing |= addr ^ base;
  std::uint32_t bits = 0;
  while (differing >> bits) ++bits;
  return bits;
}

}  // namespace ces::trace
