#include "analytic/bcat.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ces::analytic {

const std::vector<std::int32_t> Bcat::kEmptyLevel = {};

Bcat Bcat::Build(const ZeroOneSets& sets, std::size_t unique_count,
                 std::uint32_t max_levels) {
  max_levels = std::min(max_levels, sets.bit_count());
  Bcat tree;

  Node root;
  root.refs = DynamicBitset(unique_count);
  for (std::size_t id = 0; id < unique_count; ++id) root.refs.Set(id);
  tree.nodes_.push_back(std::move(root));
  tree.levels_.push_back({0});

  // Worklist expansion in level order; Algorithm 1's recursion made
  // iterative so deep trees cannot overflow the call stack.
  std::vector<std::int32_t> frontier = {0};
  for (std::uint32_t level = 0; level < max_levels && !frontier.empty();
       ++level) {
    std::vector<std::int32_t> next;
    for (std::int32_t index : frontier) {
      // Split only nodes that can still conflict (cardinality >= 2).
      if (tree.nodes_[static_cast<std::size_t>(index)].refs.Count() < 2) continue;
      const DynamicBitset parent_refs =
          tree.nodes_[static_cast<std::size_t>(index)].refs;
      const std::uint32_t parent_path =
          tree.nodes_[static_cast<std::size_t>(index)].path;

      Node left;
      left.refs = DynamicBitset::Intersection(parent_refs, sets.zero[level]);
      left.level = level + 1;
      left.path = parent_path;  // bit B_level = 0

      Node right;
      right.refs = DynamicBitset::Intersection(parent_refs, sets.one[level]);
      right.level = level + 1;
      right.path = parent_path | (1u << level);  // bit B_level = 1

      const auto left_index = static_cast<std::int32_t>(tree.nodes_.size());
      tree.nodes_.push_back(std::move(left));
      const auto right_index = static_cast<std::int32_t>(tree.nodes_.size());
      tree.nodes_.push_back(std::move(right));
      tree.nodes_[static_cast<std::size_t>(index)].left = left_index;
      tree.nodes_[static_cast<std::size_t>(index)].right = right_index;
      next.push_back(left_index);
      next.push_back(right_index);
    }
    if (!next.empty()) tree.levels_.push_back(next);
    frontier = std::move(next);
  }
  return tree;
}

const std::vector<std::int32_t>& Bcat::LevelNodes(std::uint32_t level) const {
  if (level >= levels_.size()) return kEmptyLevel;
  return levels_[level];
}

std::uint32_t Bcat::MaxCardinalityAtLevel(std::uint32_t level) const {
  // Rows pruned from the tree hold at most one reference, so the floor is 1
  // whenever any reference exists at all.
  std::size_t max_cardinality = nodes_.empty() ? 0 : 1;
  for (std::int32_t index : LevelNodes(level)) {
    max_cardinality =
        std::max(max_cardinality, node(index).refs.Count());
  }
  return static_cast<std::uint32_t>(max_cardinality);
}

}  // namespace ces::analytic
