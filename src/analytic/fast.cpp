#include "analytic/fast.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "support/check.hpp"
#include "support/fenwick.hpp"
#include "support/metrics.hpp"
#include "support/pool.hpp"
#include "support/simd.hpp"

namespace ces::analytic {
namespace {

// One implicit BCAT node: its level and the contiguous segment of the
// level-parity id buffer holding its subsequence of the trace.
struct Frame {
  std::uint32_t level;
  std::size_t begin;
  std::size_t end;
};

// Distance tallies for a contiguous band of levels [base, base + hist.size()).
// The whole-traversal tallies use base 0; each parallel chunk tallies the
// levels below the cut into a private instance that is merged afterwards.
struct LevelTallies {
  std::uint32_t base = 0;
  std::vector<std::vector<std::uint64_t>> hist;  // hist[level - base][distance]
  std::vector<std::uint64_t> counted;            // distances >= 1 tallied
  std::uint64_t nodes = 0;                       // node scans performed
  std::uint64_t refs = 0;                        // references scanned
};

// Mutable per-lane scan state; one lane per pool chunk plus the lane the
// calling thread uses for the serial top of the tree. Everything is sized in
// Setup() and only reused afterwards.
struct LaneScratch {
  std::vector<Frame> frames;           // explicit DFS stack
  std::vector<std::uint32_t> mtf;      // kFused: move-to-front stack
  std::vector<std::int64_t> fenwick;   // kFusedTree: BIT over node positions
  std::uint32_t epoch = 0;             // kFusedTree: current node's epoch
};

constexpr std::uint32_t kNoCollect = ~0u;

class FusedTraversal {
 public:
  FusedTraversal(const trace::StrippedTrace& stripped,
                 std::uint32_t max_index_bits, bool use_tree,
                 const FusedPreludeOptions& options)
      : stripped_(stripped),
        unique_(stripped.unique),
        max_bits_(max_index_bits),
        use_tree_(use_tree),
        options_(options),
        kernels_(support::simd::ActiveKernels()) {}

  std::vector<cache::StackProfile> Run() {
    std::vector<cache::StackProfile> profiles(max_bits_ + 1);
    for (std::uint32_t level = 0; level <= max_bits_; ++level) {
      profiles[level].index_bits = level;
      profiles[level].cold = stripped_.unique_count();
      profiles[level].hist.resize(1, 0);
    }
    if (stripped_.size() == 0) {
      if (options_.after_setup) options_.after_setup();
      return profiles;
    }

    Setup();
    if (options_.after_setup) options_.after_setup();
    // --- no heap allocation below this line (tests/fused_alloc_test.cpp) ---

    if (cut_ == 0) {
      Traverse({0, 0, stripped_.size()}, serial_lane_, main_, kNoCollect);
    } else {
      // Phase 1: the calling thread partitions (and scans) the top of the
      // tree down to the cut, collecting the surviving level-cut subtrees in
      // left-to-right segment order.
      Traverse({0, 0, stripped_.size()}, serial_lane_, main_, cut_);
      // Phase 2: contiguous, length-balanced runs of subtrees fan out onto
      // the pool. Subtrees own disjoint segments (an address belongs to
      // exactly one residue class mod 2^cut), so lanes never touch the same
      // buffer elements or — for the tree scan — the same per-id slots.
      PlanChunks();
      pool_jobs_ = options_.pool->jobs();
      options_.pool->ParallelFor(
          pool_jobs_, [this](std::size_t chunk) { RunChunk(chunk); });
      // Merge in chunk order == subtree order: uint64 adds are associative
      // and commutative, so the totals equal the serial traversal's exactly.
      for (std::size_t chunk = 0; chunk < pool_jobs_; ++chunk) {
        const LevelTallies& t = chunk_tallies_[chunk];
        for (std::uint32_t level = cut_; level <= max_bits_; ++level) {
          const auto& partial = t.hist[level - cut_];
          auto& total = main_.hist[level];
          for (std::size_t d = 0; d < partial.size(); ++d) {
            total[d] += partial[d];
          }
          main_.counted[level] += t.counted[level - cut_];
        }
        main_.nodes += t.nodes;
        main_.refs += t.refs;
      }
    }

    // Distance-0 bucket: every non-cold occurrence not tallied above hits at
    // any associativity (distance zero in its row, or the row was pruned).
    // Trimming to the last non-empty distance reproduces the canonical hist
    // sizes of the per-depth baseline, so profiles compare equal across
    // engines, prelude modes, and jobs values.
    const std::uint64_t warm_total = stripped_.warm_count();
    for (std::uint32_t level = 0; level <= max_bits_; ++level) {
      CES_CHECK(main_.counted[level] <= warm_total);
      std::vector<std::uint64_t>& hist = main_.hist[level];
      std::size_t size = 1;
      for (std::size_t d = hist.size(); d-- > 1;) {
        if (hist[d] != 0) {
          size = d + 1;
          break;
        }
      }
      hist.resize(size);
      hist[0] = warm_total - main_.counted[level];
      profiles[level].hist = std::move(hist);
    }

    if (options_.metrics != nullptr) {
      // Guarded so a null registry costs no name-string construction — the
      // allocation test runs the whole of Run() under its counter.
      options_.metrics->Add("explore.fused_nodes", main_.nodes);
      options_.metrics->Add("explore.fused_refs", main_.refs);
      // The cut is a function of the pool size, so it lives with the
      // volatile gauges — never in the deterministic counter surface CI
      // diffs.
      options_.metrics->SetGauge("explore.cut_level", cut_);
      // Which kernel table ran (support::simd::Level). Host- and
      // environment-dependent, hence a gauge too; the results it produces
      // are byte-identical either way.
      options_.metrics->SetGauge(
          "explore.simd_kernel",
          static_cast<std::uint64_t>(kernels_.level));
    }
    return profiles;
  }

 private:
  // Upper bound on any stack distance tallied at `level`: a node there holds
  // the occurrences of the unique lines agreeing on the low `level` address
  // bits, so no distance can reach the population of the fullest residue
  // class. Used to pre-size every histogram exactly once.
  std::vector<std::size_t> MaxDistinctPerLevel() const {
    std::vector<std::size_t> caps(max_bits_ + 1, 0);
    std::vector<std::size_t> counts;
    for (std::uint32_t level = 0; level <= max_bits_; ++level) {
      const std::uint32_t mask = level >= 32 ? ~0u : (1u << level) - 1;
      counts.assign(std::size_t{1} << level, 0);
      std::size_t max_count = 0;
      for (std::uint32_t address : unique_) {
        max_count = std::max(max_count, ++counts[address & mask]);
      }
      caps[level] = max_count;
    }
    return caps;
  }

  void Setup() {
    const std::size_t n = stripped_.size();
    const unsigned jobs = options_.pool == nullptr ? 1 : options_.pool->jobs();
    if (jobs > 1 && max_bits_ > 0) {
      const std::uint64_t want =
          std::uint64_t{jobs} * std::max(options_.overpartition, 1u);
      while ((std::uint64_t{1} << cut_) < want && cut_ < max_bits_) ++cut_;
    }

    caps_ = MaxDistinctPerLevel();
    bufs_[0] = stripped_.ids;
    bufs_[1].assign(n, 0);
    // SoA address lanes mirroring the id buffers: addr_bufs_[b][i] ==
    // unique_[bufs_[b][i]] holds at every point of the traversal because the
    // partition permutes both lanes identically. The split-bit count and the
    // partition read this lane sequentially instead of gathering
    // unique_[id] per element, so their reads and writes stream.
    addr_bufs_[0].resize(n);
    addr_bufs_[1].assign(n, 0);
    if (stripped_.unique_count() < (std::uint64_t{1} << 31)) {
      kernels_.gather(bufs_[0].data(), n, unique_.data(),
                      addr_bufs_[0].data());
    } else {
      // vpgatherdd indices are signed, so an id >= 2^31 would wrap; fill
      // the lane scalar for such traces instead of corrupting it.
      for (std::size_t i = 0; i < n; ++i) {
        addr_bufs_[0][i] = unique_[bufs_[0][i]];
      }
    }

    main_.base = 0;
    main_.hist.resize(max_bits_ + 1);
    for (std::uint32_t level = 0; level <= max_bits_; ++level) {
      main_.hist[level].assign(caps_[level], 0);
    }
    main_.counted.assign(max_bits_ + 1, 0);

    serial_lane_.frames.reserve(2 * (max_bits_ + 2));
    if (use_tree_) {
      epoch_of_.assign(stripped_.unique_count(), 0);
      last_pos_.assign(stripped_.unique_count(), 0);
      serial_lane_.fenwick.assign(n + 1, 0);
    } else {
      serial_lane_.mtf.reserve(stripped_.unique_count());
    }

    if (cut_ > 0) {
      subtrees_.reserve(std::size_t{1} << cut_);
      // Longest possible level-cut segment: occurrences (not uniques) of the
      // fullest residue class mod 2^cut — the size every chunk lane's scan
      // scratch must accommodate.
      std::vector<std::size_t> occupancy(std::size_t{1} << cut_, 0);
      const std::uint32_t mask = (1u << cut_) - 1;
      std::size_t max_segment = 0;
      for (std::uint32_t id : stripped_.ids) {
        max_segment = std::max(max_segment, ++occupancy[unique_[id] & mask]);
      }
      chunk_bounds_.assign(jobs + 1, 0);
      chunk_lanes_.resize(jobs);
      chunk_tallies_.resize(jobs);
      for (unsigned chunk = 0; chunk < jobs; ++chunk) {
        LaneScratch& lane = chunk_lanes_[chunk];
        lane.frames.reserve(2 * (max_bits_ + 2));
        if (use_tree_) {
          lane.fenwick.assign(max_segment + 1, 0);
        } else {
          lane.mtf.reserve(std::min(caps_[cut_], max_segment));
        }
        LevelTallies& tallies = chunk_tallies_[chunk];
        tallies.base = cut_;
        tallies.hist.resize(max_bits_ + 1 - cut_);
        for (std::uint32_t level = cut_; level <= max_bits_; ++level) {
          tallies.hist[level - cut_].assign(caps_[level], 0);
        }
        tallies.counted.assign(max_bits_ + 1 - cut_, 0);
      }
    }
  }

  // Scans one node, tallying distances >= 1 into `tallies`, and counts the
  // bit-B_level zeros so the caller can partition without re-deriving the
  // split. The zero count is a dedicated vectorizable pass over the SoA
  // address lane (dispatched through support::simd), which strips the
  // per-element branch out of the stack-distance loop below. Returns
  // {distinct references in the node, size of the left child}.
  std::pair<std::size_t, std::size_t> ScanNode(const Frame& node,
                                               LaneScratch& lane,
                                               LevelTallies& tallies) {
    const std::vector<std::uint32_t>& src = bufs_[node.level & 1];
    std::vector<std::uint64_t>& hist = tallies.hist[node.level - tallies.base];
    std::uint64_t& counted = tallies.counted[node.level - tallies.base];
    ++tallies.nodes;
    tallies.refs += node.end - node.begin;
    // At the deepest level the split bit is never used; keep the shift in
    // range regardless of address width.
    const std::uint32_t shift = node.level < max_bits_ ? node.level : 0;
    const std::size_t len = node.end - node.begin;
    const std::size_t n_left = kernels_.count_zero_bits(
        addr_bufs_[node.level & 1].data() + node.begin, len, shift);
    std::size_t distinct = 0;

    if (!use_tree_) {
      // Move-to-front scan: stack position == number of distinct references
      // of this row touched since the previous occurrence. One backward
      // shift both searches for the id and slides the displaced prefix, so
      // each element is loaded and stored exactly once (the former
      // std::find + std::rotate pair traversed the prefix twice).
      std::vector<std::uint32_t>& stack = lane.mtf;
      stack.clear();
      for (std::size_t i = node.begin; i < node.end; ++i) {
        const std::uint32_t id = src[i];
        std::uint32_t carry = id;
        std::size_t distance = stack.size();
        for (std::size_t d = 0; d < stack.size(); ++d) {
          const std::uint32_t displaced = stack[d];
          stack[d] = carry;
          if (displaced == id) {
            distance = d;
            break;
          }
          carry = displaced;
        }
        if (distance == stack.size()) {
          stack.push_back(carry);  // cold occurrence; capacity reserved
          continue;
        }
        if (distance >= 1) {
          CES_DCHECK(distance < hist.size());
          ++hist[distance];
          ++counted;
        }
      }
      distinct = stack.size();
    } else {
      // Bennett-Kruskal: a Fenwick tree of "most recent occurrence" marks
      // over the node positions; the distance is a range sum. Node-local
      // "seen" state uses epoch stamping so nothing needs clearing between
      // nodes; lanes share the per-id arrays because their subtrees hold
      // disjoint ids. The per-id mark lanes (epoch, last position, and the
      // Fenwick slot the previous occurrence touches) are random-access —
      // software prefetch hides their latency a few references ahead.
      constexpr std::size_t kIdAhead = 8;    // per-id lanes: two cache loads
      constexpr std::size_t kMarkAhead = 4;  // Fenwick slot: needs last_pos_
      ++lane.epoch;
      FenwickView marks(lane.fenwick.data(), len);
      for (std::size_t pos = 0; pos < len; ++pos) {
        if (pos + kIdAhead < len) {
          const std::uint32_t ahead = src[node.begin + pos + kIdAhead];
          support::simd::PrefetchRead(&epoch_of_[ahead]);
          support::simd::PrefetchRead(&last_pos_[ahead]);
        }
        if (pos + kMarkAhead < len) {
          // last_pos_ may be stale for this id (another node set it), but a
          // stale slot is still inside the lane's Fenwick buffer, so the
          // prefetch is at worst useless, never wrong.
          const std::uint32_t ahead = src[node.begin + pos + kMarkAhead];
          if (epoch_of_[ahead] == lane.epoch) {
            support::simd::PrefetchRead(&lane.fenwick[last_pos_[ahead] + 1]);
          }
        }
        const std::uint32_t id = src[node.begin + pos];
        if (epoch_of_[id] == lane.epoch) {
          const std::size_t p = last_pos_[id];
          const auto distance = static_cast<std::size_t>(
              pos >= p + 2 ? marks.RangeSum(p + 1, pos - 1) : 0);
          if (distance >= 1) {
            CES_DCHECK(distance < hist.size());
            ++hist[distance];
            ++counted;
          }
          marks.Add(p, -1);
        } else {
          epoch_of_[id] = lane.epoch;
          ++distinct;
        }
        marks.Add(pos, +1);
        last_pos_[id] = pos;
      }
      marks.Clear();
    }
    return {distinct, n_left};
  }

  // Stable binary radix partition of the node's segment into the twin
  // buffer: the left child (bit B_level == 0) lands at [begin, begin+n_left),
  // the right child at [begin+n_left, end). Children read the twin buffer —
  // the parity rule "level L lives in bufs_[L & 1]" holds globally because
  // every node only ever writes inside its own segment (the dispatched
  // kernels guarantee the same containment: masked stores never touch a
  // byte outside the two runs). The id and address lanes are permuted
  // identically, which is what preserves the SoA mirror invariant.
  void Partition(const Frame& node, std::size_t n_left) {
    const std::size_t parity = node.level & 1;
    const std::size_t twin = parity ^ 1;
    const std::size_t mid = node.begin + n_left;
    kernels_.partition_pair(
        bufs_[parity].data() + node.begin,
        addr_bufs_[parity].data() + node.begin, node.end - node.begin,
        node.level, bufs_[twin].data() + node.begin,
        addr_bufs_[twin].data() + node.begin, bufs_[twin].data() + mid,
        addr_bufs_[twin].data() + mid);
  }

  // Iterative DFS from `root`. Frames reaching `collect_level` are appended
  // to subtrees_ (in increasing segment order, because children are pushed
  // right-then-left) instead of being scanned; kNoCollect runs the subtree
  // to the leaves.
  void Traverse(Frame root, LaneScratch& lane, LevelTallies& tallies,
                std::uint32_t collect_level) {
    lane.frames.clear();
    lane.frames.push_back(root);
    while (!lane.frames.empty()) {
      const Frame node = lane.frames.back();
      lane.frames.pop_back();
      if (node.level == collect_level) {
        subtrees_.push_back(node);
        continue;
      }
      const auto [distinct, n_left] = ScanNode(node, lane, tallies);
      // Rows with fewer than two distinct references can never conflict at
      // any deeper level either (their subsets only shrink) — prune, as
      // Algorithm 1 does for BCAT growth.
      if (distinct < 2 || node.level >= max_bits_) continue;
      Partition(node, n_left);
      const std::size_t mid = node.begin + n_left;
      if (mid < node.end) {
        lane.frames.push_back({node.level + 1, mid, node.end});
      }
      if (node.begin < mid) {
        lane.frames.push_back({node.level + 1, node.begin, mid});
      }
    }
  }

  // Contiguous, reference-count-balanced assignment of subtrees to chunks.
  // Contiguity is what lets the chunk-order merge equal the subtree-order
  // (and hence serial) sums; the balancing only moves wall-clock time.
  void PlanChunks() {
    const std::size_t jobs = chunk_bounds_.size() - 1;
    std::uint64_t total = 0;
    for (const Frame& subtree : subtrees_) total += subtree.end - subtree.begin;
    std::uint64_t taken = 0;
    std::size_t next = 0;
    for (std::size_t chunk = 0; chunk < jobs; ++chunk) {
      chunk_bounds_[chunk] = next;
      const std::uint64_t target = total * (chunk + 1) / jobs;
      while (next < subtrees_.size() && taken < target) {
        taken += subtrees_[next].end - subtrees_[next].begin;
        ++next;
      }
    }
    chunk_bounds_[jobs] = subtrees_.size();
  }

  void RunChunk(std::size_t chunk) {
    LaneScratch& lane = chunk_lanes_[chunk];
    // Epochs above everything phase 1 stamped: a lane may then share the
    // per-id arrays with phase 1 (and, because subtree ids are disjoint,
    // with every other lane) without clearing them.
    lane.epoch = static_cast<std::uint32_t>(main_.nodes);
    for (std::size_t s = chunk_bounds_[chunk]; s < chunk_bounds_[chunk + 1];
         ++s) {
      Traverse(subtrees_[s], lane, chunk_tallies_[chunk], kNoCollect);
    }
  }

  const trace::StrippedTrace& stripped_;
  const std::vector<std::uint32_t>& unique_;
  const std::uint32_t max_bits_;
  const bool use_tree_;
  const FusedPreludeOptions& options_;

  const support::simd::Kernels& kernels_;
  std::uint32_t cut_ = 0;
  std::size_t pool_jobs_ = 1;
  std::vector<std::size_t> caps_;
  std::vector<std::uint32_t> bufs_[2];
  std::vector<std::uint32_t> addr_bufs_[2];  // SoA twin: unique_[id] per slot
  std::vector<std::uint32_t> epoch_of_;  // per id: epoch of last sighting
  std::vector<std::size_t> last_pos_;    // per id: position within the node
  LevelTallies main_;
  LaneScratch serial_lane_;
  std::vector<Frame> subtrees_;
  std::vector<std::size_t> chunk_bounds_;
  std::vector<LaneScratch> chunk_lanes_;
  std::vector<LevelTallies> chunk_tallies_;
};

}  // namespace

std::vector<cache::StackProfile> ComputeMissProfilesFused(
    const trace::StrippedTrace& stripped, std::uint32_t max_index_bits,
    const FusedPreludeOptions& options) {
  return FusedTraversal(stripped, max_index_bits, /*use_tree=*/false, options)
      .Run();
}

std::vector<cache::StackProfile> ComputeMissProfilesFusedTree(
    const trace::StrippedTrace& stripped, std::uint32_t max_index_bits,
    const FusedPreludeOptions& options) {
  return FusedTraversal(stripped, max_index_bits, /*use_tree=*/true, options)
      .Run();
}

}  // namespace ces::analytic
