#include "analytic/fast.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"
#include "support/fenwick.hpp"

namespace ces::analytic {
namespace {

struct FusedState {
  const trace::StrippedTrace* stripped = nullptr;
  std::vector<cache::StackProfile>* profiles = nullptr;
  std::uint32_t max_index_bits = 0;
  // Scratch: d-distance tallies per level are written straight into the
  // profiles; warm totals are fixed up by the caller afterwards.
  std::vector<std::uint64_t> counted_per_level;
};

// Processes one implicit BCAT node at `level` whose subsequence of the trace
// is `sequence` (reference ids in trace order, containing every occurrence
// of every reference mapping to this row). Records distances >= 1 and
// recurses on the two children.
void VisitNode(FusedState& state, std::uint32_t level,
               std::vector<std::uint32_t> sequence) {
  cache::StackProfile& profile = (*state.profiles)[level];

  // Move-to-front scan: stack position == number of distinct references of
  // this row touched since the previous occurrence.
  std::vector<std::uint32_t> stack;
  for (std::uint32_t id : sequence) {
    const auto it = std::find(stack.begin(), stack.end(), id);
    if (it == stack.end()) {
      stack.insert(stack.begin(), id);  // cold occurrence
      continue;
    }
    const auto distance = static_cast<std::size_t>(it - stack.begin());
    if (distance >= 1) {
      if (distance >= profile.hist.size()) profile.hist.resize(distance + 1, 0);
      ++profile.hist[distance];
      ++state.counted_per_level[level];
    }
    std::rotate(stack.begin(), it, it + 1);
  }

  // Rows with fewer than two distinct references can never conflict at any
  // deeper level either (their subsets only shrink) — prune, as Algorithm 1
  // does for BCAT growth.
  if (stack.size() < 2 || level >= state.max_index_bits) return;

  std::vector<std::uint32_t> left;   // bit B_level == 0
  std::vector<std::uint32_t> right;  // bit B_level == 1
  const auto& unique = state.stripped->unique;
  for (std::uint32_t id : sequence) {
    if ((unique[id] >> level) & 1u) {
      right.push_back(id);
    } else {
      left.push_back(id);
    }
  }
  sequence.clear();
  sequence.shrink_to_fit();  // keep the DFS footprint linear

  VisitNode(state, level + 1, std::move(left));
  VisitNode(state, level + 1, std::move(right));
}

// Tree-scan variant: identical traversal, but the per-node distances come
// from a Fenwick tree over the node subsequence (Bennett-Kruskal) rather
// than a move-to-front scan. Node-local "seen" state uses epoch stamping so
// no per-node allocation beyond the tree itself is needed.
struct TreeState {
  const trace::StrippedTrace* stripped = nullptr;
  std::vector<cache::StackProfile>* profiles = nullptr;
  std::uint32_t max_index_bits = 0;
  std::vector<std::uint64_t> counted_per_level;
  std::vector<std::uint32_t> epoch_of;   // per id: epoch of last sighting
  std::vector<std::size_t> last_pos;     // per id: position within the node
  std::uint32_t epoch = 0;
};

void VisitNodeTree(TreeState& state, std::uint32_t level,
                   std::vector<std::uint32_t> sequence) {
  cache::StackProfile& profile = (*state.profiles)[level];
  ++state.epoch;

  FenwickTree marks(sequence.size());
  std::size_t distinct = 0;
  for (std::size_t t = 0; t < sequence.size(); ++t) {
    const std::uint32_t id = sequence[t];
    if (state.epoch_of[id] == state.epoch) {
      const std::size_t p = state.last_pos[id];
      const auto distance = static_cast<std::size_t>(
          t >= p + 2 ? marks.RangeSum(p + 1, t - 1) : 0);
      if (distance >= 1) {
        if (distance >= profile.hist.size()) profile.hist.resize(distance + 1, 0);
        ++profile.hist[distance];
        ++state.counted_per_level[level];
      }
      marks.Add(p, -1);
    } else {
      state.epoch_of[id] = state.epoch;
      ++distinct;
    }
    marks.Add(t, +1);
    state.last_pos[id] = t;
  }

  if (distinct < 2 || level >= state.max_index_bits) return;

  std::vector<std::uint32_t> left;
  std::vector<std::uint32_t> right;
  const auto& unique = state.stripped->unique;
  for (std::uint32_t id : sequence) {
    if ((unique[id] >> level) & 1u) {
      right.push_back(id);
    } else {
      left.push_back(id);
    }
  }
  sequence.clear();
  sequence.shrink_to_fit();

  VisitNodeTree(state, level + 1, std::move(left));
  VisitNodeTree(state, level + 1, std::move(right));
}

}  // namespace

std::vector<cache::StackProfile> ComputeMissProfilesFusedTree(
    const trace::StrippedTrace& stripped, std::uint32_t max_index_bits) {
  std::vector<cache::StackProfile> profiles(max_index_bits + 1);
  for (std::uint32_t level = 0; level <= max_index_bits; ++level) {
    profiles[level].index_bits = level;
    profiles[level].cold = stripped.unique_count();
  }

  TreeState state;
  state.stripped = &stripped;
  state.profiles = &profiles;
  state.max_index_bits = max_index_bits;
  state.counted_per_level.assign(max_index_bits + 1, 0);
  state.epoch_of.assign(stripped.unique_count(), 0);
  state.last_pos.assign(stripped.unique_count(), 0);

  VisitNodeTree(state, 0, stripped.ids);

  const std::uint64_t warm_total = stripped.warm_count();
  for (std::uint32_t level = 0; level <= max_index_bits; ++level) {
    CES_CHECK(state.counted_per_level[level] <= warm_total);
    if (profiles[level].hist.empty()) profiles[level].hist.resize(1, 0);
    profiles[level].hist[0] = warm_total - state.counted_per_level[level];
  }
  return profiles;
}

std::vector<cache::StackProfile> ComputeMissProfilesFused(
    const trace::StrippedTrace& stripped, std::uint32_t max_index_bits) {
  std::vector<cache::StackProfile> profiles(max_index_bits + 1);
  for (std::uint32_t level = 0; level <= max_index_bits; ++level) {
    profiles[level].index_bits = level;
    profiles[level].cold = stripped.unique_count();
  }

  FusedState state;
  state.stripped = &stripped;
  state.profiles = &profiles;
  state.max_index_bits = max_index_bits;
  state.counted_per_level.assign(max_index_bits + 1, 0);

  VisitNode(state, 0, stripped.ids);

  // Distance-0 bucket: every non-cold occurrence not tallied above hits at
  // any associativity (distance zero in its row, or the row was pruned).
  const std::uint64_t warm_total = stripped.warm_count();
  for (std::uint32_t level = 0; level <= max_index_bits; ++level) {
    CES_CHECK(state.counted_per_level[level] <= warm_total);
    if (profiles[level].hist.empty()) profiles[level].hist.resize(1, 0);
    profiles[level].hist[0] = warm_total - state.counted_per_level[level];
  }
  return profiles;
}

}  // namespace ces::analytic
