// Public API of the analytical cache design-space explorer (Figure 1b).
//
// Typical use:
//   ces::analytic::Explorer explorer(trace);
//   auto result = explorer.SolveFraction(0.05);  // K = 5% of max misses
//   for (const auto& p : result.points) { ... p.depth, p.assoc ... }
//
// Construction runs the prelude once (trace stripping + miss-histogram
// computation); each Solve call is then a cheap histogram query, so any
// number of miss budgets K can be explored without touching the trace again.
#pragma once

#include <cstdint>
#include <vector>

#include "analytic/model.hpp"
#include "cache/stack.hpp"
#include "trace/strip.hpp"
#include "trace/trace.hpp"

namespace ces::support {
class MetricsRegistry;
}  // namespace ces::support

namespace ces::analytic {

enum class Engine : std::uint8_t {
  // Explicit BCAT + MRCT data structures, as presented in sections 2.2-2.3.
  // Memory grows with the sum of reuse distances; intended for moderate
  // traces and for validating the fused engine.
  kReference = 0,
  // Fused depth-first engine of section 2.4: linear space, the default.
  kFused = 1,
  // Fused engine with Bennett-Kruskal Fenwick-tree scans per node:
  // O(n log n) per node independent of stack depth. Same results.
  kFusedTree = 2,
};

// How the fused engines compute the per-depth histograms. Irrelevant for
// Engine::kReference, which has its own explicit BCAT/MRCT phases.
enum class PreludeMode : std::uint8_t {
  // Single fused depth-first traversal (section 2.4): every node scans only
  // its own subsequence, so total work is the sum of *active* subsequence
  // lengths — strictly less than (depths+1) full passes whenever subtrees
  // prune. Subtree-parallel when jobs > 1; the default.
  kFusedTraversal = 0,
  // (max_index_bits + 1) independent full-trace Mattson passes, one per
  // depth, parallelised over depths. Asymptotically the redundancy the fused
  // traversal exists to avoid — kept reachable as the cross-validation
  // baseline, not as a hidden jobs>1 fallback.
  kPerDepth = 1,
};

struct ExplorerOptions {
  Engine engine = Engine::kFused;
  // Largest depth explored is 2^max_index_bits; automatically lowered to the
  // number of address bits that actually vary in the trace (deeper caches
  // cannot reduce misses further).
  std::uint32_t max_index_bits = 16;
  // Cache line size in words (power of two). The paper fixes this at one
  // word; larger values re-block the trace first (the future-work line-size
  // axis), after which depths/misses are in units of lines.
  std::uint32_t line_words = 1;
  // Worker threads for the prelude. 1 (default) is the serial code path;
  // 0 picks the hardware concurrency. With jobs > 1 the fused engines run
  // the *same* fused traversal, subtree-parallel: the tree is partitioned
  // serially down to a cut level and the independent subtrees fan out onto
  // a pool, with partial histograms merged in subtree order — profiles and
  // deterministic metrics are byte-identical to jobs = 1, which the
  // determinism tests assert. The reference engine's global BCAT/MRCT
  // structures are inherently sequential; it ignores this option.
  std::uint32_t jobs = 1;
  // Prelude algorithm for the fused engines; see PreludeMode.
  PreludeMode prelude = PreludeMode::kFusedTraversal;
  // Optional run-metrics sink. The prelude records "explore.depths",
  // "explore.trace_refs", "explore.unique_refs" (deterministic counters),
  // the "explore.prelude_seconds" span, and three deterministic histograms —
  // "stack.distance" (fully-associative LRU stack distances),
  // "explore.set_accesses" and "explore.set_cold_misses" (per-set load at
  // the deepest explored depth); each Solve adds "explore.solve_queries".
  // The fused traversal additionally records its honest work counters
  // "explore.fused_nodes" / "explore.fused_refs" (plus the volatile gauge
  // "explore.cut_level"); the per-depth baseline records "stack.passes" /
  // "stack.refs_scanned" instead. Counters and histograms are byte-identical
  // in ToJson for every jobs value and across kFused/kFusedTree (given the
  // same prelude mode). nullptr (default) disables collection.
  //
  // Independently, with a global support::TraceSink installed the prelude
  // emits nested spans (explore.prelude / explore.strip / per-engine phase
  // spans / stack.scan per depth) and with a global ProgressReporter it
  // reports per-depth progress; see docs/OBSERVABILITY.md.
  support::MetricsRegistry* metrics = nullptr;
};

struct ExplorationResult {
  std::uint64_t k = 0;               // the miss budget used
  std::vector<DesignPoint> points;   // one per depth 2^0..2^max
  double prelude_seconds = 0.0;      // one-off analysis time
  double solve_seconds = 0.0;        // per-query time

  // Smallest cache (in words) among the points, the natural pick when all
  // depths are otherwise equal.
  const DesignPoint* SmallestCache() const;
};

class Explorer {
 public:
  // Throws support::Error (kUsage) for invalid options: line_words that is
  // zero or not a power of two.
  explicit Explorer(const trace::Trace& trace, ExplorerOptions options = {});

  // Out-of-core construction: strips the trace in one bounded-chunk pass
  // over the view (an mmap-backed CTRC file never materialises its raw
  // reference vector). Profiles, stats and deterministic metrics are
  // byte-identical to the in-memory constructor on the same content.
  explicit Explorer(const trace::TraceView& view, ExplorerOptions options = {});

  // Optimal (D, A) pairs with non-cold misses <= k.
  ExplorationResult Solve(std::uint64_t k) const;

  // k = floor(fraction * max_misses); the paper's 5/10/15/20% sweeps.
  ExplorationResult SolveFraction(double fraction) const;

  const trace::TraceStats& stats() const { return stats_; }
  const std::vector<cache::StackProfile>& profiles() const { return profiles_; }
  std::uint32_t max_index_bits() const { return max_index_bits_; }
  double prelude_seconds() const { return prelude_seconds_; }

 private:
  // The engine dispatch shared by both constructors; everything after the
  // stripped trace exists is identical between the in-memory and the
  // streaming paths.
  void BuildPrelude(const trace::StrippedTrace& stripped,
                    const ExplorerOptions& options);

  trace::TraceStats stats_;
  std::vector<cache::StackProfile> profiles_;
  std::uint32_t max_index_bits_ = 0;
  double prelude_seconds_ = 0.0;
  support::MetricsRegistry* metrics_ = nullptr;
};

// One-shot convenience wrapper.
ExplorationResult Explore(const trace::Trace& trace, std::uint64_t k,
                          ExplorerOptions options = {});

}  // namespace ces::analytic
