#include "analytic/explorer.hpp"

#include <algorithm>
#include <cmath>

#include "analytic/bcat.hpp"
#include "analytic/fast.hpp"
#include "analytic/mrct.hpp"
#include "analytic/postlude.hpp"
#include "analytic/zeroone.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/pool.hpp"
#include "support/timer.hpp"

namespace ces::analytic {

const DesignPoint* ExplorationResult::SmallestCache() const {
  const DesignPoint* best = nullptr;
  for (const DesignPoint& point : points) {
    if (best == nullptr || point.size_words() < best->size_words()) {
      best = &point;
    }
  }
  return best;
}

Explorer::Explorer(const trace::Trace& trace, ExplorerOptions options)
    : metrics_(options.metrics) {
  if (options.line_words == 0 ||
      (options.line_words & (options.line_words - 1)) != 0) {
    throw support::Error(support::ErrorCategory::kUsage, "explorer",
                         "line_words " + std::to_string(options.line_words) +
                             " is not a power of two");
  }
  Stopwatch watch;
  const trace::StrippedTrace stripped =
      options.line_words == 1
          ? trace::Strip(trace)
          : trace::Strip(trace::WithLineSize(trace, options.line_words));
  stats_ = trace::ComputeStats(stripped);
  max_index_bits_ =
      std::min(options.max_index_bits, trace::SignificantAddressBits(stripped));

  const std::uint32_t jobs =
      options.jobs == 0 ? support::HardwareConcurrency() : options.jobs;
  if (jobs > 1 && options.engine != Engine::kReference) {
    // Parallel prelude: per-depth Mattson passes (move-to-front or Fenwick,
    // matching the engine) computed concurrently. Identical histograms to
    // the fused depth-first traversal — both are exact per-set LRU stack
    // distance counts in canonical form.
    support::ThreadPool pool(jobs);
    profiles_ = cache::ComputeAllDepthProfiles(
        stripped, max_index_bits_, &pool,
        /*use_tree=*/options.engine == Engine::kFusedTree, metrics_);
  } else if (options.engine == Engine::kFused ||
             options.engine == Engine::kFusedTree) {
    profiles_ = options.engine == Engine::kFused
                    ? ComputeMissProfilesFused(stripped, max_index_bits_)
                    : ComputeMissProfilesFusedTree(stripped, max_index_bits_);
    // Mirror the counters ComputeAllDepthProfiles records on the pool path:
    // the fused traversal performs the same per-depth scan work, and keeping
    // the totals identical is what makes --metrics=json byte-identical
    // across jobs values.
    support::MetricsRegistry::Add(metrics_, "stack.passes", profiles_.size());
    support::MetricsRegistry::Add(
        metrics_, "stack.refs_scanned",
        static_cast<std::uint64_t>(profiles_.size()) * stripped.size());
  } else {
    const ZeroOneSets sets = BuildZeroOneSets(stripped, max_index_bits_);
    const Bcat bcat = Bcat::Build(sets, stripped.unique_count(),
                                  max_index_bits_);
    const Mrct mrct = Mrct::Build(stripped);
    profiles_ = ComputeMissProfiles(bcat, mrct, stripped.warm_count(),
                                    stripped.unique_count(), max_index_bits_);
  }
  prelude_seconds_ = watch.ElapsedSeconds();
  support::MetricsRegistry::Add(metrics_, "explore.depths", profiles_.size());
  support::MetricsRegistry::Add(metrics_, "explore.trace_refs", stats_.n);
  support::MetricsRegistry::Add(metrics_, "explore.unique_refs",
                                stats_.n_unique);
  support::MetricsRegistry::Observe(metrics_, "explore.prelude_seconds",
                                    prelude_seconds_);
}

ExplorationResult Explorer::Solve(std::uint64_t k) const {
  Stopwatch watch;
  support::MetricsRegistry::Add(metrics_, "explore.solve_queries");
  ExplorationResult result;
  result.k = k;
  result.points.reserve(profiles_.size());
  for (const cache::StackProfile& profile : profiles_) {
    DesignPoint point;
    point.depth = profile.depth();
    point.assoc = profile.MinAssocFor(k);
    point.warm_misses = profile.MissesAtAssoc(point.assoc);
    result.points.push_back(point);
  }
  result.prelude_seconds = prelude_seconds_;
  result.solve_seconds = watch.ElapsedSeconds();
  return result;
}

ExplorationResult Explorer::SolveFraction(double fraction) const {
  const auto k = static_cast<std::uint64_t>(
      std::floor(fraction * static_cast<double>(stats_.max_misses)));
  return Solve(k);
}

ExplorationResult Explore(const trace::Trace& trace, std::uint64_t k,
                          ExplorerOptions options) {
  return Explorer(trace, options).Solve(k);
}

}  // namespace ces::analytic
