#include "analytic/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "analytic/bcat.hpp"
#include "analytic/fast.hpp"
#include "analytic/mrct.hpp"
#include "analytic/postlude.hpp"
#include "analytic/zeroone.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/pool.hpp"
#include "support/progress.hpp"
#include "support/timer.hpp"
#include "support/trace_event.hpp"
#include "trace/trace_view.hpp"

namespace ces::analytic {
namespace {

// Deterministic distributional metrics of the prelude, recorded once on the
// construction thread from engine-independent inputs — every engine produces
// identical profiles and sees the same stripped trace, so the histograms are
// byte-identical across engines and jobs values.
void RecordPreludeHistograms(const trace::StrippedTrace& stripped,
                             const std::vector<cache::StackProfile>& profiles,
                             std::uint32_t max_index_bits,
                             support::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  // Fully-associative LRU stack distances (the profile at index_bits = 0 is
  // the single-set pass): the classic reuse-distance spectrum.
  if (!profiles.empty()) {
    const cache::StackProfile& fa = profiles.front();
    for (std::size_t d = 0; d < fa.hist.size(); ++d) {
      metrics->ObserveHistogram("stack.distance", d, fa.hist[d]);
    }
  }
  // Per-set load at the deepest explored depth: accesses and cold misses
  // (unique lines) per set, the paper's conflict structure at a glance.
  const std::size_t sets = std::size_t{1} << max_index_bits;
  const std::uint32_t mask = static_cast<std::uint32_t>(sets - 1);
  std::vector<std::uint64_t> accesses(sets, 0);
  std::vector<std::uint64_t> cold(sets, 0);
  for (std::uint32_t id : stripped.ids) ++accesses[stripped.unique[id] & mask];
  for (std::uint32_t address : stripped.unique) ++cold[address & mask];
  for (std::size_t set = 0; set < sets; ++set) {
    metrics->ObserveHistogram("explore.set_accesses", accesses[set]);
    metrics->ObserveHistogram("explore.set_cold_misses", cold[set]);
  }
}

void ValidateLineWords(std::uint32_t line_words) {
  if (line_words == 0 || (line_words & (line_words - 1)) != 0) {
    throw support::Error(support::ErrorCategory::kUsage, "explorer",
                         "line_words " + std::to_string(line_words) +
                             " is not a power of two");
  }
}

}  // namespace

const DesignPoint* ExplorationResult::SmallestCache() const {
  const DesignPoint* best = nullptr;
  for (const DesignPoint& point : points) {
    if (best == nullptr || point.size_words() < best->size_words()) {
      best = &point;
    }
  }
  return best;
}

Explorer::Explorer(const trace::Trace& trace, ExplorerOptions options)
    : metrics_(options.metrics) {
  ValidateLineWords(options.line_words);
  Stopwatch watch;
  support::ScopedTraceSpan prelude_span("explore.prelude");
  const trace::StrippedTrace stripped = [&] {
    support::ScopedTraceSpan span("explore.strip");
    return options.line_words == 1
               ? trace::Strip(trace)
               : trace::Strip(trace::WithLineSize(trace, options.line_words));
  }();
  BuildPrelude(stripped, options);
  prelude_seconds_ = watch.ElapsedSeconds();
  if (support::TraceSink* sink = support::TraceSink::Global()) {
    sink->Instant("explore.prelude_done");
  }
  support::MetricsRegistry::Observe(metrics_, "explore.prelude_seconds",
                                    prelude_seconds_);
}

Explorer::Explorer(const trace::TraceView& view, ExplorerOptions options)
    : metrics_(options.metrics) {
  ValidateLineWords(options.line_words);
  Stopwatch watch;
  support::ScopedTraceSpan prelude_span("explore.prelude");
  const trace::StrippedTrace stripped = [&] {
    support::ScopedTraceSpan span("explore.strip");
    // The streaming strip fuses line re-blocking into its single pass, so
    // the raw reference vector never materialises even for line_words > 1.
    return trace::Strip(view, options.line_words);
  }();
  BuildPrelude(stripped, options);
  prelude_seconds_ = watch.ElapsedSeconds();
  if (support::TraceSink* sink = support::TraceSink::Global()) {
    sink->Instant("explore.prelude_done");
  }
  support::MetricsRegistry::Observe(metrics_, "explore.prelude_seconds",
                                    prelude_seconds_);
}

void Explorer::BuildPrelude(const trace::StrippedTrace& stripped,
                            const ExplorerOptions& options) {
  stats_ = trace::ComputeStats(stripped);
  max_index_bits_ =
      std::min(options.max_index_bits, trace::SignificantAddressBits(stripped));

  const std::uint32_t jobs =
      options.jobs == 0 ? support::HardwareConcurrency() : options.jobs;
  if (auto* progress = support::ProgressReporter::Global()) {
    progress->BeginPhase("prelude depths", max_index_bits_ + 1);
  }
  if (options.engine == Engine::kFused || options.engine == Engine::kFusedTree) {
    const bool use_tree = options.engine == Engine::kFusedTree;
    if (options.prelude == PreludeMode::kPerDepth) {
      // Explicitly requested cross-validation baseline: per-depth Mattson
      // passes (move-to-front or Fenwick, matching the engine) computed
      // concurrently, one depth per pool index. Identical histograms to the
      // fused traversal — both are exact per-set LRU stack distance counts
      // in canonical form.
      support::ThreadPool pool(jobs, metrics_);
      profiles_ = cache::ComputeAllDepthProfiles(stripped, max_index_bits_,
                                                 &pool, use_tree, metrics_);
    } else {
      // The fused depth-first traversal (section 2.4) for every jobs value:
      // jobs > 1 makes it subtree-parallel, it does not change algorithms.
      support::ScopedTraceSpan span("explore.fused_traversal");
      std::optional<support::ThreadPool> pool;
      FusedPreludeOptions fused;
      fused.metrics = metrics_;
      if (jobs > 1) fused.pool = &pool.emplace(jobs, metrics_);
      profiles_ =
          use_tree ? ComputeMissProfilesFusedTree(stripped, max_index_bits_,
                                                  fused)
                   : ComputeMissProfilesFused(stripped, max_index_bits_, fused);
    }
  } else {
    // The reference engine's explicit phases (sections 2.2-2.3), each its
    // own span so a profile shows where BCAT vs MRCT construction time goes.
    const ZeroOneSets sets = [&] {
      support::ScopedTraceSpan span("explore.zeroone");
      return BuildZeroOneSets(stripped, max_index_bits_);
    }();
    const Bcat bcat = [&] {
      support::ScopedTraceSpan span("explore.bcat");
      return Bcat::Build(sets, stripped.unique_count(), max_index_bits_);
    }();
    const Mrct mrct = [&] {
      support::ScopedTraceSpan span("explore.mrct");
      return Mrct::Build(stripped);
    }();
    support::ScopedTraceSpan span("explore.profiles");
    profiles_ = ComputeMissProfiles(bcat, mrct, stripped.warm_count(),
                                    stripped.unique_count(), max_index_bits_);
  }
  if (auto* progress = support::ProgressReporter::Global()) {
    // The per-depth scans tick as they finish; the fused and reference
    // engines produce all depths in one traversal, so account for whatever
    // the engine did not tick itself before closing the phase.
    const std::uint64_t total = max_index_bits_ + 1;
    if (progress->done() < total) progress->Tick(total - progress->done());
    progress->EndPhase();
  }
  // Freeze the suffix-sum solve caches while the Explorer is still private
  // to this thread: Solve queries on a shared (service) Explorer are then
  // read-only O(log hist) lookups.
  for (cache::StackProfile& profile : profiles_) profile.FinalizeSolveCache();
  RecordPreludeHistograms(stripped, profiles_, max_index_bits_, metrics_);
  support::MetricsRegistry::Add(metrics_, "explore.depths", profiles_.size());
  support::MetricsRegistry::Add(metrics_, "explore.trace_refs", stats_.n);
  support::MetricsRegistry::Add(metrics_, "explore.unique_refs",
                                stats_.n_unique);
}

ExplorationResult Explorer::Solve(std::uint64_t k) const {
  Stopwatch watch;
  support::ScopedTraceSpan span("explore.solve");
  support::MetricsRegistry::Add(metrics_, "explore.solve_queries");
  ExplorationResult result;
  result.k = k;
  result.points.reserve(profiles_.size());
  for (const cache::StackProfile& profile : profiles_) {
    DesignPoint point;
    point.depth = profile.depth();
    point.assoc = profile.MinAssocFor(k);
    point.warm_misses = profile.MissesAtAssoc(point.assoc);
    result.points.push_back(point);
  }
  result.prelude_seconds = prelude_seconds_;
  result.solve_seconds = watch.ElapsedSeconds();
  return result;
}

ExplorationResult Explorer::SolveFraction(double fraction) const {
  const auto k = static_cast<std::uint64_t>(
      std::floor(fraction * static_cast<double>(stats_.max_misses)));
  return Solve(k);
}

ExplorationResult Explore(const trace::Trace& trace, std::uint64_t k,
                          ExplorerOptions options) {
  return Explorer(trace, options).Solve(k);
}

}  // namespace ces::analytic
