// Binary Cache Allocation Tree (paper section 2.2, Algorithm 1, Figure 3).
//
// Level l of the tree corresponds to a cache of depth 2^l indexed by address
// bits B_0..B_{l-1}; the nodes at level l hold the sets of unique-reference
// ids mapping to each of the 2^l cache rows. The root (level 0) is the full
// reference set — a depth-1, fully shared cache row. Growth stops below
// nodes with fewer than two references, since such rows can never conflict.
//
// This is the explicit, paper-faithful data structure; the fused engine in
// fast.hpp traverses the same tree implicitly in linear space (section 2.4).
#pragma once

#include <cstdint>
#include <vector>

#include "analytic/zeroone.hpp"
#include "support/bitset.hpp"

namespace ces::analytic {

class Bcat {
 public:
  struct Node {
    DynamicBitset refs;        // unique-reference ids mapping to this row
    std::uint32_t level = 0;   // depth = 2^level
    std::uint32_t path = 0;    // value of bits B_0..B_{level-1} for this row
    std::int32_t left = -1;    // child where B_level = 0
    std::int32_t right = -1;   // child where B_level = 1
  };

  // Builds the tree over `unique_count` references using at most
  // `max_levels` index bits (Algorithm 1, iteratively).
  static Bcat Build(const ZeroOneSets& sets, std::size_t unique_count,
                    std::uint32_t max_levels);

  const Node& node(std::int32_t index) const { return nodes_[static_cast<std::size_t>(index)]; }
  std::size_t node_count() const { return nodes_.size(); }

  // Node indices present at a level. Rows whose ancestors were pruned have
  // no node; they hold at most one reference and never miss.
  const std::vector<std::int32_t>& LevelNodes(std::uint32_t level) const;

  // Number of levels with at least one node (root level included).
  std::uint32_t level_count() const {
    return static_cast<std::uint32_t>(levels_.size());
  }

  // Max node cardinality per level: the associativity guaranteeing zero
  // misses at that depth (paper's A_zero discussion).
  std::uint32_t MaxCardinalityAtLevel(std::uint32_t level) const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::vector<std::int32_t>> levels_;
  static const std::vector<std::int32_t> kEmptyLevel;
};

}  // namespace ces::analytic
