// Memory Reference Conflict Table (paper section 2.2, Algorithm 2, Table 4).
//
// For each unique reference the MRCT stores one conflict set per non-cold
// occurrence: the set of *distinct* other references that appeared between
// this occurrence and the previous occurrence of the same reference. At a
// BCAT node with reference set S, an occurrence with conflict set C misses
// in an A-way cache iff |S n C| >= A (section 2.3) — |S n C| is exactly the
// per-set LRU stack distance, which is why the analytical counts are exact.
//
// Conflict sets are stored as sorted id vectors (the compressed form hinted
// at in section 2.4; total size is bounded by the sum of reuse distances
// rather than N * N' bits).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/strip.hpp"

namespace ces::analytic {

class Mrct {
 public:
  using ConflictSet = std::vector<std::uint32_t>;  // sorted unique ids

  // Builds the table in one pass over the trace using a global LRU stack:
  // when a reference re-occurs at stack distance d, the d more-recent stack
  // entries are exactly its conflict set. Cost O(sum of reuse distances).
  static Mrct Build(const trace::StrippedTrace& stripped);

  // Algorithm 2 exactly as printed (per-reference accumulator sets updated
  // on every trace step, O(N * N')). Kept as a cross-check oracle.
  static Mrct BuildNaive(const trace::StrippedTrace& stripped);

  // Conflict sets of one unique reference, in occurrence order (first/cold
  // occurrence excluded, matching the paper).
  const std::vector<ConflictSet>& ConflictsOf(std::uint32_t id) const {
    return conflicts_[id];
  }

  std::size_t unique_count() const { return conflicts_.size(); }

  // Total number of conflict sets == number of non-cold occurrences.
  std::uint64_t set_count() const;
  // Total stored ids across all conflict sets (memory proxy).
  std::uint64_t entry_count() const;

  friend bool operator==(const Mrct&, const Mrct&) = default;

 private:
  std::vector<std::vector<ConflictSet>> conflicts_;
};

}  // namespace ces::analytic
