// Zero/one set construction (paper section 2.2, Table 3).
//
// For every address bit B_i two sets are formed over the unique-reference
// identifiers: Z_i holds the references with bit value 0 at B_i and O_i the
// ones with bit value 1. Set intersections against these define how
// references distribute over cache rows, which is what the BCAT encodes.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bitset.hpp"
#include "trace/strip.hpp"

namespace ces::analytic {

struct ZeroOneSets {
  // zero[i] / one[i] correspond to bit B_i (B_0 = least significant bit).
  std::vector<DynamicBitset> zero;
  std::vector<DynamicBitset> one;

  std::uint32_t bit_count() const {
    return static_cast<std::uint32_t>(zero.size());
  }
};

// Builds the pair of sets for bits B_0 .. B_{bit_count-1}. Identifiers are
// the 0-based ids assigned by trace::Strip.
ZeroOneSets BuildZeroOneSets(const trace::StrippedTrace& stripped,
                             std::uint32_t bit_count);

}  // namespace ces::analytic
