#include "analytic/postlude.hpp"

#include "support/check.hpp"

namespace ces::analytic {

std::vector<cache::StackProfile> ComputeMissProfiles(
    const Bcat& bcat, const Mrct& mrct, std::uint64_t warm_total,
    std::uint64_t cold_total, std::uint32_t max_index_bits) {
  std::vector<cache::StackProfile> profiles(max_index_bits + 1);

  for (std::uint32_t level = 0; level <= max_index_bits; ++level) {
    cache::StackProfile& profile = profiles[level];
    profile.index_bits = level;
    profile.cold = cold_total;

    std::uint64_t counted = 0;
    for (std::int32_t index : bcat.LevelNodes(level)) {
      const Bcat::Node& node = bcat.node(index);
      if (node.refs.Count() < 2) continue;  // conflict-free row
      node.refs.ForEachSetBit([&](std::size_t id) {
        for (const Mrct::ConflictSet& conflict :
             mrct.ConflictsOf(static_cast<std::uint32_t>(id))) {
          // |S n C|: C is small and sorted; S is a bitset.
          std::size_t distance = 0;
          for (std::uint32_t c : conflict) {
            if (node.refs.Test(c)) ++distance;
          }
          if (distance >= 1) {
            if (distance >= profile.hist.size()) {
              profile.hist.resize(distance + 1, 0);
            }
            ++profile.hist[distance];
            ++counted;
          }
        }
      });
    }

    // Occurrences not counted above hit at any associativity: either their
    // |S n C| was zero or their row was pruned from the tree.
    CES_CHECK(counted <= warm_total);
    if (profile.hist.empty()) profile.hist.resize(1, 0);
    profile.hist[0] = warm_total - counted;
  }
  return profiles;
}

std::vector<DesignPoint> OptimalSet(
    const std::vector<cache::StackProfile>& profiles, std::uint64_t k) {
  std::vector<DesignPoint> points;
  points.reserve(profiles.size());
  for (const cache::StackProfile& profile : profiles) {
    DesignPoint point;
    point.depth = profile.depth();
    point.assoc = profile.MinAssocFor(k);
    point.warm_misses = profile.MissesAtAssoc(point.assoc);
    points.push_back(point);
  }
  return points;
}

}  // namespace ces::analytic
