#include "analytic/zeroone.hpp"

namespace ces::analytic {

ZeroOneSets BuildZeroOneSets(const trace::StrippedTrace& stripped,
                             std::uint32_t bit_count) {
  ZeroOneSets sets;
  const std::size_t n_unique = stripped.unique_count();
  sets.zero.reserve(bit_count);
  sets.one.reserve(bit_count);
  for (std::uint32_t bit = 0; bit < bit_count; ++bit) {
    sets.zero.emplace_back(n_unique);
    sets.one.emplace_back(n_unique);
  }
  for (std::size_t id = 0; id < n_unique; ++id) {
    const std::uint32_t addr = stripped.unique[id];
    for (std::uint32_t bit = 0; bit < bit_count; ++bit) {
      if ((addr >> bit) & 1u) {
        sets.one[bit].Set(id);
      } else {
        sets.zero[bit].Set(id);
      }
    }
  }
  return sets;
}

}  // namespace ces::analytic
