#include "analytic/mrct.hpp"

#include <algorithm>

#include "support/bitset.hpp"
#include "support/check.hpp"

namespace ces::analytic {

Mrct Mrct::Build(const trace::StrippedTrace& stripped) {
  Mrct table;
  table.conflicts_.resize(stripped.unique_count());

  // Global (fully associative) LRU stack of ids, most recent first.
  std::vector<std::uint32_t> stack;
  stack.reserve(stripped.unique_count());
  for (std::size_t j = 0; j < stripped.ids.size(); ++j) {
    const std::uint32_t id = stripped.ids[j];
    if (stripped.is_first[j]) {
      stack.insert(stack.begin(), id);
      continue;
    }
    const auto it = std::find(stack.begin(), stack.end(), id);
    CES_DCHECK(it != stack.end());
    ConflictSet conflict(stack.begin(), it);
    std::sort(conflict.begin(), conflict.end());
    table.conflicts_[id].push_back(std::move(conflict));
    std::rotate(stack.begin(), it, it + 1);
  }
  return table;
}

Mrct Mrct::BuildNaive(const trace::StrippedTrace& stripped) {
  Mrct table;
  const std::size_t n_unique = stripped.unique_count();
  table.conflicts_.resize(n_unique);

  // Algorithm 2: S_i accumulates the identifiers seen since the last
  // occurrence of U_i; on a re-occurrence S_i is emitted and reset. (The
  // printed pseudocode also emits on the cold occurrence; the prose and
  // Table 4 exclude it, so we reset without emitting there — see the
  // erratum notes in DESIGN.md.)
  std::vector<DynamicBitset> accumulators(n_unique,
                                          DynamicBitset(n_unique));
  std::vector<bool> seen(n_unique, false);
  for (std::size_t j = 0; j < stripped.ids.size(); ++j) {
    const std::uint32_t id = stripped.ids[j];
    if (seen[id]) {
      table.conflicts_[id].push_back(accumulators[id].ToVector());
    }
    accumulators[id].Clear();
    seen[id] = true;
    for (std::size_t other = 0; other < n_unique; ++other) {
      if (other != id) accumulators[other].Set(id);
    }
  }
  return table;
}

std::uint64_t Mrct::set_count() const {
  std::uint64_t total = 0;
  for (const auto& sets : conflicts_) total += sets.size();
  return total;
}

std::uint64_t Mrct::entry_count() const {
  std::uint64_t total = 0;
  for (const auto& sets : conflicts_) {
    for (const auto& set : sets) total += set.size();
  }
  return total;
}

}  // namespace ces::analytic
