// Result types of the analytical design-space exploration.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ces::analytic {

// One optimal cache instance: for depth D, the minimum associativity A whose
// non-cold miss count on the trace is <= K (paper's output pairs (D, A)).
struct DesignPoint {
  std::uint32_t depth = 1;
  std::uint32_t assoc = 1;
  // The exact non-cold miss count this (depth, assoc) incurs on the trace.
  std::uint64_t warm_misses = 0;

  // Cache capacity in words (line size fixed at one word): 2^log2(D) * A.
  std::uint64_t size_words() const {
    return static_cast<std::uint64_t>(depth) * assoc;
  }

  friend bool operator==(const DesignPoint&, const DesignPoint&) = default;
};

// Physical-feasibility constraints a designer may impose on the result set:
// silicon budget (total words), timing-driven associativity cap, and a depth
// window (e.g. the index bits the memory controller supports).
struct InstanceConstraints {
  std::uint64_t max_size_words = ~std::uint64_t{0};
  std::uint32_t max_assoc = ~std::uint32_t{0};
  std::uint32_t min_depth = 1;
  std::uint32_t max_depth = ~std::uint32_t{0};

  bool Admits(const DesignPoint& point) const {
    return point.size_words() <= max_size_words &&
           point.assoc <= max_assoc && point.depth >= min_depth &&
           point.depth <= max_depth;
  }
};

// The admissible subset of an exploration result, original order preserved.
// Every surviving point still meets the miss budget it was solved for; an
// empty result means no instance satisfies both the budget and the
// constraints (raise K, the size budget, or the depth window).
inline std::vector<DesignPoint> FilterPoints(
    const std::vector<DesignPoint>& points,
    const InstanceConstraints& constraints) {
  std::vector<DesignPoint> admitted;
  std::copy_if(points.begin(), points.end(), std::back_inserter(admitted),
               [&constraints](const DesignPoint& point) {
                 return constraints.Admits(point);
               });
  return admitted;
}

}  // namespace ces::analytic
