// Postlude phase (paper section 2.3, Algorithm 3).
//
// Operating on the BCAT and MRCT, computes for every cache depth D = 2^l the
// per-associativity non-cold miss counts, and from them the minimum
// associativity meeting a miss budget K. The per-level result is expressed
// as a cache::StackProfile so it can be compared bit-for-bit against the
// one-pass Mattson simulator and the fused engine.
#pragma once

#include <cstdint>
#include <vector>

#include "analytic/bcat.hpp"
#include "analytic/model.hpp"
#include "analytic/mrct.hpp"
#include "cache/stack.hpp"

namespace ces::analytic {

// Miss histograms for depths 2^0 .. 2^max_index_bits. `warm_total` is the
// number of non-cold trace positions (StrippedTrace::warm_count), needed to
// account for occurrences living in pruned (conflict-free) BCAT rows.
std::vector<cache::StackProfile> ComputeMissProfiles(
    const Bcat& bcat, const Mrct& mrct, std::uint64_t warm_total,
    std::uint64_t cold_total, std::uint32_t max_index_bits);

// The paper's final output: for each depth the smallest associativity whose
// non-cold miss count is <= k (one DesignPoint per depth).
std::vector<DesignPoint> OptimalSet(
    const std::vector<cache::StackProfile>& profiles, std::uint64_t k);

}  // namespace ces::analytic
