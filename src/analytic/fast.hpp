// Fused prelude/postlude engine (paper section 2.4).
//
// The paper notes that a real implementation combines Algorithms 1 and 3:
// the BCAT is traversed depth-first without ever being materialised, which
// drops the space complexity from exponential in the tree depth to linear in
// the trace. This engine does exactly that. At each implicit tree node it
// scans the node's subsequence of the trace once with a move-to-front stack,
// recording the per-set LRU stack distance of every non-cold occurrence
// (= |S n C| of the explicit formulation) into the per-level histogram, then
// splits the subsequence on the next index bit and recurses.
//
// The result is the same vector of per-depth miss histograms the reference
// engine produces, from which the optimal (D, A) set for ANY miss budget K
// follows in O(levels * max distance) — an "all K" capability the explicit
// engine shares but at far higher cost.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/stack.hpp"
#include "trace/strip.hpp"

namespace ces::analytic {

// Histograms for depths 2^0 .. 2^max_index_bits, identical (including the
// distance-0 bucket and cold counts) to cache::ComputeAllDepthProfiles and
// to the reference ComputeMissProfiles.
std::vector<cache::StackProfile> ComputeMissProfilesFused(
    const trace::StrippedTrace& stripped, std::uint32_t max_index_bits);

// Same traversal with the per-node scan done by the Bennett-Kruskal Fenwick
// algorithm (O(n log n) per node) instead of the move-to-front stack
// (O(n * stack depth)). Wins when reuse distances are long; the ablation
// bench quantifies the crossover. Results are bit-identical.
std::vector<cache::StackProfile> ComputeMissProfilesFusedTree(
    const trace::StrippedTrace& stripped, std::uint32_t max_index_bits);

}  // namespace ces::analytic
