// Fused prelude/postlude engine (paper section 2.4).
//
// The paper notes that a real implementation combines Algorithms 1 and 3:
// the BCAT is traversed depth-first without ever being materialised, which
// drops the space complexity from exponential in the tree depth to linear in
// the trace. This engine does exactly that — and does it iteratively and
// allocation-free. The bit-split of Algorithm 1 is a stable binary radix
// partition: each implicit tree node owns a contiguous segment of a shared
// reference buffer, scans it once (move-to-front stack or Bennett-Kruskal
// Fenwick tree) to record the per-set LRU stack distance of every non-cold
// occurrence into the per-level histogram, then partitions the segment in
// place into a ping-pong twin buffer so both children are again contiguous
// subranges. All scratch — the two id buffers, the explicit DFS stack, the
// scan state, and every histogram (pre-sized from per-level residue-class
// population bounds) — is allocated before the first node scan; the
// traversal itself performs zero heap allocations, which
// tests/fused_alloc_test.cpp pins down.
//
// With a thread pool the traversal is *subtree-parallel*: the top of the
// tree is partitioned serially down to a cut level L ~ log2(jobs *
// overpartition), and the surviving level-L subtrees — whose segments are
// disjoint — are fanned out as contiguous, length-balanced runs, one per
// pool chunk, each tallying into a private partial histogram. Partials are
// merged in subtree order, so profiles are byte-identical to the serial
// traversal for every jobs value (docs/PARALLEL.md has the argument).
//
// The per-element hot loops — the split-bit count, the stable radix
// partition, and the SoA address-lane fill that lets both stream instead of
// gathering — run through the runtime-dispatched kernels of
// support/simd.hpp (scalar or AVX2, CES_SIMD/--simd override, docs/SIMD.md).
// Kernel selection never changes a byte of the output: the forced-path
// differential sweep in tests/simd_dispatch_test.cpp pins scalar-vs-AVX2
// identity of profiles and deterministic metrics across 100 traces at
// jobs 1/2/8 for both scan variants.
//
// The result is the same vector of per-depth miss histograms the reference
// engine produces, from which the optimal (D, A) set for ANY miss budget K
// follows in O(levels * max distance) — an "all K" capability the explicit
// engine shares but at far higher cost.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cache/stack.hpp"
#include "trace/strip.hpp"

namespace ces::support {
class MetricsRegistry;
class ThreadPool;
}  // namespace ces::support

namespace ces::analytic {

struct FusedPreludeOptions {
  // Worker pool for the subtree fan-out. Null (or a one-job pool) selects
  // the single-threaded whole-tree traversal; the histograms are
  // byte-identical either way.
  support::ThreadPool* pool = nullptr;
  // When provided, records the deterministic work counters
  // "explore.fused_nodes" (BCAT nodes scanned) and "explore.fused_refs"
  // (references scanned across all node subsequences — the fused engine's
  // honest total, <= (levels+1) * N and strictly less whenever subtrees
  // prune), plus the volatile gauges "explore.cut_level" (the chosen cut
  // depends on the pool size) and "explore.simd_kernel" (the
  // support::simd::Level that ran — host-dependent); both are excluded from
  // the deterministic metrics surface.
  support::MetricsRegistry* metrics = nullptr;
  // Target number of subtrees per worker at the cut level. Larger values
  // partition more of the tree serially but balance skewed subtree sizes
  // better; 4 is a good default (see docs/PARALLEL.md).
  std::uint32_t overpartition = 4;
  // Test/bench hook: invoked exactly once, after every scratch buffer has
  // been allocated and before the first node scan. Code running after the
  // hook performs no heap allocation on the serial path (the pool dispatch
  // itself may allocate O(1) per batch); the allocation-counting test and
  // micro_prelude's allocation counter measure from this point.
  std::function<void()> after_setup;
};

// Histograms for depths 2^0 .. 2^max_index_bits, identical (including the
// distance-0 bucket and cold counts) to cache::ComputeAllDepthProfiles and
// to the reference ComputeMissProfiles, for every pool size.
std::vector<cache::StackProfile> ComputeMissProfilesFused(
    const trace::StrippedTrace& stripped, std::uint32_t max_index_bits,
    const FusedPreludeOptions& options = {});

// Same traversal with the per-node scan done by the Bennett-Kruskal Fenwick
// algorithm (O(n log n) per node) instead of the move-to-front stack
// (O(n * stack depth)). Wins when reuse distances are long; the ablation
// bench quantifies the crossover. Results are bit-identical.
std::vector<cache::StackProfile> ComputeMissProfilesFusedTree(
    const trace::StrippedTrace& stripped, std::uint32_t max_index_bits,
    const FusedPreludeOptions& options = {});

}  // namespace ces::analytic
