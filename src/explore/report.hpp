// Paper-style result rendering.
//
// Tables 7-30 of the paper have one row per cache depth and one column per
// miss budget (5/10/15/20% of the max miss count); the cell is the minimum
// associativity. These helpers render that layout (plus the trace-statistics
// and run-time tables) from exploration results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytic/explorer.hpp"
#include "explore/joint.hpp"
#include "trace/strip.hpp"

namespace ces::explore {

// The paper's four budgets, as fractions of the max miss count.
inline constexpr double kPaperFractions[] = {0.05, 0.10, 0.15, 0.20};

// One benchmark's optimal-instance table (Tables 7-30): columns{f} holds the
// per-depth result for miss budget fraction f.
struct OptimalTable {
  std::string benchmark;
  std::string kind;                        // "data" or "instruction"
  std::vector<double> fractions;           // column headers
  std::vector<std::uint64_t> budgets;      // absolute K per column
  std::vector<std::uint32_t> depths;       // row headers
  // assoc[row][col]; rows follow `depths`, columns follow `fractions`.
  std::vector<std::vector<std::uint32_t>> assoc;
};

// Builds the table from one pre-analysed explorer (one prelude, four solves).
OptimalTable BuildOptimalTable(const std::string& benchmark,
                               const std::string& kind,
                               const analytic::Explorer& explorer,
                               const std::vector<double>& fractions = {
                                   0.05, 0.10, 0.15, 0.20});

std::string RenderOptimalTable(const OptimalTable& table);

// Tables 5-6 row: benchmark, N, N', max misses.
std::string RenderStatsTable(
    const std::vector<std::pair<std::string, trace::TraceStats>>& rows,
    const std::string& kind);

// Machine-readable exports for downstream tooling (spreadsheets, plotting):
// header row + one line per depth. RFC-4180-plain (no quoting needed: all
// cells are identifiers or numbers).
std::string OptimalTableToCsv(const OptimalTable& table);
std::string PointsToCsv(const std::vector<analytic::DesignPoint>& points);

// --- joint L1I x L1D x L2 fronts (explore/joint.hpp) ---
//
// All JSON emitters write every key in a FIXED explicit order (no map
// iteration), so reports are byte-identical across engines and --jobs values;
// doubles use the same %.17g round-trip format as the service protocol.

// One configuration as {"key":...,"l1i":{...},"l1d":{...},"l2":{...}} with
// per-level {"depth","assoc","line_words","policy"}.
std::string JointConfigJson(const cache::HierarchyConfig& config);

// One front member: {"config":...,"metrics":{...}} with metrics keys in
// declaration order (l1i_misses .. energy_nj).
std::string JointPointJson(const JointPoint& point);

// Whole-run report: {"schema":"ces-joint-v1","space":...,"counts":...,
// "front":[...]}. Deterministic — wall-clock seconds are excluded unless
// include_volatile is set.
std::string JointReportJson(const JointResult& result,
                            const JointSpace& space,
                            bool include_volatile = false);

// Human-readable front table plus the exploration counters, including the
// "pruning win" line bench/table_joint_dse and CI assert on.
std::string RenderJointFront(const JointResult& result);

// header + one row per front member (plain RFC-4180, no quoting needed).
std::string JointFrontCsv(const std::vector<JointPoint>& points);

}  // namespace ces::explore
