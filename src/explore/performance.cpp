#include "explore/performance.hpp"

namespace ces::explore {

PerformanceEstimate EstimatePerformance(std::uint64_t instructions,
                                        std::uint64_t instruction_misses,
                                        std::uint64_t data_accesses,
                                        std::uint64_t data_misses,
                                        const PerformanceParams& params) {
  PerformanceEstimate estimate;
  if (instructions == 0) return estimate;
  const double fetch_cycles =
      params.hit_cycles * static_cast<double>(instructions) +
      params.miss_penalty_cycles * static_cast<double>(instruction_misses);
  // Data accesses overlap the fetch pipeline on hits; only misses stall.
  const double data_cycles =
      params.miss_penalty_cycles * static_cast<double>(data_misses);
  (void)data_accesses;
  estimate.cycles = fetch_cycles + data_cycles;
  estimate.cpi = estimate.cycles / static_cast<double>(instructions);
  estimate.seconds = estimate.cycles / (params.clock_mhz * 1e6);
  return estimate;
}

}  // namespace ces::explore
