#include "explore/pareto.hpp"

#include <algorithm>

namespace ces::explore {

std::vector<analytic::DesignPoint> ParetoFront(
    std::vector<analytic::DesignPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const analytic::DesignPoint& a, const analytic::DesignPoint& b) {
              if (a.size_words() != b.size_words()) {
                return a.size_words() < b.size_words();
              }
              return a.warm_misses < b.warm_misses;
            });
  std::vector<analytic::DesignPoint> front;
  std::uint64_t best_misses = ~std::uint64_t{0};
  for (const analytic::DesignPoint& point : points) {
    if (point.warm_misses < best_misses) {
      front.push_back(point);
      best_misses = point.warm_misses;
    }
  }
  return front;
}

std::vector<EnergyRankedPoint> RankByEnergy(
    const std::vector<analytic::DesignPoint>& points,
    std::uint64_t trace_length, std::uint64_t cold_misses,
    double miss_penalty_nj) {
  std::vector<EnergyRankedPoint> ranked;
  ranked.reserve(points.size());
  for (const analytic::DesignPoint& point : points) {
    cache::CacheConfig config;
    config.depth = point.depth;
    config.assoc = point.assoc;
    EnergyRankedPoint entry;
    entry.point = point;
    entry.estimate = cache::EstimateEnergy(config);
    entry.total_energy_nj =
        cache::TotalEnergyNj(entry.estimate, trace_length,
                             point.warm_misses + cold_misses, miss_penalty_nj);
    ranked.push_back(entry);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const EnergyRankedPoint& a, const EnergyRankedPoint& b) {
              return a.total_energy_nj < b.total_energy_nj;
            });
  return ranked;
}

bool Dominates(const Objectives& a, const Objectives& b) {
  if (a.misses > b.misses || a.amat_ns > b.amat_ns ||
      a.energy_nj > b.energy_nj) {
    return false;
  }
  return a.misses < b.misses || a.amat_ns < b.amat_ns ||
         a.energy_nj < b.energy_nj;
}

std::vector<std::size_t> ParetoIndices(const std::vector<Objectives>& points) {
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      dominated = j != i && Dominates(points[j], points[i]);
    }
    if (!dominated) keep.push_back(i);
  }
  return keep;
}

}  // namespace ces::explore
