#include "explore/strategy.hpp"

#include <algorithm>

#include "analytic/explorer.hpp"
#include "cache/sim.hpp"
#include "cache/stack.hpp"
#include "support/pool.hpp"
#include "support/timer.hpp"
#include "trace/strip.hpp"

namespace ces::explore {
namespace {

std::uint32_t CappedMaxBits(const trace::Trace& trace,
                            std::uint32_t max_index_bits) {
  return std::min(max_index_bits,
                  trace::SignificantAddressBits(trace::Strip(trace)));
}

// Runs `body(bits)` for every depth 2^0..2^max_bits, serially for jobs == 1
// and on a pool otherwise. Each depth writes result.points[bits] and its
// refs[bits] cost slot; summing refs in depth order afterwards makes the
// accounting independent of the worker count.
template <typename Body>
void ForEachDepth(std::uint32_t max_bits, std::uint32_t jobs,
                  StrategyResult& result, std::vector<std::uint64_t>& refs,
                  Body body) {
  const std::size_t levels = max_bits + 1;
  result.points.resize(levels);
  refs.assign(levels, 0);
  support::ThreadPool pool(jobs);
  pool.ParallelFor(levels,
                   [&](std::size_t bits) { body(static_cast<std::uint32_t>(bits)); });
  for (std::uint64_t r : refs) result.simulated_references += r;
}

}  // namespace

StrategyResult ExhaustiveSimulationStrategy::Explore(
    const trace::Trace& trace, std::uint64_t k, std::uint32_t max_index_bits,
    std::uint32_t jobs) const {
  Stopwatch watch;
  StrategyResult result;
  const std::uint32_t max_bits = CappedMaxBits(trace, max_index_bits);
  std::vector<std::uint64_t> refs;
  ForEachDepth(max_bits, jobs, result, refs, [&](std::uint32_t bits) {
    const std::uint32_t depth = 1u << bits;
    analytic::DesignPoint point;
    point.depth = depth;
    for (std::uint32_t assoc = 1;; ++assoc) {
      const std::uint64_t misses = cache::WarmMisses(trace, depth, assoc);
      refs[bits] += trace.size();
      if (misses <= k) {
        point.assoc = assoc;
        point.warm_misses = misses;
        break;
      }
    }
    result.points[bits] = point;
  });
  result.seconds = watch.ElapsedSeconds();
  return result;
}

StrategyResult IterativeSimulationStrategy::Explore(
    const trace::Trace& trace, std::uint64_t k, std::uint32_t max_index_bits,
    std::uint32_t jobs) const {
  Stopwatch watch;
  StrategyResult result;
  const std::uint32_t max_bits = CappedMaxBits(trace, max_index_bits);
  std::vector<std::uint64_t> refs;
  ForEachDepth(max_bits, jobs, result, refs, [&](std::uint32_t bits) {
    const std::uint32_t depth = 1u << bits;

    // Exponential probe to bracket a feasible associativity, then binary
    // search for the smallest one — each probe is one full simulation.
    std::uint32_t hi = 1;
    std::uint64_t hi_misses;
    for (;;) {
      hi_misses = cache::WarmMisses(trace, depth, hi);
      refs[bits] += trace.size();
      if (hi_misses <= k) break;
      hi *= 2;
    }
    std::uint32_t lo = hi / 2;  // infeasible (or 0 when hi == 1)
    std::uint32_t best = hi;
    std::uint64_t best_misses = hi_misses;
    while (lo + 1 < best) {
      const std::uint32_t mid = lo + (best - lo) / 2;
      const std::uint64_t misses = cache::WarmMisses(trace, depth, mid);
      refs[bits] += trace.size();
      if (misses <= k) {
        best = mid;
        best_misses = misses;
      } else {
        lo = mid;
      }
    }

    analytic::DesignPoint point;
    point.depth = depth;
    point.assoc = best;
    point.warm_misses = best_misses;
    result.points[bits] = point;
  });
  result.seconds = watch.ElapsedSeconds();
  return result;
}

StrategyResult OnePassStackStrategy::Explore(const trace::Trace& trace,
                                             std::uint64_t k,
                                             std::uint32_t max_index_bits,
                                             std::uint32_t jobs) const {
  Stopwatch watch;
  StrategyResult result;
  const trace::StrippedTrace stripped = trace::Strip(trace);
  const std::uint32_t max_bits =
      std::min(max_index_bits, trace::SignificantAddressBits(stripped));
  std::vector<std::uint64_t> refs;
  ForEachDepth(max_bits, jobs, result, refs, [&](std::uint32_t bits) {
    const cache::StackProfile profile =
        cache::ComputeStackProfile(stripped, bits);
    refs[bits] += trace.size();
    analytic::DesignPoint point;
    point.depth = profile.depth();
    point.assoc = profile.MinAssocFor(k);
    point.warm_misses = profile.MissesAtAssoc(point.assoc);
    result.points[bits] = point;
  });
  result.seconds = watch.ElapsedSeconds();
  return result;
}

StrategyResult AnalyticalStrategy::Explore(const trace::Trace& trace,
                                           std::uint64_t k,
                                           std::uint32_t max_index_bits,
                                           std::uint32_t jobs) const {
  Stopwatch watch;
  analytic::ExplorerOptions options;
  options.engine = use_reference_engine_ ? analytic::Engine::kReference
                                         : analytic::Engine::kFused;
  options.max_index_bits = max_index_bits;
  options.jobs = jobs;
  const analytic::ExplorationResult solved =
      analytic::Explore(trace, k, options);
  StrategyResult result;
  result.points = solved.points;
  result.seconds = watch.ElapsedSeconds();
  return result;
}

std::vector<std::unique_ptr<Strategy>> AllStrategies() {
  std::vector<std::unique_ptr<Strategy>> strategies;
  strategies.push_back(std::make_unique<ExhaustiveSimulationStrategy>());
  strategies.push_back(std::make_unique<IterativeSimulationStrategy>());
  strategies.push_back(std::make_unique<OnePassStackStrategy>());
  strategies.push_back(std::make_unique<AnalyticalStrategy>());
  return strategies;
}

}  // namespace ces::explore
