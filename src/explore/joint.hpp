// Joint L1I x L1D x L2 design-space exploration (extension; ROADMAP item 4).
//
// The paper explores a single (depth, assoc) LRU space analytically; this
// module lifts the same machinery to the joint three-cache hierarchy the
// embedded question actually asks about: split L1 instruction/data caches
// backed by a unified L2, each with its own size/associativity/line axes,
// scored on the three objectives an embedded designer trades off —
//
//   misses    = L1I misses + L1D misses + L2 misses      (each incl. cold)
//   amat_ns   = L1 hit time + (L2 time * L2 accesses +
//               memory time * L2 misses) / L1 accesses
//   energy_nj = per-access dynamic energy of each level (CACTI-lite) +
//               a fixed off-chip penalty per L2 miss
//
// and reduced to the Pareto front over those objectives (explore/pareto).
//
// The explorer does NOT simulate every configuration. For a fixed (L1I, L1D)
// pair the L2 reference stream is fixed — independent of the L2 geometry —
// so one fused analytical prelude over that stream yields *exact* LRU L2
// miss counts for every (depth, assoc) of the L2 axes at once. On top of
// that, two pruning layers skip provably dominated configurations before
// any simulation:
//
//  * lower-bound dominance: per-level LRU miss counts from the split-trace
//    preludes (exact for LRU L1s, cold-only for other policies) plus the
//    distinct-line floor for the L2 give a component-wise lower bound on
//    every objective; a configuration whose bound is strictly dominated by
//    an already-evaluated point cannot be on the front;
//  * Bender-style associativity thresholds: on write-free streams with LRU
//    L1s, equal per-level warm miss counts at two associativities mean the
//    miss *events* — and therefore the L2 stream — are identical, so the
//    higher-associativity pair is strictly dominated (higher access energy
//    and latency, same misses) and is skipped without simulation.
//
// Both layers preserve the front exactly: the differential oracle in
// tests/joint_oracle_test.cpp pins byte-identical fronts between the pruned
// explorer and the exhaustive reference, and the pruning decisions are made
// in a canonical serial order so fronts AND counters are identical for every
// jobs value. docs/JOINT_DSE.md states the bounds and when they are exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytic/explorer.hpp"
#include "cache/hierarchy.hpp"
#include "trace/trace.hpp"

namespace ces::support {
class MetricsRegistry;
}  // namespace ces::support

namespace ces::explore {

// One cache level's swept axes. Depths and line sizes must be powers of two
// (enforced per-configuration by ValidateJointConfig).
struct LevelAxes {
  std::vector<std::uint32_t> depths;  // sets
  std::vector<std::uint32_t> assocs;  // ways
  std::vector<std::uint32_t> lines;   // words per line
};

// The joint space: per-level axes plus one replacement policy per level
// (a policy is a design commitment, not a swept axis). L1D is write-back/
// write-allocate and L1I/L2 use the defaults, matching cache/hierarchy.
struct JointSpace {
  LevelAxes l1i;
  LevelAxes l1d;
  LevelAxes l2;
  cache::ReplacementPolicy l1i_policy = cache::ReplacementPolicy::kLru;
  cache::ReplacementPolicy l1d_policy = cache::ReplacementPolicy::kLru;
  cache::ReplacementPolicy l2_policy = cache::ReplacementPolicy::kLru;

  // The paper-example sweep: 4 x 3 L1 geometries per side over one-word-free
  // line of 4, a 3 x 3 L2 — 1296 joint configurations.
  static JointSpace Default();
  // A small space for tests and smoke runs (288 configurations, including
  // some invalid ones so derived-parameter validation is exercised).
  static JointSpace Small();

  // Total axis combinations, valid or not.
  std::uint64_t TotalConfigs() const;

  // Deterministic canonical string ("l1i=d16,32;a1,2;w4|...|pol=lru,lru,lru")
  // used for result-cache keys and reports.
  std::string Canonical() const;
};

// Space preset by wire/CLI name ("default" | "small"). Throws
// support::Error (kValidation) for unknown names.
JointSpace JointSpaceByName(const std::string& name);

// Replacement policy by CLI name ("lru" | "fifo" | "random" | "plru").
// Throws support::Error (kValidation) for unknown names.
cache::ReplacementPolicy ReplacementPolicyByName(const std::string& name);

// Derived-parameter validation (SimpleScalar-style configuration rules):
//  * every level passes CacheConfig::IsValid() (power-of-two geometry,
//    PLRU needs a power-of-two associativity),
//  * the two L1 line sizes are equal (split L1s share one refill width),
//  * the L2 line is at least as large as the L1 line,
//  * the L2 capacity is at least the summed L1 capacities (inclusive
//    hierarchies smaller than their L1s are never sensible).
bool ValidateJointConfig(const cache::HierarchyConfig& config);

// Latency model derived from the geometry via the CACTI-lite access-time
// fit: the L1 hit time is the slower of the two L1s, the L2 adds a fixed
// interconnect overhead, memory is the paper-era constant 60 ns.
cache::LatencyModel DeriveLatency(const cache::HierarchyConfig& config);

// Canonical configuration key, e.g. "i4x64x2:d4x64x2:u8x512x4" for
// (line x depth x assoc) per level. Total order over configurations; front
// output is sorted by it.
std::string JointConfigKey(const cache::HierarchyConfig& config);

struct JointMetrics {
  std::uint64_t l1i_misses = 0;      // incl. cold
  std::uint64_t l1d_misses = 0;      // incl. cold
  std::uint64_t l1d_writebacks = 0;  // dirty L1D victims sent to L2
  std::uint64_t l2_accesses = 0;     // l1i_misses + l1d_misses + writebacks
  std::uint64_t l2_misses = 0;       // incl. cold; LRU-exact, else estimate
  std::uint64_t misses = 0;          // l1i + l1d + l2
  std::uint64_t size_words = 0;      // summed capacity (report axis only)
  double amat_ns = 0.0;
  double energy_nj = 0.0;
};

struct JointPoint {
  cache::HierarchyConfig config;
  JointMetrics metrics;
};

// a dominates b: <= on all of (misses, amat_ns, energy_nj), < on at least
// one. size_words is reported but not an objective.
bool JointDominates(const JointMetrics& a, const JointMetrics& b);

// The non-dominated subset, in canonical JointConfigKey order. Invariant to
// the input order (candidates are canonically sorted before filtering).
std::vector<JointPoint> JointParetoFront(std::vector<JointPoint> points);

struct JointOptions {
  bool prune = true;
  // Worker threads for pair evaluation; 0 = hardware concurrency. Fronts and
  // every counter in JointResult are identical for every jobs value.
  std::uint32_t jobs = 1;
  // Engine for the analytical preludes (reference engine is not supported
  // here; it falls back to fused).
  analytic::Engine engine = analytic::Engine::kFused;
  // Pairs admitted per pruning wave. Pruning decisions happen only at wave
  // boundaries, in canonical order, so the wave size — not the job count —
  // defines which configurations are skipped.
  std::uint32_t wave_pairs = 8;
  // Optional counters sink; records the explore.joint_* counters documented
  // in docs/OBSERVABILITY.md (deterministic for every jobs value).
  support::MetricsRegistry* metrics = nullptr;
};

struct JointResult {
  std::vector<JointPoint> front;  // canonical order
  std::uint64_t space_configs = 0;      // all axis combinations
  std::uint64_t valid_configs = 0;      // passing ValidateJointConfig
  std::uint64_t evaluated_configs = 0;  // scored against the front
  std::uint64_t pruned_configs = 0;     // valid - evaluated
  std::uint64_t total_pairs = 0;        // valid (L1I, L1D) pairs
  std::uint64_t evaluated_pairs = 0;    // pairs actually simulated
  std::uint64_t pruned_pairs = 0;       // pairs skipped entirely
  std::uint64_t threshold_pruned_pairs = 0;  // via associativity thresholds
  std::uint64_t seed_pairs = 0;         // dimension-scan seeds
  double seconds = 0.0;                 // wall clock (volatile)
};

// Explores the joint space over the merged program-order access stream.
// With options.prune == false every valid configuration is evaluated (the
// differential oracle's exhaustive reference).
JointResult ExploreJoint(const trace::AccessSequence& accesses,
                         const JointSpace& space, JointOptions options = {});

// Scores one configuration through the same analytical path the explorer
// uses (L1s simulated functionally, L2 from the stack profile of the
// captured L2 stream). Exposed for the simulator cross-validation tests.
// Throws support::Error (kValidation) when the configuration is invalid.
JointMetrics EvaluateJointConfig(const trace::AccessSequence& accesses,
                                 const cache::HierarchyConfig& config,
                                 analytic::Engine engine =
                                     analytic::Engine::kFused);

// Deterministic proportional interleave of a split instruction/data trace
// pair: instruction i precedes data access d iff i * Nd <= d * Ni, the
// fixed-rate merge a blocking in-order fetch/execute pipe produces. All
// accesses are reads (split traces carry no write flags); the true merged
// stream from sim::RunProgram(..., keep_combined=true) can be passed to
// ExploreJoint directly instead.
trace::AccessSequence InterleaveProportional(const trace::Trace& instr,
                                             const trace::Trace& data);

}  // namespace ces::explore
