// In-order CPI / runtime estimation from cache statistics.
//
// The paper frames cache tuning as a performance problem ("eliminate the
// time overhead of fetching instruction and data words from main memory");
// this model closes the loop: given instruction and data access/miss counts,
// estimate cycles per instruction and wall-clock time for a simple in-order
// embedded core (every instruction fetches; loads/stores add a data access;
// every miss stalls for the memory penalty).
#pragma once

#include <cstdint>

namespace ces::explore {

struct PerformanceParams {
  double hit_cycles = 1.0;           // L1 hit, pipelined
  double miss_penalty_cycles = 20.0; // refill from the next level
  double clock_mhz = 200.0;
};

struct PerformanceEstimate {
  double cpi = 0.0;
  double cycles = 0.0;
  double seconds = 0.0;
};

// `instructions` is the retired count; instruction fetches == instructions
// on MR32 (no prefetch modelled).
PerformanceEstimate EstimatePerformance(std::uint64_t instructions,
                                        std::uint64_t instruction_misses,
                                        std::uint64_t data_accesses,
                                        std::uint64_t data_misses,
                                        const PerformanceParams& params = {});

}  // namespace ces::explore
