// Pareto analysis and energy-aware selection over exploration results
// (extension; the paper's future-work direction toward energy/size trade-offs).
#pragma once

#include <cstdint>
#include <vector>

#include "analytic/explorer.hpp"
#include "analytic/model.hpp"
#include "cache/energy.hpp"

namespace ces::explore {

// Filters (depth, assoc, misses) points to the Pareto front over
// (capacity in words, non-cold misses): a point survives iff no other point
// is at most as large AND has at most as many misses (with one strict).
std::vector<analytic::DesignPoint> ParetoFront(
    std::vector<analytic::DesignPoint> points);

// Among points meeting the budget (they all do, by construction), picks the
// configuration with the least total energy for the trace: per-access
// dynamic energy plus a fixed off-chip penalty per miss (cold + warm).
struct EnergyRankedPoint {
  analytic::DesignPoint point;
  cache::EnergyEstimate estimate;
  double total_energy_nj = 0.0;
};

std::vector<EnergyRankedPoint> RankByEnergy(
    const std::vector<analytic::DesignPoint>& points,
    std::uint64_t trace_length, std::uint64_t cold_misses,
    double miss_penalty_nj = 10.0);

}  // namespace ces::explore
