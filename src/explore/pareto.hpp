// Pareto analysis and energy-aware selection over exploration results
// (extension; the paper's future-work direction toward energy/size trade-offs).
#pragma once

#include <cstdint>
#include <vector>

#include "analytic/explorer.hpp"
#include "analytic/model.hpp"
#include "cache/energy.hpp"

namespace ces::explore {

// Filters (depth, assoc, misses) points to the Pareto front over
// (capacity in words, non-cold misses): a point survives iff no other point
// is at most as large AND has at most as many misses (with one strict).
std::vector<analytic::DesignPoint> ParetoFront(
    std::vector<analytic::DesignPoint> points);

// Among points meeting the budget (they all do, by construction), picks the
// configuration with the least total energy for the trace: per-access
// dynamic energy plus a fixed off-chip penalty per miss (cold + warm).
struct EnergyRankedPoint {
  analytic::DesignPoint point;
  cache::EnergyEstimate estimate;
  double total_energy_nj = 0.0;
};

std::vector<EnergyRankedPoint> RankByEnergy(
    const std::vector<analytic::DesignPoint>& points,
    std::uint64_t trace_length, std::uint64_t cold_misses,
    double miss_penalty_nj = 10.0);

// Generic objective vector for multi-metric fronts (the joint L1I/L1D/L2
// explorer scores misses, average access time and energy; see
// explore/joint.hpp). Lower is better on every axis.
struct Objectives {
  std::uint64_t misses = 0;
  double amat_ns = 0.0;
  double energy_nj = 0.0;
};

// a dominates b: <= on every objective and < on at least one. Equal vectors
// do not dominate each other, so ties survive front filtering on both sides.
bool Dominates(const Objectives& a, const Objectives& b);

// Indices of the non-dominated entries, in input order. O(n^2) pairwise —
// candidate sets here are a few thousand entries at most.
std::vector<std::size_t> ParetoIndices(const std::vector<Objectives>& points);

}  // namespace ces::explore
