#include "explore/joint.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <tuple>
#include <utility>

#include "cache/cache.hpp"
#include "cache/energy.hpp"
#include "explore/pareto.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/pool.hpp"
#include "trace/strip.hpp"

namespace ces::explore {

namespace {

using cache::CacheConfig;
using cache::HierarchyConfig;
using support::Error;
using support::ErrorCategory;

std::uint32_t BitsFor(std::uint32_t depth) {
  std::uint32_t bits = 0;
  while ((1u << bits) < depth) ++bits;
  return bits;
}

std::vector<std::uint32_t> SortedUnique(std::vector<std::uint32_t> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

LevelAxes NormalizeAxes(const LevelAxes& axes) {
  return LevelAxes{SortedUnique(axes.depths), SortedUnique(axes.assocs),
                   SortedUnique(axes.lines)};
}

JointSpace NormalizeSpace(const JointSpace& space) {
  JointSpace norm = space;
  norm.l1i = NormalizeAxes(space.l1i);
  norm.l1d = NormalizeAxes(space.l1d);
  norm.l2 = NormalizeAxes(space.l2);
  return norm;
}

// Canonical total order over configurations: per-level (line, depth, assoc)
// tuples, L1I then L1D then L2. Front output and all merge steps use it so
// results never depend on evaluation order.
auto ConfigTuple(const HierarchyConfig& c) {
  return std::make_tuple(c.l1i.line_words, c.l1i.depth, c.l1i.assoc,
                         c.l1d.line_words, c.l1d.depth, c.l1d.assoc,
                         c.l2.line_words, c.l2.depth, c.l2.assoc);
}

bool ConfigLess(const HierarchyConfig& a, const HierarchyConfig& b) {
  return ConfigTuple(a) < ConfigTuple(b);
}

// One valid (L1I, L1D) pair. The L2 axes attach per pair via `valid_l2`.
struct Pair {
  CacheConfig l1i;
  CacheConfig l1d;
};

// Relational L2 rules given an L1 pair; the absolute per-level rules live in
// CacheConfig::IsValid. Kept in sync with ValidateJointConfig.
bool L2ValidFor(const CacheConfig& l2, const Pair& pair) {
  return l2.line_words >= pair.l1i.line_words &&
         l2.size_words() >= pair.l1i.size_words() + pair.l1d.size_words();
}

// Valid pairs in canonical order (shared L1 line, then L1I depth/assoc, then
// L1D depth/assoc — matching ConfigTuple).
std::vector<Pair> EnumeratePairs(const JointSpace& space) {
  std::vector<Pair> pairs;
  for (std::uint32_t line : space.l1i.lines) {
    if (std::find(space.l1d.lines.begin(), space.l1d.lines.end(), line) ==
        space.l1d.lines.end()) {
      continue;  // split L1s share one refill width
    }
    for (std::uint32_t di : space.l1i.depths) {
      for (std::uint32_t ai : space.l1i.assocs) {
        CacheConfig l1i{di, ai, line, space.l1i_policy,
                        cache::WritePolicy::kWriteBackAllocate};
        if (!l1i.IsValid()) continue;
        for (std::uint32_t dd : space.l1d.depths) {
          for (std::uint32_t ad : space.l1d.assocs) {
            CacheConfig l1d{dd, ad, line, space.l1d_policy,
                            cache::WritePolicy::kWriteBackAllocate};
            if (!l1d.IsValid()) continue;
            pairs.push_back(Pair{l1i, l1d});
          }
        }
      }
    }
  }
  return pairs;
}

std::vector<CacheConfig> EnumerateL2(const JointSpace& space) {
  std::vector<CacheConfig> configs;
  for (std::uint32_t line : space.l2.lines) {
    for (std::uint32_t depth : space.l2.depths) {
      for (std::uint32_t assoc : space.l2.assocs) {
        CacheConfig l2{depth, assoc, line, space.l2_policy,
                       cache::WritePolicy::kWriteBackAllocate};
        if (l2.IsValid()) configs.push_back(l2);
      }
    }
  }
  return configs;
}

// LRU stack profiles of one split stream, per line size: cold (= unique
// lines, policy-independent for demand-fetch caches) plus warm misses at
// every (depth, assoc) — exact for LRU, a floor otherwise.
struct LevelProfiles {
  struct PerLine {
    std::vector<cache::StackProfile> profiles;  // index = index_bits
    std::uint32_t max_index_bits = 0;
    std::uint64_t cold = 0;
  };
  std::map<std::uint32_t, PerLine> by_line;

  std::uint64_t Warm(std::uint32_t line, std::uint32_t depth,
                     std::uint32_t assoc) const {
    const PerLine& per = by_line.at(line);
    const std::uint32_t bits = std::min(BitsFor(depth), per.max_index_bits);
    return per.profiles[bits].MissesAtAssoc(assoc);
  }

  // Lower bound on total misses: exact (cold + warm) when the level is LRU,
  // the compulsory floor otherwise.
  std::uint64_t MissesFloor(const CacheConfig& config, bool lru) const {
    const PerLine& per = by_line.at(config.line_words);
    if (!lru) return per.cold;
    return per.cold + Warm(config.line_words, config.depth, config.assoc);
  }
};

LevelProfiles::PerLine ProfileOneLine(const trace::Trace& stream,
                                      std::uint32_t line,
                                      std::uint32_t max_index_bits,
                                      analytic::Engine engine,
                                      std::uint32_t jobs) {
  LevelProfiles::PerLine per;
  if (stream.refs.empty()) {
    per.profiles.resize(1);
    return per;
  }
  analytic::ExplorerOptions options;
  options.engine = engine;
  options.line_words = line;
  options.max_index_bits = std::max(1u, max_index_bits);
  options.jobs = jobs;
  const analytic::Explorer explorer(stream, options);
  per.profiles = explorer.profiles();
  for (cache::StackProfile& profile : per.profiles) {
    profile.FinalizeSolveCache();
  }
  per.max_index_bits = explorer.max_index_bits();
  per.cold = per.profiles.empty() ? 0 : per.profiles.front().cold;
  return per;
}

LevelProfiles BuildProfiles(const trace::Trace& stream,
                            const std::vector<std::uint32_t>& lines,
                            std::uint32_t max_index_bits,
                            analytic::Engine engine, std::uint32_t jobs) {
  LevelProfiles profiles;
  for (std::uint32_t line : lines) {
    profiles.by_line.emplace(
        line, ProfileOneLine(stream, line, max_index_bits, engine, jobs));
  }
  return profiles;
}

// Everything one (L1I, L1D) simulation yields: the per-level L1 counts and,
// via one fused prelude per L2 line size over the captured L2 stream, exact
// LRU L2 miss counts for EVERY L2 (depth, assoc) at once.
struct PairOutcome {
  std::uint64_t l1i_misses = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l1d_writebacks = 0;
  std::map<std::uint32_t, LevelProfiles::PerLine> l2_by_line;
};

PairOutcome SimulatePair(const trace::AccessSequence& accesses,
                         const Pair& pair,
                         const std::vector<std::uint32_t>& l2_lines,
                         std::uint32_t l2_max_bits, analytic::Engine engine) {
  cache::Cache l1i(pair.l1i);
  cache::Cache l1d(pair.l1d);
  std::vector<std::uint32_t> l2_stream;
  l2_stream.reserve(accesses.size() / 4 + 16);
  for (const trace::Access& access : accesses) {
    cache::Cache& l1 =
        access.kind == trace::StreamKind::kInstruction ? l1i : l1d;
    cache::Eviction eviction;
    const cache::AccessOutcome outcome =
        l1.Access(access.addr, access.is_write, &eviction);
    // Same L2-stream order as cache::TwoLevelCache: refill, then the dirty
    // victim's write-back.
    if (outcome != cache::AccessOutcome::kHit) l2_stream.push_back(access.addr);
    if (eviction.valid && eviction.dirty) l2_stream.push_back(eviction.addr);
  }

  PairOutcome outcome;
  outcome.l1i_misses = l1i.stats().misses;
  outcome.l1d_misses = l1d.stats().misses;
  outcome.l1d_writebacks = l1d.stats().writebacks;
  trace::Trace stream;
  stream.refs = std::move(l2_stream);
  stream.kind = trace::StreamKind::kData;
  for (std::uint32_t line : l2_lines) {
    // jobs = 1: pair evaluations are already fanned out across the pool.
    outcome.l2_by_line.emplace(
        line, ProfileOneLine(stream, line, l2_max_bits, engine, 1));
  }
  return outcome;
}

void FinishDerived(JointMetrics& metrics, const HierarchyConfig& config,
                   std::uint64_t n_instr, std::uint64_t n_data) {
  metrics.misses =
      metrics.l1i_misses + metrics.l1d_misses + metrics.l2_misses;
  metrics.size_words = config.l1i.size_words() + config.l1d.size_words() +
                       config.l2.size_words();
  const double l1_accesses = static_cast<double>(n_instr + n_data);
  const cache::LatencyModel latency = DeriveLatency(config);
  metrics.amat_ns =
      l1_accesses == 0.0
          ? 0.0
          : latency.l1_ns +
                (latency.l2_ns * static_cast<double>(metrics.l2_accesses) +
                 latency.memory_ns * static_cast<double>(metrics.l2_misses)) /
                    l1_accesses;
  metrics.energy_nj =
      cache::EstimateEnergy(config.l1i).read_energy_nj *
          static_cast<double>(n_instr) +
      cache::EstimateEnergy(config.l1d).read_energy_nj *
          static_cast<double>(n_data) +
      cache::EstimateEnergy(config.l2).read_energy_nj *
          static_cast<double>(metrics.l2_accesses) +
      10.0 * static_cast<double>(metrics.l2_misses);
}

JointMetrics ScoreConfig(const PairOutcome& outcome,
                         const HierarchyConfig& config, std::uint64_t n_instr,
                         std::uint64_t n_data) {
  JointMetrics metrics;
  metrics.l1i_misses = outcome.l1i_misses;
  metrics.l1d_misses = outcome.l1d_misses;
  metrics.l1d_writebacks = outcome.l1d_writebacks;
  metrics.l2_accesses =
      outcome.l1i_misses + outcome.l1d_misses + outcome.l1d_writebacks;
  const LevelProfiles::PerLine& per =
      outcome.l2_by_line.at(config.l2.line_words);
  const std::uint32_t bits =
      std::min(config.l2.index_bits(), per.max_index_bits);
  metrics.l2_misses = per.cold + per.profiles[bits].MissesAtAssoc(
                                     config.l2.assoc);
  FinishDerived(metrics, config, n_instr, n_data);
  return metrics;
}

Objectives ToObjectives(const JointMetrics& metrics) {
  return Objectives{metrics.misses, metrics.amat_ns, metrics.energy_nj};
}

}  // namespace

JointSpace JointSpace::Default() {
  JointSpace space;
  space.l1i = LevelAxes{{16, 32, 64, 128}, {1, 2, 4}, {4}};
  space.l1d = LevelAxes{{16, 32, 64, 128}, {1, 2, 4}, {4}};
  space.l2 = LevelAxes{{256, 512, 1024}, {2, 4, 8}, {8}};
  return space;
}

JointSpace JointSpace::Small() {
  JointSpace space;
  space.l1i = LevelAxes{{2, 4, 8}, {1, 2}, {1}};
  space.l1d = LevelAxes{{2, 4, 8}, {1, 2}, {1}};
  space.l2 = LevelAxes{{16, 32}, {1, 2}, {1, 2}};
  return space;
}

std::uint64_t JointSpace::TotalConfigs() const {
  const JointSpace norm = NormalizeSpace(*this);
  const auto axis = [](const LevelAxes& a) {
    return static_cast<std::uint64_t>(a.depths.size()) * a.assocs.size() *
           a.lines.size();
  };
  return axis(norm.l1i) * axis(norm.l1d) * axis(norm.l2);
}

std::string JointSpace::Canonical() const {
  const JointSpace norm = NormalizeSpace(*this);
  const auto join = [](const std::vector<std::uint32_t>& values) {
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(values[i]);
    }
    return out;
  };
  const auto axes = [&](const char* name, const LevelAxes& a) {
    return std::string(name) + "=d" + join(a.depths) + ";a" + join(a.assocs) +
           ";w" + join(a.lines);
  };
  return axes("l1i", norm.l1i) + "|" + axes("l1d", norm.l1d) + "|" +
         axes("l2", norm.l2) + "|pol=" + cache::ToString(l1i_policy) + "," +
         cache::ToString(l1d_policy) + "," + cache::ToString(l2_policy);
}

JointSpace JointSpaceByName(const std::string& name) {
  if (name == "default") return JointSpace::Default();
  if (name == "small") return JointSpace::Small();
  throw Error(ErrorCategory::kValidation, "joint",
              "unknown joint space '" + name + "' (expected default|small)");
}

cache::ReplacementPolicy ReplacementPolicyByName(const std::string& name) {
  if (name == "lru") return cache::ReplacementPolicy::kLru;
  if (name == "fifo") return cache::ReplacementPolicy::kFifo;
  if (name == "random") return cache::ReplacementPolicy::kRandom;
  if (name == "plru") return cache::ReplacementPolicy::kPlru;
  throw Error(ErrorCategory::kValidation, "joint",
              "unknown replacement policy '" + name +
                  "' (expected lru|fifo|random|plru)");
}

bool ValidateJointConfig(const HierarchyConfig& config) {
  if (!config.l1i.IsValid() || !config.l1d.IsValid() || !config.l2.IsValid()) {
    return false;
  }
  if (config.l1i.line_words != config.l1d.line_words) return false;
  return L2ValidFor(config.l2, Pair{config.l1i, config.l1d});
}

cache::LatencyModel DeriveLatency(const HierarchyConfig& config) {
  const auto time_ns = [](const CacheConfig& c) {
    return cache::EstimateEnergy(c).access_time_ns;
  };
  cache::LatencyModel latency;
  latency.l1_ns = std::max(time_ns(config.l1i), time_ns(config.l1d));
  latency.l2_ns = 4.0 + time_ns(config.l2);  // fixed interconnect overhead
  latency.memory_ns = 60.0;
  return latency;
}

std::string JointConfigKey(const HierarchyConfig& config) {
  const auto level = [](char tag, const CacheConfig& c) {
    return std::string(1, tag) + std::to_string(c.line_words) + "x" +
           std::to_string(c.depth) + "x" + std::to_string(c.assoc);
  };
  return level('i', config.l1i) + ":" + level('d', config.l1d) + ":" +
         level('u', config.l2);
}

bool JointDominates(const JointMetrics& a, const JointMetrics& b) {
  return Dominates(ToObjectives(a), ToObjectives(b));
}

std::vector<JointPoint> JointParetoFront(std::vector<JointPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const JointPoint& a, const JointPoint& b) {
              return ConfigLess(a.config, b.config);
            });
  std::vector<Objectives> objectives;
  objectives.reserve(points.size());
  for (const JointPoint& point : points) {
    objectives.push_back(ToObjectives(point.metrics));
  }
  std::vector<JointPoint> front;
  for (std::size_t index : ParetoIndices(objectives)) {
    front.push_back(points[index]);
  }
  return front;
}

trace::AccessSequence InterleaveProportional(const trace::Trace& instr,
                                             const trace::Trace& data) {
  trace::AccessSequence merged;
  const std::uint64_t ni = instr.refs.size();
  const std::uint64_t nd = data.refs.size();
  merged.reserve(ni + nd);
  std::uint64_t i = 0;
  std::uint64_t d = 0;
  while (i < ni || d < nd) {
    bool take_instr;
    if (i >= ni) {
      take_instr = false;
    } else if (d >= nd) {
      take_instr = true;
    } else {
      take_instr = i * nd <= d * ni;
    }
    if (take_instr) {
      merged.push_back(trace::Access{instr.refs[i++],
                                     trace::StreamKind::kInstruction, false});
    } else {
      merged.push_back(
          trace::Access{data.refs[d++], trace::StreamKind::kData, false});
    }
  }
  return merged;
}

JointMetrics EvaluateJointConfig(const trace::AccessSequence& accesses,
                                 const HierarchyConfig& config,
                                 analytic::Engine engine) {
  if (!ValidateJointConfig(config)) {
    throw Error(ErrorCategory::kValidation, "joint",
                "invalid joint configuration " + JointConfigKey(config));
  }
  if (engine == analytic::Engine::kReference) {
    engine = analytic::Engine::kFused;
  }
  std::uint64_t n_instr = 0;
  for (const trace::Access& access : accesses) {
    if (access.kind == trace::StreamKind::kInstruction) ++n_instr;
  }
  const Pair pair{config.l1i, config.l1d};
  const PairOutcome outcome =
      SimulatePair(accesses, pair, {config.l2.line_words},
                   config.l2.index_bits(), engine);
  return ScoreConfig(outcome, config, n_instr, accesses.size() - n_instr);
}

namespace {

// Dimension-ordering seed scan (SimpleScalar-style): walk one axis at a
// time — shared L1 line, L1I depth, L1I assoc, L1D depth, L1D assoc — from a
// smallest-value base, visiting every value of the active axis while the
// others stay put, then lock the active axis at the profile-estimated best
// (ties to the smallest value) before scanning the next. Every visited pair
// is a seed, so the incumbent front spans each axis's extremes before wave
// pruning starts.
std::vector<std::size_t> SeedPairIndices(
    const JointSpace& space, const std::vector<Pair>& pairs,
    const LevelProfiles& instr_profiles, const LevelProfiles& data_profiles) {
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                      std::uint32_t, std::uint32_t>,
           std::size_t>
      index;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    index.emplace(std::make_tuple(pairs[i].l1i.line_words, pairs[i].l1i.depth,
                                  pairs[i].l1i.assoc, pairs[i].l1d.depth,
                                  pairs[i].l1d.assoc),
                  i);
  }

  std::vector<std::uint32_t> shared_lines;
  for (std::uint32_t line : space.l1i.lines) {
    if (std::find(space.l1d.lines.begin(), space.l1d.lines.end(), line) !=
        space.l1d.lines.end()) {
      shared_lines.push_back(line);
    }
  }
  if (shared_lines.empty()) return {};

  const bool l1i_lru = space.l1i_policy == cache::ReplacementPolicy::kLru;
  const bool l1d_lru = space.l1d_policy == cache::ReplacementPolicy::kLru;
  const auto score = [&](const Pair& pair) {
    return instr_profiles.MissesFloor(pair.l1i, l1i_lru) +
           data_profiles.MissesFloor(pair.l1d, l1d_lru);
  };

  // cursor = (line, l1i depth, l1i assoc, l1d depth, l1d assoc)
  std::uint32_t cursor[5] = {shared_lines[0], space.l1i.depths[0],
                             space.l1i.assocs[0], space.l1d.depths[0],
                             space.l1d.assocs[0]};
  const std::vector<std::uint32_t>* axes[5] = {
      &shared_lines, &space.l1i.depths, &space.l1i.assocs, &space.l1d.depths,
      &space.l1d.assocs};

  std::vector<std::size_t> seeds;
  for (std::size_t dim = 0; dim < 5; ++dim) {
    std::uint32_t best_value = cursor[dim];
    std::uint64_t best_score = ~std::uint64_t{0};
    for (std::uint32_t value : *axes[dim]) {
      std::uint32_t candidate[5];
      std::copy(cursor, cursor + 5, candidate);
      candidate[dim] = value;
      const auto it = index.find(std::make_tuple(candidate[0], candidate[1],
                                                 candidate[2], candidate[3],
                                                 candidate[4]));
      if (it == index.end()) continue;  // axis value forms no valid pair
      seeds.push_back(it->second);
      const std::uint64_t s = score(pairs[it->second]);
      if (s < best_score) {  // ties keep the first (smallest) value
        best_score = s;
        best_value = value;
      }
    }
    cursor[dim] = best_value;
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  return seeds;
}

}  // namespace

JointResult ExploreJoint(const trace::AccessSequence& accesses,
                         const JointSpace& raw_space, JointOptions options) {
  const auto started = std::chrono::steady_clock::now();
  const JointSpace space = NormalizeSpace(raw_space);
  const std::uint32_t jobs =
      options.jobs == 0 ? support::HardwareConcurrency() : options.jobs;
  const analytic::Engine engine = options.engine == analytic::Engine::kReference
                                      ? analytic::Engine::kFused
                                      : options.engine;
  const std::uint32_t wave_pairs = std::max(1u, options.wave_pairs);

  JointResult result;
  result.space_configs = space.TotalConfigs();

  std::vector<Pair> pairs = EnumeratePairs(space);
  const std::vector<CacheConfig> l2s = EnumerateL2(space);

  // Per-pair valid L2 configurations; pairs with none contribute nothing and
  // are dropped outright.
  std::vector<std::vector<std::uint32_t>> valid_l2;
  {
    std::vector<Pair> kept;
    for (const Pair& pair : pairs) {
      std::vector<std::uint32_t> valid;
      for (std::uint32_t j = 0; j < l2s.size(); ++j) {
        if (L2ValidFor(l2s[j], pair)) valid.push_back(j);
      }
      if (valid.empty()) continue;
      kept.push_back(pair);
      valid_l2.push_back(std::move(valid));
      result.valid_configs += valid_l2.back().size();
    }
    pairs = std::move(kept);
  }
  result.total_pairs = pairs.size();

  const auto record = [&]() {
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    support::MetricsRegistry* m = options.metrics;
    support::MetricsRegistry::Add(m, "explore.joint_space",
                                  result.space_configs);
    support::MetricsRegistry::Add(m, "explore.joint_valid",
                                  result.valid_configs);
    support::MetricsRegistry::Add(m, "explore.joint_evaluated",
                                  result.evaluated_configs);
    support::MetricsRegistry::Add(m, "explore.joint_pruned",
                                  result.pruned_configs);
    support::MetricsRegistry::Add(m, "explore.joint_pairs",
                                  result.total_pairs);
    support::MetricsRegistry::Add(m, "explore.joint_pairs_evaluated",
                                  result.evaluated_pairs);
    support::MetricsRegistry::Add(m, "explore.joint_pairs_pruned",
                                  result.pruned_pairs);
    support::MetricsRegistry::Add(m, "explore.joint_pairs_threshold",
                                  result.threshold_pruned_pairs);
    support::MetricsRegistry::Add(m, "explore.joint_seeds",
                                  result.seed_pairs);
    support::MetricsRegistry::Add(m, "explore.joint_front",
                                  result.front.size());
    support::MetricsRegistry::Observe(m, "explore.joint", result.seconds);
  };

  if (pairs.empty()) {
    record();
    return result;
  }

  std::uint64_t n_instr = 0;
  for (const trace::Access& access : accesses) {
    if (access.kind == trace::StreamKind::kInstruction) ++n_instr;
  }
  const std::uint64_t n_data = accesses.size() - n_instr;

  std::uint32_t l2_max_bits = 0;
  for (std::uint32_t depth : space.l2.depths) {
    l2_max_bits = std::max(l2_max_bits, BitsFor(depth));
  }

  support::ThreadPool pool(jobs, options.metrics);

  // Evaluates pairs[indices[s]] against its surviving L2 configurations.
  // Output slots are pre-sized and merged in index order, so the resulting
  // point list is identical for every jobs value.
  const auto evaluate = [&](const std::vector<std::size_t>& indices,
                            const std::vector<std::vector<std::uint32_t>>&
                                surviving) {
    std::vector<std::vector<JointPoint>> slots(indices.size());
    pool.ParallelFor(indices.size(), [&](std::size_t s) {
      const Pair& pair = pairs[indices[s]];
      const PairOutcome outcome =
          SimulatePair(accesses, pair, space.l2.lines, l2_max_bits, engine);
      slots[s].reserve(surviving[s].size());
      for (std::uint32_t j : surviving[s]) {
        const HierarchyConfig config{pair.l1i, pair.l1d, l2s[j]};
        slots[s].push_back(
            JointPoint{config, ScoreConfig(outcome, config, n_instr, n_data)});
      }
    });
    std::vector<JointPoint> points;
    for (std::vector<JointPoint>& slot : slots) {
      points.insert(points.end(), slot.begin(), slot.end());
    }
    return points;
  };

  if (!options.prune) {
    std::vector<std::size_t> all(pairs.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    result.front = JointParetoFront(evaluate(all, valid_l2));
    result.evaluated_pairs = pairs.size();
    result.evaluated_configs = result.valid_configs;
    record();
    return result;
  }

  // --- pruned exploration ---

  // Split-stream LRU profiles: lower bounds for every L1 geometry (exact for
  // LRU), shared by the seed heuristic, the associativity-threshold rule and
  // the per-configuration bound.
  trace::Trace instr_stream;
  instr_stream.kind = trace::StreamKind::kInstruction;
  trace::Trace data_stream;
  data_stream.kind = trace::StreamKind::kData;
  trace::Trace merged_stream;
  for (const trace::Access& access : accesses) {
    merged_stream.refs.push_back(access.addr);
    if (access.kind == trace::StreamKind::kInstruction) {
      instr_stream.refs.push_back(access.addr);
    } else {
      data_stream.refs.push_back(access.addr);
    }
  }
  std::vector<std::uint32_t> l1_lines;
  for (const Pair& pair : pairs) l1_lines.push_back(pair.l1i.line_words);
  l1_lines = SortedUnique(l1_lines);
  std::uint32_t l1_max_bits = 0;
  for (std::uint32_t depth : space.l1i.depths) {
    l1_max_bits = std::max(l1_max_bits, BitsFor(depth));
  }
  for (std::uint32_t depth : space.l1d.depths) {
    l1_max_bits = std::max(l1_max_bits, BitsFor(depth));
  }
  const LevelProfiles instr_profiles =
      BuildProfiles(instr_stream, l1_lines, l1_max_bits, engine, jobs);
  const LevelProfiles data_profiles =
      BuildProfiles(data_stream, l1_lines, l1_max_bits, engine, jobs);

  // Compulsory floor for the L2: every distinct L2 line of the merged stream
  // reaches the L2 at least once (its first touch misses every level), for
  // any replacement policy and any L1 pair.
  std::map<std::uint32_t, std::uint64_t> distinct_l2;
  for (std::uint32_t line : space.l2.lines) {
    distinct_l2.emplace(
        line,
        trace::ComputeStats(trace::WithLineSize(merged_stream, line)).n_unique);
  }

  const bool l1i_lru = space.l1i_policy == cache::ReplacementPolicy::kLru;
  const bool l1d_lru = space.l1d_policy == cache::ReplacementPolicy::kLru;
  bool has_writes = false;
  for (const trace::Access& access : accesses) {
    if (access.is_write) {
      has_writes = true;
      break;
    }
  }
  // Associativity-threshold rule (Bender-style): only sound when equal warm
  // miss counts imply identical miss events AND identical L2 streams — LRU
  // L1s and no write-backs anywhere (a write-free stream).
  const bool threshold_ok = l1i_lru && l1d_lru && !has_writes;

  // Component-wise lower bound on the objectives of (pair, l2): exact L1
  // terms (LRU) or compulsory floors, zero write-backs, compulsory L2 floor.
  // Every objective is monotone in the bounded counts, so an evaluated point
  // that strictly dominates this bound dominates the true metrics too.
  const auto lower_bound = [&](const Pair& pair, const CacheConfig& l2) {
    JointMetrics bound;
    bound.l1i_misses = instr_profiles.MissesFloor(pair.l1i, l1i_lru);
    bound.l1d_misses = data_profiles.MissesFloor(pair.l1d, l1d_lru);
    bound.l1d_writebacks = 0;
    bound.l2_accesses = bound.l1i_misses + bound.l1d_misses;
    bound.l2_misses = distinct_l2.at(l2.line_words);
    FinishDerived(bound, HierarchyConfig{pair.l1i, pair.l1d, l2}, n_instr,
                  n_data);
    return bound;
  };

  // Is some canonically-earlier pair with the same geometry but lower
  // associativity guaranteed the same per-level miss counts? Then this
  // pair's extra ways buy nothing and cost energy and latency on every L2:
  // skip it without simulation.
  const auto threshold_dominated = [&](const Pair& pair) {
    if (!threshold_ok) return false;
    const std::uint32_t line = pair.l1i.line_words;
    const std::uint64_t warm_i =
        instr_profiles.Warm(line, pair.l1i.depth, pair.l1i.assoc);
    const std::uint64_t warm_d =
        data_profiles.Warm(line, pair.l1d.depth, pair.l1d.assoc);
    for (std::uint32_t ai : space.l1i.assocs) {
      if (ai > pair.l1i.assoc) break;
      if (instr_profiles.Warm(line, pair.l1i.depth, ai) != warm_i) continue;
      for (std::uint32_t ad : space.l1d.assocs) {
        if (ad > pair.l1d.assoc) break;
        if (ai == pair.l1i.assoc && ad == pair.l1d.assoc) continue;
        if (data_profiles.Warm(line, pair.l1d.depth, ad) != warm_d) continue;
        return true;
      }
    }
    return false;
  };

  const std::vector<std::size_t> seeds =
      SeedPairIndices(space, pairs, instr_profiles, data_profiles);
  result.seed_pairs = seeds.size();

  std::vector<char> decided(pairs.size(), 0);
  std::vector<JointPoint> front;
  {
    std::vector<std::vector<std::uint32_t>> seed_l2;
    for (std::size_t s : seeds) {
      decided[s] = 1;
      seed_l2.push_back(valid_l2[s]);
      result.evaluated_configs += valid_l2[s].size();
    }
    result.evaluated_pairs += seeds.size();
    front = JointParetoFront(evaluate(seeds, seed_l2));
  }

  std::vector<std::size_t> remaining;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (!decided[i]) remaining.push_back(i);
  }

  for (std::size_t wave_begin = 0; wave_begin < remaining.size();
       wave_begin += wave_pairs) {
    const std::size_t wave_end =
        std::min(remaining.size(), wave_begin + wave_pairs);
    std::vector<std::size_t> scheduled;
    std::vector<std::vector<std::uint32_t>> scheduled_l2;
    // Decisions are serial, in canonical order, against the front as of the
    // wave boundary — identical for every jobs value.
    for (std::size_t w = wave_begin; w < wave_end; ++w) {
      const std::size_t p = remaining[w];
      const Pair& pair = pairs[p];
      if (threshold_dominated(pair)) {
        ++result.pruned_pairs;
        ++result.threshold_pruned_pairs;
        result.pruned_configs += valid_l2[p].size();
        continue;
      }
      std::vector<std::uint32_t> surviving;
      for (std::uint32_t j : valid_l2[p]) {
        const JointMetrics bound = lower_bound(pair, l2s[j]);
        bool dominated = false;
        for (const JointPoint& member : front) {
          if (JointDominates(member.metrics, bound)) {
            dominated = true;
            break;
          }
        }
        if (!dominated) surviving.push_back(j);
      }
      result.pruned_configs += valid_l2[p].size() - surviving.size();
      if (surviving.empty()) {
        ++result.pruned_pairs;
        continue;
      }
      result.evaluated_configs += surviving.size();
      scheduled.push_back(p);
      scheduled_l2.push_back(std::move(surviving));
    }
    if (scheduled.empty()) continue;
    result.evaluated_pairs += scheduled.size();
    std::vector<JointPoint> points = evaluate(scheduled, scheduled_l2);
    points.insert(points.end(), front.begin(), front.end());
    front = JointParetoFront(std::move(points));
  }

  result.front = std::move(front);
  record();
  return result;
}

}  // namespace ces::explore
