#include "explore/report.hpp"

#include <cstdio>

#include "support/table.hpp"

namespace ces::explore {

OptimalTable BuildOptimalTable(const std::string& benchmark,
                               const std::string& kind,
                               const analytic::Explorer& explorer,
                               const std::vector<double>& fractions) {
  OptimalTable table;
  table.benchmark = benchmark;
  table.kind = kind;
  table.fractions = fractions;

  for (const cache::StackProfile& profile : explorer.profiles()) {
    table.depths.push_back(profile.depth());
  }
  table.assoc.assign(table.depths.size(), {});

  for (double fraction : fractions) {
    const analytic::ExplorationResult result =
        explorer.SolveFraction(fraction);
    table.budgets.push_back(result.k);
    for (std::size_t row = 0; row < result.points.size(); ++row) {
      table.assoc[row].push_back(result.points[row].assoc);
    }
  }
  return table;
}

std::string RenderOptimalTable(const OptimalTable& table) {
  std::vector<std::string> headers = {"Depth"};
  for (std::size_t col = 0; col < table.fractions.size(); ++col) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.0f%% (K=%llu)",
                  table.fractions[col] * 100.0,
                  static_cast<unsigned long long>(table.budgets[col]));
    headers.emplace_back(buf);
  }
  AsciiTable ascii(std::move(headers));
  for (std::size_t row = 0; row < table.depths.size(); ++row) {
    std::vector<std::string> cells = {std::to_string(table.depths[row])};
    for (std::uint32_t a : table.assoc[row]) cells.push_back(std::to_string(a));
    ascii.AddRow(std::move(cells));
  }
  std::string out = "Optimal " + table.kind + " cache instances for " +
                    table.benchmark + "\n";
  out += ascii.ToString();
  return out;
}

std::string OptimalTableToCsv(const OptimalTable& table) {
  std::string out = "benchmark,kind,depth";
  char buf[48];
  for (std::size_t col = 0; col < table.fractions.size(); ++col) {
    std::snprintf(buf, sizeof(buf), ",assoc_at_%.0f%%",
                  table.fractions[col] * 100.0);
    out += buf;
  }
  out += '\n';
  for (std::size_t row = 0; row < table.depths.size(); ++row) {
    out += table.benchmark + "," + table.kind + "," +
           std::to_string(table.depths[row]);
    for (std::uint32_t a : table.assoc[row]) {
      out += ',' + std::to_string(a);
    }
    out += '\n';
  }
  return out;
}

std::string PointsToCsv(const std::vector<analytic::DesignPoint>& points) {
  std::string out = "depth,assoc,size_words,warm_misses\n";
  for (const analytic::DesignPoint& point : points) {
    out += std::to_string(point.depth) + ',' + std::to_string(point.assoc) +
           ',' + std::to_string(point.size_words()) + ',' +
           std::to_string(point.warm_misses) + '\n';
  }
  return out;
}

std::string RenderStatsTable(
    const std::vector<std::pair<std::string, trace::TraceStats>>& rows,
    const std::string& kind) {
  AsciiTable ascii({"Benchmark", "Size N", "Unique N'", "Max Misses"});
  for (const auto& [name, stats] : rows) {
    ascii.AddRow({name, FormatWithThousands(stats.n),
                  FormatWithThousands(stats.n_unique),
                  FormatWithThousands(stats.max_misses)});
  }
  return kind + " trace statistics\n" + ascii.ToString();
}

}  // namespace ces::explore
