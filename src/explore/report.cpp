#include "explore/report.hpp"

#include <cstdio>

#include "support/table.hpp"

namespace ces::explore {

OptimalTable BuildOptimalTable(const std::string& benchmark,
                               const std::string& kind,
                               const analytic::Explorer& explorer,
                               const std::vector<double>& fractions) {
  OptimalTable table;
  table.benchmark = benchmark;
  table.kind = kind;
  table.fractions = fractions;

  for (const cache::StackProfile& profile : explorer.profiles()) {
    table.depths.push_back(profile.depth());
  }
  table.assoc.assign(table.depths.size(), {});

  for (double fraction : fractions) {
    const analytic::ExplorationResult result =
        explorer.SolveFraction(fraction);
    table.budgets.push_back(result.k);
    for (std::size_t row = 0; row < result.points.size(); ++row) {
      table.assoc[row].push_back(result.points[row].assoc);
    }
  }
  return table;
}

std::string RenderOptimalTable(const OptimalTable& table) {
  std::vector<std::string> headers = {"Depth"};
  for (std::size_t col = 0; col < table.fractions.size(); ++col) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.0f%% (K=%llu)",
                  table.fractions[col] * 100.0,
                  static_cast<unsigned long long>(table.budgets[col]));
    headers.emplace_back(buf);
  }
  AsciiTable ascii(std::move(headers));
  for (std::size_t row = 0; row < table.depths.size(); ++row) {
    std::vector<std::string> cells = {std::to_string(table.depths[row])};
    for (std::uint32_t a : table.assoc[row]) cells.push_back(std::to_string(a));
    ascii.AddRow(std::move(cells));
  }
  std::string out = "Optimal " + table.kind + " cache instances for " +
                    table.benchmark + "\n";
  out += ascii.ToString();
  return out;
}

std::string OptimalTableToCsv(const OptimalTable& table) {
  std::string out = "benchmark,kind,depth";
  char buf[48];
  for (std::size_t col = 0; col < table.fractions.size(); ++col) {
    std::snprintf(buf, sizeof(buf), ",assoc_at_%.0f%%",
                  table.fractions[col] * 100.0);
    out += buf;
  }
  out += '\n';
  for (std::size_t row = 0; row < table.depths.size(); ++row) {
    out += table.benchmark + "," + table.kind + "," +
           std::to_string(table.depths[row]);
    for (std::uint32_t a : table.assoc[row]) {
      out += ',' + std::to_string(a);
    }
    out += '\n';
  }
  return out;
}

std::string PointsToCsv(const std::vector<analytic::DesignPoint>& points) {
  std::string out = "depth,assoc,size_words,warm_misses\n";
  for (const analytic::DesignPoint& point : points) {
    out += std::to_string(point.depth) + ',' + std::to_string(point.assoc) +
           ',' + std::to_string(point.size_words()) + ',' +
           std::to_string(point.warm_misses) + '\n';
  }
  return out;
}

namespace {

std::string JsonDouble(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string U64(std::uint64_t value) { return std::to_string(value); }

std::string LevelJson(const cache::CacheConfig& config) {
  return std::string("{\"depth\":") + U64(config.depth) +
         ",\"assoc\":" + U64(config.assoc) +
         ",\"line_words\":" + U64(config.line_words) + ",\"policy\":\"" +
         cache::ToString(config.replacement) + "\"}";
}

std::string MetricsJson(const JointMetrics& metrics) {
  return std::string("{\"l1i_misses\":") + U64(metrics.l1i_misses) +
         ",\"l1d_misses\":" + U64(metrics.l1d_misses) +
         ",\"l1d_writebacks\":" + U64(metrics.l1d_writebacks) +
         ",\"l2_accesses\":" + U64(metrics.l2_accesses) +
         ",\"l2_misses\":" + U64(metrics.l2_misses) +
         ",\"misses\":" + U64(metrics.misses) +
         ",\"size_words\":" + U64(metrics.size_words) +
         ",\"amat_ns\":" + JsonDouble(metrics.amat_ns) +
         ",\"energy_nj\":" + JsonDouble(metrics.energy_nj) + "}";
}

std::string FormatNs(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

}  // namespace

std::string JointConfigJson(const cache::HierarchyConfig& config) {
  return std::string("{\"key\":\"") + JointConfigKey(config) +
         "\",\"l1i\":" + LevelJson(config.l1i) +
         ",\"l1d\":" + LevelJson(config.l1d) +
         ",\"l2\":" + LevelJson(config.l2) + "}";
}

std::string JointPointJson(const JointPoint& point) {
  return std::string("{\"config\":") + JointConfigJson(point.config) +
         ",\"metrics\":" + MetricsJson(point.metrics) + "}";
}

std::string JointReportJson(const JointResult& result, const JointSpace& space,
                            bool include_volatile) {
  std::string out = "{\"schema\":\"ces-joint-v1\",\"space\":\"" +
                    space.Canonical() + "\",\"counts\":{\"space_configs\":" +
                    U64(result.space_configs) +
                    ",\"valid_configs\":" + U64(result.valid_configs) +
                    ",\"evaluated_configs\":" + U64(result.evaluated_configs) +
                    ",\"pruned_configs\":" + U64(result.pruned_configs) +
                    ",\"total_pairs\":" + U64(result.total_pairs) +
                    ",\"evaluated_pairs\":" + U64(result.evaluated_pairs) +
                    ",\"pruned_pairs\":" + U64(result.pruned_pairs) +
                    ",\"threshold_pruned_pairs\":" +
                    U64(result.threshold_pruned_pairs) +
                    ",\"seed_pairs\":" + U64(result.seed_pairs) + "}";
  if (include_volatile) {
    out += ",\"seconds\":" + JsonDouble(result.seconds);
  }
  out += ",\"front\":[";
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    if (i > 0) out += ',';
    out += JointPointJson(result.front[i]);
  }
  out += "]}";
  return out;
}

std::string RenderJointFront(const JointResult& result) {
  AsciiTable ascii({"Config", "Misses", "L2 Misses", "AMAT ns", "Energy nJ",
                    "Size W"});
  for (const JointPoint& point : result.front) {
    char energy[32];
    std::snprintf(energy, sizeof(energy), "%.1f", point.metrics.energy_nj);
    ascii.AddRow({JointConfigKey(point.config),
                  FormatWithThousands(point.metrics.misses),
                  FormatWithThousands(point.metrics.l2_misses),
                  FormatNs(point.metrics.amat_ns), energy,
                  FormatWithThousands(point.metrics.size_words)});
  }
  std::string out = "Joint L1I x L1D x L2 Pareto front (" +
                    std::to_string(result.front.size()) + " of " +
                    std::to_string(result.valid_configs) +
                    " valid configs)\n" + ascii.ToString();
  const std::uint64_t skipped = result.pruned_configs;
  const double pct =
      result.valid_configs == 0
          ? 0.0
          : 100.0 * static_cast<double>(skipped) /
                static_cast<double>(result.valid_configs);
  char line[160];
  std::snprintf(line, sizeof(line),
                "pruning win: skipped %llu of %llu configs (%.1f%%), "
                "evaluated %llu across %llu of %llu pairs\n",
                static_cast<unsigned long long>(skipped),
                static_cast<unsigned long long>(result.valid_configs), pct,
                static_cast<unsigned long long>(result.evaluated_configs),
                static_cast<unsigned long long>(result.evaluated_pairs),
                static_cast<unsigned long long>(result.total_pairs));
  out += line;
  return out;
}

std::string JointFrontCsv(const std::vector<JointPoint>& points) {
  std::string out =
      "key,l1i_depth,l1i_assoc,l1d_depth,l1d_assoc,l2_depth,l2_assoc,"
      "line_words,l2_line_words,misses,l2_misses,amat_ns,energy_nj,"
      "size_words\n";
  for (const JointPoint& point : points) {
    const cache::HierarchyConfig& c = point.config;
    out += JointConfigKey(c) + ',' + U64(c.l1i.depth) + ',' +
           U64(c.l1i.assoc) + ',' + U64(c.l1d.depth) + ',' +
           U64(c.l1d.assoc) + ',' + U64(c.l2.depth) + ',' + U64(c.l2.assoc) +
           ',' + U64(c.l1i.line_words) + ',' + U64(c.l2.line_words) + ',' +
           U64(point.metrics.misses) + ',' + U64(point.metrics.l2_misses) +
           ',' + JsonDouble(point.metrics.amat_ns) + ',' +
           JsonDouble(point.metrics.energy_nj) + ',' +
           U64(point.metrics.size_words) + '\n';
  }
  return out;
}

std::string RenderStatsTable(
    const std::vector<std::pair<std::string, trace::TraceStats>>& rows,
    const std::string& kind) {
  AsciiTable ascii({"Benchmark", "Size N", "Unique N'", "Max Misses"});
  for (const auto& [name, stats] : rows) {
    ascii.AddRow({name, FormatWithThousands(stats.n),
                  FormatWithThousands(stats.n_unique),
                  FormatWithThousands(stats.max_misses)});
  }
  return kind + " trace statistics\n" + ascii.ToString();
}

}  // namespace ces::explore
