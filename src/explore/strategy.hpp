// Design-space exploration strategies.
//
// The paper contrasts two flows (Figure 1):
//  (a) traditional: pick a configuration, simulate, compare against the miss
//      budget, adjust, repeat — here as ExhaustiveSimulationStrategy (try
//      every configuration) and IterativeSimulationStrategy (raise the
//      associativity until the budget is met);
//  (b) proposed: run the analytical algorithm once — AnalyticalStrategy.
// OnePassStackStrategy is the strongest conventional baseline: one Mattson
// stack simulation per depth, all associativities at once ([16][17]).
//
// All strategies answer the same question and must return identical
// (depth, assoc) sets; they differ only in cost, which is exactly what the
// run-time experiments measure.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analytic/model.hpp"
#include "trace/trace.hpp"

namespace ces::explore {

struct StrategyResult {
  std::vector<analytic::DesignPoint> points;  // one per depth 2^0..2^max
  double seconds = 0.0;
  std::uint64_t simulated_references = 0;  // total refs pushed through a
                                           // functional cache model (cost
                                           // proxy of the traditional flow)
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual std::string name() const = 0;
  // Finds, for each depth 2^0..2^max_index_bits, the minimum associativity
  // with non-cold misses <= k.
  //
  // The per-depth searches are independent, so every strategy accepts a
  // worker count: jobs == 1 (the default) is the serial code path, jobs == 0
  // picks the hardware concurrency, and jobs > 1 spreads depths over a
  // deterministic support::ThreadPool. Each depth writes a pre-sized result
  // slot and cost counters are summed in depth order, so `points` and
  // `simulated_references` are identical for every jobs value (only
  // `seconds` changes). The analytical strategy forwards jobs to the
  // explorer prelude.
  virtual StrategyResult Explore(const trace::Trace& trace, std::uint64_t k,
                                 std::uint32_t max_index_bits,
                                 std::uint32_t jobs = 1) const = 0;
};

// Figure 1a, exhaustive flavour: simulate (D, A) for A = 1,2,... until the
// budget is met, for every depth.
class ExhaustiveSimulationStrategy : public Strategy {
 public:
  std::string name() const override { return "exhaustive-simulation"; }
  StrategyResult Explore(const trace::Trace& trace, std::uint64_t k,
                         std::uint32_t max_index_bits,
                         std::uint32_t jobs = 1) const override;
};

// Figure 1a, tuned flavour: per depth, binary-search the associativity in
// [1, A_zero] with one full simulation per probe.
class IterativeSimulationStrategy : public Strategy {
 public:
  std::string name() const override { return "iterative-simulation"; }
  StrategyResult Explore(const trace::Trace& trace, std::uint64_t k,
                         std::uint32_t max_index_bits,
                         std::uint32_t jobs = 1) const override;
};

// One Mattson stack pass per depth.
class OnePassStackStrategy : public Strategy {
 public:
  std::string name() const override { return "one-pass-stack"; }
  StrategyResult Explore(const trace::Trace& trace, std::uint64_t k,
                         std::uint32_t max_index_bits,
                         std::uint32_t jobs = 1) const override;
};

// The paper's proposed flow (Figure 1b).
class AnalyticalStrategy : public Strategy {
 public:
  explicit AnalyticalStrategy(bool use_reference_engine = false)
      : use_reference_engine_(use_reference_engine) {}
  std::string name() const override {
    return use_reference_engine_ ? "analytical-reference" : "analytical-fused";
  }
  StrategyResult Explore(const trace::Trace& trace, std::uint64_t k,
                         std::uint32_t max_index_bits,
                         std::uint32_t jobs = 1) const override;

 private:
  bool use_reference_engine_;
};

// All four, in comparison order.
std::vector<std::unique_ptr<Strategy>> AllStrategies();

}  // namespace ces::explore
