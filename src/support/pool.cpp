#include "support/pool.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/metrics.hpp"
#include "support/trace_event.hpp"

namespace ces::support {
namespace {

// True while this thread is executing a chunk of any pool's batch. Nested
// ParallelFor calls observe it and run inline, so a loop body may freely call
// parallel library routines without deadlocking the (single-batch) pool.
thread_local bool tls_in_parallel_region = false;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

unsigned HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

struct ThreadPool::Impl {
  using Body = std::function<void(std::size_t, std::size_t, std::size_t)>;

  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable batch_done;

  // The current batch, published under `mutex`. Workers detect a new batch by
  // the generation counter, so a notify can never be lost.
  std::uint64_t generation = 0;
  std::size_t batch_n = 0;
  const Body* body = nullptr;
  unsigned pending = 0;                    // worker chunks still running
  std::vector<std::exception_ptr> errors;  // one slot per chunk
  bool shutdown = false;
  double publish_time = 0.0;  // when the current batch was made visible
  MetricsRegistry* metrics = nullptr;

  std::vector<std::thread> threads;

  void RunChunk(const Body& fn, std::size_t n, std::size_t chunk,
                std::size_t chunks) {
    const auto [begin, end] = ChunkRange(n, chunks, chunk);
    if (begin >= end) return;
    // One span per executed chunk: in a profile every worker's track shows
    // the chunks it ran, which is the per-worker utilisation picture the
    // aggregate gauges summarise.
    ScopedTraceSpan span("pool.chunk");
    tls_in_parallel_region = true;
    try {
      fn(begin, end, chunk);
    } catch (...) {
      tls_in_parallel_region = false;
      std::lock_guard<std::mutex> lock(mutex);
      errors[chunk] = std::current_exception();
      return;
    }
    tls_in_parallel_region = false;
  }

  void WorkerLoop(std::size_t chunk, std::size_t chunks) {
    std::uint64_t seen = 0;
    // Tracks are named against the sink installed at batch time, re-applied
    // if the global sink changes between batches.
    TraceSink* named_for = nullptr;
    for (;;) {
      const Body* fn;
      std::size_t n;
      double published;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock,
                        [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
        fn = body;
        n = batch_n;
        published = publish_time;
      }
      // Dispatch latency: how long this worker's chunk sat queued between
      // the batch publish and the worker picking it up.
      MetricsRegistry::Observe(metrics, "pool.queue_wait",
                               NowSeconds() - published);
      if (TraceSink* sink = TraceSink::Global(); sink != named_for) {
        if (sink != nullptr) {
          sink->NameThisThread("pool worker " + std::to_string(chunk));
        }
        named_for = sink;
      }
      RunChunk(*fn, n, chunk, chunks);
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--pending == 0) batch_done.notify_one();
      }
    }
  }
};

ThreadPool::ThreadPool(unsigned jobs, MetricsRegistry* metrics)
    : jobs_(jobs == 0 ? HardwareConcurrency() : jobs), metrics_(metrics) {
  if (jobs_ <= 1) return;  // fully inline; no worker state at all
  impl_ = std::make_unique<Impl>();
  impl_->metrics = metrics;
  // One error slot per chunk for the pool's lifetime, so publishing a batch
  // performs no allocation (callers like the fused prelude dispatch from
  // allocation-free hot paths).
  impl_->errors.assign(jobs_, nullptr);
  impl_->threads.reserve(jobs_ - 1);
  // Worker w owns chunk w + 1 forever; the caller always runs chunk 0.
  for (unsigned w = 1; w < jobs_; ++w) {
    impl_->threads.emplace_back(
        [impl = impl_.get(), w, chunks = jobs_] { impl->WorkerLoop(w, chunks); });
  }
}

ThreadPool::~ThreadPool() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& thread : impl_->threads) thread.join();
}

std::pair<std::size_t, std::size_t> ThreadPool::ChunkRange(std::size_t n,
                                                           std::size_t chunks,
                                                           std::size_t chunk) {
  // Contiguous split with sizes differing by at most one, low chunks first;
  // overflow-free for any n.
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  const std::size_t begin = chunk * base + std::min(chunk, rem);
  const std::size_t end = begin + base + (chunk < rem ? 1 : 0);
  return {begin, end};
}

void ThreadPool::ParallelForChunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs_ <= 1 || tls_in_parallel_region) {
    // Serial code path: one chunk spanning everything, on this thread.
    fn(0, n, 0);
    return;
  }
  Impl& impl = *impl_;
  {
    std::lock_guard<std::mutex> lock(impl.mutex);
    impl.body = &fn;
    impl.batch_n = n;
    impl.pending = static_cast<unsigned>(impl.threads.size());
    std::fill(impl.errors.begin(), impl.errors.end(), nullptr);
    impl.publish_time = NowSeconds();
    ++impl.generation;
  }
  impl.work_ready.notify_all();
  impl.RunChunk(fn, n, 0, jobs_);
  std::exception_ptr first;
  {
    std::unique_lock<std::mutex> lock(impl.mutex);
    impl.batch_done.wait(lock, [&] { return impl.pending == 0; });
    impl.body = nullptr;
    // Deterministic propagation: the lowest-numbered chunk's exception wins.
    for (const std::exception_ptr& error : impl.errors) {
      if (error) {
        first = error;
        break;
      }
    }
    // Drop the exception_ptr references without releasing the slots — the
    // vector stays sized jobs_ so the next batch publish stays allocation-free.
    std::fill(impl.errors.begin(), impl.errors.end(), nullptr);
  }
  AccountBatch(n);
  if (first) std::rethrow_exception(first);
}

void ThreadPool::AccountBatch(std::size_t n) {
  if (metrics_ == nullptr) return;
  // Which chunk ran work is a pure function of (n, jobs): chunk c executed
  // iff its static range is non-empty. Accounting on the calling thread after
  // the barrier keeps the workers untouched.
  if (chunk_tasks_.empty()) chunk_tasks_.assign(jobs_, 0);
  for (std::size_t chunk = 0; chunk < jobs_; ++chunk) {
    const auto [begin, end] = ChunkRange(n, jobs_, chunk);
    if (begin < end) ++chunk_tasks_[chunk];
  }
  for (std::size_t chunk = 0; chunk < jobs_; ++chunk) {
    metrics_->SetGauge("pool.worker." + std::to_string(chunk) + ".tasks",
                       chunk_tasks_[chunk]);
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  ParallelForChunks(n, [&fn](std::size_t begin, std::size_t end,
                             std::size_t /*chunk*/) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace ces::support
