#include "support/progress.hpp"

#include <unistd.h>

#include <chrono>

namespace ces::support {
namespace {

std::atomic<ProgressReporter*> g_reporter{nullptr};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ProgressReporter* ProgressReporter::Global() {
  return g_reporter.load(std::memory_order_acquire);
}

void ProgressReporter::SetGlobal(ProgressReporter* reporter) {
  g_reporter.store(reporter, std::memory_order_release);
}

bool ProgressReporter::IsTty(std::FILE* stream) {
  return isatty(fileno(stream)) == 1;
}

ProgressReporter::ProgressReporter(std::FILE* stream,
                                   double min_interval_seconds)
    : stream_(stream),
      tty_(IsTty(stream)),
      min_interval_(min_interval_seconds >= 0.0 ? min_interval_seconds
                    : tty_                      ? 0.1
                                                : 2.0) {}

void ProgressReporter::BeginPhase(const std::string& phase,
                                  std::uint64_t total) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (phase_open_) Render(/*final=*/true);
  phase_ = phase;
  total_ = total;
  phase_open_ = true;
  done_.store(0, std::memory_order_relaxed);
  last_render_ = NowSeconds();
  Render(/*final=*/false);
}

void ProgressReporter::Tick(std::uint64_t delta) {
  done_.fetch_add(delta, std::memory_order_relaxed);
  // Rendering is best-effort: if another thread holds the lock it will
  // render a fresher count shortly anyway.
  if (!mutex_.try_lock()) return;
  std::lock_guard<std::mutex> lock(mutex_, std::adopt_lock);
  if (!phase_open_) return;
  const double now = NowSeconds();
  if (now - last_render_ < min_interval_) return;
  last_render_ = now;
  Render(/*final=*/false);
}

void ProgressReporter::EndPhase() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!phase_open_) return;
  Render(/*final=*/true);
  phase_open_ = false;
}

void ProgressReporter::Render(bool final) {
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  char line[160];
  if (total_ > 0) {
    const double pct =
        100.0 * static_cast<double>(done) / static_cast<double>(total_);
    std::snprintf(line, sizeof(line), "%s %llu/%llu (%.0f%%)", phase_.c_str(),
                  static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total_), pct);
  } else {
    std::snprintf(line, sizeof(line), "%s %llu", phase_.c_str(),
                  static_cast<unsigned long long>(done));
  }
  if (tty_) {
    // Rewrite one line in place; pad so a shorter render clears the longer
    // previous one, and only commit a newline when the phase ends.
    std::fprintf(stream_, "\r%-70s%s", line, final ? "\n" : "");
  } else {
    std::fprintf(stream_, "%s%s\n", line, final ? " [done]" : "");
  }
  std::fflush(stream_);
}

}  // namespace ces::support
