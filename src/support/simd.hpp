// Runtime-dispatched SIMD kernels for the fused-prelude hot loops.
//
// The fused BCAT traversal (src/analytic/fast.cpp) spends its time in three
// per-reference operations: counting the zero split-bits of a node's segment
// (which sizes the left child), stably partitioning the segment into the
// ping-pong twin buffers, and filling the SoA address lane that lets both of
// those stream instead of gathering unique_[id] per element. This header
// exposes exactly those operations as a kernel table with one scalar and one
// AVX2 implementation, selected once per traversal:
//
//   * detection — a cpuid/xgetbv probe (x86 only; everywhere else the
//     scalar table is the only one compiled) establishes the highest level
//     the host can run;
//   * override — the CES_SIMD environment variable and the --simd flag
//     (ForceLevel) both name a level, flag beating env beating detection;
//     a request above what the host supports falls back gracefully to the
//     best supported level, never crashes;
//   * identity — every kernel is bit-exact against its scalar twin (the
//     AVX2 partition is a stable mask/compress with masked stores, so the
//     output permutation is identical), which is what keeps profiles,
//     --metrics=json and joint fronts byte-identical across levels; the
//     forced-path differential sweep in tests/simd_dispatch_test.cpp pins
//     this over 100 traces at jobs 1/2/8.
//
// The AVX2 bodies live in simd_avx2.cpp, compiled as a separate translation
// unit with -mavx2 so the rest of the build stays portable to the baseline
// ISA; CMake only adds that TU (and defines CES_HAVE_AVX2_TU) on x86.
// docs/SIMD.md is the operator-facing guide.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ces::support::simd {

// Dispatch levels, ordered: a numerically higher level strictly extends the
// ISA of the lower ones. The numeric value is what the volatile gauge
// "explore.simd_kernel" reports.
enum class Level : std::uint32_t {
  kScalar = 0,
  kAvx2 = 1,
};

// Stable lower-case level name: "scalar", "avx2". Used by CES_SIMD/--simd
// parsing, the stats service op and the micro_prelude dispatch column.
const char* LevelName(Level level);

// Parses a level name ("scalar" or "avx2", exact match). Returns false and
// leaves *out untouched on anything else.
bool ParseLevel(const char* name, Level* out);

// Raw cpuid probe results. On non-x86 builds every field is false.
struct CpuFeatures {
  bool os_avx = false;  // CPUID.1:ECX OSXSAVE+AVX and XCR0 enables YMM state
  bool avx2 = false;    // os_avx and CPUID.(7,0):EBX.AVX2
};
CpuFeatures ProbeCpu();

// Highest level this host can execute (cached after the first call).
Level DetectedLevel();

// The pure precedence rule behind ActiveLevel, exposed for tests: `forced`
// (the --simd flag) beats `env_value` (the CES_SIMD variable, may be null or
// unparseable — then ignored) beats plain detection, and whatever wins is
// clamped down to `detected` so an unsupported request degrades to the best
// level the host has instead of failing.
Level Resolve(Level detected, const char* env_value, const Level* forced);

// Process-wide --simd override; wins over CES_SIMD. ClearForcedLevel returns
// to env/detection order (tests use it to restore state).
void ForceLevel(Level level);
void ClearForcedLevel();
// True (and *out filled) when a ForceLevel override is in effect.
bool ForcedLevel(Level* out);

// Resolve(DetectedLevel(), getenv("CES_SIMD"), forced-or-null): the level
// every dispatch site uses. Cheap enough to call per traversal.
Level ActiveLevel();

// The kernel table. All pointers are non-null in every table; the scalar
// table is always available.
struct Kernels {
  Level level;       // the level these kernels require
  const char* name;  // == LevelName(level)

  // Number of elements of addrs[0..n) whose bit `shift` (0-based) is zero.
  std::size_t (*count_zero_bits)(const std::uint32_t* addrs, std::size_t n,
                                 std::uint32_t shift);

  // Stable partition of the parallel (ids, addrs) lanes by bit `shift` of
  // the address: elements whose bit is zero stream to ids_left/addrs_left,
  // the rest to ids_right/addrs_right, both sides preserving input order.
  // The left run must hold exactly count_zero_bits(addrs, n, shift)
  // elements; no kernel writes outside the two runs (the twin-buffer
  // segments of sibling subtrees may be scanned concurrently).
  void (*partition_pair)(const std::uint32_t* ids, const std::uint32_t* addrs,
                         std::size_t n, std::uint32_t shift,
                         std::uint32_t* ids_left, std::uint32_t* addrs_left,
                         std::uint32_t* ids_right,
                         std::uint32_t* addrs_right);

  // addrs[i] = table[ids[i]] for i in [0, n): the SoA address-lane fill.
  void (*gather)(const std::uint32_t* ids, std::size_t n,
                 const std::uint32_t* table, std::uint32_t* addrs);
};

// The table for `level`, degraded to the best supported level when `level`
// exceeds DetectedLevel() (or when the AVX2 TU is not compiled in).
const Kernels& KernelsFor(Level level);

// KernelsFor(ActiveLevel()) — what the fused traversal binds per run.
const Kernels& ActiveKernels();

// Best-effort read prefetch into cache; compiles to nothing where the
// builtin is unavailable. Used by the Fenwick-tree scan to hide the latency
// of the per-id mark lanes (epoch/last-position/tree slots).
inline void PrefetchRead(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/3);
#else
  (void)address;
#endif
}

}  // namespace ces::support::simd
