// Lightweight invariant checking used across the library.
//
// CES_CHECK is active in all build types: violated preconditions in an EDA
// flow are almost always data-corruption bugs whose cost dwarfs the check.
// CES_DCHECK compiles away in release builds and is meant for hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ces::detail {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "CES_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace ces::detail

#define CES_CHECK(expr)                                     \
  do {                                                      \
    if (!(expr)) {                                          \
      ::ces::detail::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                       \
  } while (false)

#ifdef NDEBUG
#define CES_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define CES_DCHECK(expr) CES_CHECK(expr)
#endif
