#include "support/signals.hpp"

#include <pthread.h>

#include <utility>

namespace ces::support {

SignalWatcher::SignalWatcher(std::function<void(int)> on_signal)
    : on_signal_(std::move(on_signal)) {
  sigemptyset(&watched_);
  sigaddset(&watched_, SIGINT);
  sigaddset(&watched_, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &watched_, &previous_mask_);
  watcher_ = std::thread([this] {
    for (;;) {
      int signo = 0;
      if (sigwait(&watched_, &signo) != 0) return;
      if (stopping_.load(std::memory_order_acquire)) return;
      on_signal_(signo);
    }
  });
}

SignalWatcher::~SignalWatcher() {
  stopping_.store(true, std::memory_order_release);
  // Wake the sigwait with one of the signals it is already watching; the
  // stopping_ flag makes the watcher swallow it instead of dispatching.
  pthread_kill(watcher_.native_handle(), SIGTERM);
  watcher_.join();
  pthread_sigmask(SIG_SETMASK, &previous_mask_, nullptr);
}

}  // namespace ces::support
