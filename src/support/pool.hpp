// Deterministic fixed-size thread pool for data-parallel loops.
//
// Every parallel construct in the library routes through this pool, and the
// pool is deliberately work-stealing-free: ParallelFor splits [0, n) into
// jobs() contiguous chunks computed from (n, jobs) alone, so the mapping of
// index to worker — and therefore which thread writes which pre-sized output
// slot — never depends on scheduling. Callers that (a) give each index its
// own output slot and (b) merge per-chunk partials in chunk order get results
// that are byte-identical for every worker count, which is the contract the
// parallel determinism tests pin down.
//
// Semantics:
//  * jobs == 1 spawns no threads; every loop body runs inline on the calling
//    thread (bit-for-bit the serial code path).
//  * The calling thread executes chunk 0 itself; only jobs-1 workers exist.
//  * Nested ParallelFor calls — from a loop body already running inside any
//    pool's parallel region — execute inline on the calling thread instead of
//    re-entering a pool, so nesting can never deadlock.
//  * If bodies throw, the exception from the lowest-numbered chunk is
//    rethrown on the caller after every chunk has finished (remaining indices
//    of a throwing chunk are skipped; other chunks still run to completion).
//    The pool remains usable afterwards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace ces::support {

class MetricsRegistry;

// std::thread::hardware_concurrency(), clamped to at least 1.
unsigned HardwareConcurrency();

class ThreadPool {
 public:
  // jobs == 0 selects HardwareConcurrency(); jobs == 1 is fully inline.
  //
  // When `metrics` is provided the pool records its utilisation — volatile
  // observability only, never part of the deterministic counter surface:
  //  * "pool.worker.N.tasks" gauges: non-empty chunks chunk N has executed
  //    across all batches so far (chunk 0 is the calling thread), updated
  //    after every parallel region so --metrics-timings exposes load
  //    imbalance across --jobs values.
  //  * "pool.queue_wait" span: per worker wake-up, the delay between a batch
  //    being published and that worker starting its chunk.
  // If a global TraceSink is installed (support/trace_event.hpp), workers
  // additionally name their tracks ("pool worker N") and wrap each executed
  // chunk in a "pool.chunk" span, one swim-lane per worker in the profile.
  explicit ThreadPool(unsigned jobs = 0, MetricsRegistry* metrics = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned jobs() const { return jobs_; }

  // Invokes fn(i) once for every i in [0, n), statically chunked: chunk c
  // covers a contiguous index range whose bounds depend only on (n, jobs).
  // Blocks until all chunks have finished.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& fn);

  // Chunk-granular variant: fn(begin, end, chunk) once per non-empty chunk,
  // with [begin, end) the chunk's contiguous index range and chunk in
  // [0, jobs()). Use when each worker needs private scratch state indexed by
  // chunk (e.g. a partial histogram merged in chunk order afterwards).
  void ParallelForChunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  // The static partition: the half-open index range of chunk c when [0, n)
  // is split into `chunks` contiguous pieces (sizes differ by at most one).
  // Exposed so tests and callers can reason about slot ownership.
  static std::pair<std::size_t, std::size_t> ChunkRange(std::size_t n,
                                                        std::size_t chunks,
                                                        std::size_t chunk);

 private:
  struct Impl;
  void AccountBatch(std::size_t n);

  unsigned jobs_;
  MetricsRegistry* metrics_;
  // Non-empty chunks executed per chunk slot, accumulated on the calling
  // thread after each dispatched batch (inline/nested regions are not
  // accounted — there is no pool activity to observe).
  std::vector<std::uint64_t> chunk_tasks_;
  std::unique_ptr<Impl> impl_;  // null when jobs_ == 1
};

}  // namespace ces::support
