// Plain-text table rendering for the experiment harnesses. Every bench binary
// prints its results in the row/column layout of the corresponding paper
// table, and this class does the alignment work.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ces {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  // Adds one row; it must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  // Renders with column alignment; first column left-aligned, the rest
  // right-aligned (the paper's tables put the benchmark/depth label first).
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Convenience numeric formatting used by the tables.
std::string FormatWithThousands(std::uint64_t value);
std::string FormatSeconds(double seconds);

}  // namespace ces
