#include "support/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define CES_SIMD_X86 1
#else
#define CES_SIMD_X86 0
#endif

namespace ces::support::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar kernels. These are the semantic reference: every other level must
// reproduce their output bit for bit (tests/simd_dispatch_test.cpp diffs
// them against the AVX2 table on random inputs, including ragged tails).

std::size_t CountZeroBitsScalar(const std::uint32_t* addrs, std::size_t n,
                                std::uint32_t shift) {
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < n; ++i) {
    zeros += ((addrs[i] >> shift) & 1u) == 0;
  }
  return zeros;
}

void PartitionPairScalar(const std::uint32_t* ids, const std::uint32_t* addrs,
                         std::size_t n, std::uint32_t shift,
                         std::uint32_t* ids_left, std::uint32_t* addrs_left,
                         std::uint32_t* ids_right, std::uint32_t* addrs_right) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((addrs[i] >> shift) & 1u) {
      *ids_right++ = ids[i];
      *addrs_right++ = addrs[i];
    } else {
      *ids_left++ = ids[i];
      *addrs_left++ = addrs[i];
    }
  }
}

void GatherScalar(const std::uint32_t* ids, std::size_t n,
                  const std::uint32_t* table, std::uint32_t* addrs) {
  for (std::size_t i = 0; i < n; ++i) addrs[i] = table[ids[i]];
}

constexpr Kernels kScalarKernels = {
    Level::kScalar,      "scalar",      &CountZeroBitsScalar,
    &PartitionPairScalar, &GatherScalar,
};

// ---------------------------------------------------------------------------
// Detection. The AVX2 probe needs three things to all hold: the OS saves
// YMM state (OSXSAVE set and XCR0 bits 1|2), the core advertises AVX, and
// CPUID.(7,0):EBX advertises AVX2.

CpuFeatures ProbeCpuUncached() {
  CpuFeatures features;
#if CES_SIMD_X86
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return features;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (osxsave && avx) {
    // xgetbv(0): bit 1 = SSE state, bit 2 = YMM state. Both must be
    // OS-enabled or executing a VEX-256 instruction faults.
    std::uint32_t xcr0_lo = 0, xcr0_hi = 0;
    __asm__ volatile(".byte 0x0f, 0x01, 0xd0"  // xgetbv, spelled for old as
                     : "=a"(xcr0_lo), "=d"(xcr0_hi)
                     : "c"(0));
    features.os_avx = (xcr0_lo & 0x6u) == 0x6u;
  }
  if (features.os_avx) {
    eax = ebx = ecx = edx = 0;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
      features.avx2 = (ebx & (1u << 5)) != 0;
    }
  }
#endif
  return features;
}

Level DetectUncached() {
#if CES_SIMD_X86 && defined(CES_HAVE_AVX2_TU)
  if (ProbeCpu().avx2) return Level::kAvx2;
#endif
  return Level::kScalar;
}

// --simd override. Encoded as level+1 so 0 means "not forced"; a plain
// atomic keeps ForceLevel safe to call from tests running alongside pool
// threads that read ActiveLevel().
std::atomic<std::uint32_t> g_forced{0};

}  // namespace

#if defined(CES_HAVE_AVX2_TU)
// Defined in simd_avx2.cpp (compiled with -mavx2 on x86 hosts only).
const Kernels& Avx2Kernels();
#endif

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool ParseLevel(const char* name, Level* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = Level::kScalar;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = Level::kAvx2;
    return true;
  }
  return false;
}

CpuFeatures ProbeCpu() {
  static const CpuFeatures features = ProbeCpuUncached();
  return features;
}

Level DetectedLevel() {
  static const Level level = DetectUncached();
  return level;
}

Level Resolve(Level detected, const char* env_value, const Level* forced) {
  Level chosen = detected;
  Level parsed;
  if (ParseLevel(env_value, &parsed)) chosen = parsed;
  if (forced != nullptr) chosen = *forced;
  // Graceful fallback: never select a level the host cannot execute.
  if (static_cast<std::uint32_t>(chosen) > static_cast<std::uint32_t>(detected))
    chosen = detected;
  return chosen;
}

void ForceLevel(Level level) {
  g_forced.store(static_cast<std::uint32_t>(level) + 1,
                 std::memory_order_relaxed);
}

void ClearForcedLevel() { g_forced.store(0, std::memory_order_relaxed); }

bool ForcedLevel(Level* out) {
  const std::uint32_t raw = g_forced.load(std::memory_order_relaxed);
  if (raw == 0) return false;
  *out = static_cast<Level>(raw - 1);
  return true;
}

Level ActiveLevel() {
  Level forced;
  const bool has_forced = ForcedLevel(&forced);
  return Resolve(DetectedLevel(), std::getenv("CES_SIMD"),
                 has_forced ? &forced : nullptr);
}

const Kernels& KernelsFor(Level level) {
#if defined(CES_HAVE_AVX2_TU)
  if (level == Level::kAvx2 && DetectedLevel() == Level::kAvx2) {
    return Avx2Kernels();
  }
#else
  (void)level;
#endif
  return kScalarKernels;
}

const Kernels& ActiveKernels() { return KernelsFor(ActiveLevel()); }

}  // namespace ces::support::simd
