// AVX2 bodies of the simd.hpp kernel table. This translation unit is the
// only one in the repository compiled with -mavx2 (see
// src/support/CMakeLists.txt): everything here is reached strictly behind
// the cpuid probe in simd.cpp, so the rest of the build keeps the baseline
// ISA and the binary still runs on AVX2-less hosts.
//
// Identity argument (what keeps every level byte-identical):
//   * count_zero_bits — per 8 lanes the split bit is moved to the sign
//     position, movemask'd and popcounted; addition is exact, the ragged
//     tail is the scalar loop.
//   * partition_pair — a stable two-pass mask/compress: pass one computes
//     the 8-bit side mask, pass two permutes the surviving lanes of both
//     SoA lanes into packed order (vpermd through an 8 KiB compaction
//     table) and appends them with a masked store. Lanes keep their input
//     order on both sides and the store mask covers exactly the packed
//     lanes, so the output permutation — and every byte either side's
//     cursor passes — matches the scalar partition exactly, and nothing
//     outside the two runs is written (sibling subtree segments may be
//     scanned concurrently by other pool lanes).
//   * gather — vpgatherdd with the same table reads, scalar tail.
#include <immintrin.h>

#include <array>
#include <cstdint>

#include "support/simd.hpp"

namespace ces::support::simd {
namespace {

// kCompress[m][j]: the lane index of the j-th set bit of mask m, in
// ascending lane order (stability); unused entries stay 0 and are masked
// off at store time. The left side of a partition indexes with ~m.
constexpr std::array<std::array<std::uint32_t, 8>, 256> MakeCompressTable() {
  std::array<std::array<std::uint32_t, 8>, 256> table{};
  for (int mask = 0; mask < 256; ++mask) {
    int out = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if (mask & (1 << lane)) {
        table[static_cast<std::size_t>(mask)][static_cast<std::size_t>(out++)] =
            static_cast<std::uint32_t>(lane);
      }
    }
  }
  return table;
}
constexpr auto kCompress = MakeCompressTable();

// kTailMask[k]: the first k lanes enabled (sign bit set) — the store masks
// for vpmaskmovd, one per possible packed-lane count.
constexpr std::array<std::array<std::int32_t, 8>, 9> MakeTailMasks() {
  std::array<std::array<std::int32_t, 8>, 9> table{};
  for (int k = 0; k <= 8; ++k) {
    for (int lane = 0; lane < 8; ++lane) {
      table[static_cast<std::size_t>(k)][static_cast<std::size_t>(lane)] =
          lane < k ? -1 : 0;
    }
  }
  return table;
}
constexpr auto kTailMask = MakeTailMasks();

inline __m256i LoadU(const std::uint32_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

std::size_t CountZeroBitsAvx2(const std::uint32_t* addrs, std::size_t n,
                              std::uint32_t shift) {
  std::size_t ones = 0;
  std::size_t i = 0;
  // Move bit `shift` into the sign position; movemask then reads it per
  // lane and popcount folds 8 references into one add.
  const __m128i to_sign = _mm_cvtsi32_si128(static_cast<int>(31 - shift));
  for (; i + 8 <= n; i += 8) {
    const __m256i sign = _mm256_sll_epi32(LoadU(addrs + i), to_sign);
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(sign));
    ones += static_cast<unsigned>(__builtin_popcount(mask));
  }
  for (; i < n; ++i) ones += (addrs[i] >> shift) & 1u;
  return n - ones;
}

void PartitionPairAvx2(const std::uint32_t* ids, const std::uint32_t* addrs,
                       std::size_t n, std::uint32_t shift,
                       std::uint32_t* ids_left, std::uint32_t* addrs_left,
                       std::uint32_t* ids_right, std::uint32_t* addrs_right) {
  std::size_t i = 0;
  const __m128i to_sign = _mm_cvtsi32_si128(static_cast<int>(31 - shift));
  for (; i + 8 <= n; i += 8) {
    const __m256i addr8 = LoadU(addrs + i);
    const __m256i id8 = LoadU(ids + i);
    const __m256i sign = _mm256_sll_epi32(addr8, to_sign);
    const int right_mask = _mm256_movemask_ps(_mm256_castsi256_ps(sign));
    const int left_mask = ~right_mask & 0xff;
    const int n_right = __builtin_popcount(static_cast<unsigned>(right_mask));
    const int n_left = 8 - n_right;

    const __m256i perm_left = LoadU(kCompress[left_mask].data());
    const __m256i perm_right = LoadU(kCompress[right_mask].data());
    const __m256i store_left = LoadU(
        reinterpret_cast<const std::uint32_t*>(kTailMask[n_left].data()));
    const __m256i store_right = LoadU(
        reinterpret_cast<const std::uint32_t*>(kTailMask[n_right].data()));

    _mm256_maskstore_epi32(reinterpret_cast<int*>(ids_left), store_left,
                           _mm256_permutevar8x32_epi32(id8, perm_left));
    _mm256_maskstore_epi32(reinterpret_cast<int*>(addrs_left), store_left,
                           _mm256_permutevar8x32_epi32(addr8, perm_left));
    _mm256_maskstore_epi32(reinterpret_cast<int*>(ids_right), store_right,
                           _mm256_permutevar8x32_epi32(id8, perm_right));
    _mm256_maskstore_epi32(reinterpret_cast<int*>(addrs_right), store_right,
                           _mm256_permutevar8x32_epi32(addr8, perm_right));
    ids_left += n_left;
    addrs_left += n_left;
    ids_right += n_right;
    addrs_right += n_right;
  }
  for (; i < n; ++i) {
    if ((addrs[i] >> shift) & 1u) {
      *ids_right++ = ids[i];
      *addrs_right++ = addrs[i];
    } else {
      *ids_left++ = ids[i];
      *addrs_left++ = addrs[i];
    }
  }
}

void GatherAvx2(const std::uint32_t* ids, std::size_t n,
                const std::uint32_t* table, std::uint32_t* addrs) {
  // vpgatherdd treats indices as signed; callers guarantee ids < 2^31
  // (fast.cpp falls back to the scalar fill past that — a >2G-line trace).
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx = LoadU(ids + i);
    const __m256i got = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(table), idx, /*scale=*/4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(addrs + i), got);
  }
  for (; i < n; ++i) addrs[i] = table[ids[i]];
}

constexpr Kernels kAvx2Kernels = {
    Level::kAvx2,      "avx2",      &CountZeroBitsAvx2,
    &PartitionPairAvx2, &GatherAvx2,
};

}  // namespace

const Kernels& Avx2Kernels() { return kAvx2Kernels; }

}  // namespace ces::support::simd
