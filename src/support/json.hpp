// Shared JSON string escaping for every hand-rolled serialiser in the
// repository (run metrics, Chrome trace events, the bench reporter).
//
// The library emits JSON from several places and none of them may trust its
// input strings: metric names are library-chosen today but user-extensible,
// trace-event span names embed workload names, and bench params carry raw
// flag values. Centralising the escaping means a hostile name is handled the
// same way everywhere — and is tested once, against the full control-char
// range (see tests/support_test.cpp).
#pragma once

#include <cstdio>
#include <string>

namespace ces::support {

// Escapes `s` for inclusion inside a double-quoted JSON string: quote,
// backslash, the two-character escapes JSON defines (\n \t \r \b \f) and
// \u00xx for every remaining control character below 0x20. Bytes >= 0x20
// pass through unchanged (UTF-8 is preserved byte-for-byte).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Convenience: `"escaped"` with the surrounding quotes.
inline std::string JsonQuote(const std::string& s) {
  return '"' + JsonEscape(s) + '"';
}

}  // namespace ces::support
