#include "support/cli.hpp"

#include <cstdlib>

namespace ces {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool ArgParser::Has(const std::string& name) const {
  return flags_.contains(name);
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t ArgParser::GetInt(const std::string& name,
                               std::int64_t fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 0);
}

double ArgParser::GetDouble(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool ArgParser::GetBool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0";
}

}  // namespace ces
