#include "support/metrics.hpp"

#include <cstdio>
#include <utility>

#include "support/json.hpp"

namespace ces::support {

void MetricsRegistry::Add(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(const std::string& name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

std::uint64_t MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

void MetricsRegistry::Observe(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Span& span = spans_[name];
  span.seconds += seconds;
  ++span.count;
}

double MetricsRegistry::span_seconds(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = spans_.find(name);
  return it == spans_.end() ? 0.0 : it->second.seconds;
}

std::size_t MetricsRegistry::HistogramBucket(std::uint64_t value) {
  std::size_t bucket = 0;
  while (value != 0) {
    ++bucket;
    value >>= 1;
  }
  return bucket;  // 0 for 0, floor(log2(v)) + 1 otherwise
}

std::pair<std::uint64_t, std::uint64_t> MetricsRegistry::HistogramBucketRange(
    std::size_t bucket) {
  if (bucket == 0) return {0, 0};
  const std::uint64_t lo = 1ull << (bucket - 1);
  return {lo, bucket >= 64 ? ~0ull : (lo << 1) - 1};
}

void MetricsRegistry::ObserveHistogram(const std::string& name,
                                       std::uint64_t value,
                                       std::uint64_t weight) {
  if (weight == 0) return;
  const std::size_t bucket = HistogramBucket(value);
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot& hist = histograms_[name];
  if (bucket >= hist.buckets.size()) hist.buckets.resize(bucket + 1, 0);
  hist.buckets[bucket] += weight;
  hist.count += weight;
  hist.sum += value * weight;
}

MetricsRegistry::HistogramSnapshot MetricsRegistry::histogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSnapshot{} : it->second;
}

std::string MetricsRegistry::ToJson(bool include_volatile) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {  // std::map: sorted keys
    if (!first) out += ',';
    first = false;
    out += JsonQuote(name) + ':' + std::to_string(value);
  }
  out += '}';
  if (!histograms_.empty()) {
    // Deterministic like the counters: buckets depend only on the observed
    // values, so this section is part of the byte-stable surface.
    out += ",\"histograms\":{";
    first = true;
    for (const auto& [name, hist] : histograms_) {
      if (!first) out += ',';
      first = false;
      out += JsonQuote(name) + ":{\"buckets\":[";
      for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
        if (b > 0) out += ',';
        out += std::to_string(hist.buckets[b]);
      }
      out += "],\"count\":" + std::to_string(hist.count) +
             ",\"sum\":" + std::to_string(hist.sum) + '}';
    }
    out += '}';
  }
  if (include_volatile) {
    out += ",\"gauges\":{";
    first = true;
    for (const auto& [name, value] : gauges_) {
      if (!first) out += ',';
      first = false;
      out += JsonQuote(name) + ':' + std::to_string(value);
    }
    out += "},\"spans\":{";
    first = true;
    for (const auto& [name, span] : spans_) {
      if (!first) out += ',';
      first = false;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "{\"seconds\":%.6f,\"count\":%llu}",
                    span.seconds,
                    static_cast<unsigned long long>(span.count));
      out += JsonQuote(name) + ':' + buf;
    }
    out += '}';
  }
  out += '}';
  return out;
}

ScopedSpan::ScopedSpan(MetricsRegistry* registry, std::string name)
    : registry_(registry), name_(std::move(name)) {}

ScopedSpan::~ScopedSpan() {
  MetricsRegistry::Observe(registry_, name_, watch_.ElapsedSeconds());
}

}  // namespace ces::support
