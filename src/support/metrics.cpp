#include "support/metrics.hpp"

#include <cstdio>
#include <utility>

#include "support/json.hpp"

namespace ces::support {

void MetricsRegistry::Add(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(const std::string& name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

std::uint64_t MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

void MetricsRegistry::Observe(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Span& span = spans_[name];
  span.seconds += seconds;
  ++span.count;
}

double MetricsRegistry::span_seconds(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = spans_.find(name);
  return it == spans_.end() ? 0.0 : it->second.seconds;
}

std::size_t MetricsRegistry::HistogramBucket(std::uint64_t value) {
  std::size_t bucket = 0;
  while (value != 0) {
    ++bucket;
    value >>= 1;
  }
  return bucket;  // 0 for 0, floor(log2(v)) + 1 otherwise
}

std::pair<std::uint64_t, std::uint64_t> MetricsRegistry::HistogramBucketRange(
    std::size_t bucket) {
  if (bucket == 0) return {0, 0};
  const std::uint64_t lo = 1ull << (bucket - 1);
  return {lo, bucket >= 64 ? ~0ull : (lo << 1) - 1};
}

void MetricsRegistry::ObserveHistogramLocked(
    std::map<std::string, HistogramSnapshot>& into, const std::string& name,
    std::uint64_t value, std::uint64_t weight) {
  const std::size_t bucket = HistogramBucket(value);
  HistogramSnapshot& hist = into[name];
  if (bucket >= hist.buckets.size()) hist.buckets.resize(bucket + 1, 0);
  hist.buckets[bucket] += weight;
  hist.count += weight;
  hist.sum += value * weight;
}

void MetricsRegistry::ObserveHistogram(const std::string& name,
                                       std::uint64_t value,
                                       std::uint64_t weight) {
  if (weight == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ObserveHistogramLocked(histograms_, name, value, weight);
}

MetricsRegistry::HistogramSnapshot MetricsRegistry::histogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSnapshot{} : it->second;
}

void MetricsRegistry::ObserveVolatileHistogram(const std::string& name,
                                               std::uint64_t value,
                                               std::uint64_t weight) {
  if (weight == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ObserveHistogramLocked(volatile_histograms_, name, value, weight);
}

MetricsRegistry::HistogramSnapshot MetricsRegistry::volatile_histogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = volatile_histograms_.find(name);
  return it == volatile_histograms_.end() ? HistogramSnapshot{} : it->second;
}

std::uint64_t MetricsRegistry::HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  // Rank of the q-quantile observation, 1-based and clamped into [1, count].
  std::uint64_t rank = 1;
  if (q >= 1.0) {
    rank = count;
  } else if (q > 0.0) {
    const double scaled = q * static_cast<double>(count);
    rank = static_cast<std::uint64_t>(scaled);
    if (static_cast<double>(rank) < scaled) ++rank;  // ceil
    if (rank == 0) rank = 1;
    if (rank > count) rank = count;
  }
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) return HistogramBucketRange(b).second;
  }
  return HistogramBucketRange(buckets.empty() ? 0 : buckets.size() - 1).second;
}

namespace {

void AppendHistogramJson(
    std::string& out, const char* section,
    const std::map<std::string, MetricsRegistry::HistogramSnapshot>& hists,
    bool include_percentiles) {
  out += ",\"";
  out += section;
  out += "\":{";
  bool first = true;
  for (const auto& [name, hist] : hists) {
    if (!first) out += ',';
    first = false;
    out += JsonQuote(name) + ":{\"buckets\":[";
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
      if (b > 0) out += ',';
      out += std::to_string(hist.buckets[b]);
    }
    out += "],\"count\":" + std::to_string(hist.count) +
           ",\"sum\":" + std::to_string(hist.sum);
    if (include_percentiles) {
      out += ",\"p50\":" + std::to_string(hist.Percentile(0.50)) +
             ",\"p90\":" + std::to_string(hist.Percentile(0.90)) +
             ",\"p99\":" + std::to_string(hist.Percentile(0.99));
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

std::string MetricsRegistry::ToJson(bool include_volatile,
                                    bool include_percentiles) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {  // std::map: sorted keys
    if (!first) out += ',';
    first = false;
    out += JsonQuote(name) + ':' + std::to_string(value);
  }
  out += '}';
  if (!histograms_.empty()) {
    // Deterministic like the counters: buckets depend only on the observed
    // values, so this section is part of the byte-stable surface (the
    // optional percentiles are derived from the buckets and inherit it).
    AppendHistogramJson(out, "histograms", histograms_, include_percentiles);
  }
  if (include_volatile) {
    out += ",\"gauges\":{";
    first = true;
    for (const auto& [name, value] : gauges_) {
      if (!first) out += ',';
      first = false;
      out += JsonQuote(name) + ':' + std::to_string(value);
    }
    out += "},\"spans\":{";
    first = true;
    for (const auto& [name, span] : spans_) {
      if (!first) out += ',';
      first = false;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "{\"seconds\":%.6f,\"count\":%llu}",
                    span.seconds,
                    static_cast<unsigned long long>(span.count));
      out += JsonQuote(name) + ':' + buf;
    }
    out += '}';
    if (!volatile_histograms_.empty()) {
      AppendHistogramJson(out, "volatile_histograms", volatile_histograms_,
                          include_percentiles);
    }
  }
  out += '}';
  return out;
}

namespace {

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's
// dotted names map onto that with dots (and any other hostile byte) as
// underscores, under a "ces_" namespace prefix.
std::string PrometheusName(const std::string& name) {
  std::string out = "ces_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void AppendPrometheusHistogram(
    std::string& out, const std::string& name,
    const MetricsRegistry::HistogramSnapshot& hist) {
  const std::string pname = PrometheusName(name);
  out += "# TYPE " + pname + " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
    cumulative += hist.buckets[b];
    const std::uint64_t hi = MetricsRegistry::HistogramBucketRange(b).second;
    out += pname + "_bucket{le=\"" + std::to_string(hi) +
           "\"} " + std::to_string(cumulative) + '\n';
  }
  out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count) + '\n';
  out += pname + "_sum " + std::to_string(hist.sum) + '\n';
  out += pname + "_count " + std::to_string(hist.count) + '\n';
}

}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, value] : counters_) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + ' ' + std::to_string(value) + '\n';
  }
  for (const auto& [name, value] : gauges_) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + ' ' + std::to_string(value) + '\n';
  }
  for (const auto& [name, span] : spans_) {
    const std::string pname = PrometheusName(name) + "_seconds";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", span.seconds);
    out += "# TYPE " + pname + " summary\n";
    out += pname + "_sum " + buf + '\n';
    out += pname + "_count " + std::to_string(span.count) + '\n';
  }
  for (const auto& [name, hist] : histograms_) {
    AppendPrometheusHistogram(out, name, hist);
  }
  for (const auto& [name, hist] : volatile_histograms_) {
    AppendPrometheusHistogram(out, name, hist);
  }
  return out;
}

ScopedSpan::ScopedSpan(MetricsRegistry* registry, std::string name)
    : registry_(registry), name_(std::move(name)) {}

ScopedSpan::~ScopedSpan() {
  MetricsRegistry::Observe(registry_, name_, watch_.ElapsedSeconds());
}

}  // namespace ces::support
