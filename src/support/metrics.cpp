#include "support/metrics.hpp"

#include <cstdio>
#include <utility>

namespace ces::support {
namespace {

// Minimal JSON string escaping for metric names (which are library-chosen
// identifiers, but a registry is only as trustworthy as its serialisation).
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void MetricsRegistry::Add(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(const std::string& name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

std::uint64_t MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

void MetricsRegistry::Observe(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Span& span = spans_[name];
  span.seconds += seconds;
  ++span.count;
}

double MetricsRegistry::span_seconds(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = spans_.find(name);
  return it == spans_.end() ? 0.0 : it->second.seconds;
}

std::string MetricsRegistry::ToJson(bool include_volatile) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {  // std::map: sorted keys
    if (!first) out += ',';
    first = false;
    out += '"' + EscapeJson(name) + "\":" + std::to_string(value);
  }
  out += '}';
  if (include_volatile) {
    out += ",\"gauges\":{";
    first = true;
    for (const auto& [name, value] : gauges_) {
      if (!first) out += ',';
      first = false;
      out += '"' + EscapeJson(name) + "\":" + std::to_string(value);
    }
    out += "},\"spans\":{";
    first = true;
    for (const auto& [name, span] : spans_) {
      if (!first) out += ',';
      first = false;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "{\"seconds\":%.6f,\"count\":%llu}",
                    span.seconds,
                    static_cast<unsigned long long>(span.count));
      out += '"' + EscapeJson(name) + "\":" + buf;
    }
    out += '}';
  }
  out += '}';
  return out;
}

ScopedSpan::ScopedSpan(MetricsRegistry* registry, std::string name)
    : registry_(registry), name_(std::move(name)) {}

ScopedSpan::~ScopedSpan() {
  MetricsRegistry::Observe(registry_, name_, watch_.ElapsedSeconds());
}

}  // namespace ces::support
