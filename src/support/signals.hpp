// Cooperative SIGINT/SIGTERM handling for the long-running entry points.
//
// Signal handlers proper can only touch async-signal-safe state, which rules
// out everything worth doing on interruption — serialising a TraceSink,
// emitting the metrics JSON line, draining a server. SignalWatcher uses the
// portable alternative: it blocks the watched signals in the constructing
// thread (threads spawned afterwards inherit the mask, so the whole pool is
// covered when the watcher is created before any worker) and consumes them
// with sigwait() on a dedicated thread, where the callback runs as ordinary
// code free to take locks and do IO.
//
// cachedse uses this to flush --trace-out and --metrics=json before dying on
// Ctrl-C; cachedse-server uses it to trigger a graceful drain on SIGTERM.
#pragma once

#include <csignal>

#include <atomic>
#include <functional>
#include <thread>

namespace ces::support {

class SignalWatcher {
 public:
  // Blocks SIGINT and SIGTERM for the calling thread (and every thread it
  // spawns afterwards) and invokes `on_signal(signo)` on the watcher thread
  // for each delivery. The callback may be invoked multiple times (e.g. a
  // second Ctrl-C while the first is still draining); it decides whether to
  // escalate. Construct before creating worker threads.
  explicit SignalWatcher(std::function<void(int)> on_signal);

  // Restores the previous signal mask and stops the watcher thread. Signals
  // delivered after destruction revert to their default disposition.
  ~SignalWatcher();

  SignalWatcher(const SignalWatcher&) = delete;
  SignalWatcher& operator=(const SignalWatcher&) = delete;

 private:
  std::function<void(int)> on_signal_;
  std::atomic<bool> stopping_{false};
  sigset_t watched_;
  sigset_t previous_mask_;
  std::thread watcher_;
};

}  // namespace ces::support
