// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the library (synthetic trace generators, random
// replacement policy, property tests) draw from this generator so that runs
// are reproducible bit-for-bit across platforms; std::mt19937 distributions
// are implementation-defined, which is why we roll our own bounded draw.
#pragma once

#include <cstdint>

namespace ces {

// xoshiro256** by Blackman & Vigna (public domain reference implementation),
// seeded through SplitMix64 so that nearby seeds give unrelated streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform draw in [0, bound). bound must be non-zero.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Rejection sampling on the top bits to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform draw in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(NextBounded(span));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace ces
