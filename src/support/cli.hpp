// Minimal command-line flag parsing for the example and bench binaries.
// Accepted forms: --name=value, --name value, and boolean --name.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ces {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  // Non-flag arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ces
