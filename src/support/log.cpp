#include "support/log.hpp"

#include "support/json.hpp"

namespace ces::support {

std::string FormatRequestLogLine(const RequestLogEntry& entry) {
  std::string out;
  out.reserve(192);
  out += "{\"ts_us\":" + std::to_string(entry.ts_us);
  out += ",\"rid\":" + JsonQuote(entry.rid);
  out += ",\"id\":" + JsonQuote(entry.id);
  out += ",\"op\":" + JsonQuote(entry.op);
  out += ",\"trace\":" + JsonQuote(entry.trace);
  out += ",\"digest\":" + JsonQuote(entry.digest);
  out += ",\"outcome\":" + JsonQuote(entry.outcome);
  out += ",\"error\":" + JsonQuote(entry.error);
  out += ",\"queue_us\":" + std::to_string(entry.queue_us);
  out += ",\"exec_us\":" + std::to_string(entry.exec_us);
  out += ",\"total_us\":" + std::to_string(entry.total_us);
  out += ",\"bytes\":" + std::to_string(entry.bytes);
  out += '}';
  return out;
}

RequestLog::~RequestLog() {
  if (file_ != nullptr && owns_file_) std::fclose(file_);
}

bool RequestLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr && owns_file_) std::fclose(file_);
  file_ = nullptr;
  owns_file_ = false;
  if (path == "-") {
    file_ = stdout;
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  file_ = f;
  owns_file_ = true;
  return true;
}

std::uint64_t RequestLog::NowUs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void RequestLog::Write(const RequestLogEntry& entry) {
  const std::string line = FormatRequestLogLine(entry);
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

}  // namespace ces::support
