#include "support/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "support/check.hpp"

namespace ces {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CES_CHECK(!headers_.empty());
}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  CES_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto append_cell = [](std::string& out, const std::string& cell,
                        std::size_t width, bool left) {
    const std::string pad(width - cell.size(), ' ');
    if (left) {
      out += cell;
      out += pad;
    } else {
      out += pad;
      out += cell;
    }
  };

  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += "  ";
      append_cell(out, row[c], widths[c], c == 0);
    }
    out += '\n';
  };

  append_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out += std::string(total, '-');
  out += '\n';
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string FormatWithThousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out += ',';
    out += digits[i];
  }
  return out;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 0.001) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

}  // namespace ces
