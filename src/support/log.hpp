// Structured JSON request logging for the exploration service.
//
// One NDJSON line per finished request — completed, shed, or failed — so a
// live daemon can be tailed (`--log=-`) or post-processed without scraping
// free-form text. Lines keep a fixed field order (see RequestLogEntry) so
// downstream tools can diff and grep them positionally; every string value
// goes through support::JsonQuote, which is what keeps hostile trace names
// (quotes, control bytes, non-UTF8) from corrupting the stream.
//
// The sink is deliberately simple: an append-only FILE* ("-" means stdout)
// guarded by one mutex, flushed per line so `tail -f` and crash post-mortems
// see every completed request. Request logging sits on the response path,
// not the compute path, so a single lock is not a throughput concern at the
// request rates the scheduler admits.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace ces::support {

// Everything the service knows about one finished request. Fields are
// serialised in declaration order; absent strings are emitted as "" rather
// than omitted so every line has the same shape.
struct RequestLogEntry {
  std::uint64_t ts_us = 0;    // microseconds since the log was opened
  std::string rid;            // server-assigned request id ("r123")
  std::string id;             // client-supplied id (best-effort on bad lines)
  std::string op;             // wire op name, e.g. "explore"
  std::string trace;          // trace ref/name if the request carried one
  std::string digest;         // resolved content digest (hex) if known
  std::string outcome;        // computed|cache_hit|prelude_reused|shed|
                              // deadline|error|inline
  std::string error;          // error category name, "" on success
  std::uint64_t queue_us = 0;  // admission -> dequeue
  std::uint64_t exec_us = 0;   // dequeue -> response built
  std::uint64_t total_us = 0;  // admission -> response built
  std::uint64_t bytes = 0;     // serialised response size
};

// Renders the fixed-order JSON object for one entry (no trailing newline).
// Exposed separately from the sink so tests can pin the schema.
std::string FormatRequestLogLine(const RequestLogEntry& entry);

// Thread-safe NDJSON sink. Open() with a path or "-" for stdout; Write()
// appends one line and flushes. A default-constructed / failed-open log
// swallows writes, so callers thread a RequestLog* unconditionally.
class RequestLog {
 public:
  RequestLog() = default;
  ~RequestLog();

  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  // Returns false (and stays disabled) when the file cannot be opened.
  bool Open(const std::string& path);
  bool enabled() const { return file_ != nullptr; }

  void Write(const RequestLogEntry& entry);

  // Microseconds since this log object was constructed — the ts_us base, so
  // one log's timestamps are mutually comparable without a wall clock.
  std::uint64_t NowUs() const;

  // Null-safe helpers mirroring MetricsRegistry's style.
  static void Write(RequestLog* log, const RequestLogEntry& entry) {
    if (log != nullptr) log->Write(entry);
  }
  static std::uint64_t NowUs(const RequestLog* log) {
    return log != nullptr ? log->NowUs() : 0;
  }

 private:
  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
};

}  // namespace ces::support
