// Opt-in progress reporting for long-running phases (exhaustive sweeps,
// multi-depth preludes, large trace reads).
//
// A ProgressReporter renders "phase done/total (pct)" lines to a stream,
// rate-limited so per-unit Tick() calls from hot loops cannot flood the
// terminal: on a TTY it rewrites one line in place (carriage return) every
// ~100 ms; on a pipe or file it emits a plain line at most every ~2 s, so
// captured logs stay small and diffable. Progress output goes to stderr by
// convention and never mixes with the machine-readable stdout surfaces
// (--metrics=json, tables).
//
// Tick() is thread-safe (pool workers tick concurrently during parallel
// sweeps); BeginPhase()/EndPhase() are called from the orchestrating thread.
// Like TraceSink, instrumentation points use a process-global instance —
// GlobalTick() on a null global is one atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace ces::support {

class ProgressReporter {
 public:
  // `stream` is typically stderr. TTY detection picks the rendering mode;
  // `min_interval_seconds` < 0 selects the mode's default (0.1 s TTY,
  // 2 s otherwise).
  explicit ProgressReporter(std::FILE* stream = stderr,
                            double min_interval_seconds = -1.0);

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  // Starts a named phase of `total` work units (0 = unknown) and renders it
  // immediately. Implicitly ends any phase still open.
  void BeginPhase(const std::string& phase, std::uint64_t total);

  // Adds `delta` completed units and re-renders if the rate limit allows.
  void Tick(std::uint64_t delta = 1);

  // Renders the final count and terminates the in-place line (TTY mode).
  void EndPhase();

  std::uint64_t done() const { return done_.load(std::memory_order_relaxed); }

  static bool IsTty(std::FILE* stream);

  // Process-global reporter, null by default (disabled). The installer owns
  // the instance and must clear the global before destroying it.
  static ProgressReporter* Global();
  static void SetGlobal(ProgressReporter* reporter);
  static void GlobalTick(std::uint64_t delta = 1) {
    if (ProgressReporter* reporter = Global()) reporter->Tick(delta);
  }

 private:
  void Render(bool final);

  std::FILE* stream_;
  bool tty_;
  double min_interval_;
  std::atomic<std::uint64_t> done_{0};

  std::mutex mutex_;  // guards phase state and rendering
  std::string phase_;
  std::uint64_t total_ = 0;
  bool phase_open_ = false;
  double last_render_ = -1.0;  // seconds since an arbitrary epoch
};

}  // namespace ces::support
