// Fenwick (binary indexed) tree over a fixed range of positions.
//
// Used by the tree-based stack-distance engine (Bennett-Kruskal algorithm):
// marking each reference's most recent position and prefix-summing gives the
// number of distinct references in a window in O(log n) instead of the
// move-to-front scan's O(stack depth).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace ces {

// Fenwick tree over caller-owned storage: `tree` must hold at least
// `size + 1` zeroed int64 slots (slot 0 is unused). Lets hot loops reuse one
// scratch buffer across many short-lived trees instead of allocating per
// tree — the node scans of the fused prelude and the per-depth baseline both
// rely on this to stay allocation-free. Clear() re-zeroes exactly the slots a
// view of this size can have touched, so a larger backing buffer needs no
// full wipe between uses.
class FenwickView {
 public:
  FenwickView(std::int64_t* tree, std::size_t size)
      : tree_(tree), size_(size) {}

  std::size_t size() const { return size_; }

  // Adds `delta` at position `pos` (0-based).
  void Add(std::size_t pos, std::int64_t delta) {
    CES_DCHECK(pos < size_);
    for (std::size_t i = pos + 1; i <= size_; i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  // Sum of positions [0, pos] (0-based, inclusive).
  std::int64_t PrefixSum(std::size_t pos) const {
    CES_DCHECK(pos < size_);
    std::int64_t sum = 0;
    for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

  // Sum of positions [lo, hi] inclusive; 0 when the range is empty (lo > hi).
  std::int64_t RangeSum(std::size_t lo, std::size_t hi) const {
    if (lo > hi) return 0;
    return PrefixSum(hi) - (lo == 0 ? 0 : PrefixSum(lo - 1));
  }

  // Re-zeroes the slots this view may have written, readying the buffer for
  // the next (possibly differently sized) view.
  void Clear() {
    for (std::size_t i = 0; i <= size_; ++i) tree_[i] = 0;
  }

 private:
  std::int64_t* tree_;
  std::size_t size_;
};

class FenwickTree {
 public:
  explicit FenwickTree(std::size_t size) : tree_(size + 1, 0) {}

  std::size_t size() const { return tree_.size() - 1; }

  // Adds `delta` at position `pos` (0-based).
  void Add(std::size_t pos, std::int64_t delta) {
    CES_DCHECK(pos < size());
    for (std::size_t i = pos + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  // Sum of positions [0, pos] (0-based, inclusive).
  std::int64_t PrefixSum(std::size_t pos) const {
    CES_DCHECK(pos < size());
    std::int64_t sum = 0;
    for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

  // Sum of positions [lo, hi] inclusive; 0 when the range is empty (lo > hi).
  std::int64_t RangeSum(std::size_t lo, std::size_t hi) const {
    if (lo > hi) return 0;
    return PrefixSum(hi) - (lo == 0 ? 0 : PrefixSum(lo - 1));
  }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace ces
