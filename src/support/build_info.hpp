// Build provenance baked in at configure time.
//
// The git SHA is captured by CMake (`git rev-parse HEAD` in
// src/support/CMakeLists.txt) and compiled into this one translation unit,
// so the daemon's `health` op and the ces-bench-v1 `meta` block can state
// which commit produced them. Builds from a tarball (no .git) report
// "unknown".
#pragma once

#include <string>

namespace ces::support {

// The abbreviated (12-hex) commit SHA of the source tree, or "unknown".
const char* GitSha();

// The machine's hostname, or "unknown" when it cannot be read.
std::string Hostname();

}  // namespace ces::support
