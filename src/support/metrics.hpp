// Lightweight run metrics: named counters and wall-time spans.
//
// Every layer of the pipeline — trace readers, sweeps, Mattson scans, the
// analytical explorer — accepts an optional MetricsRegistry* and records what
// it did (refs parsed, lines skipped, configs swept/skipped, prelude time).
// Passing nullptr disables collection entirely: the null-safe static helpers
// compile to a predictable pointer test, so instrumented hot paths cost
// nothing when metrics are off.
//
// Counters and histograms are deterministic by construction (they count
// work, which the deterministic thread pool makes independent of the worker
// count), so ToJson() without timings is byte-identical across --jobs values
// — the property `cachedse --metrics=json` relies on. Spans (wall-clock) and
// gauges (environment facts like the pool size) are inherently run-specific
// and only appear when include_volatile is set.
//
// Histograms bucket values by powers of two: bucket 0 holds the value 0 and
// bucket b >= 1 holds [2^(b-1), 2^b - 1]. The bucket of a value depends on
// the value alone and uint64 bucket counts commute under addition, so a
// histogram filled from deterministic per-item values is itself
// deterministic regardless of observation order — which makes distributional
// metrics (stack-distance spectra, per-set miss counts, sweep shard sizes)
// safe to include in the byte-stable JSON.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/timer.hpp"

namespace ces::support {

class MetricsRegistry {
 public:
  // Counters: monotonically accumulated event counts. Dotted lower-case
  // names by convention, e.g. "trace.refs_parsed".
  void Add(const std::string& name, std::uint64_t delta = 1);
  std::uint64_t counter(const std::string& name) const;

  // Gauges: last-write-wins facts about the run (pool size, flag values).
  // Volatile — excluded from deterministic JSON.
  void SetGauge(const std::string& name, std::uint64_t value);
  std::uint64_t gauge(const std::string& name) const;

  // Spans: accumulated wall-clock seconds plus an invocation count.
  // Volatile — excluded from deterministic JSON.
  void Observe(const std::string& name, double seconds);
  double span_seconds(const std::string& name) const;

  // Histograms: power-of-two-bucketed value distributions. Deterministic —
  // included in the stable JSON whenever any histogram has been observed.
  // `weight` adds that many observations of `value` at once (useful when
  // folding an existing exact histogram into the bucketed one).
  struct HistogramSnapshot {
    std::vector<std::uint64_t> buckets;  // buckets[b]: see HistogramBucket
    std::uint64_t count = 0;             // total observations
    std::uint64_t sum = 0;               // sum of observed values

    // The value at quantile q in (0, 1]: the upper bound of the bucket
    // holding the ceil(q * count)-th smallest observation. Exact for the
    // bucketed distribution (every observation in a bucket is counted at
    // the bucket's upper bound), deterministic because the buckets are.
    // Returns 0 for an empty histogram; q <= 0 reads the first observation
    // and q >= 1 the last.
    std::uint64_t Percentile(double q) const;
  };
  void ObserveHistogram(const std::string& name, std::uint64_t value,
                        std::uint64_t weight = 1);
  HistogramSnapshot histogram(const std::string& name) const;

  // Volatile histograms: same bucketing, but for wall-clock-derived values
  // (request latencies, queue waits) whose distribution varies run to run.
  // Excluded from deterministic JSON; emitted with the gauges/spans when
  // include_volatile is set.
  void ObserveVolatileHistogram(const std::string& name, std::uint64_t value,
                                std::uint64_t weight = 1);
  HistogramSnapshot volatile_histogram(const std::string& name) const;

  // The bucket index of `value`: 0 for 0, otherwise floor(log2(value)) + 1.
  static std::size_t HistogramBucket(std::uint64_t value);
  // The inclusive [lo, hi] value range of bucket `bucket`.
  static std::pair<std::uint64_t, std::uint64_t> HistogramBucketRange(
      std::size_t bucket);

  // Stable JSON rendering: keys sorted; counters always present and
  // histograms whenever non-empty (both deterministic); gauges, spans and
  // volatile histograms only when include_volatile is true. When
  // include_percentiles is set every histogram additionally carries exact
  // "p50"/"p90"/"p99" fields (derived from the buckets, so the section
  // stays deterministic where the buckets are). No trailing newline.
  std::string ToJson(bool include_volatile = false,
                     bool include_percentiles = false) const;

  // Prometheus text exposition (version 0.0.4) of the full snapshot,
  // volatile series included: counters and gauges as scalar samples,
  // histograms (deterministic and volatile) as cumulative `_bucket{le=...}`
  // series with `_sum`/`_count`, spans as `_seconds_sum`/`_seconds_count`.
  // Metric names are prefixed "ces_" with dots mapped to underscores.
  std::string ToPrometheus() const;

  // Null-safe helpers so instrumented code never branches on its own.
  static void Add(MetricsRegistry* metrics, const std::string& name,
                  std::uint64_t delta = 1) {
    if (metrics != nullptr) metrics->Add(name, delta);
  }
  static void SetGauge(MetricsRegistry* metrics, const std::string& name,
                       std::uint64_t value) {
    if (metrics != nullptr) metrics->SetGauge(name, value);
  }
  static void Observe(MetricsRegistry* metrics, const std::string& name,
                      double seconds) {
    if (metrics != nullptr) metrics->Observe(name, seconds);
  }
  static void ObserveHistogram(MetricsRegistry* metrics,
                               const std::string& name, std::uint64_t value,
                               std::uint64_t weight = 1) {
    if (metrics != nullptr) metrics->ObserveHistogram(name, value, weight);
  }
  static void ObserveVolatileHistogram(MetricsRegistry* metrics,
                                       const std::string& name,
                                       std::uint64_t value,
                                       std::uint64_t weight = 1) {
    if (metrics != nullptr) {
      metrics->ObserveVolatileHistogram(name, value, weight);
    }
  }

 private:
  struct Span {
    double seconds = 0.0;
    std::uint64_t count = 0;
  };

  void ObserveHistogramLocked(std::map<std::string, HistogramSnapshot>& into,
                              const std::string& name, std::uint64_t value,
                              std::uint64_t weight);

  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::uint64_t> gauges_;
  std::map<std::string, Span> spans_;
  std::map<std::string, HistogramSnapshot> histograms_;
  std::map<std::string, HistogramSnapshot> volatile_histograms_;
};

// RAII wall-time span: records the elapsed time into `registry` (if any) on
// destruction. Safe to construct with a null registry.
class ScopedSpan {
 public:
  ScopedSpan(MetricsRegistry* registry, std::string name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  MetricsRegistry* registry_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace ces::support
