// SHA-256 (NIST FIPS 180-2) with an incremental update API.
//
// The service layer content-addresses traces by the digest of their
// canonical byte form (service::TraceStore), so the hash must be computable
// without materialising that form: callers stream header fields and the
// reference array through Update() and read the digest once at the end.
// The implementation is the straightforward single-block compressor — traces
// hash at memory speed relative to the preludes computed on them, so there
// is nothing to win from vectorisation here.
//
// Test vectors from FIPS 180-2 appendix B (one-block, multi-block and the
// million-'a' stream) are pinned in tests/support_test.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ces::support {

class Sha256 {
 public:
  static constexpr std::size_t kDigestBytes = 32;
  using Digest = std::array<std::uint8_t, kDigestBytes>;

  Sha256() { Reset(); }

  // Restores the freshly-constructed state so one instance can hash many
  // messages.
  void Reset();

  // Absorbs `len` bytes. May be called any number of times with arbitrary
  // chunk sizes; the concatenation of all chunks is the hashed message.
  void Update(const void* data, std::size_t len);
  void Update(std::string_view bytes) { Update(bytes.data(), bytes.size()); }

  // Finalises and returns the digest. The instance must be Reset() before
  // it can absorb another message (Update after Finish throws
  // support::Error kInternal — finalisation pads the stream, so continuing
  // would silently hash a different message).
  Digest Finish();

  // Finish() rendered as 64 lower-case hex characters.
  std::string FinishHex();

  // One-shot conveniences.
  static Digest Of(std::string_view bytes);
  static std::string HexOf(std::string_view bytes);

 private:
  void Compress(const std::uint8_t block[64]);

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;      // valid bytes in buffer_
  std::uint64_t total_bytes_ = 0; // message length so far
  bool finished_ = false;
};

}  // namespace ces::support
