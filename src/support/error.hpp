// Structured error taxonomy for the trace-ingestion -> exploration -> report
// path.
//
// Every reader and engine in the library throws ces::support::Error instead
// of bare std::runtime_error, so callers (and the cachedse CLI) can react to
// *what kind* of failure occurred — a truncated stream retries differently
// from a semantic validation failure — and surface where in the input it
// happened (line for text formats, byte offset for binary ones). Error
// derives from std::runtime_error, so existing catch sites keep working.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ces::support {

enum class ErrorCategory : std::uint8_t {
  kIo = 0,          // cannot open / read / write a file
  kFormat,          // structural damage: bad magic, bad version, bad header
  kParse,           // malformed text: bad hex, bad label, trailing garbage
  kRange,           // a value overflows its representable or declared range
  kTruncated,       // the stream ended before the declared content did
  kUnsupported,     // recognised but deliberately not handled here
  kValidation,      // semantically inconsistent input (count vs stream size,
                    // reference vs address_bits, ...)
  kUsage,           // caller misuse: bad flag value, bad option combination
  kInternal,        // invariant violation inside the library
};

// Stable lower-case identifier ("io", "format", ...) used in messages, the
// metrics JSON, and docs/ERRORS.md.
const char* ToString(ErrorCategory category);

// Process exit code cachedse maps the category to. Distinct per category:
// usage = 2, io = 3, format = 4, parse = 5, range = 6, truncated = 7,
// unsupported = 8, validation = 9, internal = 10. (0 is success, 1 is an
// unstructured std::exception.)
int ExitCodeFor(ErrorCategory category);

class Error : public std::runtime_error {
 public:
  static constexpr std::uint64_t kNoLine = 0;          // lines are 1-based
  static constexpr std::uint64_t kNoOffset = ~std::uint64_t{0};

  // `context` names the input or subsystem ("trace-text", "dinero",
  // "trace-binary", "explorer"); `detail` describes the failure. The what()
  // string is "[category] context: line N: detail" / "[category] context:
  // byte B: detail" / "[category] context: detail".
  Error(ErrorCategory category, std::string context, std::string detail,
        std::uint64_t line = kNoLine, std::uint64_t byte_offset = kNoOffset);

  ErrorCategory category() const { return category_; }
  const std::string& context() const { return context_; }
  const std::string& detail() const { return detail_; }
  // 1-based line of the offending input; kNoLine when not line-oriented.
  std::uint64_t line() const { return line_; }
  // Byte offset of the offending input; kNoOffset when unknown.
  std::uint64_t byte_offset() const { return byte_offset_; }

 private:
  ErrorCategory category_;
  std::string context_;
  std::string detail_;
  std::uint64_t line_;
  std::uint64_t byte_offset_;
};

}  // namespace ces::support
