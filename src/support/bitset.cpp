#include "support/bitset.hpp"

#include <bit>

#include "support/check.hpp"

namespace ces {

DynamicBitset::DynamicBitset(std::size_t bit_count)
    : bit_count_(bit_count),
      words_((bit_count + kBitsPerWord - 1) / kBitsPerWord, 0) {}

void DynamicBitset::Set(std::size_t pos) {
  CES_DCHECK(pos < bit_count_);
  words_[pos / kBitsPerWord] |= std::uint64_t{1} << (pos % kBitsPerWord);
}

void DynamicBitset::Reset(std::size_t pos) {
  CES_DCHECK(pos < bit_count_);
  words_[pos / kBitsPerWord] &= ~(std::uint64_t{1} << (pos % kBitsPerWord));
}

bool DynamicBitset::Test(std::size_t pos) const {
  CES_DCHECK(pos < bit_count_);
  return (words_[pos / kBitsPerWord] >> (pos % kBitsPerWord)) & 1u;
}

std::size_t DynamicBitset::Count() const {
  std::size_t total = 0;
  for (std::uint64_t word : words_) {
    total += static_cast<std::size_t>(std::popcount(word));
  }
  return total;
}

bool DynamicBitset::Any() const {
  for (std::uint64_t word : words_) {
    if (word != 0) return true;
  }
  return false;
}

void DynamicBitset::Clear() {
  for (std::uint64_t& word : words_) word = 0;
}

void DynamicBitset::IntersectWith(const DynamicBitset& other) {
  CES_CHECK(bit_count_ == other.bit_count_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void DynamicBitset::UnionWith(const DynamicBitset& other) {
  CES_CHECK(bit_count_ == other.bit_count_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

std::size_t DynamicBitset::IntersectionSize(const DynamicBitset& a,
                                            const DynamicBitset& b) {
  CES_CHECK(a.bit_count_ == b.bit_count_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(a.words_[i] & b.words_[i]));
  }
  return total;
}

DynamicBitset DynamicBitset::Intersection(const DynamicBitset& a,
                                          const DynamicBitset& b) {
  DynamicBitset out = a;
  out.IntersectWith(b);
  return out;
}

std::vector<std::uint32_t> DynamicBitset::ToVector() const {
  std::vector<std::uint32_t> out;
  out.reserve(Count());
  ForEachSetBit(
      [&out](std::size_t pos) { out.push_back(static_cast<std::uint32_t>(pos)); });
  return out;
}

int DynamicBitset::CountTrailingZeros(std::uint64_t word) {
  return std::countr_zero(word);
}

}  // namespace ces
