#include "support/error.hpp"

namespace ces::support {
namespace {

std::string FormatWhat(ErrorCategory category, const std::string& context,
                       const std::string& detail, std::uint64_t line,
                       std::uint64_t byte_offset) {
  std::string what = "[";
  what += ToString(category);
  what += "] ";
  what += context;
  what += ": ";
  if (line != Error::kNoLine) {
    what += "line " + std::to_string(line) + ": ";
  } else if (byte_offset != Error::kNoOffset) {
    what += "byte " + std::to_string(byte_offset) + ": ";
  }
  what += detail;
  return what;
}

}  // namespace

const char* ToString(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kIo:
      return "io";
    case ErrorCategory::kFormat:
      return "format";
    case ErrorCategory::kParse:
      return "parse";
    case ErrorCategory::kRange:
      return "range";
    case ErrorCategory::kTruncated:
      return "truncated";
    case ErrorCategory::kUnsupported:
      return "unsupported";
    case ErrorCategory::kValidation:
      return "validation";
    case ErrorCategory::kUsage:
      return "usage";
    case ErrorCategory::kInternal:
      return "internal";
  }
  return "unknown";
}

int ExitCodeFor(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kUsage:
      return 2;
    case ErrorCategory::kIo:
      return 3;
    case ErrorCategory::kFormat:
      return 4;
    case ErrorCategory::kParse:
      return 5;
    case ErrorCategory::kRange:
      return 6;
    case ErrorCategory::kTruncated:
      return 7;
    case ErrorCategory::kUnsupported:
      return 8;
    case ErrorCategory::kValidation:
      return 9;
    case ErrorCategory::kInternal:
      return 10;
  }
  return 1;
}

Error::Error(ErrorCategory category, std::string context, std::string detail,
             std::uint64_t line, std::uint64_t byte_offset)
    : std::runtime_error(
          FormatWhat(category, context, detail, line, byte_offset)),
      category_(category),
      context_(std::move(context)),
      detail_(std::move(detail)),
      line_(line),
      byte_offset_(byte_offset) {}

}  // namespace ces::support
