// Execution tracing in the Chrome trace-event format.
//
// A TraceSink collects timestamped begin/end ("B"/"E"), instant ("i") and
// thread-name metadata ("M") events and serialises them as trace-event JSON
// that chrome://tracing and https://ui.perfetto.dev load directly. The paper
// argues about *runtime* — Tables 31-32 and Figure 4 — so the pipeline needs
// per-phase, per-worker visibility, not just the aggregate counters and
// spans of MetricsRegistry: a profile shows where the prelude time goes,
// which pool workers idle, and how the sweep shards balance.
//
// Concurrency: the sink is lock-sharded. Each thread appends to the shard
// selected by its track id, so contention only occurs when many threads hash
// to one shard; a global sequence counter keeps a total event order for
// serialisation. Track ids ("tid" in the JSON) are assigned per thread on
// first use; support::ThreadPool names its workers' tracks ("pool worker N")
// so a profile shows one swim-lane per worker.
//
// Instrumentation points use the process-global sink (Global()/SetGlobal):
// tracing is a whole-run concern and threading a sink pointer through every
// signature — on top of the MetricsRegistry* the layers already take — would
// double the plumbing for a purely observational feature. When no global
// sink is installed every helper is a null check; instrumented hot paths
// cost one relaxed atomic load.
//
// Tracing is inherently volatile (wall-clock timestamps, scheduling-
// dependent interleavings); nothing here feeds the deterministic
// --metrics=json surface. See docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/timer.hpp"

namespace ces::support {

class TraceSink {
 public:
  TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Duration events: strictly nested per thread by construction when emitted
  // through ScopedTraceSpan (preferred); manual Begin/End must pair up in
  // LIFO order on the same thread.
  void Begin(const std::string& name);
  void End(const std::string& name);

  // A zero-duration marker on the calling thread's track.
  void Instant(const std::string& name);

  // Labels the calling thread's track in the rendered profile (emitted as a
  // "thread_name" metadata event). Later calls overwrite earlier ones.
  void NameThisThread(const std::string& name);

  // Total events recorded so far (metadata names excluded).
  std::uint64_t event_count() const;

  // Serialises {"traceEvents":[...]} — metadata first, then every event in
  // global sequence order. Timestamps are microseconds since the sink was
  // constructed.
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;
  // Writes ToJson() to `path`; throws support::Error (kIo) on failure.
  void WriteJsonFile(const std::string& path) const;

  // The process-global sink instrumentation points report to. Null (the
  // default) disables tracing. The caller that installs a sink owns it and
  // must SetGlobal(nullptr) before destroying it.
  static TraceSink* Global();
  static void SetGlobal(TraceSink* sink);

 private:
  struct Record {
    std::uint64_t seq = 0;
    std::uint64_t ts_us = 0;
    std::uint32_t tid = 0;
    char phase = 'i';
    std::string name;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::vector<Record> records;
  };
  static constexpr std::size_t kShards = 16;

  std::uint32_t ThisThreadTid();
  void Record_(char phase, const std::string& name);

  Stopwatch clock_;
  const std::uint64_t sink_id_;  // process-unique, keys the per-thread cache
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> sequence_{0};
  std::atomic<std::uint32_t> next_tid_{0};
  mutable std::mutex names_mutex_;
  std::map<std::uint32_t, std::string> thread_names_;
};

// RAII begin/end pair against the global sink (or an explicit one). Safe —
// and nearly free — when no sink is installed. The sink observed at
// construction is captured, so a span never splits across a SetGlobal call.
class ScopedTraceSpan {
 public:
  explicit ScopedTraceSpan(std::string name,
                           TraceSink* sink = TraceSink::Global());
  ~ScopedTraceSpan();

  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  TraceSink* sink_;
  std::string name_;
};

}  // namespace ces::support
