#include "support/build_info.hpp"

#include <unistd.h>

namespace ces::support {

#ifndef CES_GIT_SHA
#define CES_GIT_SHA "unknown"
#endif

const char* GitSha() { return CES_GIT_SHA; }

std::string Hostname() {
  char buf[256];
  if (gethostname(buf, sizeof(buf)) != 0) return "unknown";
  buf[sizeof(buf) - 1] = '\0';
  return buf[0] == '\0' ? std::string("unknown") : std::string(buf);
}

}  // namespace ces::support
