// Dynamic bitset tuned for the set algebra of the analytical cache explorer.
//
// The paper (section 2.4) notes that "sets are efficient to represent, store,
// and manipulate on a computer system using bit vectors"; zero/one sets and
// BCAT node sets are represented with this class. The operations that matter
// are intersection, intersection cardinality, and iteration over members.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ces {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  // Creates a bitset able to hold bits [0, bit_count), all clear.
  explicit DynamicBitset(std::size_t bit_count);

  // Number of addressable bits.
  std::size_t size() const { return bit_count_; }

  void Set(std::size_t pos);
  void Reset(std::size_t pos);
  bool Test(std::size_t pos) const;

  // Number of set bits.
  std::size_t Count() const;

  bool Any() const;
  bool None() const { return !Any(); }

  // Clears every bit, keeping the size.
  void Clear();

  // this &= other / this |= other. Sizes must match.
  void IntersectWith(const DynamicBitset& other);
  void UnionWith(const DynamicBitset& other);

  // Returns popcount(a & b) without materialising the intersection.
  static std::size_t IntersectionSize(const DynamicBitset& a,
                                      const DynamicBitset& b);

  // Returns a & b.
  static DynamicBitset Intersection(const DynamicBitset& a,
                                    const DynamicBitset& b);

  // Calls fn(index) for every set bit in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = CountTrailingZeros(word);
        fn(w * kBitsPerWord + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  // Ascending list of set-bit indices.
  std::vector<std::uint32_t> ToVector() const;

  friend bool operator==(const DynamicBitset& a,
                         const DynamicBitset& b) = default;

 private:
  static constexpr std::size_t kBitsPerWord = 64;

  static int CountTrailingZeros(std::uint64_t word);

  std::size_t bit_count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ces
