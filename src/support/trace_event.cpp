#include "support/trace_event.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/json.hpp"

namespace ces::support {
namespace {

std::atomic<TraceSink*> g_sink{nullptr};

// Monotone id per sink instance. The per-thread tid cache is keyed on this
// rather than the sink's address, so a new sink allocated where a destroyed
// one lived still forces re-registration (no ABA tid collisions).
std::atomic<std::uint64_t> g_next_sink_id{1};

}  // namespace

TraceSink* TraceSink::Global() {
  return g_sink.load(std::memory_order_acquire);
}

void TraceSink::SetGlobal(TraceSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

TraceSink::TraceSink()
    : sink_id_(g_next_sink_id.fetch_add(1, std::memory_order_relaxed)) {}

std::uint32_t TraceSink::ThisThreadTid() {
  // Track ids are assigned per (thread, sink) on first use. The cache is
  // keyed on the sink's unique id so a thread that outlives one sink
  // re-registers with the next instead of reusing a stale id.
  struct TidCache {
    std::uint64_t sink_id = 0;
    std::uint32_t tid = 0;
  };
  thread_local TidCache cache;
  if (cache.sink_id != sink_id_) {
    cache.sink_id = sink_id_;
    cache.tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  }
  return cache.tid;
}

void TraceSink::Record_(char phase, const std::string& name) {
  Record record;
  record.ts_us =
      static_cast<std::uint64_t>(clock_.ElapsedSeconds() * 1e6);
  record.tid = ThisThreadTid();
  record.phase = phase;
  record.name = name;
  record.seq = sequence_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shards_[record.tid % kShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.records.push_back(std::move(record));
}

void TraceSink::Begin(const std::string& name) { Record_('B', name); }

void TraceSink::End(const std::string& name) { Record_('E', name); }

void TraceSink::Instant(const std::string& name) { Record_('i', name); }

void TraceSink::NameThisThread(const std::string& name) {
  const std::uint32_t tid = ThisThreadTid();
  std::lock_guard<std::mutex> lock(names_mutex_);
  thread_names_[tid] = name;
}

std::uint64_t TraceSink::event_count() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.records.size();
  }
  return total;
}

void TraceSink::WriteJson(std::ostream& os) const {
  // Snapshot every shard, then restore the global order: seq is a total
  // order consistent with each thread's program order, so B/E nesting per
  // tid survives serialisation.
  std::vector<Record> records;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    records.insert(records.end(), shard.records.begin(), shard.records.end());
  }
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) { return a.seq < b.seq; });

  os << "{\"traceEvents\":[";
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(names_mutex_);
    for (const auto& [tid, name] : thread_names_) {
      if (!first) os << ',';
      first = false;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
         << ",\"args\":{\"name\":" << JsonQuote(name) << "}}";
    }
  }
  for (const Record& record : records) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":" << JsonQuote(record.name) << ",\"ph\":\""
       << record.phase << "\",\"ts\":" << record.ts_us
       << ",\"pid\":1,\"tid\":" << record.tid;
    if (record.phase == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
    os << '}';
  }
  os << "]}";
}

std::string TraceSink::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

void TraceSink::WriteJsonFile(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw Error(ErrorCategory::kIo, "trace-event", "cannot open " + path);
  }
  WriteJson(os);
  os << '\n';
  if (!os) {
    throw Error(ErrorCategory::kIo, "trace-event", "write failed: " + path);
  }
}

ScopedTraceSpan::ScopedTraceSpan(std::string name, TraceSink* sink)
    : sink_(sink), name_(std::move(name)) {
  if (sink_ != nullptr) sink_->Begin(name_);
}

ScopedTraceSpan::~ScopedTraceSpan() {
  if (sink_ != nullptr) sink_->End(name_);
}

}  // namespace ces::support
