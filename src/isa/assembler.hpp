// Two-pass assembler for MR32.
//
// Supported syntax (MIPS-flavoured):
//   # comment        ; comment        // comment
//   label:  mnemonic op1, op2, op3
//           .text / .data
//           .word v[, v...]   .half ...   .byte ...
//           .space n          .align log2   .ascii "s"   .asciiz "s"
//           .equ NAME, value
// Operands: registers ($n, rn, ABI names), immediates (decimal, 0x hex,
// 'c' char), symbols (optionally symbol+off / symbol-off), and memory
// operands imm(reg) / symbol(reg).
//
// Pseudo-instructions: li, la, mv, b, beqz, bnez, bgt, ble, bgtu, bleu,
// not, neg, nop, ret, call, push, pop, and load/store with a bare symbol
// operand (expands through the assembler register at).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace ces::isa {

struct Program {
  std::vector<std::uint32_t> text;  // encoded instructions
  std::vector<std::uint8_t> data;   // initialised data image
  std::uint32_t text_base = 0x0;
  std::uint32_t data_base = 0x10000;
  std::uint32_t entry = 0;          // byte address; label `main` if present
  std::map<std::string, std::uint32_t> symbols;  // label -> byte address
};

class AssemblyError : public std::runtime_error {
 public:
  AssemblyError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

// Throws AssemblyError on any syntax or range problem.
Program Assemble(const std::string& source);

}  // namespace ces::isa
