#include "isa/disasm.hpp"

#include <cstdio>

namespace ces::isa {

std::string Disassemble(const Instruction& instruction, std::uint32_t pc) {
  char buf[96];
  const Opcode op = instruction.op;
  const char* mnemonic = Mnemonic(op);
  if (IsJType(op)) {
    std::snprintf(buf, sizeof(buf), "%s 0x%x", mnemonic,
                  instruction.target * 4);
  } else if (IsBranch(op)) {
    const std::uint32_t target =
        pc + 4 + static_cast<std::uint32_t>(instruction.imm * 4);
    std::snprintf(buf, sizeof(buf), "%s %s, %s, 0x%x", mnemonic,
                  RegisterName(instruction.rd), RegisterName(instruction.rs),
                  target);
  } else if (IsLoad(op) || IsStore(op)) {
    std::snprintf(buf, sizeof(buf), "%s %s, %d(%s)", mnemonic,
                  RegisterName(instruction.rd), instruction.imm,
                  RegisterName(instruction.rs));
  } else if (op == Opcode::kSll || op == Opcode::kSrl || op == Opcode::kSra) {
    std::snprintf(buf, sizeof(buf), "%s %s, %s, %d", mnemonic,
                  RegisterName(instruction.rd), RegisterName(instruction.rs),
                  instruction.imm);
  } else if (op == Opcode::kLui) {
    std::snprintf(buf, sizeof(buf), "%s %s, 0x%x", mnemonic,
                  RegisterName(instruction.rd),
                  static_cast<unsigned>(instruction.imm) & 0xffff);
  } else if (IsIType(op)) {
    std::snprintf(buf, sizeof(buf), "%s %s, %s, %d", mnemonic,
                  RegisterName(instruction.rd), RegisterName(instruction.rs),
                  instruction.imm);
  } else if (op == Opcode::kJr) {
    std::snprintf(buf, sizeof(buf), "%s %s", mnemonic,
                  RegisterName(instruction.rs));
  } else if (op == Opcode::kJalr) {
    std::snprintf(buf, sizeof(buf), "%s %s, %s", mnemonic,
                  RegisterName(instruction.rd), RegisterName(instruction.rs));
  } else if (op == Opcode::kOutb || op == Opcode::kOutw) {
    std::snprintf(buf, sizeof(buf), "%s %s", mnemonic,
                  RegisterName(instruction.rs));
  } else if (op == Opcode::kHalt) {
    std::snprintf(buf, sizeof(buf), "%s", mnemonic);
  } else {
    std::snprintf(buf, sizeof(buf), "%s %s, %s, %s", mnemonic,
                  RegisterName(instruction.rd), RegisterName(instruction.rs),
                  RegisterName(instruction.rt));
  }
  return buf;
}

std::string DisassembleWord(std::uint32_t word, std::uint32_t pc) {
  Instruction instruction;
  if (!Decode(word, instruction)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ".word 0x%08x", word);
    return buf;
  }
  return Disassemble(instruction, pc);
}

}  // namespace ces::isa
