#include "isa/isa.hpp"

#include <array>

#include "support/check.hpp"

namespace ces::isa {
namespace {

constexpr std::uint32_t kOpShift = 26;
constexpr std::uint32_t kRdShift = 21;
constexpr std::uint32_t kRsShift = 16;
constexpr std::uint32_t kRtShift = 11;
constexpr std::uint32_t kShamtShift = 6;
constexpr std::uint32_t kRegMask = 0x1f;
constexpr std::uint32_t kImmMask = 0xffff;
constexpr std::uint32_t kTargetMask = 0x03ffffff;

const std::array<const char*, 32> kRegisterNames = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2",
    "t3",   "t4", "t5", "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5",
    "s6",   "s7", "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra"};

}  // namespace

bool IsRType(Opcode op) {
  switch (op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kAnd: case Opcode::kOr:
    case Opcode::kXor: case Opcode::kNor: case Opcode::kSlt: case Opcode::kSltu:
    case Opcode::kSllv: case Opcode::kSrlv: case Opcode::kSrav:
    case Opcode::kMul: case Opcode::kMulh: case Opcode::kDiv: case Opcode::kRem:
    case Opcode::kJr: case Opcode::kJalr:
    case Opcode::kOutb: case Opcode::kOutw: case Opcode::kHalt:
      return true;
    default:
      return false;
  }
}

bool IsJType(Opcode op) { return op == Opcode::kJ || op == Opcode::kJal; }

bool IsIType(Opcode op) {
  return !IsRType(op) && !IsJType(op) && op != Opcode::kOpcodeCount;
}

bool IsLoad(Opcode op) {
  switch (op) {
    case Opcode::kLw: case Opcode::kLb: case Opcode::kLbu:
    case Opcode::kLh: case Opcode::kLhu:
      return true;
    default:
      return false;
  }
}

bool IsStore(Opcode op) {
  return op == Opcode::kSw || op == Opcode::kSb || op == Opcode::kSh;
}

bool IsBranch(Opcode op) {
  switch (op) {
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
      return true;
    default:
      return false;
  }
}

std::uint32_t Encode(const Instruction& instruction) {
  const auto op = static_cast<std::uint32_t>(instruction.op);
  CES_CHECK(op < static_cast<std::uint32_t>(Opcode::kOpcodeCount));
  std::uint32_t word = op << kOpShift;
  if (IsJType(instruction.op)) {
    CES_CHECK(instruction.target <= kTargetMask);
    return word | instruction.target;
  }
  word |= (instruction.rd & kRegMask) << kRdShift;
  word |= (instruction.rs & kRegMask) << kRsShift;
  if (IsRType(instruction.op)) {
    word |= (instruction.rt & kRegMask) << kRtShift;
    word |= (instruction.shamt & kRegMask) << kShamtShift;
  } else {
    word |= static_cast<std::uint32_t>(instruction.imm) & kImmMask;
  }
  return word;
}

bool Decode(std::uint32_t word, Instruction& out) {
  const std::uint32_t op = word >> kOpShift;
  if (op >= static_cast<std::uint32_t>(Opcode::kOpcodeCount)) return false;
  out = Instruction{};
  out.op = static_cast<Opcode>(op);
  if (IsJType(out.op)) {
    out.target = word & kTargetMask;
    return true;
  }
  out.rd = static_cast<std::uint8_t>((word >> kRdShift) & kRegMask);
  out.rs = static_cast<std::uint8_t>((word >> kRsShift) & kRegMask);
  if (IsRType(out.op)) {
    out.rt = static_cast<std::uint8_t>((word >> kRtShift) & kRegMask);
    out.shamt = static_cast<std::uint8_t>((word >> kShamtShift) & kRegMask);
  } else {
    // Stored as the raw 16-bit field; sign-extended here, and opcodes with
    // zero-extended semantics (andi/ori/xori/sltiu) mask in the executor.
    const auto raw = static_cast<std::uint16_t>(word & kImmMask);
    out.imm = static_cast<std::int16_t>(raw);
  }
  return true;
}

const char* Mnemonic(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kNor: return "nor";
    case Opcode::kSlt: return "slt";
    case Opcode::kSltu: return "sltu";
    case Opcode::kSllv: return "sllv";
    case Opcode::kSrlv: return "srlv";
    case Opcode::kSrav: return "srav";
    case Opcode::kMul: return "mul";
    case Opcode::kMulh: return "mulh";
    case Opcode::kDiv: return "div";
    case Opcode::kRem: return "rem";
    case Opcode::kJr: return "jr";
    case Opcode::kJalr: return "jalr";
    case Opcode::kAddi: return "addi";
    case Opcode::kAndi: return "andi";
    case Opcode::kOri: return "ori";
    case Opcode::kXori: return "xori";
    case Opcode::kSlti: return "slti";
    case Opcode::kSltiu: return "sltiu";
    case Opcode::kLui: return "lui";
    case Opcode::kSll: return "sll";
    case Opcode::kSrl: return "srl";
    case Opcode::kSra: return "sra";
    case Opcode::kLw: return "lw";
    case Opcode::kSw: return "sw";
    case Opcode::kLb: return "lb";
    case Opcode::kLbu: return "lbu";
    case Opcode::kSb: return "sb";
    case Opcode::kLh: return "lh";
    case Opcode::kLhu: return "lhu";
    case Opcode::kSh: return "sh";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kBltu: return "bltu";
    case Opcode::kBgeu: return "bgeu";
    case Opcode::kJ: return "j";
    case Opcode::kJal: return "jal";
    case Opcode::kOutb: return "outb";
    case Opcode::kOutw: return "outw";
    case Opcode::kHalt: return "halt";
    case Opcode::kOpcodeCount: break;
  }
  return "?";
}

int RegisterIndex(const std::string& name) {
  for (int i = 0; i < 32; ++i) {
    if (name == kRegisterNames[static_cast<std::size_t>(i)]) return i;
  }
  if (name == "s8") return 30;
  if ((name[0] == '$' || name[0] == 'r') && name.size() > 1) {
    int value = 0;
    for (std::size_t i = 1; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') return -1;
      value = value * 10 + (name[i] - '0');
    }
    return value < 32 ? value : -1;
  }
  return -1;
}

const char* RegisterName(std::uint8_t index) {
  return kRegisterNames[index & 0x1f];
}

}  // namespace ces::isa
