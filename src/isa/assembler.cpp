#include "isa/assembler.hpp"

#include <cctype>
#include <optional>

#include "isa/isa.hpp"

namespace ces::isa {
namespace {

constexpr std::uint8_t kAtRegister = 1;  // assembler temporary
constexpr std::uint8_t kRa = 31;
constexpr std::uint8_t kSp = 29;

struct SourceLine {
  int number = 0;
  std::string label;
  std::string mnemonic;
  std::vector<std::string> operands;
};

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

// Splits operand lists on commas that are not inside quotes.
std::vector<std::string> SplitOperands(const std::string& s, int line) {
  std::vector<std::string> out;
  std::string current;
  bool in_quote = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '"' && (i == 0 || s[i - 1] != '\\')) in_quote = !in_quote;
    if (c == ',' && !in_quote) {
      out.push_back(Trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (in_quote) throw AssemblyError(line, "unterminated string");
  if (!Trim(current).empty() || !out.empty()) out.push_back(Trim(current));
  return out;
}

std::vector<SourceLine> Tokenize(const std::string& source) {
  std::vector<SourceLine> lines;
  std::size_t pos = 0;
  int number = 0;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    std::string raw = source.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? source.size() + 1 : eol + 1;
    ++number;

    // Strip comments, respecting string literals.
    bool in_quote = false;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const char c = raw[i];
      if (c == '"' && (i == 0 || raw[i - 1] != '\\')) in_quote = !in_quote;
      if (!in_quote && (c == '#' || c == ';' ||
                        (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/'))) {
        raw.erase(i);
        break;
      }
    }
    raw = Trim(raw);
    if (raw.empty()) continue;

    SourceLine line;
    line.number = number;
    const std::size_t colon = raw.find(':');
    if (colon != std::string::npos &&
        raw.find('"') > colon) {  // `label:` prefix (not inside a string)
      line.label = Trim(raw.substr(0, colon));
      raw = Trim(raw.substr(colon + 1));
    }
    if (!raw.empty()) {
      const std::size_t space = raw.find_first_of(" \t");
      line.mnemonic = raw.substr(0, space);
      if (space != std::string::npos) {
        line.operands = SplitOperands(Trim(raw.substr(space + 1)), number);
      }
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

struct Assembler {
  const std::vector<SourceLine>& lines;
  Program program;
  std::map<std::string, std::int64_t> constants;  // .equ values

  explicit Assembler(const std::vector<SourceLine>& source_lines)
      : lines(source_lines) {}

  // ---- operand helpers -------------------------------------------------

  static bool LooksNumeric(const std::string& s) {
    if (s.empty()) return false;
    const char c = s[0];
    return std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
           c == '+' || c == '\'';
  }

  std::int64_t ParseNumber(const std::string& s, int line) const {
    if (s.size() >= 3 && s[0] == '\'') {
      if (s.back() != '\'') throw AssemblyError(line, "bad char literal " + s);
      if (s[1] == '\\') {
        switch (s[2]) {
          case 'n': return '\n';
          case 't': return '\t';
          case '0': return 0;
          case '\\': return '\\';
          default: throw AssemblyError(line, "bad escape in " + s);
        }
      }
      return s[1];
    }
    char* end = nullptr;
    const std::int64_t value = std::strtoll(s.c_str(), &end, 0);
    if (end == s.c_str() || *end != '\0') {
      throw AssemblyError(line, "bad number '" + s + "'");
    }
    return value;
  }

  // Symbol, symbol+off, symbol-off, .equ constant, or plain number.
  std::int64_t ResolveValue(const std::string& expr, int line) const {
    if (LooksNumeric(expr)) return ParseNumber(expr, line);
    std::size_t split = expr.find_last_of("+-");
    if (split == 0 || split == std::string::npos) split = expr.size();
    const std::string name = Trim(expr.substr(0, split));
    std::int64_t offset = 0;
    if (split < expr.size()) offset = ParseNumber(expr.substr(split), line);

    if (const auto it = constants.find(name); it != constants.end()) {
      return it->second + offset;
    }
    if (const auto it = program.symbols.find(name);
        it != program.symbols.end()) {
      return static_cast<std::int64_t>(it->second) + offset;
    }
    throw AssemblyError(line, "undefined symbol '" + name + "'");
  }

  std::uint8_t ParseRegister(const std::string& s, int line) const {
    const int index = RegisterIndex(s);
    if (index < 0) throw AssemblyError(line, "unknown register '" + s + "'");
    return static_cast<std::uint8_t>(index);
  }

  bool IsRegister(const std::string& s) const { return RegisterIndex(s) >= 0; }

  // `imm(reg)` / `symbol(reg)` memory operand.
  struct MemOperand {
    std::uint8_t base = 0;
    std::string displacement;  // resolved lazily (pass 2)
  };

  static std::optional<MemOperand> ParseMemOperand(const std::string& s) {
    const std::size_t open = s.rfind('(');
    if (open == std::string::npos || s.back() != ')') return std::nullopt;
    MemOperand mem;
    const std::string reg = s.substr(open + 1, s.size() - open - 2);
    const int index = RegisterIndex(Trim(reg));
    if (index < 0) return std::nullopt;
    mem.base = static_cast<std::uint8_t>(index);
    std::string displacement = Trim(s.substr(0, open));
    if (displacement.empty()) displacement = "0";
    mem.displacement = std::move(displacement);
    return mem;
  }

  // ---- size accounting (pass 1) -----------------------------------------

  // Number of real instructions a (pseudo-)instruction expands to.
  std::uint32_t ExpansionSize(const SourceLine& line) const {
    const std::string& m = line.mnemonic;
    const auto& ops = line.operands;
    if (m == "nop" || m == "mv" || m == "not" || m == "neg" || m == "b" ||
        m == "beqz" || m == "bnez" || m == "bgt" || m == "ble" ||
        m == "bgtu" || m == "bleu" || m == "ret" || m == "call") {
      return 1;
    }
    if (m == "la") return 2;
    if (m == "push" || m == "pop") return 2;
    if (m == "li") {
      if (ops.size() != 2) throw AssemblyError(line.number, "li needs 2 operands");
      // Constants must be known by pass 1 to fix the size; labels are not
      // allowed in li (use la).
      const std::int64_t value = LooksNumeric(ops[1])
                                     ? ParseNumber(ops[1], line.number)
                                     : LookupConstant(ops[1], line.number);
      return (value >= -32768 && value <= 32767) ? 1u : 2u;
    }
    // Loads/stores with a bare symbol operand: lui+ori+mem.
    if (IsMemoryMnemonic(m) && ops.size() == 2 && !ParseMemOperand(ops[1])) {
      return 3;
    }
    return 1;
  }

  std::int64_t LookupConstant(const std::string& name, int line) const {
    const auto it = constants.find(name);
    if (it == constants.end()) {
      throw AssemblyError(line, "li needs a numeric or .equ constant, got '" +
                                    name + "' (use la for labels)");
    }
    return it->second;
  }

  static bool IsMemoryMnemonic(const std::string& m) {
    return m == "lw" || m == "sw" || m == "lb" || m == "lbu" || m == "sb" ||
           m == "lh" || m == "lhu" || m == "sh";
  }

  // ---- emission (pass 2) -------------------------------------------------

  std::vector<Instruction> out;

  void Emit(Opcode op, std::uint8_t rd = 0, std::uint8_t rs = 0,
            std::uint8_t rt = 0, std::int32_t imm = 0, std::uint8_t shamt = 0,
            std::uint32_t target = 0) {
    Instruction instruction;
    instruction.op = op;
    instruction.rd = rd;
    instruction.rs = rs;
    instruction.rt = rt;
    instruction.imm = imm;
    instruction.shamt = shamt;
    instruction.target = target;
    out.push_back(instruction);
  }

  void CheckSigned16(std::int64_t value, int line) const {
    if (value < -32768 || value > 32767) {
      throw AssemblyError(line, "immediate out of signed 16-bit range: " +
                                    std::to_string(value));
    }
  }

  void CheckUnsigned16(std::int64_t value, int line) const {
    if (value < 0 || value > 0xffff) {
      throw AssemblyError(line, "immediate out of unsigned 16-bit range: " +
                                    std::to_string(value));
    }
  }

  void EmitLoadAddress(std::uint8_t rd, std::uint32_t address) {
    Emit(Opcode::kLui, rd, 0, 0, static_cast<std::int32_t>(address >> 16));
    Emit(Opcode::kOri, rd, rd, 0,
         static_cast<std::int32_t>(address & 0xffff));
  }

  // ---- driver ------------------------------------------------------------

  std::uint32_t expected_text_words = 0;

  void RunPassOne() {
    bool in_text = true;
    std::uint32_t text_words = 0;
    std::uint32_t data_bytes = 0;
    for (const SourceLine& line : lines) {
      if (!line.label.empty()) {
        const std::uint32_t address =
            in_text ? program.text_base + text_words * 4
                    : program.data_base + data_bytes;
        if (!program.symbols.try_emplace(line.label, address).second) {
          throw AssemblyError(line.number, "duplicate label " + line.label);
        }
      }
      if (line.mnemonic.empty()) continue;
      if (line.mnemonic[0] == '.') {
        HandleDirectiveSize(line, in_text, data_bytes);
        continue;
      }
      if (!in_text) {
        throw AssemblyError(line.number, "instruction in .data section");
      }
      text_words += ExpansionSize(line);
    }
    expected_text_words = text_words;
  }

  void HandleDirectiveSize(const SourceLine& line, bool& in_text,
                           std::uint32_t& data_bytes) {
    const std::string& d = line.mnemonic;
    if (d == ".text") {
      in_text = true;
    } else if (d == ".data") {
      in_text = false;
    } else if (d == ".equ") {
      if (line.operands.size() != 2) {
        throw AssemblyError(line.number, ".equ needs name, value");
      }
      constants[line.operands[0]] = ResolveValue(line.operands[1], line.number);
    } else if (d == ".word") {
      data_bytes = Align(data_bytes, 4);
      // Re-register the label at the aligned address.
      ReanchorLabel(line, data_bytes);
      data_bytes += 4 * static_cast<std::uint32_t>(line.operands.size());
    } else if (d == ".half") {
      data_bytes = Align(data_bytes, 2);
      ReanchorLabel(line, data_bytes);
      data_bytes += 2 * static_cast<std::uint32_t>(line.operands.size());
    } else if (d == ".byte") {
      data_bytes += static_cast<std::uint32_t>(line.operands.size());
    } else if (d == ".space") {
      data_bytes += SpaceSize(line);
    } else if (d == ".align") {
      data_bytes = Align(data_bytes, AlignBoundary(line));
      ReanchorLabel(line, data_bytes);
    } else if (d == ".ascii" || d == ".asciiz") {
      data_bytes += static_cast<std::uint32_t>(
          DecodeString(Operand(line, 0), line.number).size());
      if (d == ".asciiz") ++data_bytes;
    } else {
      throw AssemblyError(line.number, "unknown directive " + d);
    }
  }

  void ReanchorLabel(const SourceLine& line, std::uint32_t data_bytes) {
    if (!line.label.empty()) {
      program.symbols[line.label] = program.data_base + data_bytes;
    }
  }


  // Bounds-checked directive operand access.
  const std::string& Operand(const SourceLine& line, std::size_t index) const {
    if (index >= line.operands.size()) {
      throw AssemblyError(line.number,
                          line.mnemonic + " is missing an operand");
    }
    return line.operands[index];
  }
  static std::uint32_t Align(std::uint32_t value, std::uint32_t boundary) {
    return (value + boundary - 1) & ~(boundary - 1);
  }

  // Bounds-checked .space size (a data segment larger than 16 MiB is a
  // typo, not a program).
  std::uint32_t SpaceSize(const SourceLine& line) const {
    const std::int64_t size =
        ResolveValue(Operand(line, 0), line.number);
    if (size < 0 || size > (1 << 24)) {
      throw AssemblyError(line.number,
                          ".space size out of range: " + std::to_string(size));
    }
    return static_cast<std::uint32_t>(size);
  }

  std::uint32_t AlignBoundary(const SourceLine& line) const {
    const std::int64_t log2 =
        ResolveValue(Operand(line, 0), line.number);
    if (log2 < 0 || log2 > 16) {
      throw AssemblyError(line.number,
                          ".align out of range: " + std::to_string(log2));
    }
    return 1u << static_cast<std::uint32_t>(log2);
  }

  static std::string DecodeString(const std::string& operand, int line) {
    if (operand.size() < 2 || operand.front() != '"' || operand.back() != '"') {
      throw AssemblyError(line, "expected string literal");
    }
    std::string out;
    for (std::size_t i = 1; i + 1 < operand.size(); ++i) {
      char c = operand[i];
      if (c == '\\' && i + 2 < operand.size()) {
        ++i;
        switch (operand[i]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: throw AssemblyError(line, "bad escape");
        }
      }
      out += c;
    }
    return out;
  }

  void RunPassTwo() {
    bool in_text = true;
    for (const SourceLine& line : lines) {
      if (line.mnemonic.empty()) continue;
      if (line.mnemonic[0] == '.') {
        HandleDirectiveEmit(line, in_text);
        continue;
      }
      EmitInstruction(line);
    }
  }

  void HandleDirectiveEmit(const SourceLine& line, bool& in_text) {
    const std::string& d = line.mnemonic;
    auto& data = program.data;
    if (d == ".text") {
      in_text = true;
    } else if (d == ".data") {
      in_text = false;
    } else if (d == ".equ") {
      // handled in pass 1
    } else if (d == ".word") {
      while (data.size() % 4 != 0) data.push_back(0);
      for (const std::string& op : line.operands) {
        const auto value =
            static_cast<std::uint32_t>(ResolveValue(op, line.number));
        for (int b = 0; b < 4; ++b) {
          data.push_back(static_cast<std::uint8_t>((value >> (8 * b)) & 0xff));
        }
      }
    } else if (d == ".half") {
      while (data.size() % 2 != 0) data.push_back(0);
      for (const std::string& op : line.operands) {
        const auto value =
            static_cast<std::uint32_t>(ResolveValue(op, line.number));
        data.push_back(static_cast<std::uint8_t>(value & 0xff));
        data.push_back(static_cast<std::uint8_t>((value >> 8) & 0xff));
      }
    } else if (d == ".byte") {
      for (const std::string& op : line.operands) {
        data.push_back(
            static_cast<std::uint8_t>(ResolveValue(op, line.number) & 0xff));
      }
    } else if (d == ".space") {
      data.insert(data.end(), SpaceSize(line), 0);
    } else if (d == ".align") {
      const std::uint32_t boundary = AlignBoundary(line);
      while (data.size() % boundary != 0) data.push_back(0);
    } else if (d == ".ascii" || d == ".asciiz") {
      const std::string s = DecodeString(Operand(line, 0), line.number);
      data.insert(data.end(), s.begin(), s.end());
      if (d == ".asciiz") data.push_back(0);
    }
  }

  void EmitInstruction(const SourceLine& line);

  Program Finish() {
    RunPassOne();
    RunPassTwo();
    if (out.size() != expected_text_words) {
      // Pass-1 size accounting anchors every label; a mismatch means the
      // emitted stream silently disagrees with the symbol table.
      throw AssemblyError(0, "internal: pass-1/pass-2 size mismatch");
    }
    program.text.reserve(out.size());
    for (const Instruction& instruction : out) {
      program.text.push_back(Encode(instruction));
    }
    const auto main_it = program.symbols.find("main");
    program.entry =
        main_it != program.symbols.end() ? main_it->second : program.text_base;
    return std::move(program);
  }
};

void Assembler::EmitInstruction(const SourceLine& line) {
  const std::string& m = line.mnemonic;
  const auto& ops = line.operands;
  const int ln = line.number;
  const std::uint32_t pc_word =
      program.text_base / 4 + static_cast<std::uint32_t>(out.size());

  auto need = [&](std::size_t count) {
    if (ops.size() != count) {
      throw AssemblyError(ln, m + " needs " + std::to_string(count) +
                                  " operands, got " +
                                  std::to_string(ops.size()));
    }
  };
  auto reg = [&](std::size_t i) { return ParseRegister(ops[i], ln); };
  auto branch_offset = [&](const std::string& target) {
    const std::int64_t address = ResolveValue(target, ln);
    if (address % 4 != 0) throw AssemblyError(ln, "misaligned branch target");
    const std::int64_t offset =
        address / 4 - (static_cast<std::int64_t>(pc_word) + 1);
    CheckSigned16(offset, ln);
    return static_cast<std::int32_t>(offset);
  };

  // --- R-type three-register ops ---
  static const std::map<std::string, Opcode> kThreeReg = {
      {"add", Opcode::kAdd},   {"sub", Opcode::kSub},  {"and", Opcode::kAnd},
      {"or", Opcode::kOr},     {"xor", Opcode::kXor},  {"nor", Opcode::kNor},
      {"slt", Opcode::kSlt},   {"sltu", Opcode::kSltu},{"sllv", Opcode::kSllv},
      {"srlv", Opcode::kSrlv}, {"srav", Opcode::kSrav},{"mul", Opcode::kMul},
      {"mulh", Opcode::kMulh}, {"div", Opcode::kDiv},  {"rem", Opcode::kRem}};
  if (const auto it = kThreeReg.find(m); it != kThreeReg.end()) {
    need(3);
    Emit(it->second, reg(0), reg(1), reg(2));
    return;
  }

  // --- I-type ALU ---
  static const std::map<std::string, Opcode> kImmAlu = {
      {"addi", Opcode::kAddi}, {"andi", Opcode::kAndi}, {"ori", Opcode::kOri},
      {"xori", Opcode::kXori}, {"slti", Opcode::kSlti},
      {"sltiu", Opcode::kSltiu}};
  if (const auto it = kImmAlu.find(m); it != kImmAlu.end()) {
    need(3);
    const std::int64_t value = ResolveValue(ops[2], ln);
    if (m == "andi" || m == "ori" || m == "xori") {
      CheckUnsigned16(value, ln);
    } else {
      CheckSigned16(value, ln);
    }
    Emit(it->second, reg(0), reg(1), 0,
         static_cast<std::int32_t>(value & 0xffff));
    return;
  }

  static const std::map<std::string, Opcode> kShift = {
      {"sll", Opcode::kSll}, {"srl", Opcode::kSrl}, {"sra", Opcode::kSra}};
  if (const auto it = kShift.find(m); it != kShift.end()) {
    need(3);
    const std::int64_t shamt = ResolveValue(ops[2], ln);
    if (shamt < 0 || shamt > 31) throw AssemblyError(ln, "shift out of range");
    Emit(it->second, reg(0), reg(1), 0, static_cast<std::int32_t>(shamt));
    return;
  }

  if (m == "lui") {
    need(2);
    const std::int64_t value = ResolveValue(ops[1], ln);
    CheckUnsigned16(value, ln);
    Emit(Opcode::kLui, reg(0), 0, 0, static_cast<std::int32_t>(value));
    return;
  }

  // --- memory ---
  static const std::map<std::string, Opcode> kMem = {
      {"lw", Opcode::kLw},   {"sw", Opcode::kSw},  {"lb", Opcode::kLb},
      {"lbu", Opcode::kLbu}, {"sb", Opcode::kSb},  {"lh", Opcode::kLh},
      {"lhu", Opcode::kLhu}, {"sh", Opcode::kSh}};
  if (const auto it = kMem.find(m); it != kMem.end()) {
    need(2);
    if (const auto mem = ParseMemOperand(ops[1])) {
      const std::int64_t disp = ResolveValue(mem->displacement, ln);
      CheckSigned16(disp, ln);
      Emit(it->second, reg(0), mem->base, 0, static_cast<std::int32_t>(disp));
    } else {
      // Bare symbol: go through the assembler temporary.
      const auto address =
          static_cast<std::uint32_t>(ResolveValue(ops[1], ln));
      EmitLoadAddress(kAtRegister, address);
      Emit(it->second, reg(0), kAtRegister, 0, 0);
    }
    return;
  }

  // --- branches ---
  static const std::map<std::string, Opcode> kBranches = {
      {"beq", Opcode::kBeq},   {"bne", Opcode::kBne}, {"blt", Opcode::kBlt},
      {"bge", Opcode::kBge},   {"bltu", Opcode::kBltu},
      {"bgeu", Opcode::kBgeu}};
  if (const auto it = kBranches.find(m); it != kBranches.end()) {
    need(3);
    Emit(it->second, reg(0), reg(1), 0, branch_offset(ops[2]));
    return;
  }
  if (m == "bgt" || m == "ble" || m == "bgtu" || m == "bleu") {
    need(3);
    const Opcode op = (m == "bgt")   ? Opcode::kBlt
                      : (m == "ble") ? Opcode::kBge
                      : (m == "bgtu") ? Opcode::kBltu
                                      : Opcode::kBgeu;
    Emit(op, reg(1), reg(0), 0, branch_offset(ops[2]));  // swapped operands
    return;
  }
  if (m == "beqz" || m == "bnez") {
    need(2);
    Emit(m == "beqz" ? Opcode::kBeq : Opcode::kBne, reg(0), 0, 0,
         branch_offset(ops[1]));
    return;
  }
  if (m == "b") {
    need(1);
    Emit(Opcode::kBeq, 0, 0, 0, branch_offset(ops[0]));
    return;
  }

  // --- jumps ---
  if (m == "j" || m == "jal" || m == "call") {
    need(1);
    const auto address = static_cast<std::uint32_t>(ResolveValue(ops[0], ln));
    if (address % 4 != 0) throw AssemblyError(ln, "misaligned jump target");
    Emit(m == "j" ? Opcode::kJ : Opcode::kJal, 0, 0, 0, 0, 0, address / 4);
    return;
  }
  if (m == "jr") {
    need(1);
    Emit(Opcode::kJr, 0, reg(0));
    return;
  }
  if (m == "jalr") {
    need(2);
    Emit(Opcode::kJalr, reg(0), reg(1));
    return;
  }
  if (m == "ret") {
    need(0);
    Emit(Opcode::kJr, 0, kRa);
    return;
  }

  // --- pseudo-instructions ---
  if (m == "li") {
    need(2);
    const std::int64_t value = LooksNumeric(ops[1])
                                   ? ParseNumber(ops[1], ln)
                                   : LookupConstant(ops[1], ln);
    if (value >= -32768 && value <= 32767) {
      Emit(Opcode::kAddi, reg(0), 0, 0,
           static_cast<std::int32_t>(value & 0xffff));
    } else {
      const auto u = static_cast<std::uint32_t>(value);
      Emit(Opcode::kLui, reg(0), 0, 0, static_cast<std::int32_t>(u >> 16));
      Emit(Opcode::kOri, reg(0), reg(0), 0,
           static_cast<std::int32_t>(u & 0xffff));
    }
    return;
  }
  if (m == "la") {
    need(2);
    EmitLoadAddress(reg(0),
                    static_cast<std::uint32_t>(ResolveValue(ops[1], ln)));
    return;
  }
  if (m == "mv") {
    need(2);
    Emit(Opcode::kAdd, reg(0), reg(1), 0);
    return;
  }
  if (m == "not") {
    need(2);
    Emit(Opcode::kNor, reg(0), reg(1), 0);
    return;
  }
  if (m == "neg") {
    need(2);
    Emit(Opcode::kSub, reg(0), 0, reg(1));
    return;
  }
  if (m == "nop") {
    need(0);
    Emit(Opcode::kAdd, 0, 0, 0);
    return;
  }
  if (m == "push") {
    need(1);
    Emit(Opcode::kAddi, kSp, kSp, 0, -4);
    Emit(Opcode::kSw, reg(0), kSp, 0, 0);
    return;
  }
  if (m == "pop") {
    need(1);
    Emit(Opcode::kLw, reg(0), kSp, 0, 0);
    Emit(Opcode::kAddi, kSp, kSp, 0, 4);
    return;
  }

  // --- misc ---
  if (m == "outb") {
    need(1);
    Emit(Opcode::kOutb, 0, reg(0));
    return;
  }
  if (m == "outw") {
    need(1);
    Emit(Opcode::kOutw, 0, reg(0));
    return;
  }
  if (m == "halt") {
    need(0);
    Emit(Opcode::kHalt);
    return;
  }

  throw AssemblyError(ln, "unknown mnemonic '" + m + "'");
}

}  // namespace

Program Assemble(const std::string& source) {
  const std::vector<SourceLine> lines = Tokenize(source);
  Assembler assembler(lines);
  return assembler.Finish();
}

}  // namespace ces::isa
