// MR32 disassembler; used by the CPU's error reporting and the round-trip
// tests of the encoder/assembler.
#pragma once

#include <cstdint>
#include <string>

#include "isa/isa.hpp"

namespace ces::isa {

// One instruction. `pc` (byte address) resolves branch targets to absolute
// addresses in the listing.
std::string Disassemble(const Instruction& instruction, std::uint32_t pc = 0);
std::string DisassembleWord(std::uint32_t word, std::uint32_t pc = 0);

}  // namespace ces::isa
