// MR32: a MIPS-R3000-flavoured 32-bit load/store ISA.
//
// The paper generates its traces by running the PowerStone suite on an
// instrumented MIPS R3000 simulator. PowerStone binaries and a MIPS
// toolchain are not redistributable here, so the repository ships its own
// small RISC target: 32 general registers (r0 hard-wired to zero), 32-bit
// fixed-width instructions, byte-addressed memory, delayed nothing (no
// branch delay slots — they would only complicate the assembler without
// changing the reference streams we care about).
//
// Encodings:
//   R-type  op(6) rd(5) rs(5) rt(5) shamt(5) pad(6)
//   I-type  op(6) rd(5) rs(5) imm(16)            imm sign- or zero-extended
//   J-type  op(6) target(26)                     absolute word index
#pragma once

#include <cstdint>
#include <string>

namespace ces::isa {

enum class Opcode : std::uint8_t {
  // R-type: rd <- rs OP rt (shifts use shamt or rt for the *V forms).
  kAdd, kSub, kAnd, kOr, kXor, kNor, kSlt, kSltu,
  kSllv, kSrlv, kSrav, kMul, kMulh, kDiv, kRem,
  kJr,    // pc <- rs
  kJalr,  // rd <- pc + 4; pc <- rs

  // I-type.
  kAddi,  // rd <- rs + signext(imm)
  kAndi, kOri, kXori,  // zero-extended immediates, as in MIPS
  kSlti, kSltiu,
  kLui,  // rd <- imm << 16
  kSll, kSrl, kSra,  // rd <- rs shifted by shamt (kept in imm)
  kLw, kSw, kLb, kLbu, kSb, kLh, kLhu, kSh,  // rd <-> mem[rs + signext(imm)]
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,  // compare rd, rs; branch by imm words

  // J-type.
  kJ, kJal,  // jal: ra <- pc + 4

  // Misc (R-type encoding, operands mostly unused).
  kOutb,  // append low byte of rs to the CPU output stream
  kOutw,  // append rs (4 bytes, little-endian) to the output stream
  kHalt,

  kOpcodeCount,
};

// Decoded instruction. Field use depends on the opcode; unused fields are 0.
struct Instruction {
  Opcode op = Opcode::kHalt;
  std::uint8_t rd = 0;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::uint8_t shamt = 0;
  std::int32_t imm = 0;       // I-type immediate (already sign/zero handled
                              // by the executor per opcode semantics)
  std::uint32_t target = 0;   // J-type absolute word index

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

// Raw 32-bit encodings. Decode returns false on an unknown opcode.
std::uint32_t Encode(const Instruction& instruction);
bool Decode(std::uint32_t word, Instruction& out);

const char* Mnemonic(Opcode op);

// Register name <-> index. Accepts $n, rn and the MIPS ABI names (zero, at,
// v0-v1, a0-a3, t0-t9, s0-s8/fp, k0-k1, gp, sp, ra). Returns -1 if unknown.
int RegisterIndex(const std::string& name);
const char* RegisterName(std::uint8_t index);

// Classifies field use for encode/decode/disasm.
bool IsRType(Opcode op);
bool IsIType(Opcode op);
bool IsJType(Opcode op);
bool IsLoad(Opcode op);
bool IsStore(Opcode op);
bool IsBranch(Opcode op);

}  // namespace ces::isa
