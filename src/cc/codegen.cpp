#include "cc/codegen.hpp"

#include <map>
#include <vector>

#include "cc/lexer.hpp"  // CompileError
#include "support/check.hpp"

namespace ces::cc {
namespace {

struct VarInfo {
  bool is_global = false;
  bool is_array = false;
  std::int64_t offset = 0;  // locals: fp - offset points at element 0
};

class CodeGenerator {
 public:
  explicit CodeGenerator(const Program& program) : program_(program) {}

  std::string Generate() {
    CollectSignatures();
    if (!signatures_.contains("main")) {
      throw CompileError(1, "program has no main()");
    }

    Emit("        .text");
    // main first so the entry label is the first function emitted.
    for (const Function& function : program_.functions) {
      if (function.name == "main") GenerateFunction(function);
    }
    for (const Function& function : program_.functions) {
      if (function.name != "main") GenerateFunction(function);
    }

    Emit("");
    Emit("        .data");
    for (const GlobalVar& global : program_.globals) {
      if (global.array_size > 0) {
        if (global.elements.empty()) {
          Emit(global.name + ": .space " +
               std::to_string(global.array_size * 4));
        } else {
          std::string line = global.name + ": .word ";
          for (std::size_t i = 0; i < global.elements.size(); ++i) {
            if (i != 0) line += ", ";
            line += std::to_string(global.elements[i]);
          }
          Emit(line);
          const std::int64_t rest =
              global.array_size -
              static_cast<std::int64_t>(global.elements.size());
          if (rest > 0) Emit("        .space " + std::to_string(rest * 4));
        }
      } else {
        Emit(global.name + ": .word " + std::to_string(global.initial));
      }
    }
    return out_;
  }

 private:
  // ---- bookkeeping ---------------------------------------------------------

  void CollectSignatures() {
    for (const GlobalVar& global : program_.globals) {
      VarInfo info;
      info.is_global = true;
      info.is_array = global.array_size > 0;
      if (!globals_.emplace(global.name, info).second) {
        throw CompileError(global.line,
                           "duplicate global '" + global.name + "'");
      }
    }
    for (const Function& function : program_.functions) {
      if (!signatures_.emplace(function.name, function.params.size()).second) {
        throw CompileError(function.line,
                           "duplicate function '" + function.name + "'");
      }
    }
  }

  void Emit(const std::string& line) {
    out_ += line;
    out_ += '\n';
  }

  std::string NewLabel(const std::string& hint) {
    return ".L" + std::to_string(label_counter_++) + "_" + hint;
  }

  // Total frame words a function needs (all declarations, no slot reuse).
  static std::int64_t CountFrameWords(const Stmt& stmt) {
    std::int64_t words = 0;
    if (stmt.kind == StmtKind::kDecl) {
      words += stmt.array_size > 0 ? stmt.array_size : 1;
    }
    for (const StmtPtr& child : stmt.body) words += CountFrameWords(*child);
    return words;
  }

  // ---- functions -----------------------------------------------------------

  void GenerateFunction(const Function& function) {
    scopes_.clear();
    scopes_.emplace_back();
    next_offset_ = 0;
    current_is_main_ = function.name == "main";
    epilogue_label_ = NewLabel(function.name + "_end");

    const std::int64_t frame_words =
        CountFrameWords(*function.body) +
        static_cast<std::int64_t>(function.params.size());

    Emit("");
    Emit(function.name + ":");
    Emit("        push ra");
    Emit("        push fp");
    Emit("        mv   fp, sp");
    if (frame_words > 0) {
      Emit("        addi sp, sp, -" + std::to_string(frame_words * 4));
    }
    // Spill parameters into frame slots so they behave like locals.
    static const char* kArgRegs[] = {"a0", "a1", "a2", "a3"};
    for (std::size_t i = 0; i < function.params.size(); ++i) {
      const std::int64_t offset = Allocate(function.params[i], 1,
                                           function.line);
      Emit("        sw   " + std::string(kArgRegs[i]) + ", -" +
           std::to_string(offset) + "(fp)");
    }

    GenerateStmt(*function.body);

    Emit(epilogue_label_ + ":");
    if (current_is_main_) {
      Emit("        halt");
    } else {
      Emit("        mv   sp, fp");
      Emit("        pop  fp");
      Emit("        pop  ra");
      Emit("        ret");
    }
  }

  std::int64_t Allocate(const std::string& name, std::int64_t words,
                        int line) {
    auto& scope = scopes_.back();
    if (scope.contains(name)) {
      throw CompileError(line, "duplicate declaration of '" + name + "'");
    }
    next_offset_ += words * 4;
    VarInfo info;
    info.is_array = words > 1;
    // fp - offset addresses element 0; elements grow toward fp.
    info.offset = next_offset_;
    scope.emplace(name, info);
    return info.offset;
  }

  const VarInfo* Lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    const auto global = globals_.find(name);
    return global != globals_.end() ? &global->second : nullptr;
  }

  // ---- statements -----------------------------------------------------------

  void GenerateStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kBlock: {
        scopes_.emplace_back();
        for (const StmtPtr& child : stmt.body) GenerateStmt(*child);
        scopes_.pop_back();
        break;
      }
      case StmtKind::kDecl: {
        const std::int64_t words = stmt.array_size > 0 ? stmt.array_size : 1;
        const std::int64_t offset = Allocate(stmt.name, words, stmt.line);
        if (stmt.expr != nullptr) {
          GenerateExpr(*stmt.expr);
          Emit("        sw   t0, -" + std::to_string(offset) + "(fp)");
        }
        break;
      }
      case StmtKind::kExpr:
        if (stmt.expr != nullptr) GenerateExpr(*stmt.expr);
        break;
      case StmtKind::kIf: {
        const std::string else_label = NewLabel("else");
        const std::string end_label = NewLabel("endif");
        GenerateExpr(*stmt.expr);
        Emit("        beqz t0, " + else_label);
        GenerateStmt(*stmt.body[0]);
        Emit("        b    " + end_label);
        Emit(else_label + ":");
        if (stmt.body.size() > 1) GenerateStmt(*stmt.body[1]);
        Emit(end_label + ":");
        break;
      }
      case StmtKind::kWhile: {
        const std::string head = NewLabel("while");
        const std::string end = NewLabel("endwhile");
        break_labels_.push_back(end);
        continue_labels_.push_back(head);
        Emit(head + ":");
        GenerateExpr(*stmt.expr);
        Emit("        beqz t0, " + end);
        GenerateStmt(*stmt.body[0]);
        Emit("        b    " + head);
        Emit(end + ":");
        break_labels_.pop_back();
        continue_labels_.pop_back();
        break;
      }
      case StmtKind::kFor: {
        const std::string head = NewLabel("for");
        const std::string step_label = NewLabel("forstep");
        const std::string end = NewLabel("endfor");
        scopes_.emplace_back();  // the init declaration scopes to the loop
        GenerateStmt(*stmt.body[0]);
        break_labels_.push_back(end);
        continue_labels_.push_back(step_label);
        Emit(head + ":");
        if (stmt.cond != nullptr) {
          GenerateExpr(*stmt.cond);
          Emit("        beqz t0, " + end);
        }
        GenerateStmt(*stmt.body[2]);
        Emit(step_label + ":");
        GenerateStmt(*stmt.body[1]);
        Emit("        b    " + head);
        Emit(end + ":");
        break_labels_.pop_back();
        continue_labels_.pop_back();
        scopes_.pop_back();
        break;
      }
      case StmtKind::kReturn:
        if (stmt.expr != nullptr) {
          GenerateExpr(*stmt.expr);
          Emit("        mv   v0, t0");
        } else {
          Emit("        li   v0, 0");
        }
        Emit("        b    " + epilogue_label_);
        break;
      case StmtKind::kBreak:
        if (break_labels_.empty()) {
          throw CompileError(stmt.line, "break outside a loop");
        }
        Emit("        b    " + break_labels_.back());
        break;
      case StmtKind::kContinue:
        if (continue_labels_.empty()) {
          throw CompileError(stmt.line, "continue outside a loop");
        }
        Emit("        b    " + continue_labels_.back());
        break;
    }
  }

  // ---- expressions (result in t0) -------------------------------------------

  void GenerateExpr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kNumber:
        Emit("        li   t0, " + std::to_string(expr.number));
        break;
      case ExprKind::kVariable: {
        const VarInfo* info = RequireVar(expr.name, expr.line);
        if (info->is_array) {
          // Arrays decay to their base address.
          EmitAddressOf(*info, expr.name);
        } else if (info->is_global) {
          Emit("        lw   t0, " + expr.name);
        } else {
          Emit("        lw   t0, -" + std::to_string(info->offset) + "(fp)");
        }
        break;
      }
      case ExprKind::kIndex: {
        EmitElementAddress(expr);  // address in t0
        Emit("        lw   t0, 0(t0)");
        break;
      }
      case ExprKind::kUnary:
        GenerateExpr(*expr.lhs);
        if (expr.op == "-") {
          Emit("        neg  t0, t0");
        } else if (expr.op == "!") {
          Emit("        sltiu t0, t0, 1");
        } else {
          Emit("        not  t0, t0");
        }
        break;
      case ExprKind::kBinary:
        GenerateBinary(expr);
        break;
      case ExprKind::kAssign:
        GenerateAssign(expr);
        break;
      case ExprKind::kCall:
        GenerateCall(expr);
        break;
    }
  }

  const VarInfo* RequireVar(const std::string& name, int line) const {
    const VarInfo* info = Lookup(name);
    if (info == nullptr) {
      throw CompileError(line, "unknown variable '" + name + "'");
    }
    return info;
  }

  void EmitAddressOf(const VarInfo& info, const std::string& name) {
    if (info.is_global) {
      Emit("        la   t0, " + name);
    } else {
      Emit("        addi t0, fp, -" + std::to_string(info.offset));
    }
  }

  // Leaves the address of name[index] in t0.
  void EmitElementAddress(const Expr& expr) {
    const VarInfo* info = RequireVar(expr.name, expr.line);
    GenerateExpr(*expr.lhs);  // index in t0
    Emit("        sll  t0, t0, 2");
    Emit("        push t0");
    EmitAddressOf(*info, expr.name);
    if (!info->is_array && !info->is_global) {
      throw CompileError(expr.line, "'" + expr.name + "' is not an array");
    }
    Emit("        pop  t1");
    Emit("        add  t0, t0, t1");
  }

  void GenerateBinary(const Expr& expr) {
    const std::string& op = expr.op;
    if (op == "&&" || op == "||") {
      const std::string short_label = NewLabel("sc");
      const std::string end = NewLabel("scend");
      GenerateExpr(*expr.lhs);
      if (op == "&&") {
        Emit("        beqz t0, " + short_label);  // lhs false -> 0
      } else {
        Emit("        bnez t0, " + short_label);  // lhs true -> 1
      }
      GenerateExpr(*expr.rhs);
      Emit("        sltu t0, zero, t0");  // normalise rhs to 0/1
      Emit("        b    " + end);
      Emit(short_label + ":");
      Emit(op == "&&" ? "        li   t0, 0" : "        li   t0, 1");
      Emit(end + ":");
      return;
    }

    GenerateExpr(*expr.lhs);
    Emit("        push t0");
    GenerateExpr(*expr.rhs);
    Emit("        pop  t1");  // t1 = lhs, t0 = rhs
    if (op == "+") {
      Emit("        add  t0, t1, t0");
    } else if (op == "-") {
      Emit("        sub  t0, t1, t0");
    } else if (op == "*") {
      Emit("        mul  t0, t1, t0");
    } else if (op == "/") {
      Emit("        div  t0, t1, t0");
    } else if (op == "%") {
      Emit("        rem  t0, t1, t0");
    } else if (op == "&") {
      Emit("        and  t0, t1, t0");
    } else if (op == "|") {
      Emit("        or   t0, t1, t0");
    } else if (op == "^") {
      Emit("        xor  t0, t1, t0");
    } else if (op == "<<") {
      Emit("        sllv t0, t1, t0");
    } else if (op == ">>") {
      Emit("        srav t0, t1, t0");  // arithmetic, as C ints
    } else if (op == "<") {
      Emit("        slt  t0, t1, t0");
    } else if (op == ">") {
      Emit("        slt  t0, t0, t1");
    } else if (op == "<=") {  // !(rhs < lhs)
      Emit("        slt  t0, t0, t1");
      Emit("        xori t0, t0, 1");
    } else if (op == ">=") {  // !(lhs < rhs)
      Emit("        slt  t0, t1, t0");
      Emit("        xori t0, t0, 1");
    } else if (op == "==") {
      Emit("        xor  t0, t1, t0");
      Emit("        sltiu t0, t0, 1");
    } else if (op == "!=") {
      Emit("        xor  t0, t1, t0");
      Emit("        sltu t0, zero, t0");
    } else {
      throw CompileError(expr.line, "unsupported operator '" + op + "'");
    }
  }

  void GenerateAssign(const Expr& expr) {
    const Expr& target = *expr.lhs;
    if (target.kind == ExprKind::kVariable) {
      const VarInfo* info = RequireVar(target.name, target.line);
      if (info->is_array) {
        throw CompileError(target.line, "cannot assign to an array");
      }
      GenerateExpr(*expr.rhs);
      if (info->is_global) {
        Emit("        sw   t0, " + target.name);
      } else {
        Emit("        sw   t0, -" + std::to_string(info->offset) + "(fp)");
      }
      return;
    }
    // target is name[index]
    EmitElementAddress(target);
    Emit("        push t0");
    GenerateExpr(*expr.rhs);
    Emit("        pop  t1");
    Emit("        sw   t0, 0(t1)");
  }

  void GenerateCall(const Expr& expr) {
    if (expr.name == "out" || expr.name == "outb") {
      if (expr.args.size() != 1) {
        throw CompileError(expr.line, expr.name + " takes one argument");
      }
      GenerateExpr(*expr.args[0]);
      Emit(expr.name == "out" ? "        outw t0" : "        outb t0");
      Emit("        li   t0, 0");  // builtins return 0
      return;
    }
    const auto it = signatures_.find(expr.name);
    if (it == signatures_.end()) {
      throw CompileError(expr.line, "unknown function '" + expr.name + "'");
    }
    if (it->second != expr.args.size()) {
      throw CompileError(expr.line,
                         "'" + expr.name + "' expects " +
                             std::to_string(it->second) + " arguments, got " +
                             std::to_string(expr.args.size()));
    }
    for (const ExprPtr& arg : expr.args) {
      GenerateExpr(*arg);
      Emit("        push t0");
    }
    static const char* kArgRegs[] = {"a0", "a1", "a2", "a3"};
    for (std::size_t i = expr.args.size(); i-- > 0;) {
      Emit("        pop  " + std::string(kArgRegs[i]));
    }
    Emit("        call " + expr.name);
    Emit("        mv   t0, v0");
  }

  const Program& program_;
  std::string out_;
  int label_counter_ = 0;
  std::map<std::string, VarInfo> globals_;
  std::map<std::string, std::size_t> signatures_;  // name -> arity
  std::vector<std::map<std::string, VarInfo>> scopes_;
  std::int64_t next_offset_ = 0;
  bool current_is_main_ = false;
  std::string epilogue_label_;
  std::vector<std::string> break_labels_;
  std::vector<std::string> continue_labels_;
};

}  // namespace

std::string GenerateAssembly(const Program& program) {
  return CodeGenerator(program).Generate();
}

}  // namespace ces::cc
