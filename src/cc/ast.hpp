// MiniC abstract syntax tree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ces::cc {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  kNumber,      // value
  kVariable,    // name
  kIndex,       // name[index]
  kUnary,       // op operand        (-, !, ~)
  kBinary,      // lhs op rhs        (arithmetic/logic/compare; && || lower)
  kAssign,      // target = value    (target: variable or index)
  kCall,        // name(args...)     (user function or builtin out/outb)
};

struct Expr {
  ExprKind kind = ExprKind::kNumber;
  int line = 0;
  std::int64_t number = 0;     // kNumber
  std::string name;            // kVariable / kIndex / kCall
  std::string op;              // kUnary / kBinary
  ExprPtr lhs;                 // kBinary lhs, kUnary operand, kIndex index,
                               // kAssign target
  ExprPtr rhs;                 // kBinary rhs, kAssign value
  std::vector<ExprPtr> args;   // kCall
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t {
  kExpr,        // expression;
  kDecl,        // int name; / int name = expr; / int name[size];
  kBlock,       // { ... }
  kIf,          // if (cond) then [else otherwise]
  kWhile,       // while (cond) body
  kFor,         // for (init; cond; step) body
  kReturn,      // return [expr];
  kBreak,
  kContinue,
};

struct Stmt {
  StmtKind kind = StmtKind::kExpr;
  int line = 0;
  ExprPtr expr;                 // kExpr, kReturn (optional), kIf/kWhile cond,
                                // kDecl initialiser (optional)
  std::string name;             // kDecl
  std::int64_t array_size = 0;  // kDecl: > 0 for arrays
  std::vector<StmtPtr> body;    // kBlock stmts; kIf then@0 else@1;
                                // kWhile body@0; kFor init@0 step@1 body@2
  ExprPtr cond;                 // kFor condition (optional)
};

struct Function {
  std::string name;
  std::vector<std::string> params;  // ints only, max 4 (a0..a3)
  StmtPtr body;                     // kBlock
  int line = 0;
};

struct GlobalVar {
  std::string name;
  std::int64_t array_size = 0;           // 0 = scalar
  std::int64_t initial = 0;              // scalars only
  std::vector<std::int64_t> elements;    // array initialiser (may be shorter
                                         // than array_size; rest is zero)
  int line = 0;
};

struct Program {
  std::vector<GlobalVar> globals;
  std::vector<Function> functions;
};

}  // namespace ces::cc
