// MiniC compiler facade: source -> MR32 assembly -> loadable Program.
//
// Completes the paper's toolchain substrate (they compile PowerStone with a
// MIPS compiler; we provide MiniC for the same purpose):
//
//   const isa::Program program = cc::CompileToProgram(R"(
//     int main() { out(6 * 7); return 0; }
//   )");
//   sim::RunResult run = sim::RunProgram(program, "answer");
#pragma once

#include <string>

#include "cc/codegen.hpp"
#include "cc/lexer.hpp"
#include "cc/parser.hpp"
#include "isa/assembler.hpp"

namespace ces::cc {

// Source -> assembly text. Throws CompileError.
inline std::string Compile(const std::string& source) {
  return GenerateAssembly(Parse(Lex(source)));
}

// Source -> assembled program. Throws CompileError or isa::AssemblyError
// (the latter indicates a code-generator bug; the tests assert it never
// happens for accepted inputs).
inline isa::Program CompileToProgram(const std::string& source) {
  return isa::Assemble(Compile(source));
}

}  // namespace ces::cc
