// MiniC code generation: AST -> MR32 assembly text (assembled by the
// repository's own assembler, so the compiler output runs on the traced CPU
// simulator directly).
//
// Conventions:
//   * expression results in t0, binary left operands restored into t1 from
//     a memory operand stack (push/pop), so nested calls cannot clobber
//     partial results;
//   * locals (and spilled parameters) live in an fp-anchored frame, one
//     4-byte slot per scalar, contiguous blocks for arrays;
//   * arguments pass in a0..a3 (max 4), return value in v0;
//   * main's epilogue is `halt`; other functions return through ra.
#pragma once

#include <string>

#include "cc/ast.hpp"

namespace ces::cc {

// Throws CompileError on semantic problems (unknown identifier, arity
// mismatch, break outside a loop, missing main, duplicate definitions).
std::string GenerateAssembly(const Program& program);

}  // namespace ces::cc
