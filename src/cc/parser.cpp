#include "cc/parser.hpp"

namespace ces::cc {
namespace {

class Parser {
 public:
  explicit Parser(const std::vector<Token>& tokens) : tokens_(tokens) {}

  Program ParseProgram() {
    Program program;
    while (!AtEnd()) {
      Expect("int", "top-level declarations start with 'int'");
      const Token name = ExpectIdentifier();
      if (Check("(")) {
        program.functions.push_back(ParseFunction(name));
      } else {
        program.globals.push_back(ParseGlobal(name));
      }
    }
    return program;
  }

 private:
  // ---- token plumbing ----------------------------------------------------

  const Token& Peek(std::size_t offset = 0) const {
    const std::size_t index = pos_ + offset;
    return index < tokens_.size() ? tokens_[index] : tokens_.back();
  }

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Check(const std::string& text) const {
    const Token& token = Peek();
    return (token.kind == TokenKind::kPunct ||
            token.kind == TokenKind::kKeyword) &&
           token.text == text;
  }

  bool Match(const std::string& text) {
    if (!Check(text)) return false;
    Advance();
    return true;
  }

  void Expect(const std::string& text, const std::string& context) {
    if (!Match(text)) {
      throw CompileError(Peek().line, "expected '" + text + "' (" + context +
                                          "), got '" + Peek().text + "'");
    }
  }

  Token ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      throw CompileError(Peek().line,
                         "expected identifier, got '" + Peek().text + "'");
    }
    return Advance();
  }

  std::int64_t ExpectNumber() {
    if (Peek().kind != TokenKind::kNumber) {
      throw CompileError(Peek().line,
                         "expected number, got '" + Peek().text + "'");
    }
    return Advance().value;
  }

  // ---- declarations --------------------------------------------------------

  GlobalVar ParseGlobal(const Token& name) {
    GlobalVar global;
    global.name = name.text;
    global.line = name.line;
    if (Match("[")) {
      global.array_size = ExpectNumber();
      if (global.array_size <= 0) {
        throw CompileError(name.line, "array size must be positive");
      }
      Expect("]", "global array");
      if (Match("=")) {
        Expect("{", "array initialiser");
        if (!Check("}")) {
          do {
            const bool negative = Match("-");
            std::int64_t value = ExpectNumber();
            if (negative) value = -value;
            global.elements.push_back(value);
          } while (Match(","));
        }
        Expect("}", "array initialiser");
        if (static_cast<std::int64_t>(global.elements.size()) >
            global.array_size) {
          throw CompileError(name.line, "too many initialisers for '" +
                                            name.text + "'");
        }
      }
    } else if (Match("=")) {
      // Constant initialiser only (optionally negated).
      const bool negative = Match("-");
      global.initial = ExpectNumber();
      if (negative) global.initial = -global.initial;
    }
    Expect(";", "global declaration");
    return global;
  }

  Function ParseFunction(const Token& name) {
    Function function;
    function.name = name.text;
    function.line = name.line;
    Expect("(", "function parameters");
    if (!Check(")")) {
      do {
        Expect("int", "parameter type");
        function.params.push_back(ExpectIdentifier().text);
      } while (Match(","));
    }
    Expect(")", "function parameters");
    if (function.params.size() > 4) {
      throw CompileError(name.line,
                         "at most 4 parameters are supported (a0..a3)");
    }
    function.body = ParseBlock();
    return function;
  }

  // ---- statements ----------------------------------------------------------

  StmtPtr ParseBlock() {
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    block->line = Peek().line;
    Expect("{", "block");
    while (!Check("}")) {
      if (AtEnd()) throw CompileError(block->line, "unterminated block");
      block->body.push_back(ParseStatement());
    }
    Expect("}", "block");
    return block;
  }

  StmtPtr ParseStatement() {
    const int line = Peek().line;
    if (Check("{")) return ParseBlock();

    auto stmt = std::make_unique<Stmt>();
    stmt->line = line;

    if (Match("int")) {
      stmt->kind = StmtKind::kDecl;
      stmt->name = ExpectIdentifier().text;
      if (Match("[")) {
        stmt->array_size = ExpectNumber();
        if (stmt->array_size <= 0) {
          throw CompileError(line, "array size must be positive");
        }
        Expect("]", "local array");
      } else if (Match("=")) {
        stmt->expr = ParseExpr();
      }
      Expect(";", "declaration");
      return stmt;
    }
    if (Match("if")) {
      stmt->kind = StmtKind::kIf;
      Expect("(", "if");
      stmt->expr = ParseExpr();
      Expect(")", "if");
      stmt->body.push_back(ParseStatement());
      if (Match("else")) stmt->body.push_back(ParseStatement());
      return stmt;
    }
    if (Match("while")) {
      stmt->kind = StmtKind::kWhile;
      Expect("(", "while");
      stmt->expr = ParseExpr();
      Expect(")", "while");
      stmt->body.push_back(ParseStatement());
      return stmt;
    }
    if (Match("for")) {
      stmt->kind = StmtKind::kFor;
      Expect("(", "for");
      // init: declaration, expression, or empty
      auto init = std::make_unique<Stmt>();
      init->line = line;
      if (Match("int")) {
        init->kind = StmtKind::kDecl;
        init->name = ExpectIdentifier().text;
        if (Match("=")) init->expr = ParseExpr();
        Expect(";", "for initialiser");
      } else if (Match(";")) {
        init->kind = StmtKind::kBlock;  // empty
      } else {
        init->kind = StmtKind::kExpr;
        init->expr = ParseExpr();
        Expect(";", "for initialiser");
      }
      stmt->body.push_back(std::move(init));
      // condition (optional)
      if (!Check(";")) stmt->cond = ParseExpr();
      Expect(";", "for condition");
      // step (optional)
      auto step = std::make_unique<Stmt>();
      step->line = line;
      if (!Check(")")) {
        step->kind = StmtKind::kExpr;
        step->expr = ParseExpr();
      } else {
        step->kind = StmtKind::kBlock;  // empty
      }
      stmt->body.push_back(std::move(step));
      Expect(")", "for");
      stmt->body.push_back(ParseStatement());
      return stmt;
    }
    if (Match("return")) {
      stmt->kind = StmtKind::kReturn;
      if (!Check(";")) stmt->expr = ParseExpr();
      Expect(";", "return");
      return stmt;
    }
    if (Match("break")) {
      stmt->kind = StmtKind::kBreak;
      Expect(";", "break");
      return stmt;
    }
    if (Match("continue")) {
      stmt->kind = StmtKind::kContinue;
      Expect(";", "continue");
      return stmt;
    }

    stmt->kind = StmtKind::kExpr;
    stmt->expr = ParseExpr();
    Expect(";", "expression statement");
    return stmt;
  }

  // ---- expressions (precedence climbing) -----------------------------------

  ExprPtr ParseExpr() { return ParseAssignment(); }

  ExprPtr ParseAssignment() {
    ExprPtr lhs = ParseBinary(0);
    if (Check("=")) {
      if (lhs->kind != ExprKind::kVariable && lhs->kind != ExprKind::kIndex) {
        throw CompileError(Peek().line, "invalid assignment target");
      }
      const int line = Advance().line;  // consume '='
      auto assign = std::make_unique<Expr>();
      assign->kind = ExprKind::kAssign;
      assign->line = line;
      assign->lhs = std::move(lhs);
      assign->rhs = ParseAssignment();  // right associative
      return assign;
    }
    return lhs;
  }

  // Precedence table, loosest first.
  static int Precedence(const std::string& op) {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "|") return 3;
    if (op == "^") return 4;
    if (op == "&") return 5;
    if (op == "==" || op == "!=") return 6;
    if (op == "<" || op == "<=" || op == ">" || op == ">=") return 7;
    if (op == "<<" || op == ">>") return 8;
    if (op == "+" || op == "-") return 9;
    if (op == "*" || op == "/" || op == "%") return 10;
    return -1;
  }

  ExprPtr ParseBinary(int min_precedence) {
    ExprPtr lhs = ParseUnary();
    for (;;) {
      const Token& token = Peek();
      if (token.kind != TokenKind::kPunct) break;
      const int precedence = Precedence(token.text);
      if (precedence < 0 || precedence < min_precedence) break;
      const std::string op = Advance().text;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->line = token.line;
      node->op = op;
      node->lhs = std::move(lhs);
      node->rhs = ParseBinary(precedence + 1);  // left associative
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr ParseUnary() {
    const Token& token = Peek();
    if (Check("-") || Check("!") || Check("~")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->line = token.line;
      node->op = Advance().text;
      node->lhs = ParseUnary();
      return node;
    }
    return ParsePostfix();
  }

  ExprPtr ParsePostfix() {
    ExprPtr primary = ParsePrimary();
    if (primary->kind == ExprKind::kVariable && Match("[")) {
      auto index = std::make_unique<Expr>();
      index->kind = ExprKind::kIndex;
      index->line = primary->line;
      index->name = primary->name;
      index->lhs = ParseExpr();
      Expect("]", "array index");
      return index;
    }
    return primary;
  }

  ExprPtr ParsePrimary() {
    const Token& token = Peek();
    auto node = std::make_unique<Expr>();
    node->line = token.line;
    if (token.kind == TokenKind::kNumber) {
      node->kind = ExprKind::kNumber;
      node->number = Advance().value;
      return node;
    }
    if (token.kind == TokenKind::kIdentifier) {
      const Token name = Advance();
      if (Match("(")) {
        node->kind = ExprKind::kCall;
        node->name = name.text;
        if (!Check(")")) {
          do {
            node->args.push_back(ParseExpr());
          } while (Match(","));
        }
        Expect(")", "call");
        if (node->args.size() > 4) {
          throw CompileError(name.line, "at most 4 arguments are supported");
        }
        return node;
      }
      node->kind = ExprKind::kVariable;
      node->name = name.text;
      return node;
    }
    if (Match("(")) {
      ExprPtr inner = ParseExpr();
      Expect(")", "parenthesised expression");
      return inner;
    }
    throw CompileError(token.line,
                       "expected expression, got '" + token.text + "'");
  }

  const std::vector<Token>& tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program Parse(const std::vector<Token>& tokens) {
  return Parser(tokens).ParseProgram();
}

}  // namespace ces::cc
