// MiniC lexer.
//
// MiniC is the repository's small C subset for writing workloads without
// hand-assembling MR32 (the paper's flow compiles its benchmarks; this
// completes that substrate). The language: `int` scalars and 1-D arrays,
// functions, full C expression operators with precedence and short-circuit
// && / ||, if/else, while, for, break/continue/return, and the builtins
// out(x) / outb(x) that map to the CPU's output instructions.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ces::cc {

enum class TokenKind : std::uint8_t {
  kEnd,
  kIdentifier,
  kNumber,
  kKeyword,     // int, if, else, while, for, return, break, continue
  kPunct,       // operators and separators
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::int64_t value = 0;  // for kNumber
  int line = 0;
};

class CompileError : public std::runtime_error {
 public:
  CompileError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

// Throws CompileError on malformed input (bad characters, unterminated
// comments). Numbers: decimal, 0x hex, and 'c' character literals.
std::vector<Token> Lex(const std::string& source);

}  // namespace ces::cc
