// MiniC recursive-descent parser. Throws CompileError with a line number on
// any syntax problem.
#pragma once

#include "cc/ast.hpp"
#include "cc/lexer.hpp"

namespace ces::cc {

Program Parse(const std::vector<Token>& tokens);

}  // namespace ces::cc
