#include "cc/lexer.hpp"

#include <cctype>

namespace ces::cc {
namespace {

bool IsKeyword(const std::string& word) {
  static const char* kKeywords[] = {"int",    "if",    "else",     "while",
                                    "for",    "return", "break",   "continue"};
  for (const char* keyword : kKeywords) {
    if (word == keyword) return true;
  }
  return false;
}

// Multi-character operators, longest first so maximal munch works.
const char* kOperators[] = {"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
                            "+",  "-",  "*",  "/",  "%",  "<",  ">",  "=",
                            "!",  "~",  "&",  "|",  "^",  "(",  ")",  "{",
                            "}",  "[",  "]",  ";",  ","};

}  // namespace

std::vector<Token> Lex(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t pos = 0;
  int line = 1;

  const auto peek = [&](std::size_t offset = 0) -> char {
    return pos + offset < source.size() ? source[pos + offset] : '\0';
  };

  while (pos < source.size()) {
    const char c = source[pos];
    if (c == '\n') {
      ++line;
      ++pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    // Comments: // to end of line, /* */ nestable-unaware (C semantics).
    if (c == '/' && peek(1) == '/') {
      while (pos < source.size() && source[pos] != '\n') ++pos;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      pos += 2;
      while (pos < source.size() &&
             !(source[pos] == '*' && peek(1) == '/')) {
        if (source[pos] == '\n') ++line;
        ++pos;
      }
      if (pos >= source.size()) {
        throw CompileError(start_line, "unterminated comment");
      }
      pos += 2;
      continue;
    }

    Token token;
    token.line = line;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (pos < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[pos])) ||
              source[pos] == '_')) {
        word += source[pos++];
      }
      token.kind = IsKeyword(word) ? TokenKind::kKeyword
                                   : TokenKind::kIdentifier;
      token.text = std::move(word);
      tokens.push_back(std::move(token));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      char* end = nullptr;
      token.kind = TokenKind::kNumber;
      token.value = std::strtoll(source.c_str() + pos, &end, 0);
      token.text = source.substr(pos, static_cast<std::size_t>(
                                          end - (source.c_str() + pos)));
      pos += token.text.size();
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '\'') {
      if (pos + 2 < source.size() && source[pos + 1] == '\\' &&
          source[pos + 3] == '\'') {
        char value = 0;
        switch (source[pos + 2]) {
          case 'n': value = '\n'; break;
          case 't': value = '\t'; break;
          case '0': value = '\0'; break;
          case '\\': value = '\\'; break;
          default: throw CompileError(line, "bad escape");
        }
        token.kind = TokenKind::kNumber;
        token.value = value;
        pos += 4;
      } else if (pos + 2 < source.size() && source[pos + 2] == '\'') {
        token.kind = TokenKind::kNumber;
        token.value = source[pos + 1];
        pos += 3;
      } else {
        throw CompileError(line, "bad character literal");
      }
      tokens.push_back(std::move(token));
      continue;
    }

    bool matched = false;
    for (const char* op : kOperators) {
      const std::size_t length = std::char_traits<char>::length(op);
      if (source.compare(pos, length, op) == 0) {
        token.kind = TokenKind::kPunct;
        token.text = op;
        pos += length;
        tokens.push_back(std::move(token));
        matched = true;
        break;
      }
    }
    if (!matched) {
      throw CompileError(line, std::string("unexpected character '") + c + "'");
    }
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace ces::cc
