// The fleet router: a digest-sharded forwarder over the worker pool.
//
// Router is a LineService (so service::Server gives it the same socket
// front end as a worker daemon) whose executor forwards every schedulable
// request to the worker that owns it instead of running an Explorer:
//
//   client ──> router ──(rendezvous ring on digest / trace name)──> worker
//
// Placement. Digest ops go to the worker the ring assigns the digest —
// hardened by a bounded placement memo learned from worker responses (a
// digest uploaded while the ring owner was down lives on the next-ranked
// node; the memo remembers where it actually landed). Trace-by-name ops go
// to the ring owner of the name, so repeat requests for the same workload
// hit the same warm prelude. Chunked uploads are pinned at trace-begin (ring
// owner of the declared name, round-robin when anonymous) and the session
// token returned to the client is wrapped as "w<idx>.<worker-token>" so
// trace-chunk/trace-end self-route with no session table in the router.
//
// Peek. When the routed worker answers "unknown digest" — or the memoised
// owner is marked down — the router probes the other live workers with a
// cheap stats-digest request (the cross-node result-cache peek) and
// re-forwards to the node that actually holds the trace, memoising the
// answer. Only when no live worker knows the digest does the client see the
// validation error.
//
// Failure policy. A static --workers membership list is hardened by a
// periodic health prober: a probe failure (or any forward-time transport
// error) marks the worker down, a later successful probe marks it back up.
// By-name work re-routes to the next-ranked live worker; digest work sheds
// honestly ("overloaded" + retry_after_ms) when no live worker holds the
// digest — the router never silently computes a wrong answer. Admission
// reuses the service Dispatcher (same bounded queue, same shed taxonomy),
// and a per-worker in-flight cap folds per-node backpressure into the same
// "overloaded" response.
//
// Provenance. Responses pass through byte-identical except for three
// splices: the client's id replaces the router's forward id, the rid
// becomes "<router-rid>/<worker-rid>" so one grep of either request log
// follows a request across the hop, and upload tokens gain their "w<idx>."
// routing prefix. Payload bytes (points, stats, joint reports) are the
// worker's own — the router cannot corrupt what it does not reparse.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fleet/ring.hpp"
#include "service/client.hpp"
#include "service/dispatch.hpp"
#include "service/service.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"

namespace ces::fleet {

// One persistent multiplexed connection to a worker. Submit() registers a
// callback under the forward id and pipelines the framed line; a single
// reader thread matches response lines back by id. Every accepted submit is
// answered exactly once: with (true, line) when the worker responds, with
// (false, "") when the connection dies first or Close() tears it down.
// Submit() returning false means nothing was sent (connect or send failed —
// the worker saw nothing, the caller owns the failover).
class WorkerChannel {
 public:
  using Callback = std::function<void(bool transport_ok, std::string line)>;

  WorkerChannel(service::ClientEndpoint endpoint, int send_timeout_s = 10);
  ~WorkerChannel();  // implies Close()

  WorkerChannel(const WorkerChannel&) = delete;
  WorkerChannel& operator=(const WorkerChannel&) = delete;

  bool Submit(const std::string& fid, const std::string& line, Callback done);

  // Fails everything pending, hangs up and joins the reader. Idempotent;
  // a closed channel refuses further submits.
  void Close();

  std::size_t pending() const;
  const service::ClientEndpoint& endpoint() const { return endpoint_; }

 private:
  void ReaderLoop();

  const service::ClientEndpoint endpoint_;
  const int send_timeout_s_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int fd_ = -1;
  bool stopping_ = false;
  std::unordered_map<std::string, Callback> pending_;
  std::thread reader_;
};

struct RouterOptions {
  // Static membership: the worker endpoints, in --workers order. Ring
  // placement keys on the endpoint labels, so the same list (in any order)
  // yields the same placement on every router.
  std::vector<service::ClientEndpoint> workers;
  std::uint64_t ring_seed = 0;
  std::size_t queue_limit = 256;        // router admission bound
  std::uint64_t retry_after_ms = 100;   // shed hint
  std::size_t worker_inflight_limit = 128;  // per-worker backpressure cap
  std::uint64_t health_period_ms = 1000;    // 0 disables the prober
  int probe_timeout_ms = 2000;          // per health probe
  int worker_timeout_ms = 30'000;       // drain bound on in-flight forwards
  std::size_t placement_memo_limit = 65536;  // digest->worker entries
  support::MetricsRegistry* metrics = nullptr;
  support::RequestLog* request_log = nullptr;
  // Invoked (after the response is sent) on the protocol shutdown op.
  // Unset = the op is rejected, same as a worker daemon.
  std::function<void()> on_shutdown_request;
};

class Router : public service::LineService, private service::BatchExecutor {
 public:
  explicit Router(RouterOptions options);
  ~Router() override;  // implies Drain()

  void Handle(const std::string& line, Responder done) override;
  void Drain() override;

  // Live worker count / per-worker up flags (ops + tests).
  std::size_t workers_up() const;
  bool worker_up(std::size_t index) const;
  // Test hook: force a membership transition without waiting for the
  // prober to notice.
  void MarkDown(std::size_t index);
  void MarkUp(std::size_t index);

  const Ring& ring() const { return ring_; }
  service::protocol::ServerInfo Snapshot() const;

 private:
  struct Worker {
    service::ClientEndpoint endpoint;
    std::string name;  // endpoint label; the ring node key
    std::unique_ptr<WorkerChannel> channel;
    std::atomic<bool> up{true};
    std::atomic<std::size_t> inflight{0};
  };

  // One forwarded request in flight, shared with the channel callbacks.
  struct Forward {
    service::DispatchJob job;
    std::vector<bool> tried;     // workers already attempted
    std::size_t worker = 0;      // current target
    std::string fid;             // router-side correlation id
    std::string wrapped_upload;  // original wrapped token (chunk/end)
    bool peeked = false;         // a peek round already ran
  };
  using ForwardPtr = std::shared_ptr<Forward>;

  // BatchExecutor:
  void ExecuteBatch(std::deque<service::DispatchJob> batch) override;
  void Quiesce() override;

  std::string NextRid();
  std::string NextFid();
  void LogInline(const std::string& rid, const std::string& id,
                 const char* op, const char* outcome,
                 const std::string& error_code, std::uint64_t start_us,
                 std::size_t response_bytes);

  // Routing: picks the worker, enforces the in-flight cap, sends. Every
  // path answers the job exactly once (possibly asynchronously).
  void ForwardJob(ForwardPtr forward);
  void SendTo(ForwardPtr forward, std::size_t worker);
  void OnWorkerResponse(ForwardPtr forward, std::size_t worker,
                        bool transport_ok, std::string line);
  void OnTransportFailure(ForwardPtr forward, std::size_t worker);
  // The cross-node peek: probes live workers (excluding `exclude`) for
  // every digest the request references (one for explore/stats/ingest, up
  // to two for explore-joint — which needs a node holding BOTH) with cheap
  // stats requests; re-forwards on a full hit, else answers with `fallback`
  // (the owner's error response, spliced) or an honest shed.
  void PeekForDigest(ForwardPtr forward, std::size_t exclude,
                     std::string fallback_response);
  // Probes candidates->front() for (*digests)[digest_index]; a hit advances
  // the digest index on the same worker, a miss pops the candidate and
  // restarts at digest 0 on the next.
  void PeekStep(ForwardPtr forward,
                std::shared_ptr<std::deque<std::size_t>> candidates,
                std::shared_ptr<std::vector<std::string>> digests,
                std::size_t digest_index,
                std::shared_ptr<std::string> fallback);

  // Terminal paths: answer via the dispatcher, then release the in-flight
  // slot Quiesce() waits on.
  void Answer(ForwardPtr forward, std::size_t worker, std::string line);
  void AnswerError(ForwardPtr forward, const std::string& code,
                   const std::string& message, std::uint64_t retry_after_ms,
                   const char* outcome = "error");
  void FinishForward();

  // Placement helpers.
  bool LookupMemo(const std::string& digest, std::size_t* worker) const;
  void Memoise(const std::string& digest, std::size_t worker);
  // First live worker in ring order for `key`, skipping already-tried
  // entries; false when none is left.
  bool PickByRing(const std::string& key, const std::vector<bool>& tried,
                  std::size_t* worker) const;
  // Round-robin over live workers (anonymous trace-begin).
  bool PickRoundRobin(std::size_t* worker);
  void SetWorkersUpGauge();

  void ProberLoop();

  RouterOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  Ring ring_;

  std::atomic<std::uint64_t> rid_counter_{0};
  std::atomic<std::uint64_t> fid_counter_{0};
  std::atomic<std::uint64_t> round_robin_{0};
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();

  mutable std::mutex memo_mutex_;
  std::unordered_map<std::string, std::size_t> placement_;

  std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::size_t forwards_inflight_ = 0;
  std::atomic<bool> quiescing_{false};

  std::mutex prober_mutex_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
  std::thread prober_;

  // Declared last: its thread calls back into ExecuteBatch, so everything
  // above must already be constructed (and must stay alive until Drain).
  service::Dispatcher dispatcher_;
};

}  // namespace ces::fleet
