// Seeded rendezvous (highest-random-weight) hashing for the fleet.
//
// Placement must satisfy three properties the router and its tests pin:
//  * deterministic — a pure function of (seed, node names, key), so every
//    router restart and every replica with the same --workers list computes
//    the same owner, with no state to persist or gossip;
//  * uniform — across many keys, each node owns ~1/N of the space;
//  * minimal movement — adding a node moves onto it only the keys it now
//    wins, and removing a node moves only the keys it owned. Nothing else
//    changes hands. Rendezvous hashing gives this for free (each key ranks
//    all nodes independently; membership changes only affect ranks involving
//    the changed node), which is why it is used instead of a ring of virtual
//    points — at fleet sizes of single-digit workers, the O(N) score scan
//    per key is noise next to a network hop.
//
// Ranked() returns the full preference order, which doubles as the failover
// order: when the owner is marked down, the next-ranked node is the unique
// deterministic alternate every router agrees on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ces::fleet {

class Ring {
 public:
  // Node names must be unique and non-empty; order does not matter for
  // placement (scores are name-keyed), only for the indices Ranked/Owner
  // report, which map into this vector.
  Ring(std::vector<std::string> nodes, std::uint64_t seed = 0);

  // Index (into nodes()) of the highest-scoring node for `key`. Ties break
  // on the lexicographically smaller node name so equality of scores —
  // astronomically unlikely but possible — never makes placement depend on
  // construction order.
  std::size_t OwnerIndex(const std::string& key) const;
  const std::string& Owner(const std::string& key) const {
    return nodes_[OwnerIndex(key)];
  }

  // All node indices in descending score order for `key`: the owner first,
  // then the failover sequence.
  std::vector<std::size_t> Ranked(const std::string& key) const;

  std::size_t size() const { return nodes_.size(); }
  const std::vector<std::string>& nodes() const { return nodes_; }
  std::uint64_t seed() const { return seed_; }

  // The raw rendezvous score (exposed for the distribution tests).
  std::uint64_t Score(std::size_t node_index, const std::string& key) const;

 private:
  std::vector<std::string> nodes_;
  std::vector<std::uint64_t> node_hashes_;  // precomputed per-node digests
  std::uint64_t seed_ = 0;
};

}  // namespace ces::fleet
