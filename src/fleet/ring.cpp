#include "fleet/ring.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ces::fleet {

namespace {

// FNV-1a over the bytes, from a caller-chosen basis so the seed perturbs
// every bit of the state before the data arrives.
std::uint64_t Fnv1a(const std::string& data, std::uint64_t basis) {
  std::uint64_t h = basis ^ 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// SplitMix64 finaliser: full-avalanche mix so the structured FNV states of
// similar strings ("w0", "w1", ...) spread over the whole 64-bit space.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Ring::Ring(std::vector<std::string> nodes, std::uint64_t seed)
    : nodes_(std::move(nodes)), seed_(seed) {
  CES_CHECK(!nodes_.empty());
  node_hashes_.reserve(nodes_.size());
  for (const std::string& node : nodes_) {
    node_hashes_.push_back(Mix(Fnv1a(node, seed_)));
  }
}

std::uint64_t Ring::Score(std::size_t node_index, const std::string& key) const {
  // hash(seed, node, key): the node digest already folds the seed in; the
  // key digest re-folds it so neither half alone determines the score.
  return Mix(node_hashes_[node_index] ^ Fnv1a(key, Mix(seed_)));
}

std::size_t Ring::OwnerIndex(const std::string& key) const {
  std::size_t best = 0;
  std::uint64_t best_score = Score(0, key);
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const std::uint64_t score = Score(i, key);
    if (score > best_score ||
        (score == best_score && nodes_[i] < nodes_[best])) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

std::vector<std::size_t> Ring::Ranked(const std::string& key) const {
  std::vector<std::pair<std::uint64_t, std::size_t>> scored;
  scored.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    scored.emplace_back(Score(i, key), i);
  }
  std::sort(scored.begin(), scored.end(),
            [this](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return nodes_[a.second] < nodes_[b.second];
            });
  std::vector<std::size_t> ranked;
  ranked.reserve(scored.size());
  for (const auto& [score, index] : scored) ranked.push_back(index);
  return ranked;
}

}  // namespace ces::fleet
