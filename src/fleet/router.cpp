#include "fleet/router.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "support/build_info.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace ces::fleet {

namespace protocol = service::protocol;

namespace {

using service::protocol::Op;
using support::Error;
using support::ErrorCategory;
using support::JsonQuote;

// True when the response line reports ok:true. The raw byte sequence
// `"ok":` cannot occur inside any serialised string (our serialisers escape
// the quote character), so the first occurrence is the response's own flag.
bool ResponseOk(const std::string& line) {
  const std::size_t pos = line.find("\"ok\":");
  return pos != std::string::npos && line.compare(pos + 5, 4, "true") == 0;
}

// Pulls the top-level "digest" field out of a response line. Digests are
// fixed-format ("sha256:" + hex), so the value never contains escapes and a
// literal scan is exact; "" when absent or not digest-shaped.
std::string ExtractDigestField(const std::string& line) {
  static constexpr char kNeedle[] = "\"digest\":\"";
  const std::size_t pos = line.find(kNeedle);
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + sizeof(kNeedle) - 1;
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  std::string digest = line.substr(start, end - start);
  if (digest.rfind("sha256:", 0) != 0) return "";
  return digest;
}

// The worker's unknown-digest rejection, the trigger for the cross-node
// peek. Both needles are serialiser-produced (escaped) text, so a literal
// scan cannot false-positive on client-controlled fields.
bool IsUnknownDigestError(const std::string& line) {
  return !ResponseOk(line) &&
         line.find("\"code\":\"validation\"") != std::string::npos &&
         line.find("unknown digest ") != std::string::npos;
}

// Routed upload tokens are "w<idx>.<worker-token>": the prefix self-routes
// trace-chunk/trace-end with no session table in the router.
bool ParseWrappedToken(const std::string& token, std::size_t worker_count,
                       std::size_t* index, std::string* rest) {
  if (token.size() < 3 || token[0] != 'w') return false;
  const std::size_t dot = token.find('.');
  if (dot == std::string::npos || dot == 1 || dot + 1 >= token.size()) {
    return false;
  }
  std::size_t value = 0;
  for (std::size_t i = 1; i < dot; ++i) {
    if (token[i] < '0' || token[i] > '9') return false;
    value = value * 10 + static_cast<std::size_t>(token[i] - '0');
    if (value >= worker_count) return false;
  }
  *index = value;
  *rest = token.substr(dot + 1);
  return true;
}

std::vector<std::string> WorkerNames(const RouterOptions& options) {
  std::vector<std::string> names;
  names.reserve(options.workers.size());
  for (const auto& endpoint : options.workers) {
    names.push_back(endpoint.Label());
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      if (names[i] == names[j]) {
        throw Error(ErrorCategory::kUsage, "router",
                    "duplicate worker endpoint " + names[i]);
      }
    }
  }
  return names;
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerChannel

WorkerChannel::WorkerChannel(service::ClientEndpoint endpoint,
                             int send_timeout_s)
    : endpoint_(std::move(endpoint)), send_timeout_s_(send_timeout_s) {
  reader_ = std::thread([this] { ReaderLoop(); });
}

WorkerChannel::~WorkerChannel() { Close(); }

std::size_t WorkerChannel::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

bool WorkerChannel::Submit(const std::string& fid, const std::string& line,
                           Callback done) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return false;
  if (fd_ < 0) {
    const int fd = service::ConnectEndpoint(endpoint_);
    if (fd < 0) return false;
    // A worker that stops reading must not wedge the router in send();
    // after the timeout the connection is treated as dead.
    const timeval send_timeout{send_timeout_s_, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
    fd_ = fd;
    cv_.notify_all();  // hand the new connection to the reader
  }
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // A partial line may be on the wire, but without its newline the
      // worker never parses it. Hang up so the reader fails everything
      // already pending and the next submit reconnects.
      ::shutdown(fd_, SHUT_RDWR);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  // Registered only after the full line is out; the reader cannot race us
  // here because it needs the mutex to deliver.
  pending_.emplace(fid, std::move(done));
  return true;
}

void WorkerChannel::ReaderLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || fd_ >= 0; });
      if (stopping_) return;
      fd = fd_;
    }
    std::string buffered;
    char buffer[16384];
    for (;;) {
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buffered.append(buffer, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t newline = buffered.find('\n', start);
        if (newline == std::string::npos) break;
        const std::string line = buffered.substr(start, newline - start);
        start = newline + 1;
        if (line.empty()) continue;
        // Responses echo the forward id; ExtractRequestId reads any
        // {"id":"..."} object, which responses are.
        const std::string fid = service::protocol::ExtractRequestId(line);
        Callback done;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          auto it = pending_.find(fid);
          if (it != pending_.end()) {
            done = std::move(it->second);
            pending_.erase(it);
          }
        }
        if (done) done(true, line);
      }
      buffered.erase(0, start);
    }
    // The connection died. Everything still pending on it is unanswerable.
    std::unordered_map<std::string, Callback> orphans;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (fd_ == fd) {
        ::close(fd_);
        fd_ = -1;
      }
      orphans.swap(pending_);
    }
    for (auto& [fid, done] : orphans) done(false, "");
  }
}

void WorkerChannel::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }
  cv_.notify_all();
  if (reader_.joinable()) reader_.join();
  std::unordered_map<std::string, Callback> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    orphans.swap(pending_);
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  for (auto& [fid, done] : orphans) done(false, "");
}

// ---------------------------------------------------------------------------
// Router

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      ring_(WorkerNames(options_), options_.ring_seed),
      dispatcher_(*this,
                  service::Dispatcher::Options{options_.queue_limit,
                                               options_.retry_after_ms,
                                               options_.request_log},
                  options_.metrics) {
  workers_.reserve(options_.workers.size());
  for (const auto& endpoint : options_.workers) {
    auto worker = std::make_unique<Worker>();
    worker->endpoint = endpoint;
    worker->name = endpoint.Label();
    worker->channel = std::make_unique<WorkerChannel>(endpoint);
    workers_.push_back(std::move(worker));
  }
  SetWorkersUpGauge();
  if (options_.health_period_ms > 0) {
    prober_ = std::thread([this] { ProberLoop(); });
  }
}

Router::~Router() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(prober_mutex_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
  for (auto& worker : workers_) worker->channel->Close();
}

void Router::Drain() { dispatcher_.Drain(); }

std::string Router::NextRid() {
  return "r" + std::to_string(
                   rid_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
}

std::string Router::NextFid() {
  return "f" + std::to_string(
                   fid_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
}

std::size_t Router::workers_up() const {
  std::size_t up = 0;
  for (const auto& worker : workers_) {
    if (worker->up.load(std::memory_order_relaxed)) ++up;
  }
  return up;
}

bool Router::worker_up(std::size_t index) const {
  return workers_[index]->up.load(std::memory_order_relaxed);
}

void Router::SetWorkersUpGauge() {
  support::MetricsRegistry::SetGauge(options_.metrics, "fleet.workers.up",
                                     workers_up());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    support::MetricsRegistry::SetGauge(
        options_.metrics, "fleet.worker." + std::to_string(i) + ".up",
        workers_[i]->up.load(std::memory_order_relaxed) ? 1 : 0);
  }
}

void Router::MarkDown(std::size_t index) {
  if (workers_[index]->up.exchange(false, std::memory_order_relaxed)) {
    support::MetricsRegistry::Add(options_.metrics, "fleet.markdowns");
    SetWorkersUpGauge();
  }
}

void Router::MarkUp(std::size_t index) {
  if (!workers_[index]->up.exchange(true, std::memory_order_relaxed)) {
    support::MetricsRegistry::Add(options_.metrics, "fleet.markups");
    SetWorkersUpGauge();
  }
}

protocol::ServerInfo Router::Snapshot() const {
  protocol::ServerInfo info;
  info.uptime_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started_)
          .count());
  info.git_sha = support::GitSha();
  info.pid = static_cast<std::uint64_t>(::getpid());
  // For a router, "jobs" is the pool it dispatches into: the live workers.
  info.jobs = workers_up();
  if (options_.metrics != nullptr) {
    info.connections_live = options_.metrics->gauge("service.connections.live");
    info.connections_total = options_.metrics->counter("service.connections");
    info.shed_total = options_.metrics->counter("service.queue.shed") +
                      options_.metrics->counter("fleet.sheds");
  }
  info.queue_depth = dispatcher_.queue_depth();
  info.queue_limit = options_.queue_limit;
  info.retry_after_ms = options_.retry_after_ms;
  info.draining = dispatcher_.draining();
  info.requests_total = rid_counter_.load(std::memory_order_relaxed);
  return info;
}

void Router::LogInline(const std::string& rid, const std::string& id,
                       const char* op, const char* outcome,
                       const std::string& error_code, std::uint64_t start_us,
                       std::size_t response_bytes) {
  if (options_.request_log == nullptr) return;
  support::RequestLogEntry entry;
  entry.ts_us = options_.request_log->NowUs();
  entry.rid = rid;
  entry.id = id;
  entry.op = op;
  entry.outcome = outcome;
  entry.error = error_code;
  entry.exec_us = entry.ts_us > start_us ? entry.ts_us - start_us : 0;
  entry.total_us = entry.exec_us;
  entry.bytes = response_bytes;
  options_.request_log->Write(entry);
}

void Router::Handle(const std::string& line, Responder done) {
  support::MetricsRegistry::Add(options_.metrics, "service.lines");
  const std::uint64_t start_us =
      support::RequestLog::NowUs(options_.request_log);
  const std::string rid = NextRid();
  protocol::Request request;
  try {
    request = service::ParseRequest(line);
  } catch (const Error& e) {
    support::MetricsRegistry::Add(options_.metrics, "service.bad_requests");
    const std::string id = protocol::ExtractRequestId(line);
    const std::string response = protocol::ErrorResponse(id, e, rid);
    LogInline(rid, id, "?", "error", support::ToString(e.category()),
              start_us, response.size());
    done(response);
    return;
  } catch (const std::exception& e) {
    support::MetricsRegistry::Add(options_.metrics, "service.bad_requests");
    const std::string id = protocol::ExtractRequestId(line);
    const std::string response = protocol::ErrorResponse(
        id, support::ToString(ErrorCategory::kInternal), e.what(), 0, rid);
    LogInline(rid, id, "?", "error",
              support::ToString(ErrorCategory::kInternal), start_us,
              response.size());
    done(response);
    return;
  }
  request.rid = rid;

  // Introspection stays local: a fleet probe must answer even when every
  // worker is down or the forward queue is saturated.
  switch (request.op) {
    case Op::kPing: {
      const std::string response = protocol::PingResponse(request.id, rid);
      LogInline(rid, request.id, "ping", "inline", "", start_us,
                response.size());
      done(response);
      return;
    }
    case Op::kMetrics: {
      const std::string json = options_.metrics != nullptr
                                   ? options_.metrics->ToJson(true)
                                   : std::string("{}");
      const std::string response =
          protocol::MetricsResponse(request.id, json, rid);
      LogInline(rid, request.id, "metrics", "inline", "", start_us,
                response.size());
      done(response);
      return;
    }
    case Op::kStats: {
      if (!request.trace.empty() || !request.digest.empty()) {
        break;  // trace statistics — forwarded like any other trace op
      }
      const std::string json = options_.metrics != nullptr
                                   ? options_.metrics->ToJson(true, true)
                                   : std::string("{}");
      const std::string response =
          protocol::ServerStatsResponse(request.id, Snapshot(), json, rid);
      LogInline(rid, request.id, "stats", "inline", "", start_us,
                response.size());
      done(response);
      return;
    }
    case Op::kHealth: {
      const std::string response =
          protocol::HealthResponse(request.id, Snapshot(), rid);
      LogInline(rid, request.id, "health", "inline", "", start_us,
                response.size());
      done(response);
      return;
    }
    case Op::kShutdown: {
      if (!options_.on_shutdown_request) {
        const std::string response = protocol::ErrorResponse(
            request.id, support::ToString(ErrorCategory::kUnsupported),
            "shutdown op disabled on this router", 0, rid);
        LogInline(rid, request.id, "shutdown", "error",
                  support::ToString(ErrorCategory::kUnsupported), start_us,
                  response.size());
        done(response);
        return;
      }
      const std::string response = protocol::ShutdownResponse(request.id, rid);
      LogInline(rid, request.id, "shutdown", "inline", "", start_us,
                response.size());
      done(response);
      options_.on_shutdown_request();
      return;
    }
    default:
      break;
  }
  dispatcher_.Submit(std::move(request), std::move(done));
}

void Router::ExecuteBatch(std::deque<service::DispatchJob> batch) {
  while (!batch.empty()) {
    auto forward = std::make_shared<Forward>();
    forward->job = std::move(batch.front());
    batch.pop_front();
    forward->tried.assign(workers_.size(), false);
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      ++forwards_inflight_;
    }
    ForwardJob(std::move(forward));
  }
}

void Router::ForwardJob(ForwardPtr forward) {
  if (service::Dispatcher::DeadlineExpired(forward->job,
                                           std::chrono::steady_clock::now())) {
    AnswerError(forward, protocol::kCodeDeadlineExceeded,
                "deadline expired before dispatch", 0, "deadline");
    return;
  }
  const protocol::Request& request = forward->job.request;
  switch (request.op) {
    case Op::kTraceChunk:
    case Op::kTraceEnd: {
      // Self-routing token: the session lives on exactly one worker, so the
      // up flag is advisory here — a markdown must not strand a session the
      // worker is still serving.
      std::size_t worker = 0;
      std::string rest;
      if (!ParseWrappedToken(request.upload, workers_.size(), &worker,
                             &rest)) {
        AnswerError(forward, support::ToString(ErrorCategory::kValidation),
                    "unknown upload token " + request.upload +
                        " (not issued by this router)",
                    0);
        return;
      }
      forward->wrapped_upload = request.upload;
      forward->job.request.upload = rest;
      SendTo(std::move(forward), worker);
      return;
    }
    case Op::kTraceBegin: {
      std::size_t worker = 0;
      if (!request.name.empty()) {
        // Named uploads follow the ring so re-uploads of the same workload
        // land where its digest already lives.
        if (!PickByRing(request.name, forward->tried, &worker) &&
            !PickRoundRobin(&worker)) {
          AnswerError(forward, protocol::kCodeOverloaded,
                      "no live worker to accept the upload",
                      options_.retry_after_ms, "shed");
          return;
        }
      } else if (!PickRoundRobin(&worker)) {
        AnswerError(forward, protocol::kCodeOverloaded,
                    "no live worker to accept the upload",
                    options_.retry_after_ms, "shed");
        return;
      }
      SendTo(std::move(forward), worker);
      return;
    }
    default:
      break;
  }
  if (!request.digest.empty()) {
    std::size_t worker = 0;
    if (LookupMemo(request.digest, &worker) &&
        workers_[worker]->up.load(std::memory_order_relaxed) &&
        !forward->tried[worker]) {
      SendTo(std::move(forward), worker);
      return;
    }
    if (PickByRing(request.digest, forward->tried, &worker)) {
      SendTo(std::move(forward), worker);
      return;
    }
    AnswerError(forward, protocol::kCodeOverloaded,
                "no live worker for digest " + request.digest,
                options_.retry_after_ms, "shed");
    return;
  }
  if (!request.trace.empty()) {
    std::size_t worker = 0;
    if (PickByRing(request.trace, forward->tried, &worker)) {
      SendTo(std::move(forward), worker);
      return;
    }
    AnswerError(forward, protocol::kCodeOverloaded, "no live workers",
                options_.retry_after_ms, "shed");
    return;
  }
  // No routable reference (cannot happen for ops the dispatcher admits,
  // but keep the executor total): any live worker will do.
  std::size_t worker = 0;
  if (PickRoundRobin(&worker)) {
    SendTo(std::move(forward), worker);
    return;
  }
  AnswerError(forward, protocol::kCodeOverloaded, "no live workers",
              options_.retry_after_ms, "shed");
}

bool Router::LookupMemo(const std::string& digest, std::size_t* worker) const {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  const auto it = placement_.find(digest);
  if (it == placement_.end()) return false;
  *worker = it->second;
  return true;
}

void Router::Memoise(const std::string& digest, std::size_t worker) {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  const auto it = placement_.find(digest);
  if (it != placement_.end()) {
    it->second = worker;
    return;
  }
  if (placement_.size() >= options_.placement_memo_limit) {
    // Rare full reset instead of per-entry LRU bookkeeping: the memo is an
    // optimisation, and the ring plus the peek path re-learn placements.
    placement_.clear();
  }
  placement_.emplace(digest, worker);
}

bool Router::PickByRing(const std::string& key, const std::vector<bool>& tried,
                        std::size_t* worker) const {
  for (const std::size_t index : ring_.Ranked(key)) {
    if (tried[index]) continue;
    if (!workers_[index]->up.load(std::memory_order_relaxed)) continue;
    *worker = index;
    return true;
  }
  return false;
}

bool Router::PickRoundRobin(std::size_t* worker) {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const std::size_t index =
        round_robin_.fetch_add(1, std::memory_order_relaxed) %
        workers_.size();
    if (workers_[index]->up.load(std::memory_order_relaxed)) {
      *worker = index;
      return true;
    }
  }
  return false;
}

void Router::SendTo(ForwardPtr forward, std::size_t worker) {
  forward->worker = worker;
  forward->tried[worker] = true;
  Worker& target = *workers_[worker];

  // Per-node backpressure, folded into the shared admission taxonomy: a
  // worker at its cap sheds exactly like a full router queue would.
  const std::size_t inflight =
      target.inflight.fetch_add(1, std::memory_order_relaxed);
  if (inflight >= options_.worker_inflight_limit) {
    target.inflight.fetch_sub(1, std::memory_order_relaxed);
    support::MetricsRegistry::Add(options_.metrics, "fleet.sheds");
    AnswerError(forward, protocol::kCodeOverloaded,
                "worker " + target.name + " at its in-flight limit",
                options_.retry_after_ms, "shed");
    return;
  }
  support::MetricsRegistry::SetGauge(
      options_.metrics, "fleet.worker." + std::to_string(worker) + ".inflight",
      inflight + 1);

  forward->fid = NextFid();
  protocol::Request wire = forward->job.request;
  wire.id = forward->fid;
  wire.rid.clear();
  const std::string line = protocol::SerializeRequest(wire);

  support::MetricsRegistry::Add(options_.metrics, "fleet.forwards");
  support::MetricsRegistry::Add(
      options_.metrics, "fleet.worker." + std::to_string(worker) + ".forwards");

  const bool accepted = target.channel->Submit(
      forward->fid, line,
      [this, forward, worker](bool transport_ok, std::string response) {
        Worker& done_target = *workers_[worker];
        const std::size_t left =
            done_target.inflight.fetch_sub(1, std::memory_order_relaxed) - 1;
        support::MetricsRegistry::SetGauge(
            options_.metrics,
            "fleet.worker." + std::to_string(worker) + ".inflight", left);
        OnWorkerResponse(forward, worker, transport_ok, std::move(response));
      });
  if (!accepted) {
    const std::size_t left =
        target.inflight.fetch_sub(1, std::memory_order_relaxed) - 1;
    support::MetricsRegistry::SetGauge(
        options_.metrics,
        "fleet.worker." + std::to_string(worker) + ".inflight", left);
    OnTransportFailure(std::move(forward), worker);
  }
}

void Router::OnWorkerResponse(ForwardPtr forward, std::size_t worker,
                              bool transport_ok, std::string line) {
  if (!transport_ok) {
    OnTransportFailure(std::move(forward), worker);
    return;
  }
  const protocol::Request& request = forward->job.request;
  if ((!request.digest.empty() || !request.digest_instr.empty()) &&
      !forward->peeked && IsUnknownDigestError(line)) {
    // The routed worker has never seen this digest — maybe another node
    // ingested it while this one was down (or, for a joint request, the
    // instruction digest lives elsewhere). Peek before giving up.
    forward->peeked = true;
    PeekForDigest(std::move(forward), worker, std::move(line));
    return;
  }
  Answer(std::move(forward), worker, std::move(line));
}

void Router::OnTransportFailure(ForwardPtr forward, std::size_t worker) {
  support::MetricsRegistry::Add(options_.metrics, "fleet.forward.errors");
  if (quiescing_.load(std::memory_order_relaxed)) {
    // Draining: no re-routes, just an honest shed so Quiesce converges.
    AnswerError(forward, protocol::kCodeShuttingDown,
                "router draining; worker connection lost", 0, "shed");
    return;
  }
  MarkDown(worker);
  const protocol::Request& request = forward->job.request;
  switch (request.op) {
    case Op::kTraceChunk:
    case Op::kTraceEnd:
      // The session died with the worker; resuming elsewhere would silently
      // produce a different digest stream. The client restarts the upload.
      AnswerError(forward, support::ToString(ErrorCategory::kIo),
                  "worker " + workers_[worker]->name +
                      " lost mid-upload; restart the upload",
                  0);
      return;
    default:
      break;
  }
  if (!request.digest.empty()) {
    if (!forward->peeked) {
      forward->peeked = true;
      PeekForDigest(std::move(forward), worker, "");
      return;
    }
    AnswerError(forward, protocol::kCodeOverloaded,
                "worker holding digest " + request.digest + " is unavailable",
                options_.retry_after_ms, "shed");
    return;
  }
  // By-name work (and trace-begin) is content-free on the failed node:
  // re-route to the next live worker in ring order.
  support::MetricsRegistry::Add(options_.metrics, "fleet.reroutes");
  ForwardJob(std::move(forward));
}

void Router::PeekForDigest(ForwardPtr forward, std::size_t exclude,
                           std::string fallback_response) {
  const protocol::Request& request = forward->job.request;
  auto digests = std::make_shared<std::vector<std::string>>();
  if (!request.digest.empty()) digests->push_back(request.digest);
  if (!request.digest_instr.empty()) digests->push_back(request.digest_instr);
  auto candidates = std::make_shared<std::deque<std::size_t>>();
  for (const std::size_t index : ring_.Ranked(digests->front())) {
    if (index == exclude) continue;
    if (!workers_[index]->up.load(std::memory_order_relaxed)) continue;
    candidates->push_back(index);
  }
  PeekStep(std::move(forward), std::move(candidates), std::move(digests), 0,
           std::make_shared<std::string>(std::move(fallback_response)));
}

void Router::PeekStep(ForwardPtr forward,
                      std::shared_ptr<std::deque<std::size_t>> candidates,
                      std::shared_ptr<std::vector<std::string>> digests,
                      std::size_t digest_index,
                      std::shared_ptr<std::string> fallback) {
  if (candidates->empty()) {
    support::MetricsRegistry::Add(options_.metrics, "fleet.peek.misses");
    if (!fallback->empty()) {
      // Every live worker was probed; the owner's own verdict (unknown
      // digest) is the honest answer.
      const std::size_t owner = forward->worker;
      Answer(std::move(forward), owner, std::move(*fallback));
      return;
    }
    const std::string what =
        digests->size() > 1
            ? "digests " + (*digests)[0] + " and " + (*digests)[1]
            : "digest " + (*digests)[0];
    AnswerError(forward, protocol::kCodeOverloaded,
                "no live worker holds " + what, options_.retry_after_ms,
                "shed");
    return;
  }
  const std::size_t worker = candidates->front();
  support::MetricsRegistry::Add(options_.metrics, "fleet.peek.probes");

  protocol::Request probe;
  probe.id = NextFid();
  probe.op = Op::kStats;
  probe.digest = (*digests)[digest_index];
  probe.kind = probe.digest == forward->job.request.digest
                   ? forward->job.request.kind
                   : "instr";

  // std::function callbacks must be copyable, so the probe chain's state
  // travels in shared_ptrs.
  Worker& target = *workers_[worker];
  target.inflight.fetch_add(1, std::memory_order_relaxed);
  const bool accepted = target.channel->Submit(
      probe.id, protocol::SerializeRequest(probe),
      [this, forward, worker, candidates, digests, digest_index, fallback](
          bool transport_ok, std::string response) {
        workers_[worker]->inflight.fetch_sub(1, std::memory_order_relaxed);
        if (transport_ok && ResponseOk(response)) {
          if (digest_index + 1 < digests->size()) {
            // A joint request needs one node holding BOTH digests: keep
            // probing the same worker for the next digest.
            PeekStep(forward, candidates, digests, digest_index + 1, fallback);
            return;
          }
          support::MetricsRegistry::Add(options_.metrics, "fleet.peek.hits");
          for (const std::string& digest : *digests) Memoise(digest, worker);
          forward->tried.assign(workers_.size(), false);
          SendTo(forward, worker);
          return;
        }
        if (!transport_ok &&
            !quiescing_.load(std::memory_order_relaxed)) {
          MarkDown(worker);
        }
        candidates->pop_front();
        PeekStep(forward, candidates, digests, 0, fallback);
      });
  if (!accepted) {
    target.inflight.fetch_sub(1, std::memory_order_relaxed);
    if (!quiescing_.load(std::memory_order_relaxed)) MarkDown(worker);
    candidates->pop_front();
    PeekStep(std::move(forward), std::move(candidates), std::move(digests), 0,
             std::move(fallback));
  }
}

void Router::Answer(ForwardPtr forward, std::size_t worker, std::string line) {
  service::DispatchJob& job = forward->job;
  const protocol::Request& request = job.request;

  // Splice 1: the client's id back in place of the forward id. The head is
  // serialiser-produced ({"id":"f<N>", ...), so a literal prefix match is
  // exact; anything else means the worker sent something we do not
  // understand, and passing it through could mis-correlate — fail loudly.
  const std::string needle = "{\"id\":" + JsonQuote(forward->fid) + ",";
  if (line.compare(0, needle.size(), needle) != 0) {
    AnswerError(forward, support::ToString(ErrorCategory::kInternal),
                "malformed response from worker " + workers_[worker]->name,
                0);
    return;
  }
  line = "{\"id\":" + JsonQuote(request.id) + "," + line.substr(needle.size());

  // Splice 2: rid provenance — "<router-rid>/<worker-rid>" so one grep of
  // either daemon's request log follows the hop. The worker rid never
  // contains quotes, so inserting after the opening quote is safe.
  static constexpr char kRidNeedle[] = "\"rid\":\"";
  const std::size_t rid_pos = line.find(kRidNeedle);
  std::string combined_rid = request.rid;
  if (rid_pos != std::string::npos) {
    const std::size_t value_pos = rid_pos + sizeof(kRidNeedle) - 1;
    line.insert(value_pos, request.rid + "/");
    const std::size_t value_end = line.find('"', value_pos);
    if (value_end != std::string::npos) {
      combined_rid = line.substr(value_pos, value_end - value_pos);
    }
  }
  job.request.rid = combined_rid;  // the request log shows the provenance

  const bool ok = ResponseOk(line);
  if (ok) {
    // Splice 3: upload tokens gain their routing prefix on the way out.
    if (request.op == Op::kTraceBegin || request.op == Op::kTraceChunk) {
      static constexpr char kUploadNeedle[] = "\"upload\":\"";
      const std::size_t upload_pos = line.find(kUploadNeedle);
      if (upload_pos != std::string::npos) {
        line.insert(upload_pos + sizeof(kUploadNeedle) - 1,
                    "w" + std::to_string(worker) + ".");
      }
    }
    // Learn placement from any digest-bearing success (explore, stats,
    // ingest, trace-end, explore-joint).
    const std::string digest = ExtractDigestField(line);
    if (!digest.empty()) {
      Memoise(digest, worker);
      job.digest = digest;
    }
    job.outcome = "forwarded";
  } else {
    job.outcome = "error";
    // Best-effort code attribution for the log; the response line already
    // carries the real code to the client.
    static constexpr char kCodeNeedle[] = "\"code\":\"";
    const std::size_t code_pos = line.find(kCodeNeedle);
    if (code_pos != std::string::npos) {
      const std::size_t value_pos = code_pos + sizeof(kCodeNeedle) - 1;
      const std::size_t value_end = line.find('"', value_pos);
      if (value_end != std::string::npos) {
        job.error_code = line.substr(value_pos, value_end - value_pos);
      }
    }
  }

  dispatcher_.Respond(job, line);
  FinishForward();
}

void Router::AnswerError(ForwardPtr forward, const std::string& code,
                         const std::string& message,
                         std::uint64_t retry_after_ms, const char* outcome) {
  dispatcher_.Fail(forward->job, code, message, retry_after_ms, outcome);
  FinishForward();
}

void Router::FinishForward() {
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    --forwards_inflight_;
  }
  inflight_cv_.notify_all();
}

void Router::Quiesce() {
  quiescing_.store(true, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(inflight_mutex_);
    inflight_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.worker_timeout_ms),
        [this] { return forwards_inflight_ == 0; });
  }
  // Stragglers (a worker that stopped answering) get failed by closing the
  // channels; their callbacks shed with "shutting_down".
  for (auto& worker : workers_) worker->channel->Close();
  std::unique_lock<std::mutex> lock(inflight_mutex_);
  inflight_cv_.wait(lock, [this] { return forwards_inflight_ == 0; });
}

void Router::ProberLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(prober_mutex_);
      prober_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.health_period_ms),
          [this] { return prober_stop_; });
      if (prober_stop_) return;
    }
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      {
        std::lock_guard<std::mutex> lock(prober_mutex_);
        if (prober_stop_) return;
      }
      service::ClientOptions probe_options;
      probe_options.endpoints = {workers_[i]->endpoint};
      probe_options.timeout_ms = options_.probe_timeout_ms;
      probe_options.max_attempts = 1;
      probe_options.jitter_seed = 1;
      try {
        service::Client probe(probe_options);
        const service::Response response =
            probe.Request("{\"id\":\"fleet-probe\",\"op\":\"health\"}");
        if (response.ok) {
          MarkUp(i);
        } else {
          MarkDown(i);
        }
      } catch (const std::exception&) {
        MarkDown(i);
      }
    }
  }
}

}  // namespace ces::fleet
