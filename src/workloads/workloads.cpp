#include "workloads/workloads.hpp"

#include <array>

#include "isa/assembler.hpp"
#include "support/check.hpp"

namespace ces::workloads {

const char* ToString(Scale scale) {
  switch (scale) {
    case Scale::kSmall: return "small";
    case Scale::kDefault: return "default";
    case Scale::kLarge: return "large";
  }
  return "?";
}

const std::vector<Workload>& AllWorkloads(Scale scale) {
  static std::array<std::vector<Workload>, 3> cache;
  auto& workloads = cache[static_cast<std::size_t>(scale)];
  if (workloads.empty()) {
    using namespace detail;
    workloads.push_back(MakeAdpcm(scale));
    workloads.push_back(MakeBcnt(scale));
    workloads.push_back(MakeBlit(scale));
    workloads.push_back(MakeCompress(scale));
    workloads.push_back(MakeCrc(scale));
    workloads.push_back(MakeDes(scale));
    workloads.push_back(MakeEngine(scale));
    workloads.push_back(MakeFir(scale));
    workloads.push_back(MakeG3fax(scale));
    workloads.push_back(MakePocsag(scale));
    workloads.push_back(MakeQurt(scale));
    workloads.push_back(MakeUcbqsort(scale));
    CES_CHECK(workloads.size() == 12);
  }
  return workloads;
}

const Workload* FindWorkload(const std::string& name, Scale scale) {
  for (const Workload& workload : AllWorkloads(scale)) {
    if (workload.name == name) return &workload;
  }
  return nullptr;
}

WorkloadRun Run(const Workload& workload) {
  const isa::Program program = isa::Assemble(workload.assembly);
  sim::RunResult result = sim::RunProgram(program, workload.name);
  WorkloadRun run;
  run.stop = result.stop;
  run.output_matches = result.output == workload.expected_output;
  run.instruction_trace = std::move(result.instruction_trace);
  run.data_trace = std::move(result.data_trace);
  run.retired = result.retired;
  return run;
}

}  // namespace ces::workloads
