// g3fax: Group-3 fax scanline decoder — expands run-length coded lines into
// a 1728-pixel-wide bitmap, toggling white/black runs and doing the per-bit
// buffer writes a fax decoder performs.
#include "workloads/builder.hpp"
#include "workloads/workloads.hpp"

#include "support/rng.hpp"

namespace ces::workloads::detail {
namespace {

constexpr std::uint32_t kLineWidth = 1728;  // standard G3 width in pixels
constexpr std::uint8_t kEndOfLine = 0;      // run terminator
constexpr std::uint64_t kSeed = 0x63fa;

// Run-length pairs per line: byte values 1..63, alternating white/black,
// summing exactly to kLineWidth; a zero byte ends the line.
std::vector<std::uint8_t> MakeRuns(std::uint32_t lines) {
  Rng rng(kSeed);
  std::vector<std::uint8_t> runs;
  for (std::uint32_t line = 0; line < lines; ++line) {
    std::uint32_t remaining = kLineWidth;
    while (remaining > 0) {
      auto run = static_cast<std::uint32_t>(1 + rng.NextBounded(63));
      if (run > remaining) run = remaining;
      runs.push_back(static_cast<std::uint8_t>(run));
      remaining -= run;
    }
    runs.push_back(kEndOfLine);
  }
  return runs;
}

std::vector<std::uint8_t> Golden(const std::vector<std::uint8_t>& runs,
                                 std::uint32_t lines) {
  std::vector<std::uint8_t> out;
  std::vector<std::uint8_t> bitmap(kLineWidth / 8 * lines, 0);
  std::size_t cursor = 0;
  for (std::uint32_t line = 0; line < lines; ++line) {
    std::uint32_t position = line * kLineWidth;
    std::uint32_t black = 0;  // lines start white
    while (runs[cursor] != kEndOfLine) {
      const std::uint32_t run = runs[cursor++];
      if (black != 0) {
        for (std::uint32_t p = position; p < position + run; ++p) {
          bitmap[p >> 3] = static_cast<std::uint8_t>(
              bitmap[p >> 3] | (1u << (p & 7)));
        }
      }
      position += run;
      black ^= 1;
    }
    ++cursor;
  }
  std::uint32_t checksum = 0;
  for (std::uint8_t byte : bitmap) checksum = checksum * 31 + byte;
  AppendWord(out, checksum);
  // Also emit one probe word per 8 lines so intermediate state is verified.
  for (std::uint32_t line = 0; line < lines; line += 8) {
    std::uint32_t probe = 0;
    for (std::uint32_t b = 0; b < 4; ++b) {
      probe |= static_cast<std::uint32_t>(
                   bitmap[line * (kLineWidth / 8) + 17 + b])
               << (8 * b);
    }
    AppendWord(out, probe);
  }
  return out;
}

}  // namespace

Workload MakeG3fax(Scale scale) {
  const std::uint32_t lines = BySize<std::uint32_t>(scale, 16, 48, 128);
  const std::vector<std::uint8_t> runs = MakeRuns(lines);

  Workload workload;
  workload.name = "g3fax";
  workload.description = "run-length fax scanline decoder";
  workload.expected_output = Golden(runs, lines);
  workload.assembly = R"(
        .equ LINES, )" + std::to_string(lines) + R"(
        .equ WIDTH, )" + std::to_string(kLineWidth) + R"(
        .equ BYTESPERLINE, )" + std::to_string(kLineWidth / 8) + R"(
        .equ BITMAPBYTES, )" + std::to_string(kLineWidth / 8 * lines) + R"(

        .text
main:
        la   s0, runs           # s0 = run cursor
        li   s1, 0              # s1 = line
line_loop:
        # position = line * WIDTH
        li   t0, WIDTH
        mul  s2, s1, t0         # s2 = position (bit index)
        li   s3, 0              # s3 = black flag
run_loop:
        lbu  t0, 0(s0)
        addi s0, s0, 1
        beqz t0, line_done      # 0 terminates the line
        beqz s3, advance        # white run: just advance
        # black run: set bits [position, position+run)
        mv   t1, s2             # t1 = p
        add  t2, s2, t0         # t2 = end
bit_loop:
        srl  t3, t1, 3
        la   t4, bitmap
        add  t4, t4, t3
        lbu  t5, 0(t4)
        andi t6, t1, 7
        li   t7, 1
        sllv t7, t7, t6
        or   t5, t5, t7
        sb   t5, 0(t4)
        addi t1, t1, 1
        blt  t1, t2, bit_loop
advance:
        add  s2, s2, t0
        xori s3, s3, 1
        b    run_loop
line_done:
        addi s1, s1, 1
        li   t0, LINES
        blt  s1, t0, line_loop

        # ---- checksum the bitmap ----
        la   t0, bitmap
        li   t1, BITMAPBYTES
        li   t2, 0
        li   t3, 31
cks_loop:
        lbu  t4, 0(t0)
        mul  t2, t2, t3
        add  t2, t2, t4
        addi t0, t0, 1
        addi t1, t1, -1
        bnez t1, cks_loop
        outw t2

        # ---- probe words, one per 8 lines ----
        li   s1, 0
probe_loop:
        li   t0, BYTESPERLINE
        mul  t1, s1, t0
        addi t1, t1, 17
        la   t2, bitmap
        add  t2, t2, t1
        lbu  t3, 0(t2)
        lbu  t4, 1(t2)
        sll  t4, t4, 8
        or   t3, t3, t4
        lbu  t4, 2(t2)
        sll  t4, t4, 16
        or   t3, t3, t4
        lbu  t4, 3(t2)
        sll  t4, t4, 24
        or   t3, t3, t4
        outw t3
        addi s1, s1, 8
        li   t0, LINES
        blt  s1, t0, probe_loop
        halt

        .data
bitmap: .space )" + std::to_string(kLineWidth / 8 * lines) + R"(
        .align 2
)" + ByteArray("runs", runs);
  return workload;
}

}  // namespace ces::workloads::detail
