// ucbqsort: iterative quicksort (Lomuto partition, explicit segment stack)
// over a pseudo-random word array — the pointer-and-compare reference
// pattern of the Berkeley qsort kernel PowerStone ships.
#include <algorithm>

#include "workloads/builder.hpp"
#include "workloads/workloads.hpp"

namespace ces::workloads::detail {
namespace {

constexpr std::uint64_t kSeed = 0x4507;

std::vector<std::uint8_t> Golden(std::vector<std::uint32_t> values) {
  std::sort(values.begin(), values.end());
  std::vector<std::uint8_t> out;
  std::uint32_t checksum = 0;
  for (std::uint32_t value : values) checksum = checksum * 31 + value;
  AppendWord(out, checksum);
  AppendWord(out, values.front());
  AppendWord(out, values[values.size() / 2]);
  AppendWord(out, values.back());
  return out;
}

}  // namespace

Workload MakeUcbqsort(Scale scale) {
  const std::uint32_t elements = BySize<std::uint32_t>(scale, 512, 2048, 8192);
  const std::vector<std::uint32_t> values =
      RandomWords(kSeed, elements, 100000);

  Workload workload;
  workload.name = "ucbqsort";
  workload.description = "iterative quicksort with an explicit segment stack";
  workload.expected_output = Golden(values);
  workload.assembly = R"(
        .equ COUNT, )" + std::to_string(elements) + R"(

        .text
main:
        # ---- push the initial segment [0, COUNT-1] ----
        la   s0, segstack       # s0 = stack pointer (grows upward)
        sw   zero, 0(s0)
        li   t0, COUNT
        addi t0, t0, -1
        sw   t0, 4(s0)
        addi s0, s0, 8

        la   s1, array          # s1 = array base
seg_loop:
        la   t0, segstack
        beq  s0, t0, sorted     # stack empty
        addi s0, s0, -8
        lw   s2, 0(s0)          # s2 = lo
        lw   s3, 4(s0)          # s3 = hi
part_loop:
        bge  s2, s3, seg_loop   # segment of length <= 1

        # ---- Lomuto partition with arr[hi] as pivot ----
        sll  t0, s3, 2
        add  t0, s1, t0
        lw   t1, 0(t0)          # t1 = pivot
        addi t2, s2, -1         # t2 = i
        mv   t3, s2             # t3 = j
scan:
        sll  t4, t3, 2
        add  t4, s1, t4
        lw   t5, 0(t4)
        bgeu t5, t1, no_swap    # proceed when arr[j] < pivot (unsigned)
        addi t2, t2, 1
        sll  t6, t2, 2
        add  t6, s1, t6
        lw   t7, 0(t6)
        sw   t5, 0(t6)          # swap arr[i] <-> arr[j]
        sw   t7, 0(t4)
no_swap:
        addi t3, t3, 1
        blt  t3, s3, scan
        # place the pivot at p = i + 1
        addi t2, t2, 1
        sll  t4, t2, 2
        add  t4, s1, t4
        lw   t5, 0(t4)
        sw   t5, 0(t0)
        sw   t1, 0(t4)          # t2 = p

        # ---- push the right segment [p+1, hi], keep left inline ----
        addi t6, t2, 1
        sw   t6, 0(s0)
        sw   s3, 4(s0)
        addi s0, s0, 8
        addi s3, t2, -1         # hi = p - 1, continue with the left part
        b    part_loop

sorted:
        # ---- checksum + probes ----
        li   t0, 0              # index
        li   t1, 0              # checksum
        li   t2, 31
cks_loop:
        sll  t3, t0, 2
        add  t3, s1, t3
        lw   t4, 0(t3)
        mul  t1, t1, t2
        add  t1, t1, t4
        addi t0, t0, 1
        li   t5, COUNT
        blt  t0, t5, cks_loop
        outw t1
        lw   t4, 0(s1)
        outw t4
        li   t0, COUNT
        srl  t0, t0, 1
        sll  t0, t0, 2
        add  t0, s1, t0
        lw   t4, 0(t0)
        outw t4
        li   t0, COUNT
        addi t0, t0, -1
        sll  t0, t0, 2
        add  t0, s1, t0
        lw   t4, 0(t0)
        outw t4
        halt

        .data
segstack: .space )" + std::to_string(elements * 8) + R"(  # one pair per element bounds the path
        .align 2
)" + WordArray("array", values);
  return workload;
}

}  // namespace ces::workloads::detail
