// Helpers shared by the workload definitions: deterministic input
// generation and formatting of data arrays as assembler directives.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ces::workloads::detail {

// `.data`-section array: "name: .word v0, v1, ..." wrapped at a sane width.
std::string WordArray(const std::string& name,
                      const std::vector<std::uint32_t>& values);
std::string ByteArray(const std::string& name,
                      const std::vector<std::uint8_t>& values);

// Deterministic pseudo-random inputs (one seed per workload keeps them
// independent).
std::vector<std::uint32_t> RandomWords(std::uint64_t seed, std::size_t count,
                                       std::uint32_t bound);
std::vector<std::uint8_t> RandomBytes(std::uint64_t seed, std::size_t count);

// Synthetic "text" with letter-frequency skew; gives LZW something to chew.
std::vector<std::uint8_t> MarkovText(std::uint64_t seed, std::size_t count);

// Synthetic waveform of 16-bit samples stored as sign-extended words.
std::vector<std::uint32_t> Waveform(std::size_t count);

// Little-endian byte emission mirroring the CPU's outw.
void AppendWord(std::vector<std::uint8_t>& out, std::uint32_t value);

}  // namespace ces::workloads::detail
