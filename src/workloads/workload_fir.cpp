// fir: 32-tap integer FIR filter over a synthetic waveform — the PowerStone
// DSP kernel. y[n] = (sum_k h[k] * x[n-k]) >> 8 over multiple passes with
// rotating coefficient sets.
#include "workloads/builder.hpp"
#include "workloads/workloads.hpp"

namespace ces::workloads::detail {
namespace {

constexpr std::size_t kTaps = 32;

std::vector<std::uint8_t> Golden(const std::vector<std::uint32_t>& samples,
                                 const std::vector<std::uint32_t>& coeffs,
                                 std::uint32_t passes) {
  std::vector<std::uint8_t> out;
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    std::uint32_t checksum = 0;
    for (std::size_t n = kTaps - 1; n < samples.size(); ++n) {
      std::int32_t acc = 0;
      for (std::size_t k = 0; k < kTaps; ++k) {
        const auto h = static_cast<std::int32_t>(
            coeffs[(k + pass) % kTaps]);
        const auto x = static_cast<std::int32_t>(samples[n - k]);
        acc += h * x;
      }
      const std::int32_t y = acc >> 8;
      checksum = checksum * 31 + static_cast<std::uint32_t>(y);
    }
    AppendWord(out, checksum);
  }
  return out;
}

}  // namespace

Workload MakeFir(Scale scale) {
  const std::size_t sample_count = BySize<std::size_t>(scale, 512, 1536, 6144);
  const std::uint32_t passes = BySize<std::uint32_t>(scale, 3, 6, 10);
  const std::vector<std::uint32_t> samples = Waveform(sample_count);
  // Small symmetric-ish coefficients in [-64, 63].
  std::vector<std::uint32_t> coeffs = RandomWords(0xf17, kTaps, 128);
  for (auto& c : coeffs) {
    c = static_cast<std::uint32_t>(static_cast<std::int32_t>(c) - 64);
  }

  Workload workload;
  workload.name = "fir";
  workload.description = "32-tap integer FIR filter";
  workload.expected_output = Golden(samples, coeffs, passes);
  workload.assembly = R"(
        .equ TAPS, )" + std::to_string(kTaps) + R"(
        .equ SAMPLES, )" + std::to_string(sample_count) + R"(
        .equ PASSES, )" + std::to_string(passes) + R"(

        .text
main:
        li   s7, 0              # s7 = pass
pass_loop:
        li   s6, 0              # s6 = checksum
        li   s0, TAPS
        addi s0, s0, -1         # s0 = n = TAPS-1
n_loop:
        li   t0, 0              # t0 = acc
        li   t1, 0              # t1 = k
k_loop:
        # h = coeffs[(k + pass) % TAPS]
        add  t2, t1, s7
        li   t3, TAPS
        rem  t2, t2, t3
        sll  t2, t2, 2
        la   t3, coeffs
        add  t3, t3, t2
        lw   t4, 0(t3)
        # x = samples[n - k]
        sub  t5, s0, t1
        sll  t5, t5, 2
        la   t6, samples
        add  t6, t6, t5
        lw   t7, 0(t6)
        mul  t4, t4, t7
        add  t0, t0, t4
        addi t1, t1, 1
        li   t8, TAPS
        blt  t1, t8, k_loop
        sra  t0, t0, 8          # y = acc >> 8
        # checksum = checksum * 31 + y
        li   t9, 31
        mul  s6, s6, t9
        add  s6, s6, t0
        addi s0, s0, 1
        li   t8, SAMPLES
        blt  s0, t8, n_loop
        outw s6
        addi s7, s7, 1
        li   t8, PASSES
        blt  s7, t8, pass_loop
        halt

        .data
)" + WordArray("coeffs", coeffs) + WordArray("samples", samples);
  return workload;
}

}  // namespace ces::workloads::detail
