// pocsag: POCSAG pager protocol kernel — BCH(31,21) syndrome computation by
// polynomial division, table-driven even-parity checking (byte popcount
// table, as fielded decoders do), and accumulation of accepted 21-bit
// payloads into a message buffer, over several batches of codewords.
#include "workloads/builder.hpp"
#include "workloads/workloads.hpp"

#include "support/rng.hpp"

namespace ces::workloads::detail {
namespace {

constexpr std::uint32_t kCodewords = 512;
constexpr std::uint32_t kGenerator = 0x769;  // x^10+x^9+x^8+x^6+x^5+x^3+1
constexpr std::uint64_t kSeed = 0x90c5;

std::uint32_t BchRemainder(std::uint32_t value31) {
  std::uint32_t r = value31;
  for (int i = 30; i >= 10; --i) {
    if ((r >> i) & 1u) r ^= kGenerator << (i - 10);
  }
  return r;  // 10-bit remainder
}

std::uint32_t Popcount8(std::uint32_t byte) {
  std::uint32_t count = 0;
  for (int b = 0; b < 8; ++b) count += (byte >> b) & 1u;
  return count;
}

std::uint32_t Parity(std::uint32_t word) {
  return (Popcount8(word & 0xff) + Popcount8((word >> 8) & 0xff) +
          Popcount8((word >> 16) & 0xff) + Popcount8(word >> 24)) &
         1u;
}

// Codewords: 21-bit message, 10 BCH check bits, 1 even-parity bit; about a
// third are corrupted with a random bit flip.
std::vector<std::uint32_t> MakeCodewords() {
  Rng rng(kSeed);
  std::vector<std::uint32_t> words;
  words.reserve(kCodewords);
  for (std::uint32_t i = 0; i < kCodewords; ++i) {
    const auto message = static_cast<std::uint32_t>(rng.NextBounded(1u << 21));
    const std::uint32_t shifted = message << 10;
    std::uint32_t word = (shifted | BchRemainder(shifted)) << 1;
    word |= Parity(word);
    if (rng.NextBool(0.34)) {
      word ^= 1u << rng.NextBounded(32);  // channel error
    }
    words.push_back(word);
  }
  return words;
}

std::vector<std::uint8_t> Golden(const std::vector<std::uint32_t>& words,
                                 std::uint32_t passes) {
  std::vector<std::uint8_t> out;
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    std::uint32_t bad = 0;
    std::uint32_t accepted = 0;
    std::uint32_t checksum = pass;
    for (std::uint32_t i = 0; i < kCodewords; ++i) {
      const std::uint32_t word = words[i];
      const std::uint32_t syndrome = BchRemainder(word >> 1);
      const std::uint32_t parity = Parity(word);
      if (syndrome != 0 || parity != 0) {
        ++bad;
      } else {
        checksum = checksum * 37 + (word >> 11);  // 21-bit payload
        ++accepted;
      }
      if ((i & 63) == 63) {
        AppendWord(out, checksum);
        AppendWord(out, bad);
      }
    }
    AppendWord(out, accepted);
  }
  return out;
}

}  // namespace

Workload MakePocsag(Scale scale) {
  const std::uint32_t passes = BySize<std::uint32_t>(scale, 1, 3, 8);
  const std::vector<std::uint32_t> words = MakeCodewords();

  Workload workload;
  workload.name = "pocsag";
  workload.description = "POCSAG BCH(31,21) syndrome and parity decoder";
  workload.expected_output = Golden(words, passes);
  workload.assembly = R"(
        .equ CODEWORDS, )" + std::to_string(kCodewords) + R"(
        .equ PASSES, )" + std::to_string(passes) + R"(
        .equ GENERATOR, )" + std::to_string(kGenerator) + R"(

        .text
main:
        # ---- build the byte-popcount table used for parity ----
        la   s6, pctable
        li   t0, 0
tbl_loop:
        mv   t1, t0
        li   t2, 0
tbl_bits:
        beqz t1, tbl_store
        andi t3, t1, 1
        add  t2, t2, t3
        srl  t1, t1, 1
        b    tbl_bits
tbl_store:
        add  t4, s6, t0
        sb   t2, 0(t4)
        addi t0, t0, 1
        li   t5, 256
        blt  t0, t5, tbl_loop

        li   s7, 0              # s7 = pass
pass_loop:
        li   s4, 0              # s4 = bad count
        mv   s5, s7             # s5 = checksum = pass
        li   s3, 0              # s3 = accepted count
        li   s0, 0              # s0 = index
word_loop:
        sll  t0, s0, 2
        la   t1, words
        add  t1, t1, t0
        lw   s1, 0(t1)          # s1 = codeword

        # ---- BCH remainder of the upper 31 bits ----
        srl  t0, s1, 1          # t0 = r
        li   t1, 30             # t1 = i
bch_loop:
        srlv t2, t0, t1
        andi t2, t2, 1
        beqz t2, bch_next
        li   t3, GENERATOR
        addi t4, t1, -10
        sllv t3, t3, t4
        xor  t0, t0, t3
bch_next:
        addi t1, t1, -1
        li   t5, 10
        bge  t1, t5, bch_loop

        # ---- table-driven even parity over all 32 bits ----
        andi t2, s1, 0xff
        add  t2, s6, t2
        lbu  t3, 0(t2)
        srl  t2, s1, 8
        andi t2, t2, 0xff
        add  t2, s6, t2
        lbu  t4, 0(t2)
        add  t3, t3, t4
        srl  t2, s1, 16
        andi t2, t2, 0xff
        add  t2, s6, t2
        lbu  t4, 0(t2)
        add  t3, t3, t4
        srl  t2, s1, 24
        add  t2, s6, t2
        lbu  t4, 0(t2)
        add  t3, t3, t4
        andi t3, t3, 1          # t3 = parity

        or   t4, t0, t3         # non-zero => corrupted
        beqz t4, accept
        addi s4, s4, 1
        b    tally
accept:
        li   t5, 37
        mul  s5, s5, t5
        srl  t6, s1, 11
        add  s5, s5, t6
        # store the accepted payload into the message buffer
        sll  t7, s3, 2
        la   t8, msgbuf
        add  t8, t8, t7
        sw   t6, 0(t8)
        addi s3, s3, 1
tally:
        andi t5, s0, 63
        li   t6, 63
        bne  t5, t6, no_emit
        outw s5
        outw s4
no_emit:
        addi s0, s0, 1
        li   t5, CODEWORDS
        blt  s0, t5, word_loop
        outw s3
        addi s7, s7, 1
        li   t5, PASSES
        blt  s7, t5, pass_loop
        halt

        .data
pctable: .space 256
msgbuf:  .space )" + std::to_string(kCodewords * 4) + R"(
        .align 2
)" + WordArray("words", words);
  return workload;
}

}  // namespace ces::workloads::detail
