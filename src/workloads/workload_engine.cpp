// engine: engine-controller kernel — spark-advance table lookups driven by
// sensor streams plus an integer PI speed governor, the control-loop shape
// of the PowerStone benchmark.
#include "workloads/builder.hpp"
#include "workloads/workloads.hpp"

namespace ces::workloads::detail {
namespace {

constexpr std::size_t kSteps = 512;
constexpr std::int32_t kTargetRpm = 9000;
constexpr std::uint64_t kRpmSeed = 0xe61;
constexpr std::uint64_t kLoadSeed = 0xe62;
constexpr std::uint64_t kTableSeed = 0xe63;

std::vector<std::uint8_t> Golden(const std::vector<std::uint32_t>& rpm_in,
                                 const std::vector<std::uint32_t>& load_in,
                                 const std::vector<std::uint8_t>& advance,
                                 std::uint32_t passes) {
  std::vector<std::uint8_t> out;
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    std::int32_t integral = 0;
    std::uint32_t checksum = 0;
    for (std::size_t i = 0; i < kSteps; ++i) {
      const auto rpm = static_cast<std::int32_t>(rpm_in[i]);
      const auto load = static_cast<std::int32_t>(load_in[i]);
      const std::int32_t row = rpm >> 10;    // 0..15
      const std::int32_t column = load >> 10;
      const std::int32_t adv = advance[row * 16 + column];
      const std::int32_t error = kTargetRpm - rpm;
      integral += error;
      if (integral > (1 << 20)) integral = 1 << 20;
      if (integral < -(1 << 20)) integral = -(1 << 20);
      std::int32_t u = ((error * 3) >> 4) + (integral >> 10) + adv;
      if (u < 0) u = 0;
      if (u > 255) u = 255;
      checksum = checksum * 31 + static_cast<std::uint32_t>(u);
      if ((i & 127) == 127) AppendWord(out, checksum);
    }
  }
  return out;
}

}  // namespace

Workload MakeEngine(Scale scale) {
  const std::uint32_t passes = BySize<std::uint32_t>(scale, 3, 8, 16);
  const std::vector<std::uint32_t> rpm_in = RandomWords(kRpmSeed, kSteps, 16384);
  const std::vector<std::uint32_t> load_in =
      RandomWords(kLoadSeed, kSteps, 16384);
  std::vector<std::uint8_t> advance = RandomBytes(kTableSeed, 256);
  for (auto& v : advance) v = static_cast<std::uint8_t>(v % 60);

  Workload workload;
  workload.name = "engine";
  workload.description = "spark-advance table lookup + integer PI governor";
  workload.expected_output = Golden(rpm_in, load_in, advance, passes);
  workload.assembly = R"(
        .equ STEPS, )" + std::to_string(kSteps) + R"(
        .equ PASSES, )" + std::to_string(passes) + R"(
        .equ TARGET, )" + std::to_string(kTargetRpm) + R"(
        .equ ICLAMP, 1048576

        .text
main:
        li   s7, 0              # s7 = pass
pass_loop:
        li   s4, 0              # s4 = integral
        li   s5, 0              # s5 = checksum
        li   s0, 0              # s0 = step i
step_loop:
        sll  t0, s0, 2
        la   t1, rpm_in
        add  t1, t1, t0
        lw   t2, 0(t1)          # t2 = rpm
        la   t1, load_in
        add  t1, t1, t0
        lw   t3, 0(t1)          # t3 = load
        # adv = advance[(rpm>>10)*16 + (load>>10)]
        sra  t4, t2, 10
        sll  t4, t4, 4
        sra  t5, t3, 10
        add  t4, t4, t5
        la   t1, advance
        add  t1, t1, t4
        lbu  t6, 0(t1)          # t6 = adv
        # error = TARGET - rpm; integral += error, clamped
        li   t7, TARGET
        sub  t7, t7, t2         # t7 = error
        add  s4, s4, t7
        li   t8, ICLAMP
        ble  s4, t8, i_low
        mv   s4, t8
i_low:
        neg  t8, t8
        bge  s4, t8, i_done
        mv   s4, t8
i_done:
        # u = ((error*3) >> 4) + (integral >> 10) + adv, clamped to [0,255]
        li   t8, 3
        mul  t8, t7, t8
        sra  t8, t8, 4
        sra  t9, s4, 10
        add  t8, t8, t9
        add  t8, t8, t6
        bge  t8, zero, u_high
        li   t8, 0
u_high:
        li   t9, 255
        ble  t8, t9, u_done
        mv   t8, t9
u_done:
        # checksum = checksum*31 + u; emit every 128 steps
        li   t9, 31
        mul  s5, s5, t9
        add  s5, s5, t8
        andi t9, s0, 127
        li   t0, 127
        bne  t9, t0, no_emit
        outw s5
no_emit:
        addi s0, s0, 1
        li   t9, STEPS
        blt  s0, t9, step_loop
        addi s7, s7, 1
        li   t9, PASSES
        blt  s7, t9, pass_loop
        halt

        .data
)" + ByteArray("advance", advance) + R"(        .align 2
)" + WordArray("rpm_in", rpm_in) + WordArray("load_in", load_in);
  return workload;
}

}  // namespace ces::workloads::detail
