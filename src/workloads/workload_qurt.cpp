// qurt: quadratic-equation root finder over coefficient triples using an
// integer Newton square root — the all-integer arithmetic kernel of the
// PowerStone qurt benchmark.
#include "workloads/builder.hpp"
#include "workloads/workloads.hpp"

#include "support/rng.hpp"

namespace ces::workloads::detail {
namespace {

constexpr std::uint32_t kTriples = 512;
constexpr std::uint64_t kSeed = 0x9047;

struct Triple {
  std::int32_t a, b, c;
};

std::vector<Triple> MakeTriples() {
  Rng rng(kSeed);
  std::vector<Triple> triples;
  triples.reserve(kTriples);
  for (std::uint32_t i = 0; i < kTriples; ++i) {
    Triple t;
    t.a = static_cast<std::int32_t>(1 + rng.NextBounded(20));
    t.b = static_cast<std::int32_t>(rng.NextBounded(201)) - 100;
    t.c = static_cast<std::int32_t>(rng.NextBounded(201)) - 100;
    triples.push_back(t);
  }
  return triples;
}

// Newton integer sqrt, matching the assembly loop exactly (d >= 1).
std::uint32_t Isqrt(std::uint32_t d) {
  std::uint32_t x = d;
  std::uint32_t y = (x + 1) / 2;
  while (y < x) {
    x = y;
    y = (x + d / x) / 2;
  }
  return x;
}

std::vector<std::uint8_t> Golden(const std::vector<Triple>& triples,
                                 std::uint32_t passes) {
  std::vector<std::uint8_t> out;
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    std::uint32_t checksum = pass;
    std::uint32_t imaginary = 0;
    for (std::uint32_t i = 0; i < kTriples; ++i) {
      const Triple& t = triples[i];
      const std::int32_t disc = t.b * t.b - 4 * t.a * t.c;
      if (disc < 0) {
        ++imaginary;
      } else {
        const auto s =
            static_cast<std::int32_t>(disc == 0 ? 0
                                                : Isqrt(static_cast<std::uint32_t>(disc)));
        const std::int32_t r1 = (-t.b + s) / (2 * t.a);
        const std::int32_t r2 = (-t.b - s) / (2 * t.a);
        checksum = checksum * 31 + static_cast<std::uint32_t>(r1);
        checksum = checksum * 31 + static_cast<std::uint32_t>(r2);
      }
      if ((i & 63) == 63) {
        AppendWord(out, checksum);
        AppendWord(out, imaginary);
      }
    }
  }
  return out;
}

}  // namespace

Workload MakeQurt(Scale scale) {
  const std::uint32_t passes = BySize<std::uint32_t>(scale, 1, 4, 10);
  const std::vector<Triple> triples = MakeTriples();
  std::vector<std::uint32_t> flat;
  flat.reserve(triples.size() * 3);
  for (const Triple& t : triples) {
    flat.push_back(static_cast<std::uint32_t>(t.a));
    flat.push_back(static_cast<std::uint32_t>(t.b));
    flat.push_back(static_cast<std::uint32_t>(t.c));
  }

  Workload workload;
  workload.name = "qurt";
  workload.description = "quadratic roots via integer Newton sqrt";
  workload.expected_output = Golden(triples, passes);
  workload.assembly = R"(
        .equ TRIPLES, )" + std::to_string(kTriples) + R"(
        .equ PASSES, )" + std::to_string(passes) + R"(

        .text
main:
        li   s7, 0              # s7 = pass
pass_loop:
        mv   s5, s7             # s5 = checksum = pass
        li   s4, 0              # s4 = imaginary count
        li   s0, 0              # s0 = triple index
triple_loop:
        # load a, b, c
        li   t0, 12
        mul  t0, s0, t0
        la   t1, triples
        add  t1, t1, t0
        lw   s1, 0(t1)          # s1 = a
        lw   s2, 4(t1)          # s2 = b
        lw   s3, 8(t1)          # s3 = c
        # disc = b*b - 4*a*c
        mul  t2, s2, s2
        mul  t3, s1, s3
        sll  t3, t3, 2
        sub  t2, t2, t3         # t2 = disc
        bge  t2, zero, real_roots
        addi s4, s4, 1
        b    tally
real_roots:
        # s = isqrt(disc) by Newton iteration (s = 0 when disc == 0)
        li   t6, 0
        beqz t2, have_sqrt
        mv   t4, t2             # t4 = x
        addi t5, t2, 1
        srl  t5, t5, 1          # t5 = y = (d+1)/2
newton:
        bgeu t5, t4, newton_done
        mv   t4, t5
        div  t6, t2, t4
        add  t6, t4, t6
        srl  t5, t6, 1
        b    newton
newton_done:
        mv   t6, t4             # t6 = s
have_sqrt:
        # r1 = (-b + s) / (2a); r2 = (-b - s) / (2a)
        sll  t7, s1, 1          # t7 = 2a
        neg  t8, s2
        add  t9, t8, t6
        div  t9, t9, t7         # r1
        li   t0, 31
        mul  s5, s5, t0
        add  s5, s5, t9
        sub  t9, t8, t6
        div  t9, t9, t7         # r2
        mul  s5, s5, t0
        add  s5, s5, t9
tally:
        andi t0, s0, 63
        li   t1, 63
        bne  t0, t1, no_emit
        outw s5
        outw s4
no_emit:
        addi s0, s0, 1
        li   t0, TRIPLES
        blt  s0, t0, triple_loop
        addi s7, s7, 1
        li   t0, PASSES
        blt  s7, t0, pass_loop
        halt

        .data
)" + WordArray("triples", flat);
  return workload;
}

}  // namespace ces::workloads::detail
