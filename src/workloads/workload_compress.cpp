// compress: LZW compression with a 4096-entry open-addressing dictionary —
// the algorithmic core of the UNIX compress utility PowerStone ships.
// The golden model mirrors the hash function and probe order exactly, so the
// emitted code stream must match byte for byte.
#include "workloads/builder.hpp"
#include "workloads/workloads.hpp"

namespace ces::workloads::detail {
namespace {

constexpr std::uint32_t kTableSize = 4096;  // power of two
constexpr std::uint32_t kMaxCode = 4096;
constexpr std::uint64_t kSeed = 0xc0de;

std::uint32_t Hash(std::uint32_t prefix, std::uint32_t ch) {
  return ((prefix << 5) ^ ch) & (kTableSize - 1);
}

std::vector<std::uint8_t> Golden(const std::vector<std::uint8_t>& input) {
  std::vector<std::uint8_t> out;
  // keys[h] = ((prefix << 8) | ch) + 1, 0 meaning empty; codes[h] = code.
  std::vector<std::uint32_t> keys(kTableSize, 0);
  std::vector<std::uint32_t> codes(kTableSize, 0);
  std::uint32_t next_code = 256;
  std::uint32_t w = input[0];
  for (std::size_t i = 1; i < input.size(); ++i) {
    const std::uint32_t c = input[i];
    const std::uint32_t key = ((w << 8) | c) + 1;
    std::uint32_t h = Hash(w, c);
    bool found = false;
    while (keys[h] != 0) {
      if (keys[h] == key) {
        found = true;
        break;
      }
      h = (h + 1) & (kTableSize - 1);
    }
    if (found) {
      w = codes[h];
    } else {
      AppendWord(out, w);
      if (next_code < kMaxCode) {
        keys[h] = key;
        codes[h] = next_code++;
      }
      w = c;
    }
  }
  AppendWord(out, w);
  return out;
}

}  // namespace

Workload MakeCompress(Scale scale) {
  const std::size_t input_bytes = BySize<std::size_t>(scale, 512, 2048, 8192);
  const std::vector<std::uint8_t> input = MarkovText(kSeed, input_bytes);

  Workload workload;
  workload.name = "compress";
  workload.description = "LZW compression with a hashed dictionary";
  workload.expected_output = Golden(input);
  workload.assembly = R"(
        .equ INLEN, )" + std::to_string(input_bytes) + R"(
        .equ TABMASK, )" + std::to_string(kTableSize - 1) + R"(
        .equ MAXCODE, )" + std::to_string(kMaxCode) + R"(

        .text
main:
        # keys/codes tables are zero-initialised .space memory.
        li   s5, 256            # s5 = next_code
        la   s0, input
        lbu  s1, 0(s0)          # s1 = w = input[0]
        addi s0, s0, 1
        li   s2, INLEN
        addi s2, s2, -1         # s2 = bytes left
sym_loop:
        lbu  t0, 0(s0)          # t0 = c
        # key = ((w << 8) | c) + 1
        sll  t1, s1, 8
        or   t1, t1, t0
        addi t1, t1, 1          # t1 = key
        # h = ((w << 5) ^ c) & TABMASK
        sll  t2, s1, 5
        xor  t2, t2, t0
        andi t2, t2, TABMASK    # t2 = h
probe:
        sll  t3, t2, 2
        la   t4, keys
        add  t4, t4, t3
        lw   t5, 0(t4)          # t5 = keys[h]
        beqz t5, miss
        beq  t5, t1, hit
        addi t2, t2, 1
        andi t2, t2, TABMASK
        b    probe
hit:
        # w = codes[h]
        sll  t3, t2, 2
        la   t4, codes
        add  t4, t4, t3
        lw   s1, 0(t4)
        b    advance
miss:
        outw s1                 # emit code for w
        li   t6, MAXCODE
        bge  s5, t6, no_insert
        sw   t1, 0(t4)          # keys[h] = key (t4 still &keys[h])
        sll  t3, t2, 2
        la   t7, codes
        add  t7, t7, t3
        sw   s5, 0(t7)          # codes[h] = next_code
        addi s5, s5, 1
no_insert:
        mv   s1, t0             # w = c
advance:
        addi s0, s0, 1
        addi s2, s2, -1
        bnez s2, sym_loop
        outw s1                 # flush the final code
        halt

        .data
keys:   .space )" + std::to_string(kTableSize * 4) + R"(
codes:  .space )" + std::to_string(kTableSize * 4) + R"(
        .align 2
)" + ByteArray("input", input);
  return workload;
}

}  // namespace ces::workloads::detail
