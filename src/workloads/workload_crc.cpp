// crc: table-driven CRC-32 (reflected, polynomial 0xEDB88320) over a message
// buffer. The 256-entry table is generated at run time, as the PowerStone
// kernel does; each pass checksums the message from a different offset.
#include "workloads/builder.hpp"
#include "workloads/workloads.hpp"

namespace ces::workloads::detail {
namespace {

constexpr std::uint64_t kSeed = 0xc4c;

std::vector<std::uint8_t> Golden(const std::vector<std::uint8_t>& message,
                                 std::uint32_t passes) {
  std::uint32_t table[256];
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (c >> 1) ^ 0xEDB88320u : c >> 1;
    }
    table[i] = c;
  }
  std::vector<std::uint8_t> out;
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = pass; i < message.size(); ++i) {
      crc = (crc >> 8) ^ table[(crc ^ message[i]) & 0xffu];
    }
    AppendWord(out, crc ^ 0xFFFFFFFFu);
  }
  return out;
}

}  // namespace

Workload MakeCrc(Scale scale) {
  const std::size_t message_bytes = BySize<std::size_t>(scale, 512, 2048, 8192);
  const std::uint32_t passes = BySize<std::uint32_t>(scale, 3, 8, 12);
  const std::vector<std::uint8_t> message = RandomBytes(kSeed, message_bytes);

  Workload workload;
  workload.name = "crc";
  workload.description = "table-driven CRC-32 checksum";
  workload.expected_output = Golden(message, passes);
  workload.assembly = R"(
        .equ MSGLEN, )" + std::to_string(message_bytes) + R"(
        .equ PASSES, )" + std::to_string(passes) + R"(

        .text
main:
        # ---- build the CRC table ----
        la   s0, table
        li   s1, 0xEDB88320     # polynomial (expands to lui/ori)
        li   t0, 0              # t0 = i
tbl_loop:
        mv   t1, t0             # t1 = c
        li   t2, 8              # t2 = k
tbl_bits:
        andi t3, t1, 1
        srl  t1, t1, 1
        beqz t3, tbl_next
        xor  t1, t1, s1
tbl_next:
        addi t2, t2, -1
        bnez t2, tbl_bits
        sll  t4, t0, 2
        add  t4, s0, t4
        sw   t1, 0(t4)
        addi t0, t0, 1
        li   t5, 256
        blt  t0, t5, tbl_loop

        # ---- checksum the message, PASSES times ----
        li   s4, 0              # s4 = pass
pass_loop:
        li   t0, -1             # t0 = crc = 0xFFFFFFFF
        la   s2, message
        add  s2, s2, s4         # start at offset `pass`
        li   s3, MSGLEN
        sub  s3, s3, s4         # bytes left
byte_loop:
        lbu  t1, 0(s2)
        xor  t2, t0, t1
        andi t2, t2, 0xff
        sll  t2, t2, 2
        add  t2, s0, t2
        lw   t3, 0(t2)
        srl  t0, t0, 8
        xor  t0, t0, t3
        addi s2, s2, 1
        addi s3, s3, -1
        bnez s3, byte_loop
        not  t4, t0
        outw t4
        addi s4, s4, 1
        li   t5, PASSES
        blt  s4, t5, pass_loop
        halt

        .data
table:  .space 1024
        .align 2
)" + ByteArray("message", message);
  return workload;
}

}  // namespace ces::workloads::detail
