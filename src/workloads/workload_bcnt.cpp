// bcnt: bit counting over a word array via a 256-entry byte-popcount lookup
// table, the classic PowerStone kernel. The table itself is built at run
// time (table initialisation is part of the reference stream).
#include "workloads/builder.hpp"
#include "workloads/workloads.hpp"

namespace ces::workloads::detail {
namespace {

constexpr std::uint64_t kSeed = 0xbc47;

std::vector<std::uint8_t> Golden(const std::vector<std::uint32_t>& words,
                                 std::uint32_t passes) {
  std::vector<std::uint8_t> out;
  std::uint32_t total = 0;
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    for (std::uint32_t word : words) {
      std::uint32_t count = 0;
      for (int b = 0; b < 32; ++b) count += (word >> b) & 1u;
      total += count;
    }
    AppendWord(out, total);
  }
  return out;
}

}  // namespace

Workload MakeBcnt(Scale scale) {
  const std::size_t word_count = BySize<std::size_t>(scale, 256, 1024, 4096);
  const std::uint32_t passes = BySize<std::uint32_t>(scale, 6, 24, 48);
  const std::vector<std::uint32_t> input =
      RandomWords(kSeed, word_count, 0xffffffffu);

  Workload workload;
  workload.name = "bcnt";
  workload.description = "bit counting with a byte lookup table";
  workload.expected_output = Golden(input, passes);
  workload.assembly = R"(
        .equ WORDS, )" + std::to_string(word_count) + R"(
        .equ PASSES, )" + std::to_string(passes) + R"(

        .text
main:
        # ---- build the 256-entry popcount table ----
        la   s0, table          # s0 = &table
        li   t0, 0              # t0 = byte value
tbl_loop:
        mv   t1, t0             # t1 = working copy
        li   t2, 0              # t2 = popcount
tbl_bits:
        beqz t1, tbl_store
        andi t3, t1, 1
        add  t2, t2, t3
        srl  t1, t1, 1
        b    tbl_bits
tbl_store:
        add  t4, s0, t0
        sb   t2, 0(t4)
        addi t0, t0, 1
        li   t5, 256
        blt  t0, t5, tbl_loop

        # ---- count bits of every input word, PASSES times ----
        li   s5, 0              # s5 = running total
        li   s4, 0              # s4 = pass counter
pass_loop:
        la   s1, input          # s1 = cursor
        li   s2, WORDS          # s2 = words left
word_loop:
        lw   t0, 0(s1)
        # table[b0] + table[b1] + table[b2] + table[b3]
        andi t1, t0, 0xff
        add  t1, s0, t1
        lbu  t2, 0(t1)
        srl  t3, t0, 8
        andi t3, t3, 0xff
        add  t3, s0, t3
        lbu  t4, 0(t3)
        add  t2, t2, t4
        srl  t3, t0, 16
        andi t3, t3, 0xff
        add  t3, s0, t3
        lbu  t4, 0(t3)
        add  t2, t2, t4
        srl  t3, t0, 24
        add  t3, s0, t3
        lbu  t4, 0(t3)
        add  t2, t2, t4
        add  s5, s5, t2
        addi s1, s1, 4
        addi s2, s2, -1
        bnez s2, word_loop
        outw s5
        addi s4, s4, 1
        li   t6, PASSES
        blt  s4, t6, pass_loop
        halt

        .data
table:  .space 256
        .align 2
)" + WordArray("input", input);
  return workload;
}

}  // namespace ces::workloads::detail
