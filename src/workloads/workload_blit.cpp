// blit: bit-block transfer — copies a 64x64-bit source bitmap into a wider
// destination at increasing horizontal bit offsets, with the word-straddling
// shift/mask work every graphics blitter does.
#include "workloads/builder.hpp"
#include "workloads/workloads.hpp"

namespace ces::workloads::detail {
namespace {

constexpr std::uint32_t kRows = 64;
constexpr std::uint32_t kSrcWordsPerRow = 2;   // 64 px
constexpr std::uint32_t kDstWordsPerRow = 3;   // 96 px
constexpr std::uint64_t kSeed = 0xb117;

std::vector<std::uint8_t> Golden(const std::vector<std::uint32_t>& src,
                                 std::uint32_t passes) {
  std::vector<std::uint8_t> out;
  std::vector<std::uint32_t> dst(kRows * kDstWordsPerRow);
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    const std::uint32_t shift = pass + 1;
    for (auto& w : dst) w = 0;
    for (std::uint32_t row = 0; row < kRows; ++row) {
      std::uint32_t carry = 0;
      for (std::uint32_t j = 0; j < kSrcWordsPerRow; ++j) {
        const std::uint32_t w = src[row * kSrcWordsPerRow + j];
        dst[row * kDstWordsPerRow + j] |= (w << shift) | carry;
        carry = w >> (32 - shift);
      }
      dst[row * kDstWordsPerRow + kSrcWordsPerRow] |= carry;
    }
    std::uint32_t checksum = 0;
    for (std::uint32_t w : dst) checksum = checksum * 31 + w;
    AppendWord(out, checksum);
  }
  return out;
}

}  // namespace

Workload MakeBlit(Scale scale) {
  const std::uint32_t passes = BySize<std::uint32_t>(scale, 4, 10, 16);
  const std::vector<std::uint32_t> src =
      RandomWords(kSeed, kRows * kSrcWordsPerRow, 0xffffffffu);

  Workload workload;
  workload.name = "blit";
  workload.description = "bit-block transfer with shifts and masks";
  workload.expected_output = Golden(src, passes);
  workload.assembly = R"(
        .equ ROWS, )" + std::to_string(kRows) + R"(
        .equ DSTWORDS, )" + std::to_string(kRows * kDstWordsPerRow) + R"(
        .equ PASSES, )" + std::to_string(passes) + R"(

        .text
main:
        li   s7, 1              # s7 = shift (1..PASSES)
pass_loop:
        # ---- clear the destination ----
        la   t0, dst
        li   t1, DSTWORDS
clr_loop:
        sw   zero, 0(t0)
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, clr_loop

        # ---- blit all rows ----
        la   s0, src            # s0 = src cursor
        la   s1, dst            # s1 = dst cursor
        li   s2, ROWS           # s2 = rows left
        li   s6, 32
        sub  s6, s6, s7         # s6 = 32 - shift
row_loop:
        li   t5, 0              # t5 = carry
        # word 0
        lw   t0, 0(s0)
        sllv t1, t0, s7
        or   t1, t1, t5
        lw   t2, 0(s1)
        or   t2, t2, t1
        sw   t2, 0(s1)
        srlv t5, t0, s6
        # word 1
        lw   t0, 4(s0)
        sllv t1, t0, s7
        or   t1, t1, t5
        lw   t2, 4(s1)
        or   t2, t2, t1
        sw   t2, 4(s1)
        srlv t5, t0, s6
        # spill word
        lw   t2, 8(s1)
        or   t2, t2, t5
        sw   t2, 8(s1)
        addi s0, s0, 8
        addi s1, s1, 12
        addi s2, s2, -1
        bnez s2, row_loop

        # ---- checksum the destination ----
        la   t0, dst
        li   t1, DSTWORDS
        li   t2, 0              # t2 = checksum
        li   t3, 31
cks_loop:
        lw   t4, 0(t0)
        mul  t2, t2, t3
        add  t2, t2, t4
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, cks_loop
        outw t2

        addi s7, s7, 1
        li   t6, PASSES
        ble  s7, t6, pass_loop
        halt

        .data
dst:    .space )" + std::to_string(kRows * kDstWordsPerRow * 4) + R"(
        .align 2
)" + WordArray("src", src);
  return workload;
}

}  // namespace ces::workloads::detail
