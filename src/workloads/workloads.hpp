// PowerStone-like benchmark workloads.
//
// The paper's experiments run 12 PowerStone applications (adpcm, bcnt, blit,
// compress, crc, des, engine, fir, g3fax, pocsag, qurt, ucbqsort) on an
// instrumented MIPS R3000 simulator. PowerStone itself is not
// redistributable, so this module provides 12 workloads with the same names
// and the same algorithmic content, written in MR32 assembly and executed on
// the repository's CPU simulator (see DESIGN.md, "Substitutions").
//
// Every workload carries a C++ golden model producing the exact byte stream
// the assembly emits through outb/outw; the test suite runs both and
// compares, so the traces fed to the cache experiments come from verified
// computations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cpu.hpp"
#include "trace/trace.hpp"

namespace ces::workloads {

struct Workload {
  std::string name;
  std::string description;
  std::string assembly;                       // MR32 source
  std::vector<std::uint8_t> expected_output;  // golden model's byte stream
};

// Input-size / iteration-count scaling. kDefault matches the pinned
// statistics in tests/workload_stats_test.cpp and all recorded experiments;
// kSmall is for quick smoke runs, kLarge stretches the Figure 4 x-axis.
enum class Scale : std::uint8_t {
  kSmall = 0,
  kDefault = 1,
  kLarge = 2,
};

const char* ToString(Scale scale);

// The 12 benchmarks, in the paper's order, built once per scale.
const std::vector<Workload>& AllWorkloads(Scale scale = Scale::kDefault);

// nullptr when the name is unknown.
const Workload* FindWorkload(const std::string& name,
                             Scale scale = Scale::kDefault);

struct WorkloadRun {
  sim::StopReason stop = sim::StopReason::kHalted;
  bool output_matches = false;  // CPU output == golden model output
  trace::Trace instruction_trace;
  trace::Trace data_trace;
  std::uint64_t retired = 0;
};

// Assembles, runs, verifies the output and returns the traces.
WorkloadRun Run(const Workload& workload);

}  // namespace ces::workloads

namespace ces::workloads::detail {

// One factory per benchmark (defined in workload_<name>.cpp).
Workload MakeAdpcm(Scale scale);
Workload MakeBcnt(Scale scale);
Workload MakeBlit(Scale scale);
Workload MakeCompress(Scale scale);
Workload MakeCrc(Scale scale);
Workload MakeDes(Scale scale);
Workload MakeEngine(Scale scale);
Workload MakeFir(Scale scale);
Workload MakeG3fax(Scale scale);
Workload MakePocsag(Scale scale);
Workload MakeQurt(Scale scale);
Workload MakeUcbqsort(Scale scale);

// Convenience selector: value for (small, default, large).
template <typename T>
T BySize(Scale scale, T small, T normal, T large) {
  switch (scale) {
    case Scale::kSmall: return small;
    case Scale::kLarge: return large;
    case Scale::kDefault: break;
  }
  return normal;
}

}  // namespace ces::workloads::detail
