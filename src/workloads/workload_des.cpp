// des: DES-like 16-round Feistel block cipher with eight 64-entry S-boxes
// and a rotate in place of the bit-level P permutation (see DESIGN.md —
// table-lookup pressure and round structure are what matter to the memory
// reference stream, not cryptographic fidelity).
#include "workloads/builder.hpp"
#include "workloads/workloads.hpp"

namespace ces::workloads::detail {
namespace {

constexpr std::uint32_t kRounds = 16;
constexpr std::uint64_t kSboxSeed = 0xde5b0;
constexpr std::uint64_t kKeySeed = 0xde5c1;
constexpr std::uint64_t kDataSeed = 0xde5d2;

std::uint32_t Feistel(std::uint32_t r, std::uint32_t key,
                      const std::vector<std::uint8_t>& sboxes) {
  const std::uint32_t t = r ^ key;
  std::uint32_t f = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const std::uint32_t six = (t >> (4 * i)) & 0x3f;
    f += static_cast<std::uint32_t>(sboxes[i * 64 + six]) << (2 * i);
  }
  return (f << 3) | (f >> 29);  // rotate-left 3: the P-permutation proxy
}

std::vector<std::uint8_t> Golden(const std::vector<std::uint8_t>& sboxes,
                                 const std::vector<std::uint32_t>& keys,
                                 const std::vector<std::uint32_t>& blocks) {
  std::vector<std::uint8_t> out;
  std::uint32_t checksum = 0;
  const auto block_count = static_cast<std::uint32_t>(blocks.size() / 2);
  for (std::uint32_t b = 0; b < block_count; ++b) {
    std::uint32_t left = blocks[2 * b];
    std::uint32_t right = blocks[2 * b + 1];
    for (std::uint32_t round = 0; round < kRounds; ++round) {
      const std::uint32_t f = Feistel(right, keys[round], sboxes);
      const std::uint32_t new_right = left ^ f;
      left = right;
      right = new_right;
    }
    checksum = checksum * 33 + left;
    checksum = checksum * 33 + right;
    if ((b & 15) == 15) AppendWord(out, checksum);
  }
  return out;
}

}  // namespace

Workload MakeDes(Scale scale) {
  const std::uint32_t block_count = BySize<std::uint32_t>(scale, 32, 96, 384);
  const std::vector<std::uint8_t> sboxes = RandomBytes(kSboxSeed, 8 * 64);
  const std::vector<std::uint32_t> keys =
      RandomWords(kKeySeed, kRounds, 0xffffffffu);
  const std::vector<std::uint32_t> blocks =
      RandomWords(kDataSeed, 2 * block_count, 0xffffffffu);

  Workload workload;
  workload.name = "des";
  workload.description = "16-round Feistel block cipher with S-box lookups";
  workload.expected_output = Golden(sboxes, keys, blocks);
  workload.assembly = R"(
        .equ ROUNDS, )" + std::to_string(kRounds) + R"(
        .equ BLOCKS, )" + std::to_string(block_count) + R"(

        .text
main:
        li   s7, 0              # s7 = block index
        li   s6, 0              # s6 = checksum
block_loop:
        # load L, R
        sll  t0, s7, 3
        la   t1, blocks
        add  t1, t1, t0
        lw   s0, 0(t1)          # s0 = L
        lw   s1, 4(t1)          # s1 = R
        li   s2, 0              # s2 = round
round_loop:
        # t = R ^ key[round]
        sll  t0, s2, 2
        la   t1, keys
        add  t1, t1, t0
        lw   t2, 0(t1)
        xor  t2, s1, t2         # t2 = t
        # f = sum_i sbox[i*64 + ((t >> 4i) & 0x3f)] << 2i
        li   t3, 0              # t3 = f
        li   t4, 0              # t4 = i
sbox_loop:
        sll  t5, t4, 2          # 4*i
        srlv t5, t2, t5
        andi t5, t5, 0x3f
        sll  t6, t4, 6          # i*64
        add  t6, t6, t5
        la   t7, sboxes
        add  t7, t7, t6
        lbu  t8, 0(t7)
        sll  t5, t4, 1          # 2*i
        sllv t8, t8, t5
        add  t3, t3, t8
        addi t4, t4, 1
        li   t9, 8
        blt  t4, t9, sbox_loop
        # f = rotl(f, 3)
        sll  t5, t3, 3
        srl  t6, t3, 29
        or   t3, t5, t6
        # (L, R) = (R, L ^ f)
        xor  t5, s0, t3
        mv   s0, s1
        mv   s1, t5
        addi s2, s2, 1
        li   t9, ROUNDS
        blt  s2, t9, round_loop
        # checksum = (checksum*33 + L)*33 + R
        li   t9, 33
        mul  s6, s6, t9
        add  s6, s6, s0
        mul  s6, s6, t9
        add  s6, s6, s1
        andi t0, s7, 15
        li   t1, 15
        bne  t0, t1, no_emit
        outw s6
no_emit:
        addi s7, s7, 1
        li   t9, BLOCKS
        blt  s7, t9, block_loop
        halt

        .data
)" + ByteArray("sboxes", sboxes) + R"(        .align 2
)" + WordArray("keys", keys) + WordArray("blocks", blocks);
  return workload;
}

}  // namespace ces::workloads::detail
