#include "workloads/builder.hpp"

#include <cmath>
#include <cstdio>

#include "support/rng.hpp"

namespace ces::workloads::detail {
namespace {

template <typename T>
std::string FormatArray(const std::string& name, const char* directive,
                        const std::vector<T>& values) {
  std::string out = name + ":";
  char buf[24];
  constexpr std::size_t kPerLine = 12;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i % kPerLine == 0) {
      out += i == 0 ? " " : "\n        ";
      out += directive;
      out += " ";
    } else {
      out += ", ";
    }
    std::snprintf(buf, sizeof(buf), "0x%x",
                  static_cast<std::uint32_t>(values[i]));
    out += buf;
  }
  if (values.empty()) out += std::string(" ") + directive + " 0";
  out += "\n";
  return out;
}

}  // namespace

std::string WordArray(const std::string& name,
                      const std::vector<std::uint32_t>& values) {
  return FormatArray(name, ".word", values);
}

std::string ByteArray(const std::string& name,
                      const std::vector<std::uint8_t>& values) {
  return FormatArray(name, ".byte", values);
}

std::vector<std::uint32_t> RandomWords(std::uint64_t seed, std::size_t count,
                                       std::uint32_t bound) {
  Rng rng(seed);
  std::vector<std::uint32_t> out(count);
  for (auto& value : out) {
    value = static_cast<std::uint32_t>(rng.NextBounded(bound));
  }
  return out;
}

std::vector<std::uint8_t> RandomBytes(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(count);
  for (auto& value : out) {
    value = static_cast<std::uint8_t>(rng.NextBounded(256));
  }
  return out;
}

std::vector<std::uint8_t> MarkovText(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  // Skewed alphabet with word-ish structure: repeated fragments make the
  // stream compressible the way real text is.
  static const char* kFragments[] = {"the ",  "and ",   "cache ", "miss ",
                                     "rate ", "embed ", "core ",  "chip ",
                                     "bus ",  "trace "};
  std::vector<std::uint8_t> out;
  out.reserve(count + 8);
  while (out.size() < count) {
    const char* fragment = kFragments[rng.NextBounded(10)];
    for (const char* p = fragment; *p != '\0'; ++p) {
      out.push_back(static_cast<std::uint8_t>(*p));
    }
    if (rng.NextBool(0.12)) out.push_back('\n');
  }
  out.resize(count);
  return out;
}

std::vector<std::uint32_t> Waveform(std::size_t count) {
  // Two mixed sinusoids quantised to 16-bit, stored sign-extended. Computed
  // with integer-safe rounding so that the values are platform-stable.
  std::vector<std::uint32_t> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double phase = static_cast<double>(i);
    const double value = 9000.0 * std::sin(phase * 0.12) +
                         4000.0 * std::sin(phase * 0.031 + 0.5);
    const auto sample = static_cast<std::int32_t>(std::lround(value));
    out[i] = static_cast<std::uint32_t>(sample);
  }
  return out;
}

void AppendWord(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int b = 0; b < 4; ++b) {
    out.push_back(static_cast<std::uint8_t>((value >> (8 * b)) & 0xff));
  }
}

}  // namespace ces::workloads::detail
