// adpcm: IMA ADPCM speech encoder — step-size table lookups, predictor and
// quantiser index updates per sample, as in the PowerStone kernel.
#include "workloads/builder.hpp"
#include "workloads/workloads.hpp"

namespace ces::workloads::detail {
namespace {

constexpr std::int32_t kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

constexpr std::int32_t kIndexTable[8] = {-1, -1, -1, -1, 2, 4, 6, 8};

std::vector<std::uint8_t> Golden(const std::vector<std::uint32_t>& samples,
                                 std::uint32_t passes) {
  std::vector<std::uint8_t> out;
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    std::int32_t predicted = 0;
    std::int32_t index = 0;
    for (std::uint32_t raw : samples) {
      const auto sample = static_cast<std::int32_t>(raw);
      std::int32_t diff = sample - predicted;
      std::uint32_t code = 0;
      if (diff < 0) {
        code = 8;
        diff = -diff;
      }
      const std::int32_t step = kStepTable[index];
      if (diff >= step) {
        code |= 4;
        diff -= step;
      }
      if (diff >= (step >> 1)) {
        code |= 2;
        diff -= step >> 1;
      }
      if (diff >= (step >> 2)) code |= 1;

      std::int32_t delta = step >> 3;
      if (code & 4) delta += step;
      if (code & 2) delta += step >> 1;
      if (code & 1) delta += step >> 2;
      predicted += (code & 8) ? -delta : delta;
      if (predicted > 32767) predicted = 32767;
      if (predicted < -32768) predicted = -32768;

      index += kIndexTable[code & 7];
      if (index < 0) index = 0;
      if (index > 88) index = 88;

      out.push_back(static_cast<std::uint8_t>(code));
    }
  }
  return out;
}

}  // namespace

Workload MakeAdpcm(Scale scale) {
  const std::size_t sample_count = BySize<std::size_t>(scale, 128, 512, 2048);
  const std::uint32_t passes = BySize<std::uint32_t>(scale, 2, 6, 12);
  const std::vector<std::uint32_t> samples = Waveform(sample_count);

  std::vector<std::uint32_t> steps(std::begin(kStepTable),
                                   std::end(kStepTable));
  std::vector<std::uint32_t> index_deltas;
  for (std::int32_t v : kIndexTable) {
    index_deltas.push_back(static_cast<std::uint32_t>(v));
  }

  Workload workload;
  workload.name = "adpcm";
  workload.description = "IMA ADPCM speech encoder";
  workload.expected_output = Golden(samples, passes);
  workload.assembly = R"(
        .equ SAMPLES, )" + std::to_string(sample_count) + R"(
        .equ PASSES, )" + std::to_string(passes) + R"(

        .text
main:
        li   s7, 0              # s7 = pass
pass_loop:
        li   s2, 0              # s2 = predicted
        li   s3, 0              # s3 = index
        la   s0, samples        # s0 = cursor
        li   s1, SAMPLES        # s1 = samples left
sample_loop:
        lw   t0, 0(s0)          # t0 = sample
        sub  t1, t0, s2         # t1 = diff
        li   t2, 0              # t2 = code
        bge  t1, zero, diff_pos
        li   t2, 8
        neg  t1, t1
diff_pos:
        # t3 = step = steptable[index]
        sll  t4, s3, 2
        la   t5, steptable
        add  t4, t4, t5
        lw   t3, 0(t4)
        blt  t1, t3, q_half
        ori  t2, t2, 4
        sub  t1, t1, t3
q_half:
        sra  t4, t3, 1
        blt  t1, t4, q_quarter
        ori  t2, t2, 2
        sub  t1, t1, t4
q_quarter:
        sra  t4, t3, 2
        blt  t1, t4, q_done
        ori  t2, t2, 1
q_done:
        # delta = step>>3 (+ step if bit2, + step>>1 if bit1, + step>>2 if bit0)
        sra  t5, t3, 3          # t5 = delta
        andi t6, t2, 4
        beqz t6, d_half
        add  t5, t5, t3
d_half:
        andi t6, t2, 2
        beqz t6, d_quarter
        sra  t7, t3, 1
        add  t5, t5, t7
d_quarter:
        andi t6, t2, 1
        beqz t6, d_apply
        sra  t7, t3, 2
        add  t5, t5, t7
d_apply:
        andi t6, t2, 8
        beqz t6, d_add
        sub  s2, s2, t5
        b    d_clamp
d_add:
        add  s2, s2, t5
d_clamp:
        li   t6, 32767
        ble  s2, t6, c_low
        mv   s2, t6
c_low:
        li   t6, -32768
        bge  s2, t6, c_done
        mv   s2, t6
c_done:
        # index += indextable[code & 7], clamped to [0, 88]
        andi t6, t2, 7
        sll  t6, t6, 2
        la   t7, indextable
        add  t6, t6, t7
        lw   t7, 0(t6)
        add  s3, s3, t7
        bge  s3, zero, i_high
        li   s3, 0
i_high:
        li   t6, 88
        ble  s3, t6, i_done
        mv   s3, t6
i_done:
        outb t2                 # emit the 4-bit code (one byte per sample)
        addi s0, s0, 4
        addi s1, s1, -1
        bnez s1, sample_loop
        addi s7, s7, 1
        li   t6, PASSES
        blt  s7, t6, pass_loop
        halt

        .data
)" + WordArray("steptable", steps) + WordArray("indextable", index_deltas) +
                      WordArray("samples", samples);
  return workload;
}

}  // namespace ces::workloads::detail
