#include "service/scheduler.hpp"

#include <utility>
#include <vector>

#include "explore/joint.hpp"
#include "explore/report.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/trace_event.hpp"

namespace ces::service {

namespace {

using support::Error;
using support::ErrorCategory;

analytic::Engine EngineFromName(const std::string& name) {
  if (name == "reference") return analytic::Engine::kReference;
  if (name == "fused-tree") return analytic::Engine::kFusedTree;
  return analytic::Engine::kFused;
}

// The joint interleaver needs materialised reference vectors; spill-backed
// entries (streaming uploads) materialise on demand with one sequential
// pass. Single-trace explores never pay this — their prelude streams.
std::shared_ptr<const trace::Trace> MaterializedOf(const PinnedTrace& pinned) {
  if (pinned.trace != nullptr) return pinned.trace;
  return std::make_shared<const trace::Trace>(
      trace::MaterializeTrace(*pinned.view));
}

// K resolution must match cachedse's CmdExplore expression exactly — the
// acceptance bar is byte-identical output for fraction queries.
std::uint64_t ResolveK(const protocol::Request& request,
                       const trace::TraceStats& stats) {
  if (request.has_k) return request.k;
  return static_cast<std::uint64_t>(
      request.fraction * static_cast<double>(stats.max_misses));
}

}  // namespace

JobScheduler::JobScheduler(TraceStore& store, ResultCache& cache,
                           Options options, support::MetricsRegistry* metrics)
    : store_(store),
      cache_(cache),
      metrics_(metrics),
      pool_(options.jobs, metrics),
      dispatcher_(*this,
                  Dispatcher::Options{options.queue_limit,
                                      options.retry_after_ms,
                                      options.request_log},
                  metrics) {}

JobScheduler::~JobScheduler() { Drain(); }

void JobScheduler::Submit(protocol::Request request, Responder done) {
  dispatcher_.Submit(std::move(request), std::move(done));
}

void JobScheduler::Drain() { dispatcher_.Drain(); }

void JobScheduler::Pause() { dispatcher_.Pause(); }

void JobScheduler::Resume() { dispatcher_.Resume(); }

std::size_t JobScheduler::queue_depth() const {
  return dispatcher_.queue_depth();
}

bool JobScheduler::draining() const { return dispatcher_.draining(); }

JobScheduler::ResolvedTrace JobScheduler::Resolve(
    const protocol::Request& request, bool force_ingest) {
  ResolvedTrace resolved;
  try {
    if (!request.digest.empty()) {
      resolved.pinned = store_.Find(request.digest);
      if (!resolved.pinned.pinned()) {
        resolved.failed = true;
        resolved.code = support::ToString(ErrorCategory::kValidation);
        resolved.message = "unknown digest " + request.digest +
                           " (evicted or never ingested; re-ingest by path)";
      }
      return resolved;
    }
    const std::string memo_key = request.trace + '\0' + request.kind;
    if (!force_ingest) {
      std::string digest;
      {
        std::lock_guard<std::mutex> lock(memo_mutex_);
        auto it = path_digest_.find(memo_key);
        if (it != path_digest_.end()) digest = it->second;
      }
      if (!digest.empty()) {
        resolved.pinned = store_.Find(digest);
        if (resolved.pinned.pinned()) return resolved;
        // Evicted since memoised: fall through to a fresh load.
      }
    }
    resolved.pinned =
        store_.Ingest(LoadTraceRef(request.trace, request.kind, metrics_));
    {
      std::lock_guard<std::mutex> lock(memo_mutex_);
      path_digest_[memo_key] = resolved.pinned.digest;
    }
  } catch (const Error& e) {
    resolved.failed = true;
    resolved.code = support::ToString(e.category());
    resolved.message = e.what();
  } catch (const std::exception& e) {
    resolved.failed = true;
    resolved.code = support::ToString(ErrorCategory::kInternal);
    resolved.message = e.what();
  }
  return resolved;
}

void JobScheduler::HandleUpload(DispatchJob& job) {
  const protocol::Request& request = job.request;
  try {
    switch (request.op) {
      case Op::kTraceBegin: {
        const trace::StreamKind kind = request.kind == "instr"
                                           ? trace::StreamKind::kInstruction
                                           : trace::StreamKind::kData;
        const std::string token = store_.BeginUpload(
            kind, request.address_bits, request.count, request.name);
        dispatcher_.Respond(job, protocol::TraceBeginResponse(
                                     request.id, token, request.count,
                                     request.rid));
        break;
      }
      case Op::kTraceChunk: {
        const std::vector<std::uint32_t> refs =
            protocol::DecodeChunkPayload(request.encoding, request.payload);
        const std::uint64_t received = store_.AppendUploadChunk(
            request.upload, request.seq, refs.data(), refs.size());
        dispatcher_.Respond(job, protocol::TraceChunkResponse(
                                     request.id, request.upload, request.seq,
                                     received, request.rid));
        break;
      }
      default: {
        const PinnedTrace pinned = store_.FinishUpload(request.upload);
        job.digest = pinned.digest;
        dispatcher_.Respond(job, protocol::TraceEndResponse(
                                     request.id, pinned.digest, pinned.stats,
                                     request.rid));
        break;
      }
    }
  } catch (const Error& e) {
    dispatcher_.Fail(job, support::ToString(e.category()), e.what());
  } catch (const std::exception& e) {
    dispatcher_.Fail(job, support::ToString(ErrorCategory::kInternal),
                     e.what());
  }
}

void JobScheduler::ExecuteBatch(std::deque<DispatchJob> batch) {
  support::ScopedTraceSpan batch_span("service.batch");
  const auto now = std::chrono::steady_clock::now();

  // One resolution per distinct trace reference in the gulp.
  std::unordered_map<std::string, ResolvedTrace> resolved;
  struct Group {
    std::string digest;
    analytic::ExplorerOptions options;
    std::string engine_name;
    std::vector<DispatchJob*> jobs;
  };
  std::vector<Group> groups;
  std::unordered_map<std::string, std::size_t> group_index;
  // Joint requests group on (data digest, instr digest, engine, space,
  // prune): one ExploreJoint run answers every request in the group.
  struct JointGroup {
    std::string digest;        // data stream
    std::string digest_instr;  // instruction stream
    std::shared_ptr<const trace::Trace> data;
    std::shared_ptr<const trace::Trace> instr;
    std::string engine_name;
    std::string space_name;
    bool prune = true;
    std::vector<DispatchJob*> jobs;
  };
  std::vector<JointGroup> joint_groups;
  std::unordered_map<std::string, std::size_t> joint_group_index;

  for (DispatchJob& job : batch) {
    if (Dispatcher::DeadlineExpired(job, now)) {
      support::MetricsRegistry::Add(metrics_, "service.deadline_exceeded");
      dispatcher_.Fail(job, protocol::kCodeDeadlineExceeded,
                       "deadline passed while queued", 0, "deadline");
      continue;
    }
    const protocol::Request& request = job.request;
    if (request.op == Op::kTraceBegin || request.op == Op::kTraceChunk ||
        request.op == Op::kTraceEnd) {
      // Upload ops carry no trace reference to resolve; they are pure
      // (ordered) store calls and must stay in batch order so the strict
      // chunk sequencing observed by the store matches the client's.
      HandleUpload(job);
      continue;
    }
    const bool force_ingest = request.op == Op::kIngest;
    const std::string resolve_key = request.digest.empty()
                                        ? "ref:" + request.trace + '\0' +
                                              request.kind
                                        : "digest:" + request.digest;
    auto it = resolved.find(resolve_key);
    if (it == resolved.end() || force_ingest) {
      it = resolved.insert_or_assign(resolve_key,
                                     Resolve(request, force_ingest))
               .first;
    }
    const ResolvedTrace& trace = it->second;
    if (trace.failed) {
      dispatcher_.Fail(job, trace.code, trace.message);
      continue;
    }
    job.digest = trace.pinned.digest;
    switch (request.op) {
      case Op::kIngest:
        dispatcher_.Respond(job, protocol::IngestResponse(
                                     request.id, trace.pinned.digest,
                                     trace.pinned.stats, request.rid));
        break;
      case Op::kStats:
        dispatcher_.Respond(job, protocol::StatsResponse(
                                     request.id, trace.pinned.digest,
                                     trace.pinned.stats,
                                     trace::ToString(trace.pinned.kind),
                                     request.rid));
        break;
      case Op::kExplore: {
        const std::string key = trace.pinned.digest + '|' + request.engine +
                                '|' + std::to_string(request.line_words) +
                                '|' + std::to_string(request.max_index_bits);
        auto [pos, inserted] = group_index.try_emplace(key, groups.size());
        if (inserted) {
          Group group;
          group.digest = trace.pinned.digest;
          group.engine_name = request.engine;
          group.options.engine = EngineFromName(request.engine);
          group.options.line_words = request.line_words;
          group.options.max_index_bits = request.max_index_bits;
          group.options.jobs = pool_.jobs();
          groups.push_back(std::move(group));
        }
        groups[pos->second].jobs.push_back(&job);
        break;
      }
      case Op::kExploreJoint: {
        // The loop above resolved the data stream (trace/digest, kind
        // "data"); the instruction stream resolves through the same
        // memoisation under its own key.
        protocol::Request instr_request = request;
        instr_request.trace = request.trace_instr;
        instr_request.digest = request.digest_instr;
        instr_request.kind = "instr";
        const std::string instr_key =
            instr_request.digest.empty()
                ? "ref:" + instr_request.trace + '\0' + instr_request.kind
                : "digest:" + instr_request.digest;
        auto instr_it = resolved.find(instr_key);
        if (instr_it == resolved.end()) {
          instr_it = resolved
                         .insert_or_assign(instr_key,
                                           Resolve(instr_request, false))
                         .first;
        }
        const ResolvedTrace& instr_trace = instr_it->second;
        if (instr_trace.failed) {
          dispatcher_.Fail(job, instr_trace.code, instr_trace.message);
          break;
        }
        const std::string key = trace.pinned.digest + '|' +
                                instr_trace.pinned.digest + '|' +
                                request.engine + '|' + request.space + '|' +
                                (request.prune ? "1" : "0");
        auto [pos, inserted] =
            joint_group_index.try_emplace(key, joint_groups.size());
        if (inserted) {
          JointGroup group;
          group.digest = trace.pinned.digest;
          group.digest_instr = instr_trace.pinned.digest;
          group.data = MaterializedOf(trace.pinned);
          group.instr = MaterializedOf(instr_trace.pinned);
          group.engine_name = request.engine;
          group.space_name = request.space;
          group.prune = request.prune;
          joint_groups.push_back(std::move(group));
        }
        joint_groups[pos->second].jobs.push_back(&job);
        break;
      }
      default:
        // ping/metrics/shutdown/stats(server)/health are routed inline by
        // the service; reaching the scheduler with one is a programming
        // error upstream.
        dispatcher_.Fail(job, support::ToString(ErrorCategory::kInternal),
                         "operation cannot be scheduled");
        break;
    }
  }

  for (Group& group : groups) {
    // Explicit-K requests that are already cached never need the prelude —
    // answer them first and only build for what remains.
    std::vector<DispatchJob*> remaining;
    remaining.reserve(group.jobs.size());
    for (DispatchJob* job : group.jobs) {
      if (job->request.has_k) {
        ResultKey key{group.digest,
                      static_cast<std::uint8_t>(group.options.engine),
                      group.options.line_words, group.options.max_index_bits,
                      job->request.k};
        if (auto hit = cache_.Lookup(key)) {
          job->outcome = "cache_hit";
          dispatcher_.Respond(
              *job, protocol::ExploreResponse(
                        job->request.id, group.digest, group.engine_name,
                        hit->k, hit->stats, hit->points, true,
                        job->request.rid));
          continue;
        }
      }
      remaining.push_back(job);
    }
    if (remaining.empty()) continue;

    std::shared_ptr<const analytic::Explorer> explorer;
    bool prelude_reused = false;
    try {
      explorer = store_.GetOrBuildExplorer(group.digest, group.options,
                                           &prelude_reused);
    } catch (const Error& e) {
      for (DispatchJob* job : remaining) {
        dispatcher_.Fail(*job, support::ToString(e.category()), e.what());
      }
      continue;
    } catch (const std::exception& e) {
      for (DispatchJob* job : remaining) {
        dispatcher_.Fail(*job, support::ToString(ErrorCategory::kInternal),
                         e.what());
      }
      continue;
    }

    // Per-request fan-out: every remaining request is one cheap histogram
    // query against the shared prelude.
    pool_.ParallelFor(remaining.size(), [&](std::size_t i) {
      DispatchJob& job = *remaining[i];
      try {
        support::ScopedTraceSpan solve_span("service.solve");
        if (Dispatcher::DeadlineExpired(job,
                                        std::chrono::steady_clock::now())) {
          support::MetricsRegistry::Add(metrics_,
                                        "service.deadline_exceeded");
          dispatcher_.Fail(job, protocol::kCodeDeadlineExceeded,
                           "deadline passed before solve", 0, "deadline");
          return;
        }
        const std::uint64_t k = ResolveK(job.request, explorer->stats());
        ResultKey key{group.digest,
                      static_cast<std::uint8_t>(group.options.engine),
                      group.options.line_words, group.options.max_index_bits,
                      k};
        // Fraction requests do their single cache probe here, after K
        // resolution; explicit-K misses were already counted above, so
        // skip a second probe for them.
        if (!job.request.has_k) {
          if (auto hit = cache_.Lookup(key)) {
            job.outcome = "cache_hit";
            dispatcher_.Respond(
                job, protocol::ExploreResponse(
                         job.request.id, group.digest, group.engine_name,
                         hit->k, hit->stats, hit->points, true,
                         job.request.rid));
            return;
          }
        }
        const analytic::ExplorationResult result = explorer->Solve(k);
        auto value = std::make_shared<CachedResult>();
        value->stats = explorer->stats();
        value->k = k;
        value->points = result.points;
        cache_.Insert(key, value);
        // "prelude_reused" marks the whole group as riding an already-built
        // prelude — one fused pass amortised over every rid in the group.
        if (prelude_reused) job.outcome = "prelude_reused";
        dispatcher_.Respond(job, protocol::ExploreResponse(
                                     job.request.id, group.digest,
                                     group.engine_name, k, value->stats,
                                     value->points, false, job.request.rid));
      } catch (const Error& e) {
        dispatcher_.Fail(job, support::ToString(e.category()), e.what());
      } catch (const std::exception& e) {
        dispatcher_.Fail(job, support::ToString(ErrorCategory::kInternal),
                         e.what());
      }
    });
  }

  for (JointGroup& group : joint_groups) {
    const ResultKey key{group.digest, /*engine=*/
                        static_cast<std::uint8_t>(
                            EngineFromName(group.engine_name)),
                        /*line_words=*/0, /*max_index_bits=*/0, /*k=*/0,
                        group.digest_instr,
                        "joint|" + group.space_name + "|prune=" +
                            (group.prune ? "1" : "0")};
    std::string payload;
    bool cached = false;
    if (auto hit = cache_.Lookup(key)) {
      payload = hit->payload;
      cached = true;
    } else {
      // Everything already past its deadline is answered without paying for
      // the joint run; if nothing is left, skip the run entirely.
      std::vector<DispatchJob*> remaining;
      remaining.reserve(group.jobs.size());
      for (DispatchJob* job : group.jobs) {
        if (Dispatcher::DeadlineExpired(*job,
                                        std::chrono::steady_clock::now())) {
          support::MetricsRegistry::Add(metrics_,
                                        "service.deadline_exceeded");
          dispatcher_.Fail(*job, protocol::kCodeDeadlineExceeded,
                           "deadline passed before joint exploration", 0,
                           "deadline");
          continue;
        }
        remaining.push_back(job);
      }
      group.jobs = std::move(remaining);
      if (group.jobs.empty()) continue;
      try {
        support::ScopedTraceSpan joint_span("service.explore_joint");
        const trace::AccessSequence accesses =
            explore::InterleaveProportional(*group.instr, *group.data);
        explore::JointOptions options;
        options.prune = group.prune;
        options.jobs = pool_.jobs();
        options.engine = EngineFromName(group.engine_name);
        options.metrics = metrics_;
        const explore::JointResult result = ExploreJoint(
            accesses, explore::JointSpaceByName(group.space_name), options);
        payload = explore::JointReportJson(
            result, explore::JointSpaceByName(group.space_name));
        auto value = std::make_shared<CachedResult>();
        value->payload = payload;
        cache_.Insert(key, value);
      } catch (const Error& e) {
        for (DispatchJob* job : group.jobs) {
          dispatcher_.Fail(*job, support::ToString(e.category()), e.what());
        }
        continue;
      } catch (const std::exception& e) {
        for (DispatchJob* job : group.jobs) {
          dispatcher_.Fail(*job, support::ToString(ErrorCategory::kInternal),
                           e.what());
        }
        continue;
      }
    }
    for (DispatchJob* job : group.jobs) {
      if (cached) job->outcome = "cache_hit";
      dispatcher_.Respond(*job, protocol::ExploreJointResponse(
                                    job->request.id, group.digest,
                                    group.digest_instr, group.engine_name,
                                    group.space_name, group.prune, cached,
                                    payload, job->request.rid));
    }
  }
}

}  // namespace ces::service
