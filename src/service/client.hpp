// Client side of the exploration service protocol.
//
// One Batch() call pipelines any number of request lines over a single
// connection and matches responses (which may arrive out of order) back to
// request order by id. The failure policy is the standard well-behaved-
// client trio:
//  * a per-attempt timeout (poll-based, covers connect-to-last-response);
//  * a retry budget shared by transport failures (connect refused, peer
//    hangup, timeout) and explicit "overloaded" sheds — only the
//    still-unanswered requests are resent, on a fresh connection;
//  * jittered exponential backoff between attempts — base * 2^attempt,
//    capped, scaled by a uniform [0.5, 1.0) draw so a shed fleet does not
//    reconverge in lockstep, and never shorter than the server's
//    retry_after_ms hint.
//
// Failover-aware: `endpoints` lists alternates (a fleet of routers, or a
// router plus a spare). Connections stick to the endpoint that last worked;
// a refused connect or a mid-stream disconnect advances to the next one.
// The two failures are not the same thing and are treated differently: a
// refused connect proves the server saw nothing, so everything is safe to
// resend; a mid-stream disconnect leaves the fate of in-flight requests
// unknown, so only idempotent ops (protocol::IsIdempotentOp) are resent —
// an unanswered trace-begin/trace-end aborts the batch with kIo instead of
// risking a duplicate session.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "support/rng.hpp"

namespace ces::service {

struct ClientEndpoint {
  // Exactly one of: a Unix socket path, or host:port TCP.
  std::string unix_path;
  std::string host = "127.0.0.1";
  int tcp_port = -1;

  // "unix:<path>" or "<host>:<port>" — the display form error messages and
  // --verbose transport notes use.
  std::string Label() const;
};

// Parses one endpoint spec: "unix:<path>", "tcp:<host>:<port>",
// "<host>:<port>", ":<port>" (loopback) or "<port>" (loopback). Throws
// support::Error (kUsage) on anything else.
ClientEndpoint ParseEndpoint(const std::string& spec);

// Comma-separated list of the above; rejects an empty list.
std::vector<ClientEndpoint> ParseEndpointList(const std::string& specs);

// Connects one endpoint (blocking); returns the fd, or -1 with errno
// describing the refusal. Shared by the client's failover loop and the
// fleet router's worker channels. Throws support::Error (kUsage) only for
// malformed endpoints (over-long unix path, non-IPv4 host).
int ConnectEndpoint(const ClientEndpoint& endpoint);

struct ClientOptions {
  // Failover list, tried in order starting from the last endpoint that
  // worked. When empty, the legacy single-endpoint fields below are used.
  std::vector<ClientEndpoint> endpoints;
  // Exactly one endpoint: a Unix socket path, or host:port TCP.
  std::string unix_path;
  std::string host = "127.0.0.1";
  int tcp_port = -1;
  int timeout_ms = 30'000;    // per attempt, connect through last response
  int max_attempts = 4;       // 1 = no retries
  int backoff_base_ms = 50;
  int backoff_cap_ms = 2'000;
  std::uint64_t jitter_seed = 0;  // 0 = derive from pid and clock
  // When false, an "overloaded" shed counts as the answer instead of being
  // retried — load generators measure shed rate with this; interactive
  // clients keep the default and ride the backoff schedule.
  bool retry_sheds = true;
  // Transport notes (failing endpoint, failover target, mid-stream drops)
  // on stderr; what cachedse-client --verbose turns on.
  bool verbose = false;
};

class Client {
 public:
  explicit Client(ClientOptions options);

  // Sends `lines` (no trailing newlines) and returns decoded responses in
  // request order. Requests whose line carries no parseable id are matched
  // to unattributed error responses in arrival order. When the retry budget
  // runs out but every still-open request holds a recorded "overloaded"
  // response, those responses are returned as the answers (the caller maps
  // the server's error code instead of seeing a generic transport failure);
  // a transport-level exhaustion (connect refused, hangup, timeout) still
  // throws support::Error (kIo), as does a mid-stream disconnect with a
  // non-idempotent request in flight (never auto-resent).
  std::vector<Response> Batch(const std::vector<std::string>& lines);

  Response Request(const std::string& line);

  // The endpoint the next attempt will try first (sticky; moves on
  // failure). Exposed for tests and verbose tooling.
  const ClientEndpoint& preferred_endpoint() const {
    return endpoints_[preferred_];
  }

 private:
  // Connects to the first reachable endpoint starting at preferred_;
  // returns the fd and pins preferred_ to it. Throws support::Error (kIo)
  // when every endpoint refuses.
  int Connect();
  std::uint64_t BackoffMs(int attempt, std::uint64_t server_hint_ms);
  void Note(const std::string& message) const;  // verbose-mode stderr line

  ClientOptions options_;
  std::vector<ClientEndpoint> endpoints_;
  std::size_t preferred_ = 0;
  Rng jitter_;
};

}  // namespace ces::service
