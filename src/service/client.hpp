// Client side of the exploration service protocol.
//
// One Batch() call pipelines any number of request lines over a single
// connection and matches responses (which may arrive out of order) back to
// request order by id. The failure policy is the standard well-behaved-
// client trio the satellite asks for:
//  * a per-attempt timeout (poll-based, covers connect-to-last-response);
//  * a retry budget shared by transport failures (connect refused, peer
//    hangup, timeout) and explicit "overloaded" sheds — only the
//    still-unanswered requests are resent, on a fresh connection;
//  * jittered exponential backoff between attempts — base * 2^attempt,
//    capped, scaled by a uniform [0.5, 1.0) draw so a shed fleet does not
//    reconverge in lockstep, and never shorter than the server's
//    retry_after_ms hint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "support/rng.hpp"

namespace ces::service {

struct ClientOptions {
  // Exactly one endpoint: a Unix socket path, or host:port TCP.
  std::string unix_path;
  std::string host = "127.0.0.1";
  int tcp_port = -1;
  int timeout_ms = 30'000;    // per attempt, connect through last response
  int max_attempts = 4;       // 1 = no retries
  int backoff_base_ms = 50;
  int backoff_cap_ms = 2'000;
  std::uint64_t jitter_seed = 0;  // 0 = derive from pid and clock
  // When false, an "overloaded" shed counts as the answer instead of being
  // retried — load generators measure shed rate with this; interactive
  // clients keep the default and ride the backoff schedule.
  bool retry_sheds = true;
};

class Client {
 public:
  explicit Client(ClientOptions options);

  // Sends `lines` (no trailing newlines) and returns decoded responses in
  // request order. Requests whose line carries no parseable id are matched
  // to unattributed error responses in arrival order. When the retry budget
  // runs out but every still-open request holds a recorded "overloaded"
  // response, those responses are returned as the answers (the caller maps
  // the server's error code instead of seeing a generic transport failure);
  // a transport-level exhaustion (connect refused, hangup, timeout) still
  // throws support::Error (kIo).
  std::vector<Response> Batch(const std::vector<std::string>& lines);

  Response Request(const std::string& line);

 private:
  int Connect();  // returns the fd; throws support::Error (kIo)
  std::uint64_t BackoffMs(int attempt, std::uint64_t server_hint_ms);

  ClientOptions options_;
  Rng jitter_;
};

}  // namespace ces::service
