#include "service/service.hpp"

#include <unistd.h>

#include <utility>

#include "support/build_info.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/simd.hpp"

namespace ces::service {

using support::Error;
using support::ErrorCategory;

ExplorationService::ExplorationService(Options options)
    : options_(std::move(options)),
      store_(options_.max_traces, options_.metrics, options_.spill_dir),
      cache_(options_.cache_bytes, options_.cache_shards, options_.metrics) {
  JobScheduler::Options scheduler_options;
  scheduler_options.jobs = options_.jobs;
  scheduler_options.queue_limit = options_.queue_limit;
  scheduler_options.retry_after_ms = options_.retry_after_ms;
  scheduler_options.request_log = options_.request_log;
  scheduler_ = std::make_unique<JobScheduler>(store_, cache_,
                                              scheduler_options,
                                              options_.metrics);
}

ExplorationService::~ExplorationService() { Drain(); }

void ExplorationService::Drain() { scheduler_->Drain(); }

std::string ExplorationService::NextRid() {
  return "r" + std::to_string(
                   rid_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
}

protocol::ServerInfo ExplorationService::Snapshot() const {
  protocol::ServerInfo info;
  info.uptime_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started_)
          .count());
  info.git_sha = support::GitSha();
  info.pid = static_cast<std::uint64_t>(::getpid());
  info.jobs = scheduler_->jobs();
  if (options_.metrics != nullptr) {
    info.connections_live = options_.metrics->gauge("service.connections.live");
    info.connections_total = options_.metrics->counter("service.connections");
    info.shed_total = options_.metrics->counter("service.queue.shed");
  }
  info.queue_depth = scheduler_->queue_depth();
  info.queue_limit = options_.queue_limit;
  info.retry_after_ms = options_.retry_after_ms;
  info.draining = scheduler_->draining();
  info.traces_pinned = store_.pinned_traces();
  info.uploads_open = store_.open_uploads();
  info.requests_total = rid_counter_.load(std::memory_order_relaxed);
  info.simd_kernel =
      support::simd::LevelName(support::simd::ActiveLevel());
  return info;
}

void ExplorationService::LogInline(const std::string& rid,
                                   const std::string& id, const char* op,
                                   const char* outcome,
                                   const std::string& error_code,
                                   std::uint64_t start_us,
                                   std::size_t response_bytes) {
  if (options_.request_log == nullptr) return;
  support::RequestLogEntry entry;
  entry.ts_us = options_.request_log->NowUs();
  entry.rid = rid;
  entry.id = id;
  entry.op = op;
  entry.outcome = outcome;
  entry.error = error_code;
  entry.exec_us = entry.ts_us > start_us ? entry.ts_us - start_us : 0;
  entry.total_us = entry.exec_us;
  entry.bytes = response_bytes;
  options_.request_log->Write(entry);
}

void ExplorationService::Handle(const std::string& line, Responder done) {
  support::MetricsRegistry::Add(options_.metrics, "service.lines");
  const std::uint64_t start_us =
      support::RequestLog::NowUs(options_.request_log);
  // Every line gets a rid, even one that fails to parse — the log line for
  // a rejected request must still be correlatable with the error response.
  const std::string rid = NextRid();
  protocol::Request request;
  try {
    request = ParseRequest(line);
  } catch (const Error& e) {
    support::MetricsRegistry::Add(options_.metrics, "service.bad_requests");
    // Best-effort id echo: a schema-invalid line often still carries a
    // readable id, and a pipelining client needs it to correlate the error.
    const std::string id = protocol::ExtractRequestId(line);
    const std::string response = protocol::ErrorResponse(id, e, rid);
    LogInline(rid, id, "?", "error", support::ToString(e.category()),
              start_us, response.size());
    done(response);
    return;
  } catch (const std::exception& e) {
    support::MetricsRegistry::Add(options_.metrics, "service.bad_requests");
    const std::string id = protocol::ExtractRequestId(line);
    const std::string response = protocol::ErrorResponse(
        id, support::ToString(ErrorCategory::kInternal), e.what(), 0, rid);
    LogInline(rid, id, "?", "error",
              support::ToString(ErrorCategory::kInternal), start_us,
              response.size());
    done(response);
    return;
  }
  request.rid = rid;

  switch (request.op) {
    case Op::kPing: {
      const std::string response = protocol::PingResponse(request.id, rid);
      LogInline(rid, request.id, "ping", "inline", "", start_us,
                response.size());
      done(response);
      return;
    }
    case Op::kMetrics: {
      const std::string json = options_.metrics != nullptr
                                   ? options_.metrics->ToJson(true)
                                   : std::string("{}");
      const std::string response =
          protocol::MetricsResponse(request.id, json, rid);
      LogInline(rid, request.id, "metrics", "inline", "", start_us,
                response.size());
      done(response);
      return;
    }
    case Op::kStats: {
      if (!request.trace.empty() || !request.digest.empty()) {
        break;  // trace statistics — scheduled like any other trace op
      }
      // The server snapshot is answered inline: an introspection probe that
      // queued behind the backlog it is probing would be useless.
      const std::string json = options_.metrics != nullptr
                                   ? options_.metrics->ToJson(true, true)
                                   : std::string("{}");
      const std::string response =
          protocol::ServerStatsResponse(request.id, Snapshot(), json, rid);
      LogInline(rid, request.id, "stats", "inline", "", start_us,
                response.size());
      done(response);
      return;
    }
    case Op::kHealth: {
      const std::string response =
          protocol::HealthResponse(request.id, Snapshot(), rid);
      LogInline(rid, request.id, "health", "inline", "", start_us,
                response.size());
      done(response);
      return;
    }
    case Op::kShutdown: {
      if (!options_.on_shutdown_request) {
        const std::string response = protocol::ErrorResponse(
            request.id, support::ToString(ErrorCategory::kUnsupported),
            "shutdown op disabled on this server", 0, rid);
        LogInline(rid, request.id, "shutdown", "error",
                  support::ToString(ErrorCategory::kUnsupported), start_us,
                  response.size());
        done(response);
        return;
      }
      const std::string response =
          protocol::ShutdownResponse(request.id, rid);
      LogInline(rid, request.id, "shutdown", "inline", "", start_us,
                response.size());
      done(response);
      options_.on_shutdown_request();
      return;
    }
    default:
      break;
  }
  scheduler_->Submit(std::move(request), std::move(done));
}

}  // namespace ces::service
