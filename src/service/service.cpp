#include "service/service.hpp"

#include <utility>

#include "support/error.hpp"
#include "support/metrics.hpp"

namespace ces::service {

using support::Error;
using support::ErrorCategory;

ExplorationService::ExplorationService(Options options)
    : options_(std::move(options)),
      store_(options_.max_traces, options_.metrics, options_.spill_dir),
      cache_(options_.cache_bytes, options_.cache_shards, options_.metrics) {
  JobScheduler::Options scheduler_options;
  scheduler_options.jobs = options_.jobs;
  scheduler_options.queue_limit = options_.queue_limit;
  scheduler_options.retry_after_ms = options_.retry_after_ms;
  scheduler_ = std::make_unique<JobScheduler>(store_, cache_,
                                              scheduler_options,
                                              options_.metrics);
}

ExplorationService::~ExplorationService() { Drain(); }

void ExplorationService::Drain() { scheduler_->Drain(); }

void ExplorationService::Handle(const std::string& line, Responder done) {
  support::MetricsRegistry::Add(options_.metrics, "service.lines");
  protocol::Request request;
  try {
    request = ParseRequest(line);
  } catch (const Error& e) {
    support::MetricsRegistry::Add(options_.metrics, "service.bad_requests");
    // Best-effort id echo: a schema-invalid line often still carries a
    // readable id, and a pipelining client needs it to correlate the error.
    done(protocol::ErrorResponse(protocol::ExtractRequestId(line), e));
    return;
  } catch (const std::exception& e) {
    support::MetricsRegistry::Add(options_.metrics, "service.bad_requests");
    done(protocol::ErrorResponse(protocol::ExtractRequestId(line),
                                 support::ToString(ErrorCategory::kInternal),
                                 e.what()));
    return;
  }

  switch (request.op) {
    case Op::kPing:
      done(protocol::PingResponse(request.id));
      return;
    case Op::kMetrics: {
      const std::string json = options_.metrics != nullptr
                                   ? options_.metrics->ToJson(true)
                                   : std::string("{}");
      done(protocol::MetricsResponse(request.id, json));
      return;
    }
    case Op::kShutdown:
      if (!options_.on_shutdown_request) {
        done(protocol::ErrorResponse(
            request.id, support::ToString(ErrorCategory::kUnsupported),
            "shutdown op disabled on this server"));
        return;
      }
      done(protocol::ShutdownResponse(request.id));
      options_.on_shutdown_request();
      return;
    default:
      scheduler_->Submit(std::move(request), std::move(done));
      return;
  }
}

}  // namespace ces::service
