// The exploration service: request routing over the pinned-state machinery.
//
// ExplorationService is the transport-free core of the daemon — a line goes
// in, exactly one response line comes out through the responder, and nothing
// a client sends can make it throw (malformed requests become structured
// error responses; tests/fuzz_test.cpp feeds this surface the mutation
// harness). The socket front end (service/server.hpp) and the in-process
// tests drive the very same object, so every protocol behaviour is testable
// without a socket.
//
// Routing: ping, metrics and shutdown are answered inline on the calling
// thread (they must work when the scheduler is saturated — a health probe
// that queues behind the backlog it is probing would be useless); explore,
// stats, ingest and the streaming-upload ops (trace-begin/chunk/end) go
// through the JobScheduler's bounded queue.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "service/result_cache.hpp"
#include "service/scheduler.hpp"
#include "service/trace_store.hpp"
#include "support/log.hpp"

namespace ces::service {

// What the socket front end (service/server.hpp) drives: a transport-free
// line-in/line-out request sink. ExplorationService (a worker) and
// fleet::Router (the digest-sharded forwarder) both implement it, so the
// same Server machinery — accept loop, framing, drain order — serves both
// daemons.
class LineService {
 public:
  using Responder = std::function<void(std::string)>;

  virtual ~LineService() = default;
  // Routes one NDJSON request line. Must not throw; `done` is invoked
  // exactly once (inline or from another thread) with the response line,
  // no trailing newline.
  virtual void Handle(const std::string& line, Responder done) = 0;
  // Stops admission and answers everything already admitted.
  virtual void Drain() = 0;
};

class ExplorationService : public LineService {
 public:
  struct Options {
    unsigned jobs = 0;                   // 0 = hardware concurrency
    std::size_t cache_bytes = 64u << 20; // result-cache budget
    std::size_t cache_shards = 8;
    std::size_t queue_limit = 256;
    std::size_t max_traces = 64;
    std::uint64_t retry_after_ms = 100;
    // Where streaming uploads spill to disk; empty = a per-process
    // directory under the system temp path.
    std::string spill_dir;
    support::MetricsRegistry* metrics = nullptr;
    // One structured NDJSON line per finished request (support/log.hpp);
    // nullptr disables request logging.
    support::RequestLog* request_log = nullptr;
    // Invoked (after the response is sent) when a client issues the
    // shutdown op. Unset = shutdown op is rejected as unsupported.
    std::function<void()> on_shutdown_request;
  };

  using Responder = LineService::Responder;

  explicit ExplorationService(Options options);
  ~ExplorationService() override;  // implies Drain()

  // Routes one NDJSON request line. Never throws; `done` is invoked exactly
  // once (inline or from a scheduler thread) with the response line, no
  // trailing newline.
  void Handle(const std::string& line, Responder done) override;

  // Stops admission and answers everything already queued.
  void Drain() override;

  TraceStore& store() { return store_; }
  ResultCache& cache() { return cache_; }
  JobScheduler& scheduler() { return *scheduler_; }

  // The live snapshot behind the `stats` (server form) and `health` ops;
  // also what the --prometheus dump and ops tooling read.
  protocol::ServerInfo Snapshot() const;

 private:
  // Stamps the next server-assigned request id ("r1", "r2", ...).
  std::string NextRid();
  // Logs an inline-answered (never queued) request or an unparseable line.
  void LogInline(const std::string& rid, const std::string& id,
                 const char* op, const char* outcome,
                 const std::string& error_code, std::uint64_t start_us,
                 std::size_t response_bytes);

  Options options_;
  TraceStore store_;
  ResultCache cache_;
  std::unique_ptr<JobScheduler> scheduler_;
  std::atomic<std::uint64_t> rid_counter_{0};
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
};

}  // namespace ces::service
