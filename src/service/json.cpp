#include "service/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

#include "support/error.hpp"

namespace ces::service {

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

const char* ToString(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return "bool";
    case JsonValue::Kind::kNumber:
      return "number";
    case JsonValue::Kind::kString:
      return "string";
    case JsonValue::Kind::kArray:
      return "array";
    case JsonValue::Kind::kObject:
      return "object";
  }
  return "?";
}

namespace {

using support::Error;
using support::ErrorCategory;

class Parser {
 public:
  Parser(std::string_view text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  JsonValue ParseDocument() {
    SkipWhitespace();
    JsonValue value = ParseValue(0);
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing bytes after JSON value");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& detail) const {
    throw Error(ErrorCategory::kParse, "json", detail, Error::kNoLine, pos_);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }

  char Peek() const {
    if (AtEnd()) Fail("unexpected end of input");
    return text_[pos_];
  }

  char Take() {
    const char c = Peek();
    ++pos_;
    return c;
  }

  void Expect(char c, const char* what) {
    if (AtEnd() || text_[pos_] != c) Fail(std::string("expected ") + what);
    ++pos_;
  }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue ParseValue(std::size_t depth) {
    if (depth > limits_.max_depth) Fail("nesting depth limit exceeded");
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        JsonValue value;
        value.kind = JsonValue::Kind::kString;
        value.string = ParseString();
        return value;
      }
      case 't':
        if (!ConsumeLiteral("true")) Fail("invalid literal");
        return MakeBool(true);
      case 'f':
        if (!ConsumeLiteral("false")) Fail("invalid literal");
        return MakeBool(false);
      case 'n':
        if (!ConsumeLiteral("null")) Fail("invalid literal");
        return JsonValue{};
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        Fail("unexpected character");
    }
  }

  static JsonValue MakeBool(bool value) {
    JsonValue result;
    result.kind = JsonValue::Kind::kBool;
    result.boolean = value;
    return result;
  }

  JsonValue ParseObject(std::size_t depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    Expect('{', "'{'");
    SkipWhitespace();
    if (!AtEnd() && text_[pos_] == '}') {
      ++pos_;
      return value;
    }
    // Hash-set membership keeps duplicate detection O(1) per key; a Find()
    // scan would be quadratic in the member count, which a hostile request
    // of ~100k tiny keys under the server's line-size cap could exploit.
    std::unordered_set<std::string> seen_keys;
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || text_[pos_] != '"') Fail("expected object key");
      std::string key = ParseString();
      if (!seen_keys.insert(key).second) {
        Fail("duplicate object key '" + key + "'");
      }
      SkipWhitespace();
      Expect(':', "':'");
      SkipWhitespace();
      value.object.emplace_back(std::move(key), ParseValue(depth + 1));
      SkipWhitespace();
      const char next = Take();
      if (next == '}') return value;
      if (next != ',') Fail("expected ',' or '}' in object");
    }
  }

  JsonValue ParseArray(std::size_t depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    Expect('[', "'['");
    SkipWhitespace();
    if (!AtEnd() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      SkipWhitespace();
      value.array.push_back(ParseValue(depth + 1));
      SkipWhitespace();
      const char next = Take();
      if (next == ']') return value;
      if (next != ',') Fail("expected ',' or ']' in array");
    }
  }

  std::string ParseString() {
    Expect('"', "'\"'");
    std::string out;
    for (;;) {
      if (out.size() > limits_.max_string_bytes) {
        Fail("string length limit exceeded");
      }
      const char c = Take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char escape = Take();
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out.push_back(escape);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          std::uint32_t code = ParseHex4();
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: the low half must follow immediately.
            if (Take() != '\\' || Take() != 'u') {
              Fail("unpaired UTF-16 surrogate");
            }
            const std::uint32_t low = ParseHex4();
            if (low < 0xdc00 || low > 0xdfff) {
              Fail("invalid UTF-16 surrogate pair");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            Fail("unpaired UTF-16 surrogate");
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          Fail("invalid escape sequence");
      }
    }
  }

  std::uint32_t ParseHex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = Take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        Fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  static void AppendUtf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    bool negative = false;
    if (Peek() == '-') {
      negative = true;
      ++pos_;
    }
    // Integer part: a single 0, or a non-zero digit run (JSON forbids 007).
    if (AtEnd()) Fail("truncated number");
    if (Peek() == '0') {
      ++pos_;
    } else if (Peek() >= '1' && Peek() <= '9') {
      while (!AtEnd() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    } else {
      Fail("invalid number");
    }
    bool integral = true;
    if (!AtEnd() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (AtEnd() || text_[pos_] < '0' || text_[pos_] > '9') {
        Fail("digit required after decimal point");
      }
      while (!AtEnd() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (!AtEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (!AtEnd() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (AtEnd() || text_[pos_] < '0' || text_[pos_] > '9') {
        Fail("digit required in exponent");
      }
      while (!AtEnd() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string literal(text_.substr(start, pos_ - start));

    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    errno = 0;
    value.number = std::strtod(literal.c_str(), nullptr);
    if (!std::isfinite(value.number)) Fail("number out of double range");
    if (integral && !negative) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long exact = std::strtoull(literal.c_str(), &end, 10);
      if (errno != ERANGE && end != nullptr && *end == '\0') {
        value.integer = static_cast<std::uint64_t>(exact);
        value.is_integer = true;
      }
    }
    return value;
  }

  std::string_view text_;
  JsonLimits limits_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue ParseJson(std::string_view text, const JsonLimits& limits) {
  return Parser(text, limits).ParseDocument();
}

}  // namespace ces::service
