// Batching job scheduler for the exploration daemon.
//
// Requests are admitted into one bounded queue; a dispatcher thread drains
// the queue in gulps and turns each gulp into the minimum amount of heavy
// work: all requests naming the same (trace, engine, line size, depth
// range) share one trace resolution and one pinned prelude (built once via
// TraceStore, so a burst of a thousand same-trace queries costs one fused
// explorer pass), then fan out per-request across the thread pool where
// each request is answered from the ResultCache or by one cheap Solve.
//
// Overload and lifecycle policy, in the order a request meets it:
//  * bounded admission — a full queue sheds immediately with "overloaded"
//    and a retry_after_ms hint instead of growing the backlog;
//  * per-request deadlines — a request whose deadline passed while queued
//    is answered "deadline_exceeded" without computing anything;
//  * graceful drain — Drain() (SIGTERM path) stops admission ("shutting_
//    down") but every already-admitted request is still answered before
//    Drain returns.
//
// Every request is answered exactly once via its responder, from the
// dispatcher or a pool worker (sheds respond on the submitting thread), so
// the transport must tolerate concurrent responders.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "service/protocol.hpp"
#include "service/result_cache.hpp"
#include "service/trace_store.hpp"
#include "support/log.hpp"
#include "support/pool.hpp"

namespace ces::service {

class JobScheduler {
 public:
  struct Options {
    unsigned jobs = 0;                  // 0 = hardware concurrency
    std::size_t queue_limit = 256;      // admission bound (jobs, not bytes)
    std::uint64_t retry_after_ms = 100; // shed hint for clients
    // One structured line per finished request (see support/log.hpp);
    // nullptr disables request logging.
    support::RequestLog* request_log = nullptr;
  };
  using Responder = std::function<void(std::string)>;

  JobScheduler(TraceStore& store, ResultCache& cache, Options options,
               support::MetricsRegistry* metrics = nullptr);
  ~JobScheduler();  // implies Drain()

  // Enqueues an explore/stats/ingest request. Responds exactly once —
  // inline on the calling thread when shed or draining, from a scheduler
  // thread otherwise. Ping/metrics/shutdown never reach the scheduler; the
  // service router answers those inline.
  void Submit(protocol::Request request, Responder done);

  // Stops admission, answers everything already queued, and joins the
  // dispatcher. Idempotent.
  void Drain();

  // Test/ops hook: a paused dispatcher admits but does not process, which
  // makes queue-full shedding and deadline expiry deterministic to observe.
  void Pause();
  void Resume();

  std::size_t queue_depth() const;
  bool draining() const;
  // The pool's worker count (the resolved `jobs` option).
  unsigned jobs() const { return pool_.jobs(); }

 private:
  struct Job {
    protocol::Request request;
    Responder done;
    std::chrono::steady_clock::time_point enqueued;
    // Set when the dispatcher's gulp picks the job up; sheds never get one,
    // so their whole latency is queue time.
    std::chrono::steady_clock::time_point dequeued;
    bool dispatched = false;
    std::chrono::steady_clock::time_point deadline;  // valid if has_deadline
    bool has_deadline = false;
    // Request-log attribution, filled in as the job progresses.
    std::string digest;      // resolved content digest, when known
    std::string outcome;     // see RequestLogEntry; "" logs as "computed"
    std::string error_code;  // error/shed code, "" on success
  };
  struct ResolvedTrace {
    PinnedTrace pinned;
    bool failed = false;
    std::string code;
    std::string message;
  };

  void Loop();
  void RunBatch(std::deque<Job> batch);
  // trace-begin/chunk/end: pure TraceStore calls, answered inline in batch
  // order (chunk sequencing relies on it).
  void HandleUpload(Job& job);
  ResolvedTrace Resolve(const protocol::Request& request, bool force_ingest);
  void Respond(Job& job, const std::string& response);
  // Marks the job failed (outcome + error code for the log) and responds
  // with the matching error line. `outcome` defaults to "error"; shed and
  // deadline paths pass their own.
  void FailJob(Job& job, const std::string& code, const std::string& message,
               std::uint64_t retry_after_ms = 0, const char* outcome = "error");
  bool DeadlineExpired(const Job& job, std::chrono::steady_clock::time_point now);

  TraceStore& store_;
  ResultCache& cache_;
  const Options options_;
  support::MetricsRegistry* metrics_;
  support::ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool draining_ = false;
  bool paused_ = false;

  std::mutex memo_mutex_;
  // (trace ref + '\0' + kind) -> digest; lets repeat by-path requests skip
  // re-reading the file. An explicit ingest op refreshes the mapping.
  std::unordered_map<std::string, std::string> path_digest_;

  std::thread dispatcher_;
};

}  // namespace ces::service
