// Batching job scheduler for the exploration daemon.
//
// JobScheduler = Dispatcher (admission/dispatch, service/dispatch.hpp) + the
// in-process execution engine. Requests are admitted into one bounded queue;
// the dispatcher thread drains the queue in gulps and this class turns each
// gulp into the minimum amount of heavy work: all requests naming the same
// (trace, engine, line size, depth range) share one trace resolution and one
// pinned prelude (built once via TraceStore, so a burst of a thousand
// same-trace queries costs one fused explorer pass), then fan out
// per-request across the thread pool where each request is answered from the
// ResultCache or by one cheap Solve.
//
// The overload/lifecycle policy (bounded admission -> "overloaded" sheds,
// per-request deadlines, graceful drain) lives in the Dispatcher; the fleet
// router reuses that same admission layer with a forwarding executor instead
// of this one, which is why the split exists.
//
// Every request is answered exactly once via its responder, from the
// dispatcher or a pool worker (sheds respond on the submitting thread), so
// the transport must tolerate concurrent responders.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "service/dispatch.hpp"
#include "service/protocol.hpp"
#include "service/result_cache.hpp"
#include "service/trace_store.hpp"
#include "support/log.hpp"
#include "support/pool.hpp"

namespace ces::service {

class JobScheduler : private BatchExecutor {
 public:
  struct Options {
    unsigned jobs = 0;                  // 0 = hardware concurrency
    std::size_t queue_limit = 256;      // admission bound (jobs, not bytes)
    std::uint64_t retry_after_ms = 100; // shed hint for clients
    // One structured line per finished request (see support/log.hpp);
    // nullptr disables request logging.
    support::RequestLog* request_log = nullptr;
  };
  using Responder = Dispatcher::Responder;

  JobScheduler(TraceStore& store, ResultCache& cache, Options options,
               support::MetricsRegistry* metrics = nullptr);
  ~JobScheduler();  // implies Drain()

  // Enqueues an explore/stats/ingest request. Responds exactly once —
  // inline on the calling thread when shed or draining, from a scheduler
  // thread otherwise. Ping/metrics/shutdown never reach the scheduler; the
  // service router answers those inline.
  void Submit(protocol::Request request, Responder done);

  // Stops admission, answers everything already queued, and joins the
  // dispatcher. Idempotent.
  void Drain();

  // Test/ops hook: a paused dispatcher admits but does not process, which
  // makes queue-full shedding and deadline expiry deterministic to observe.
  void Pause();
  void Resume();

  std::size_t queue_depth() const;
  bool draining() const;
  // The pool's worker count (the resolved `jobs` option).
  unsigned jobs() const { return pool_.jobs(); }

 private:
  struct ResolvedTrace {
    PinnedTrace pinned;
    bool failed = false;
    std::string code;
    std::string message;
  };

  // BatchExecutor: the dequeued gulp, grouped and fanned out. Synchronous —
  // every job is answered before it returns, so Quiesce stays the no-op.
  void ExecuteBatch(std::deque<DispatchJob> batch) override;
  // trace-begin/chunk/end: pure TraceStore calls, answered inline in batch
  // order (chunk sequencing relies on it).
  void HandleUpload(DispatchJob& job);
  ResolvedTrace Resolve(const protocol::Request& request, bool force_ingest);

  TraceStore& store_;
  ResultCache& cache_;
  support::MetricsRegistry* metrics_;
  support::ThreadPool pool_;

  std::mutex memo_mutex_;
  // (trace ref + '\0' + kind) -> digest; lets repeat by-path requests skip
  // re-reading the file. An explicit ingest op refreshes the mapping.
  std::unordered_map<std::string, std::string> path_digest_;

  // Last: its thread calls back into ExecuteBatch, so everything above must
  // already be constructed (and must outlive the drain).
  Dispatcher dispatcher_;
};

}  // namespace ces::service
