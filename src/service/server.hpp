// NDJSON socket front end for the exploration service.
//
// One listening socket — a Unix-domain path (ops default: no port
// squatting, filesystem permissions) or loopback TCP (port 0 picks an
// ephemeral port, reported by port()) — one reader thread per connection,
// newline-framed requests in, newline-framed responses out. Responses are
// written as they complete, so they may interleave out of request order;
// the "id" field is the correlation key. Writes from concurrent scheduler
// workers serialise on a per-connection mutex, and a vanished peer is a
// non-event (EPIPE is swallowed; the result is simply dropped).
//
// Shutdown: RequestShutdown() — from the SIGTERM watcher, the protocol's
// shutdown op, or a test — only flags and notifies; the teardown runs in
// Wait(): stop accepting, drain the scheduler (every admitted request is
// answered; new ones get "shutting_down"), then hang up the connections.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"

namespace ces::service {

struct ServerOptions {
  // Exactly one of the two endpoints must be selected.
  std::string unix_path;            // AF_UNIX when non-empty
  int tcp_port = -1;                // loopback TCP when >= 0; 0 = ephemeral
  std::size_t max_line_bytes = 1u << 20;
  ExplorationService::Options service;
};

class Server {
 public:
  // Owns an ExplorationService built from options.service (the worker
  // daemon shape).
  explicit Server(ServerOptions options);
  // Serves an external handler instead (the router daemon shape): the
  // socket machinery is identical, but options.service is ignored except
  // for options.service.metrics (connection accounting) and the handler
  // must outlive the server. The handler's shutdown hook should call
  // RequestShutdown, mirroring what the owned-service constructor wires up.
  Server(ServerOptions options, LineService& handler);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens and starts accepting. Throws support::Error (kIo on
  // socket failures, kUsage on bad endpoint configuration).
  void Start();

  // The bound TCP port (after Start); -1 for Unix-domain servers.
  int port() const { return port_; }
  // Human-readable endpoint ("unix:/path" or "tcp:127.0.0.1:PORT").
  std::string endpoint() const;

  // Flags shutdown and returns immediately; safe from any thread, including
  // connection readers (the protocol shutdown op) and the signal watcher.
  void RequestShutdown();

  // Blocks until RequestShutdown, then performs the graceful drain and
  // returns. Call from the owning thread exactly once.
  void Wait();

  // The owned worker service; only valid for the owned-service constructor.
  ExplorationService& service() { return *service_; }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> open{true};
    // Set by ReadLoop on exit; tells the acceptor the entry is reapable
    // (thread joinable without blocking, fd closable).
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ReapFinishedConnections();
  void ReadLoop(std::shared_ptr<Connection> connection);
  void SendLine(const std::shared_ptr<Connection>& connection,
                const std::string& line);

  ServerOptions options_;
  std::unique_ptr<ExplorationService> service_;  // null in handler mode
  LineService* handler_ = nullptr;  // the sink ReadLoop/Wait drive
  int listen_fd_ = -1;
  int port_ = -1;
  std::thread accept_thread_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_requested_ = false;
  bool started_ = false;
  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>>
      connections_;
};

}  // namespace ces::service
