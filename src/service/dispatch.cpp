#include "service/dispatch.hpp"

#include <utility>

#include "support/trace_event.hpp"

namespace ces::service {

Dispatcher::Dispatcher(BatchExecutor& executor, Options options,
                       support::MetricsRegistry* metrics)
    : executor_(executor), options_(options), metrics_(metrics) {
  dispatcher_ = std::thread([this] { Loop(); });
}

Dispatcher::~Dispatcher() { Drain(); }

void Dispatcher::Submit(protocol::Request request, Responder done) {
  support::MetricsRegistry::Add(metrics_, "service.requests");
  DispatchJob job;
  job.enqueued = std::chrono::steady_clock::now();
  if (request.deadline_ms > 0) {
    job.deadline =
        job.enqueued + std::chrono::milliseconds(request.deadline_ms);
    job.has_deadline = true;
  }
  job.request = std::move(request);
  job.done = std::move(done);

  std::string shed_code;
  std::string shed_message;
  std::uint64_t shed_retry_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      shed_code = protocol::kCodeShuttingDown;
      shed_message = "server is draining";
    } else if (queue_.size() >= options_.queue_limit) {
      shed_code = protocol::kCodeOverloaded;
      shed_message = "admission queue full (" +
                     std::to_string(options_.queue_limit) + " requests)";
      shed_retry_ms = options_.retry_after_ms;
    } else {
      queue_.push_back(std::move(job));
      support::MetricsRegistry::SetGauge(metrics_, "service.queue.depth",
                                         queue_.size());
    }
  }
  if (shed_code.empty()) {
    cv_.notify_one();
    return;
  }
  support::MetricsRegistry::Add(metrics_, "service.queue.shed");
  Fail(job, shed_code, shed_message, shed_retry_ms, "shed");
}

void Dispatcher::Drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) {
    dispatcher_.join();
    // Asynchronous executors (the fleet router) still hold jobs the loop
    // handed over; Drain must not return until they are answered too.
    executor_.Quiesce();
  }
}

void Dispatcher::Pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void Dispatcher::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

std::size_t Dispatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool Dispatcher::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void Dispatcher::Loop() {
  support::TraceSink* sink = support::TraceSink::Global();
  if (sink != nullptr) sink->NameThisThread("service dispatcher");
  for (;;) {
    std::deque<DispatchJob> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return draining_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) {
        if (draining_) return;
        continue;
      }
      batch.swap(queue_);
      support::MetricsRegistry::SetGauge(metrics_, "service.queue.depth", 0);
    }
    support::MetricsRegistry::ObserveHistogram(
        metrics_, "service.batch.requests", batch.size());
    const auto now = std::chrono::steady_clock::now();
    for (DispatchJob& job : batch) {
      job.dequeued = now;
      job.dispatched = true;
    }
    executor_.ExecuteBatch(std::move(batch));
  }
}

void Dispatcher::Respond(DispatchJob& job, const std::string& response) {
  if (!job.done) return;
  const auto now = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(now - job.enqueued).count();
  support::MetricsRegistry::Observe(metrics_, "service.request", seconds);
  const auto total_us = static_cast<std::uint64_t>(seconds * 1e6);
  // Queue wait vs execute split: a job that never reached the dispatcher
  // (shed, draining) spent its whole life queued.
  std::uint64_t queue_us = total_us;
  std::uint64_t exec_us = 0;
  if (job.dispatched) {
    queue_us = static_cast<std::uint64_t>(
        std::chrono::duration<double>(job.dequeued - job.enqueued).count() *
        1e6);
    if (queue_us > total_us) queue_us = total_us;
    exec_us = total_us - queue_us;
  }
  // Latency distributions are wall-clock facts — volatile histograms, so
  // the deterministic metrics surface stays byte-identical across runs.
  support::MetricsRegistry::ObserveVolatileHistogram(
      metrics_, "service.request.latency_us", total_us);
  support::MetricsRegistry::ObserveVolatileHistogram(
      metrics_, "service.request.queue_us", queue_us);
  support::MetricsRegistry::ObserveVolatileHistogram(
      metrics_, "service.request.exec_us", exec_us);
  if (options_.request_log != nullptr) {
    support::RequestLogEntry entry;
    entry.ts_us = options_.request_log->NowUs();
    entry.rid = job.request.rid;
    entry.id = job.request.id;
    entry.op = protocol::ToString(job.request.op);
    entry.trace = job.request.trace;
    entry.digest = job.digest;
    entry.outcome = job.outcome.empty() ? "computed" : job.outcome;
    entry.error = job.error_code;
    entry.queue_us = queue_us;
    entry.exec_us = exec_us;
    entry.total_us = total_us;
    entry.bytes = response.size();
    options_.request_log->Write(entry);
  }
  Responder done = std::move(job.done);
  job.done = nullptr;
  done(response);
}

void Dispatcher::Fail(DispatchJob& job, const std::string& code,
                      const std::string& message,
                      std::uint64_t retry_after_ms, const char* outcome) {
  job.outcome = outcome;
  job.error_code = code;
  Respond(job, protocol::ErrorResponse(job.request.id, code, message,
                                       retry_after_ms, job.request.rid));
}

}  // namespace ces::service
