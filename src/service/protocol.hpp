// The exploration service wire protocol: newline-delimited JSON.
//
// One request object per line in, one response object per line out, matched
// by the client-chosen "id" (responses may arrive out of request order —
// the scheduler batches and fans out). The full schema, with examples, is
// documented in docs/SERVICE.md; the shape in brief:
//
//   request  {"id":"1","op":"explore","trace":"crc","engine":"fused",
//             "fraction":0.05,"line_words":1,"max_index_bits":16,
//             "deadline_ms":5000}
//   response {"id":"1","ok":true,"op":"explore","digest":"sha256:...",
//             "engine":"fused","k":123,"cached":false,
//             "stats":{"n":...,"n_unique":...,"max_misses":...},
//             "points":[{"depth":1,"assoc":2,"size_words":2,
//                        "warm_misses":97},...]}
//   error    {"id":"1","ok":false,"error":{"code":"parse",
//             "message":"..."}}            (+ "retry_after_ms" when shed)
//
// Parsing is strict: unknown operations, unknown fields, wrong types and
// out-of-range values are all structured support::Error throws — the daemon
// converts them to error responses, never dies (the fuzz harness pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytic/explorer.hpp"
#include "analytic/model.hpp"
#include "trace/strip.hpp"

namespace ces::support {
class Error;
}  // namespace ces::support

namespace ces::service {
namespace protocol {

enum class Op : std::uint8_t {
  kExplore = 0,  // solve (trace, engine, K | fraction) -> design points
  kExploreJoint, // joint L1I x L1D x L2 Pareto front (explore/joint)
  kStats,        // trace statistics (N, N', max_misses)
  kIngest,       // force (re-)ingestion; returns the digest
  kMetrics,      // the server's MetricsRegistry as JSON
  kPing,         // liveness probe
  kShutdown,     // begin a graceful drain (if the server allows it)
  // Chunked streaming ingest, for traces that do not exist server-side and
  // are too large for one request line. trace-begin declares (kind,
  // address_bits, count, name) and returns an upload token; trace-chunk
  // appends references (hex/base64 payload, strictly sequenced so retried
  // requests are idempotent); trace-end seals the upload, returning the
  // digest + stats exactly like ingest. The server digests incrementally
  // and spills to disk, so memory stays bounded by one chunk.
  kTraceBegin,
  kTraceChunk,
  kTraceEnd,
  // Live introspection (answered inline, never queued): `stats` without a
  // trace reference returns the server snapshot — metrics (counters, gauges,
  // histograms with exact p50/p90/p99), queue/admission state, store and
  // connection counts; `health` is the cheap liveness/readiness summary
  // (uptime, build SHA, draining flag). `stats` WITH a trace reference keeps
  // its original meaning: trace statistics.
  kHealth,
};

const char* ToString(Op op);

struct Request {
  std::string id;          // echoed verbatim; required, <= 128 bytes
  // Server-assigned request id ("r<N>", monotonic per daemon). Never parsed
  // from the wire — ParseRequest rejects a client-sent "rid" as an unknown
  // field — the service stamps it after parsing so logs, responses and the
  // scheduler's batching all speak the same handle.
  std::string rid;
  Op op = Op::kPing;
  // Trace reference: a server-side path / built-in workload name ("trace"),
  // or the digest of an already-ingested trace ("digest", "sha256:<hex>").
  // explore/stats/ingest require exactly one of the two.
  std::string trace;
  std::string digest;
  // explore-joint only: `trace`/`digest` name the data stream and exactly
  // one of these names the instruction stream (kinds are implied, so the
  // explicit 'kind' field is rejected for this op).
  std::string trace_instr;
  std::string digest_instr;
  std::string kind = "data";     // .din reads and workload runs: data|instr
  std::string engine = "fused";  // fused|fused-tree|reference
  std::string space = "default"; // explore-joint: joint-space preset
  bool prune = true;             // explore-joint: enable the pruning layers
  bool has_k = false;
  std::uint64_t k = 0;
  bool has_fraction = false;
  double fraction = 0.05;
  std::uint32_t line_words = 1;
  std::uint32_t max_index_bits = 16;
  // 0 = no deadline. Relative to receipt; expired requests are answered
  // with code "deadline_exceeded" instead of being computed.
  std::uint64_t deadline_ms = 0;
  // Streaming-ingest fields (trace-begin / trace-chunk / trace-end only;
  // rejected everywhere else). `upload` is the server-issued session token;
  // `seq` is the strict 0-based chunk sequence number; `payload` carries
  // references packed little-endian, encoded per `encoding`.
  std::string upload;
  bool has_count = false;
  std::uint64_t count = 0;          // trace-begin: total references declared
  bool has_seq = false;
  std::uint64_t seq = 0;            // trace-chunk: 0-based chunk index
  std::string payload;              // trace-chunk: encoded references
  std::string encoding = "hex";     // trace-chunk: hex|base64
  bool has_address_bits = false;
  std::uint32_t address_bits = 32;  // trace-begin: declared address width
  std::string name;                 // trace-begin: display name (optional)
};

// Parses one NDJSON request line. Throws support::Error — kParse for JSON
// syntax errors, kValidation for schema violations (missing/unknown/
// mistyped fields), kUnsupported for unknown operations.
Request ParseRequest(const std::string& line);

// Best-effort id recovery for a line ParseRequest rejected, so the error
// response can still be correlated by a pipelining client. Returns "" when
// the line is not a JSON object with a string "id" of a sane length. Never
// throws.
std::string ExtractRequestId(const std::string& line);

// Best-effort op-name recovery ("explore", "trace-begin", ...) without full
// validation; "" when the line is not a JSON object with a string "op".
// Never throws. The client's retry machinery uses it to classify lines it
// is about to resend.
std::string ExtractRequestOp(const std::string& line);

// Whether resending a request with this op after a mid-stream disconnect is
// safe. explore/stats/ingest are pure reads of content-addressed state;
// trace-chunk is strictly sequenced with replay-acks, so a duplicate is a
// no-op. trace-begin opens a fresh session per call and trace-end consumes
// the session, so resending either can double or orphan server state.
// Unknown/unparseable ops are treated as idempotent: the server answers
// them with a deterministic structured error.
bool IsIdempotentOp(const std::string& op);

// Re-serialises a parsed request into a line ParseRequest accepts with
// identical semantics (per-op field rules respected, so e.g. a joint
// request never re-grows a 'kind' field). The router uses it to forward a
// request under its own correlation id. The server-assigned `rid` is never
// emitted — it is not a request wire field.
std::string SerializeRequest(const Request& request);

// Error codes beyond support::ErrorCategory that the protocol defines.
inline constexpr char kCodeOverloaded[] = "overloaded";
inline constexpr char kCodeDeadlineExceeded[] = "deadline_exceeded";
inline constexpr char kCodeShuttingDown[] = "shutting_down";

// The live-introspection snapshot the `stats` (server form) and `health`
// responses serialise. The service fills it from its own state plus the
// MetricsRegistry; protocol only owns the wire shape.
struct ServerInfo {
  std::uint64_t uptime_us = 0;
  std::string git_sha;           // support::GitSha()
  std::uint64_t pid = 0;
  std::uint64_t jobs = 0;        // scheduler worker count
  std::uint64_t connections_live = 0;
  std::uint64_t connections_total = 0;
  std::uint64_t queue_depth = 0;   // jobs admitted but not yet dispatched
  std::uint64_t queue_limit = 0;   // admission bound
  std::uint64_t shed_total = 0;    // requests refused with "overloaded"
  std::uint64_t retry_after_ms = 0;  // the hint shed responses carry
  bool draining = false;
  std::uint64_t traces_pinned = 0;
  std::uint64_t uploads_open = 0;
  std::uint64_t requests_total = 0;  // rids assigned so far
  std::string simd_kernel;  // support::simd::LevelName of the active level
};

// Response serialisers. None of them append the trailing newline; the
// transport owns framing. Every serialiser takes the server-assigned rid as
// a trailing parameter; when empty (direct protocol tests) the "rid" field
// is omitted — the daemon always passes one.
std::string PingResponse(const std::string& id, const std::string& rid = "");
std::string IngestResponse(const std::string& id, const std::string& digest,
                           const trace::TraceStats& stats,
                           const std::string& rid = "");
std::string StatsResponse(const std::string& id, const std::string& digest,
                          const trace::TraceStats& stats,
                          const std::string& kind,
                          const std::string& rid = "");
std::string ExploreResponse(const std::string& id, const std::string& digest,
                            const std::string& engine, std::uint64_t k,
                            const trace::TraceStats& stats,
                            const std::vector<analytic::DesignPoint>& points,
                            bool cached, const std::string& rid = "");
// `joint_json` is explore::JointReportJson output (already a JSON object,
// deterministic ces-joint-v1 key order) embedded verbatim under "joint".
std::string ExploreJointResponse(const std::string& id,
                                 const std::string& digest,
                                 const std::string& digest_instr,
                                 const std::string& engine,
                                 const std::string& space, bool prune,
                                 bool cached, const std::string& joint_json,
                                 const std::string& rid = "");
std::string MetricsResponse(const std::string& id,
                            const std::string& metrics_json,
                            const std::string& rid = "");
// `metrics_json` is MetricsRegistry::ToJson(include_volatile,
// include_percentiles) output, embedded verbatim under "server"."metrics".
std::string ServerStatsResponse(const std::string& id, const ServerInfo& info,
                                const std::string& metrics_json,
                                const std::string& rid = "");
std::string HealthResponse(const std::string& id, const ServerInfo& info,
                           const std::string& rid = "");
std::string TraceBeginResponse(const std::string& id,
                               const std::string& upload,
                               std::uint64_t count,
                               const std::string& rid = "");
std::string TraceChunkResponse(const std::string& id,
                               const std::string& upload, std::uint64_t seq,
                               std::uint64_t received,
                               const std::string& rid = "");
std::string TraceEndResponse(const std::string& id, const std::string& digest,
                             const trace::TraceStats& stats,
                             const std::string& rid = "");
std::string ShutdownResponse(const std::string& id,
                             const std::string& rid = "");
std::string ErrorResponse(const std::string& id, const std::string& code,
                          const std::string& message,
                          std::uint64_t retry_after_ms = 0,
                          const std::string& rid = "");
std::string ErrorResponse(const std::string& id, const support::Error& error,
                          const std::string& rid = "");

// Client-side decode of a response line (used by the client library and the
// tests; the daemon never parses responses). Throws support::Error (kParse /
// kValidation) on malformed lines.
struct Response {
  std::string id;
  std::string rid;  // server-assigned; "" from serialisers called without one
  bool ok = false;
  std::string error_code;     // when !ok
  std::string error_message;  // when !ok
  std::uint64_t retry_after_ms = 0;
  std::string digest;
  std::string digest_instr;  // explore-joint: instruction-stream digest
  std::string engine;
  std::string space;         // explore-joint: joint-space preset name
  bool prune = false;        // explore-joint: whether pruning was on
  std::uint64_t k = 0;
  bool cached = false;
  bool has_stats = false;
  trace::TraceStats stats;
  std::vector<analytic::DesignPoint> points;
  std::string metrics_json;  // metrics op: the nested object, re-serialised
  std::string joint_json;    // explore-joint: the ces-joint-v1 report object
  std::string server_json;   // stats(server)/health: the "server" object
  bool has_healthy = false;
  bool healthy = false;      // health op
  std::string upload;        // trace-begin/chunk: the upload session token
  std::uint64_t seq = 0;     // trace-chunk: echoed chunk sequence number
  std::uint64_t received = 0;  // trace-chunk: total references applied so far
  std::string raw;           // the undecoded line
};

Response ParseResponse(const std::string& line);

// Chunk-payload codec: references packed little-endian (4 bytes each), then
// encoded as lowercase hex or standard base64 (the JSON-safe envelopes).
// Decode throws support::Error (kValidation) for an unknown encoding name,
// stray characters, or a byte length that is not a multiple of 4; both
// directions are exercised by the uploading client and the tests.
std::vector<std::uint32_t> DecodeChunkPayload(const std::string& encoding,
                                              const std::string& payload);
std::string EncodeChunkPayload(const std::string& encoding,
                               const std::uint32_t* refs, std::size_t n);

}  // namespace protocol

// The protocol types are the service's working vocabulary; the serialiser
// functions stay behind the protocol:: qualifier to keep call sites honest
// about producing wire bytes.
using protocol::Op;
using protocol::ParseRequest;
using protocol::ParseResponse;
using protocol::Request;
using protocol::Response;

}  // namespace ces::service
