// Strict, dependency-free JSON parsing for the NDJSON wire protocol.
//
// The repository serialises JSON from several hand-rolled writers
// (support/json.hpp escapes strings for them) but until the service layer it
// never had to *read* JSON. This parser is deliberately minimal and strict:
// it accepts exactly one RFC 8259 value per call, rejects trailing bytes,
// caps nesting depth and string sizes, and reports every failure as a
// support::Error (kParse) with the byte offset of the offending input — the
// same discipline the trace readers follow, and what lets the daemon turn a
// hostile request line into a structured error response instead of dying
// (tests/fuzz_test.cpp feeds this parser the byte-flip and truncation
// harness).
//
// Numbers keep both representations: every number parses as a double, and
// numbers that are syntactically non-negative integers within uint64 range
// additionally carry their exact value (miss budgets K are 64-bit counts
// that a double round-trip could corrupt).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ces::service {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  // Exact value when the literal was a non-negative integer <= 2^64 - 1.
  std::uint64_t integer = 0;
  bool is_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion order preserved; duplicate keys are a parse error.
  std::vector<std::pair<std::string, JsonValue>> object;

  // nullptr when `key` is absent (objects only).
  const JsonValue* Find(std::string_view key) const;
};

// The stable lower-case name of a kind ("null", "bool", "number", ...) for
// error messages.
const char* ToString(JsonValue::Kind kind);

struct JsonLimits {
  std::size_t max_depth = 32;          // nested arrays/objects
  std::size_t max_string_bytes = 1u << 20;
};

// Parses exactly one JSON value covering all of `text` (surrounding ASCII
// whitespace allowed). Throws support::Error (kParse, context "json") with
// the byte offset on any violation.
JsonValue ParseJson(std::string_view text, const JsonLimits& limits = {});

}  // namespace ces::service
