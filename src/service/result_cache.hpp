// Digest-keyed exploration result cache: sharded LRU with a byte budget.
//
// A solved (trace digest, engine, line size, depth range, K) query is a few
// hundred bytes of design points; re-solving it costs a histogram walk and,
// if the trace was evicted, a full prelude. The cache makes repeated and
// overlapping queries — the interactive pattern the paper's Fig. 1 argues
// for — O(1): lookups and inserts touch exactly one shard, chosen by a
// platform-stable FNV-1a hash of the key, so two runs that issue the same
// operation sequence hit and miss identically regardless of which threads
// issue them (the cross-shard determinism the tests pin).
//
// Capacity is a byte budget, not an entry count, split evenly across shards;
// each shard evicts from its own LRU tail until it is back under its slice.
// Entry cost is the deterministic footprint of the stored result (key bytes
// + points + a fixed overhead estimate), so accounting is reproducible too.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analytic/model.hpp"
#include "trace/strip.hpp"

namespace ces::support {
class MetricsRegistry;
}  // namespace ces::support

namespace ces::service {

struct ResultKey {
  std::string digest;
  std::uint8_t engine = 0;  // analytic::Engine
  std::uint32_t line_words = 1;
  std::uint32_t max_index_bits = 16;
  std::uint64_t k = 0;
  // Joint-front entries (op explore-joint) additionally carry the
  // instruction-stream digest and a variant string naming the joint space
  // and pruning mode; both stay empty for single-trace explore entries.
  std::string digest_instr;
  std::string variant;

  bool operator==(const ResultKey&) const = default;

  // FNV-1a over every field (strings are length-prefixed so adjacent
  // fields cannot alias), identical on every platform and run.
  std::uint64_t StableHash() const;
};

struct CachedResult {
  trace::TraceStats stats;  // of the explored (line-blocked) trace
  std::uint64_t k = 0;
  std::vector<analytic::DesignPoint> points;
  // Joint-front entries store the serialised ces-joint-v1 report instead of
  // design points; responses embed it verbatim, so a cache hit is
  // byte-identical to the original computation.
  std::string payload;

  std::size_t CostBytes(const ResultKey& key) const;
};

class ResultCache {
 public:
  // `shards` is rounded up to a power of two. The byte budget is split
  // evenly; a budget smaller than one entry still admits the newest entry
  // per shard (a cache that cannot hold anything would be a silent no-op).
  explicit ResultCache(std::size_t byte_budget, std::size_t shards = 8,
                       support::MetricsRegistry* metrics = nullptr);

  // nullptr on miss. A hit refreshes the entry's LRU position and counts
  // "service.cache.hit"; a miss counts "service.cache.miss".
  std::shared_ptr<const CachedResult> Lookup(const ResultKey& key);

  // Inserts (or replaces) and evicts the shard's LRU tail while over its
  // slice; evictions count "service.cache.eviction". The byte gauge
  // "service.cache.bytes" tracks the total across shards.
  void Insert(const ResultKey& key, std::shared_ptr<const CachedResult> value);

  std::size_t bytes() const;
  std::size_t entries() const;
  std::size_t shard_count() const { return shards_.size(); }

  // Exposed for the determinism tests: which shard a key lands in.
  std::size_t ShardOf(const ResultKey& key) const;

 private:
  struct Slot {
    ResultKey key;
    std::shared_ptr<const CachedResult> value;
    std::size_t cost = 0;
  };
  struct KeyHash {
    std::size_t operator()(const ResultKey& key) const {
      return static_cast<std::size_t>(key.StableHash());
    }
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Slot> lru;  // front = most recently used
    std::unordered_map<ResultKey, std::list<Slot>::iterator, KeyHash> index;
    std::size_t bytes = 0;
  };

  void UpdateBytesGauge();

  std::size_t per_shard_budget_;
  support::MetricsRegistry* metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ces::service
