// Content-addressed trace store with pinned exploration preludes.
//
// The analytical explorer's whole economy (paper Fig. 1) is: pay the
// trace-length-proportional prelude once, then answer every (D, A, K) query
// from the miss histograms. A one-shot CLI throws that investment away at
// process exit; the daemon keeps it. The store addresses traces by the
// SHA-256 of their *canonical content* — kind, address bits and the raw
// word-address sequence, independent of the file format or name they
// arrived under — so the same trace ingested as .trc, .ctr and .ctrz is
// stripped once, and a digest returned to one client is a stable handle for
// every other client.
//
// Per digest, the store pins one Explorer per (engine, prelude mode,
// line_words, max_index_bits) actually queried. Preludes are built at most
// once per key even under concurrent requests (late arrivals block on the
// builder's future), which is what turns a burst of same-trace requests into
// one fused pass — and because the scheduler passes the pool's job count
// into the build, that pass is the subtree-parallel fused traversal. Pinned traces are LRU-evicted beyond `max_traces`; evicting a
// trace drops its preludes with it.
// Streaming uploads (BeginUpload / AppendUploadChunk / FinishUpload) take
// a trace in sequenced chunks without ever holding it in memory: chunks are
// spilled to an on-disk CTRC file and digested incrementally, so the sealed
// upload lands as the *same* content address an in-memory ingest of the
// equivalent trace would produce. Sealed uploads stay spill-backed — the
// entry pins an mmap TraceView instead of a materialised Trace, and the
// explorer prelude streams straight off the page cache. A compressed CTRZ
// twin is written next to the spill as the at-rest archive.
#pragma once

#include <cstdint>
#include <fstream>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "analytic/explorer.hpp"
#include "support/sha256.hpp"
#include "trace/strip.hpp"
#include "trace/trace.hpp"
#include "trace/trace_view.hpp"

namespace ces::support {
class MetricsRegistry;
}  // namespace ces::support

namespace ces::service {

// Loads a trace from a server-side reference: an existing file in any trace
// format (.trc/.ctr/.ctrz/.din — .din and workload runs honour `kind`), or
// a built-in workload name. Mirrors the cachedse CLI's resolution rules.
// Throws support::Error on failure.
trace::Trace LoadTraceRef(const std::string& ref, const std::string& kind,
                          support::MetricsRegistry* metrics = nullptr);

struct PinnedTrace {
  // Exactly one of the two is set: `trace` for in-memory entries (ingest),
  // `view` for spill-backed entries (streaming uploads). `kind` is valid
  // either way, so responders never dereference to learn it.
  std::shared_ptr<const trace::Trace> trace;
  std::shared_ptr<const trace::TraceView> view;
  trace::TraceStats stats;  // of the unblocked (line_words == 1) trace
  trace::StreamKind kind = trace::StreamKind::kData;
  std::string digest;

  bool pinned() const { return trace != nullptr || view != nullptr; }
};

class TraceStore {
 public:
  // `spill_dir` hosts the upload spill files; empty picks a per-process
  // directory under the system temp path, created on first use.
  explicit TraceStore(std::size_t max_traces = 64,
                      support::MetricsRegistry* metrics = nullptr,
                      std::string spill_dir = {});
  ~TraceStore();

  // "sha256:<64 hex>" over the canonical content (kind, address_bits,
  // refs); the trace's display name does not participate.
  static std::string DigestOf(const trace::Trace& trace);

  // Pins `trace` (idempotent: re-ingesting identical content refreshes the
  // LRU position and returns the existing entry). May evict the least
  // recently used trace beyond the capacity.
  PinnedTrace Ingest(trace::Trace trace);

  // Empty .trace pointer when the digest is not pinned (evicted or never
  // ingested) — the caller decides whether that is an error.
  PinnedTrace Find(const std::string& digest);

  // The pinned prelude for (digest, options.engine, options.prelude,
  // options.line_words, options.max_index_bits), built on first use.
  // Concurrent callers for the same key share one build. Throws
  // support::Error (kValidation) when the digest is not pinned.
  // When `reused` is non-null it is set to whether an already-pinned prelude
  // served this call (true) or this call built it (false) — the scheduler's
  // request log attributes per-request cost with it.
  std::shared_ptr<const analytic::Explorer> GetOrBuildExplorer(
      const std::string& digest, const analytic::ExplorerOptions& options,
      bool* reused = nullptr);

  // --- Chunked streaming ingest ------------------------------------------
  //
  // The upload protocol: BeginUpload declares the content header (the same
  // fields DigestOf hashes first, so the digest accumulates incrementally as
  // chunks arrive), AppendUploadChunk appends strictly sequenced reference
  // chunks, FinishUpload seals the session into a pinned, spill-backed
  // entry. A replay of any already-applied chunk (seq < applied count) is
  // acknowledged without re-applying, which makes client retries over a
  // fresh connection idempotent. Sessions are capped; beginning a new one
  // beyond the cap silently aborts the stalest (mid-upload disconnects
  // therefore leak nothing).

  // Returns the session token. Throws kRange (count beyond u32), kIo (spill
  // file cannot be created).
  std::string BeginUpload(trace::StreamKind kind, std::uint32_t address_bits,
                          std::uint64_t count, std::string name);

  // Appends chunk `seq` (0-based, strictly sequential); returns total
  // references applied. Throws kValidation (unknown token, out-of-order
  // seq, overrun of the declared count, reference wider than address_bits),
  // kIo (spill write failure).
  std::uint64_t AppendUploadChunk(const std::string& token, std::uint64_t seq,
                                  const std::uint32_t* refs, std::size_t n);

  // Seals the upload: verifies the declared count arrived, finalises the
  // digest, writes the CTRZ archive, and pins an mmap view of the spill.
  // Idempotent against already-pinned content (the spill is discarded and
  // the existing entry returned). Throws kValidation (unknown token, short
  // upload), kIo (spill rename / archive write / mmap failure).
  PinnedTrace FinishUpload(const std::string& token);

  // Drops an upload session and its spill file; unknown tokens are ignored
  // (abort races with the cap eviction). Never throws.
  void AbortUpload(const std::string& token);

  std::size_t pinned_traces() const;
  std::size_t open_uploads() const;
  const std::string& spill_dir() const { return spill_dir_; }

 private:
  struct PreludeKey {
    analytic::Engine engine;
    // Both prelude modes produce identical profiles, but they are different
    // builds (the fused traversal is the subtree-parallel fast path, the
    // per-depth baseline a deliberate cross-check) — keying on the mode keeps
    // "which algorithm ran" faithful to what the request asked for.
    analytic::PreludeMode prelude;
    std::uint32_t line_words;
    std::uint32_t max_index_bits;
    auto operator<=>(const PreludeKey&) const = default;
  };
  struct Entry {
    std::shared_ptr<const trace::Trace> trace;     // in-memory entries
    std::shared_ptr<const trace::TraceView> view;  // spill-backed entries
    std::string spill_path;  // unlinked on eviction (empty for in-memory)
    trace::TraceStats stats;
    trace::StreamKind kind = trace::StreamKind::kData;
    // Position in lru_: recency is the list order, so eviction is O(1)
    // instead of a full min-scan over the entries.
    std::list<std::string>::iterator lru_it;
    std::map<PreludeKey,
             std::shared_future<std::shared_ptr<const analytic::Explorer>>>
        preludes;
  };

  struct UploadSession {
    trace::StreamKind kind = trace::StreamKind::kData;
    std::uint32_t address_bits = 32;
    std::uint64_t count = 0;     // declared total references
    std::uint64_t received = 0;  // references applied so far
    std::uint64_t chunks = 0;    // applied chunk count == next expected seq
    std::uint64_t order = 0;     // admission order, for cap eviction
    std::string name;
    std::string path;  // the .part spill file
    std::ofstream out;
    support::Sha256 hasher;
  };

  void EvictIfNeeded();                        // callers hold mutex_
  void Touch(Entry& entry);                    // callers hold mutex_
  PinnedTrace PinOf(const std::string& digest, const Entry& entry) const;
  void DropSessionLocked(const std::string& token);  // holds uploads_mutex_
  std::string EnsureSpillDir();

  const std::size_t max_traces_;
  support::MetricsRegistry* metrics_;
  std::string spill_dir_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = least recently used digest
  // Upload sessions live under their own lock: chunk appends must not
  // contend with explorer builds or Find/Ingest traffic.
  mutable std::mutex uploads_mutex_;
  std::unordered_map<std::string, UploadSession> uploads_;
  std::uint64_t upload_counter_ = 0;
};

}  // namespace ces::service
