// Content-addressed trace store with pinned exploration preludes.
//
// The analytical explorer's whole economy (paper Fig. 1) is: pay the
// trace-length-proportional prelude once, then answer every (D, A, K) query
// from the miss histograms. A one-shot CLI throws that investment away at
// process exit; the daemon keeps it. The store addresses traces by the
// SHA-256 of their *canonical content* — kind, address bits and the raw
// word-address sequence, independent of the file format or name they
// arrived under — so the same trace ingested as .trc, .ctr and .ctrz is
// stripped once, and a digest returned to one client is a stable handle for
// every other client.
//
// Per digest, the store pins one Explorer per (engine, prelude mode,
// line_words, max_index_bits) actually queried. Preludes are built at most
// once per key even under concurrent requests (late arrivals block on the
// builder's future), which is what turns a burst of same-trace requests into
// one fused pass — and because the scheduler passes the pool's job count
// into the build, that pass is the subtree-parallel fused traversal. Pinned traces are LRU-evicted beyond `max_traces`; evicting a
// trace drops its preludes with it.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "analytic/explorer.hpp"
#include "trace/strip.hpp"
#include "trace/trace.hpp"

namespace ces::support {
class MetricsRegistry;
}  // namespace ces::support

namespace ces::service {

// Loads a trace from a server-side reference: an existing file in any trace
// format (.trc/.ctr/.ctrz/.din — .din and workload runs honour `kind`), or
// a built-in workload name. Mirrors the cachedse CLI's resolution rules.
// Throws support::Error on failure.
trace::Trace LoadTraceRef(const std::string& ref, const std::string& kind,
                          support::MetricsRegistry* metrics = nullptr);

struct PinnedTrace {
  std::shared_ptr<const trace::Trace> trace;
  trace::TraceStats stats;  // of the unblocked (line_words == 1) trace
  std::string digest;
};

class TraceStore {
 public:
  explicit TraceStore(std::size_t max_traces = 64,
                      support::MetricsRegistry* metrics = nullptr);

  // "sha256:<64 hex>" over the canonical content (kind, address_bits,
  // refs); the trace's display name does not participate.
  static std::string DigestOf(const trace::Trace& trace);

  // Pins `trace` (idempotent: re-ingesting identical content refreshes the
  // LRU position and returns the existing entry). May evict the least
  // recently used trace beyond the capacity.
  PinnedTrace Ingest(trace::Trace trace);

  // Empty .trace pointer when the digest is not pinned (evicted or never
  // ingested) — the caller decides whether that is an error.
  PinnedTrace Find(const std::string& digest);

  // The pinned prelude for (digest, options.engine, options.prelude,
  // options.line_words, options.max_index_bits), built on first use.
  // Concurrent callers for the same key share one build. Throws
  // support::Error (kValidation) when the digest is not pinned.
  std::shared_ptr<const analytic::Explorer> GetOrBuildExplorer(
      const std::string& digest, const analytic::ExplorerOptions& options);

  std::size_t pinned_traces() const;

 private:
  struct PreludeKey {
    analytic::Engine engine;
    // Both prelude modes produce identical profiles, but they are different
    // builds (the fused traversal is the subtree-parallel fast path, the
    // per-depth baseline a deliberate cross-check) — keying on the mode keeps
    // "which algorithm ran" faithful to what the request asked for.
    analytic::PreludeMode prelude;
    std::uint32_t line_words;
    std::uint32_t max_index_bits;
    auto operator<=>(const PreludeKey&) const = default;
  };
  struct Entry {
    std::shared_ptr<const trace::Trace> trace;
    trace::TraceStats stats;
    std::uint64_t last_use = 0;
    std::map<PreludeKey,
             std::shared_future<std::shared_ptr<const analytic::Explorer>>>
        preludes;
  };

  void EvictIfNeeded();  // callers hold mutex_

  const std::size_t max_traces_;
  support::MetricsRegistry* metrics_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t tick_ = 0;
};

}  // namespace ces::service
