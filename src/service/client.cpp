#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "service/json.hpp"
#include "support/error.hpp"

namespace ces::service {

using support::Error;
using support::ErrorCategory;

int ConnectEndpoint(const ClientEndpoint& endpoint) {
  int fd = -1;
  if (!endpoint.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_path.size() >= sizeof(addr.sun_path)) {
      throw Error(ErrorCategory::kUsage, "client",
                  "unix socket path too long: " + endpoint.unix_path);
    }
    std::strncpy(addr.sun_path, endpoint.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd >= 0 && ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fd = -1;
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(endpoint.tcp_port));
    if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
      throw Error(ErrorCategory::kUsage, "client",
                  "not an IPv4 address: " + endpoint.host);
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0 && ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fd = -1;
    }
  }
  return fd;
}

std::string ClientEndpoint::Label() const {
  if (!unix_path.empty()) return "unix:" + unix_path;
  return host + ":" + std::to_string(tcp_port);
}

ClientEndpoint ParseEndpoint(const std::string& spec) {
  ClientEndpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.unix_path = spec.substr(5);
    if (endpoint.unix_path.empty()) {
      throw Error(ErrorCategory::kUsage, "client",
                  "empty unix socket path in endpoint '" + spec + "'");
    }
    return endpoint;
  }
  std::string rest = spec;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const std::size_t colon = rest.rfind(':');
  std::string host = "127.0.0.1";
  std::string port_text = rest;
  if (colon != std::string::npos) {
    if (colon > 0) host = rest.substr(0, colon);
    port_text = rest.substr(colon + 1);
  }
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos) {
    throw Error(ErrorCategory::kUsage, "client",
                "endpoint '" + spec +
                    "' is not unix:<path>, <host>:<port> or <port>");
  }
  const long port = std::strtol(port_text.c_str(), nullptr, 10);
  if (port <= 0 || port > 65535) {
    throw Error(ErrorCategory::kUsage, "client",
                "endpoint '" + spec + "' has an out-of-range port");
  }
  endpoint.host = host;
  endpoint.tcp_port = static_cast<int>(port);
  return endpoint;
}

std::vector<ClientEndpoint> ParseEndpointList(const std::string& specs) {
  std::vector<ClientEndpoint> endpoints;
  std::size_t start = 0;
  while (start <= specs.size()) {
    std::size_t comma = specs.find(',', start);
    if (comma == std::string::npos) comma = specs.size();
    const std::string spec = specs.substr(start, comma - start);
    if (!spec.empty()) endpoints.push_back(ParseEndpoint(spec));
    start = comma + 1;
  }
  if (endpoints.empty()) {
    throw Error(ErrorCategory::kUsage, "client", "empty endpoint list");
  }
  return endpoints;
}

Client::Client(ClientOptions options)
    : options_(std::move(options)),
      jitter_(options_.jitter_seed != 0
                  ? options_.jitter_seed
                  : static_cast<std::uint64_t>(::getpid()) * 0x9e3779b9ull +
                        static_cast<std::uint64_t>(
                            std::chrono::steady_clock::now()
                                .time_since_epoch()
                                .count())) {
  if (!options_.endpoints.empty()) {
    endpoints_ = options_.endpoints;
  } else {
    const bool use_unix = !options_.unix_path.empty();
    if (use_unix != (options_.tcp_port >= 0)) {
      ClientEndpoint endpoint;
      if (use_unix) {
        endpoint.unix_path = options_.unix_path;
      } else {
        endpoint.host = options_.host;
        endpoint.tcp_port = options_.tcp_port;
      }
      endpoints_.push_back(std::move(endpoint));
    }
    // Both or neither set: endpoints_ stays empty and Connect() reports the
    // usage error, matching the pre-failover behaviour.
  }
}

void Client::Note(const std::string& message) const {
  if (!options_.verbose) return;
  std::fprintf(stderr, "client: %s\n", message.c_str());
}

int Client::Connect() {
  if (endpoints_.empty()) {
    throw Error(ErrorCategory::kUsage, "client",
                "select exactly one of unix_path and tcp_port");
  }
  std::string last_error;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    const std::size_t index = (preferred_ + i) % endpoints_.size();
    const ClientEndpoint& endpoint = endpoints_[index];
    const int fd = ConnectEndpoint(endpoint);
    if (fd >= 0) {
      if (index != preferred_) {
        Note("failing over to " + endpoint.Label());
        preferred_ = index;
      }
      return fd;
    }
    last_error = "cannot connect to " + endpoint.Label() + ": " +
                 std::strerror(errno);
    Note(last_error);
  }
  throw Error(ErrorCategory::kIo, "client",
              endpoints_.size() == 1
                  ? last_error
                  : "all " + std::to_string(endpoints_.size()) +
                        " endpoints refused; last: " + last_error);
}

std::uint64_t Client::BackoffMs(int attempt, std::uint64_t server_hint_ms) {
  std::uint64_t delay = static_cast<std::uint64_t>(options_.backoff_base_ms);
  for (int i = 0; i < attempt && delay < static_cast<std::uint64_t>(
                                             options_.backoff_cap_ms);
       ++i) {
    delay *= 2;
  }
  delay = std::min(delay, static_cast<std::uint64_t>(options_.backoff_cap_ms));
  // Uniform [0.5, 1.0) scaling: desynchronises retry storms while keeping
  // the expected delay proportional to the exponential schedule.
  delay = delay / 2 + jitter_.NextBounded(std::max<std::uint64_t>(delay / 2, 1));
  return std::max(delay, server_hint_ms);
}

std::vector<Response> Client::Batch(const std::vector<std::string>& lines) {
  std::vector<Response> responses(lines.size());
  std::vector<bool> answered(lines.size(), false);
  // The server recovers ids with the same extractor, so request and
  // response agree on "" exactly when the line's id is unreadable.
  std::vector<std::string> ids(lines.size());
  // Idempotency classification, for the mid-stream-disconnect policy. A
  // connect that never succeeded sent nothing, so everything stays safe.
  std::vector<bool> resend_safe(lines.size(), true);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ids[i] = protocol::ExtractRequestId(lines[i]);
    resend_safe[i] = protocol::IsIdempotentOp(
        protocol::ExtractRequestOp(lines[i]));
  }

  std::string last_failure = "no attempt made";
  for (int attempt = 0; attempt < std::max(options_.max_attempts, 1);
       ++attempt) {
    if (attempt > 0) {
      std::uint64_t hint = 0;
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (answered[i]) continue;
        hint = std::max(hint, responses[i].retry_after_ms);
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMs(attempt - 1, hint)));
    }

    int fd = -1;
    try {
      fd = Connect();
    } catch (const Error& e) {
      if (e.category() == ErrorCategory::kUsage) throw;
      // Connect-refused: the server saw nothing, every request is safe to
      // resend on the next attempt.
      last_failure = e.what();
      continue;
    }
    const std::string endpoint_label = endpoints_[preferred_].Label();

    // Send every still-unanswered request, pipelined.
    std::string out;
    std::size_t outstanding = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (answered[i]) continue;
      out += lines[i];
      out.push_back('\n');
      ++outstanding;
    }
    // Once any byte is on the wire the attempt can fail "mid-stream": the
    // server may or may not have executed the in-flight requests.
    bool mid_stream_failure = false;
    bool transport_ok = true;
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n =
          ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        last_failure = std::string("send: ") + std::strerror(errno);
        transport_ok = false;
        mid_stream_failure = true;
        break;
      }
      sent += static_cast<std::size_t>(n);
    }

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.timeout_ms);
    std::string pending;
    char buffer[16384];
    while (transport_ok && outstanding > 0) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline -
                                     std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        last_failure = "timed out waiting for responses";
        mid_stream_failure = true;
        break;
      }
      pollfd poll_fd{fd, POLLIN, 0};
      const int ready =
          ::poll(&poll_fd, 1, static_cast<int>(remaining.count()));
      if (ready < 0) {
        if (errno == EINTR) continue;
        last_failure = std::string("poll: ") + std::strerror(errno);
        mid_stream_failure = true;
        break;
      }
      if (ready == 0) {
        last_failure = "timed out waiting for responses";
        mid_stream_failure = true;
        break;
      }
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        last_failure = n == 0 ? "server hung up"
                              : std::string("recv: ") + std::strerror(errno);
        mid_stream_failure = true;
        break;
      }
      pending.append(buffer, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t newline = pending.find('\n', start);
        if (newline == std::string::npos) break;
        const std::string line = pending.substr(start, newline - start);
        start = newline + 1;
        if (line.empty()) continue;
        Response response;
        try {
          response = ParseResponse(line);
        } catch (const Error& e) {
          last_failure = std::string("undecodable response: ") + e.what();
          continue;
        }
        // Match by id; unattributed responses (the server could not parse
        // the request, so it could not echo an id) fill the earliest
        // unanswered slot whose request had no parseable id either.
        std::size_t slot = lines.size();
        for (std::size_t i = 0; i < lines.size(); ++i) {
          if (!answered[i] && ids[i] == response.id) {
            slot = i;
            break;
          }
        }
        if (slot == lines.size() && response.id.empty()) {
          for (std::size_t i = 0; i < lines.size(); ++i) {
            if (!answered[i] && ids[i].empty()) {
              slot = i;
              break;
            }
          }
        }
        if (slot == lines.size()) continue;  // duplicate or stray id
        responses[slot] = std::move(response);
        if (!options_.retry_sheds || responses[slot].ok ||
            responses[slot].error_code != protocol::kCodeOverloaded) {
          answered[slot] = true;  // sheds stay unanswered: retried next loop
        } else {
          last_failure = "server overloaded";
        }
        --outstanding;
      }
      pending.erase(0, start);
    }
    ::close(fd);

    if (std::all_of(answered.begin(), answered.end(),
                    [](bool a) { return a; })) {
      return responses;
    }
    if (mid_stream_failure) {
      // The connection died with requests in flight. Idempotent ops are
      // safe to resend; an unanswered trace-begin/trace-end may already
      // have executed server-side, so resending risks a duplicate or
      // orphaned upload session — abort instead and let the caller rerun.
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (answered[i] || resend_safe[i]) continue;
        throw Error(
            ErrorCategory::kIo, "client",
            "mid-stream disconnect from " + endpoint_label + " (" +
                last_failure + ") with non-idempotent '" +
                protocol::ExtractRequestOp(lines[i]) +
                "' in flight; not resent");
      }
      Note("mid-stream disconnect from " + endpoint_label + " (" +
           last_failure + "); resending idempotent requests");
      // Treat the endpoint as suspect: the next attempt starts one over.
      if (endpoints_.size() > 1) {
        preferred_ = (preferred_ + 1) % endpoints_.size();
      }
    }
  }
  // Budget exhausted. If every open slot holds a recorded "overloaded"
  // response, the server answered — repeatedly — and the caller deserves
  // that answer (its code, message and retry hint) rather than a generic
  // transport error. Any slot with nothing recorded means a real transport
  // failure somewhere, which stays a throw.
  bool all_shed = true;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (answered[i]) continue;
    if (responses[i].raw.empty() ||
        responses[i].error_code != protocol::kCodeOverloaded) {
      all_shed = false;
      break;
    }
  }
  if (all_shed) return responses;
  throw Error(ErrorCategory::kIo, "client",
              "retry budget exhausted (" +
                  std::to_string(std::max(options_.max_attempts, 1)) +
                  " attempts): " + last_failure);
}

Response Client::Request(const std::string& line) {
  return Batch({line}).front();
}

}  // namespace ces::service
