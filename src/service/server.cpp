#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "service/protocol.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/trace_event.hpp"

namespace ces::service {

namespace {

using support::Error;
using support::ErrorCategory;

[[noreturn]] void FailIo(const std::string& what) {
  throw Error(ErrorCategory::kIo, "server",
              what + ": " + std::strerror(errno));
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  ExplorationService::Options service_options = options_.service;
  service_options.on_shutdown_request = [this] { RequestShutdown(); };
  service_ = std::make_unique<ExplorationService>(service_options);
}

Server::~Server() {
  // Destruction without Wait() still tears everything down.
  RequestShutdown();
  if (started_) Wait();
}

std::string Server::endpoint() const {
  if (!options_.unix_path.empty()) return "unix:" + options_.unix_path;
  return "tcp:127.0.0.1:" + std::to_string(port_);
}

void Server::Start() {
  if (started_) {
    throw Error(ErrorCategory::kUsage, "server", "Start called twice");
  }
  const bool use_unix = !options_.unix_path.empty();
  if (use_unix == (options_.tcp_port >= 0)) {
    throw Error(ErrorCategory::kUsage, "server",
                "select exactly one of unix_path and tcp_port");
  }
  if (use_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw Error(ErrorCategory::kUsage, "server",
                  "unix socket path longer than sockaddr_un allows: " +
                      options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) FailIo("socket");
    // A previous daemon that died uncleanly leaves the inode behind; a live
    // one would still be bound, which bind reports as EADDRINUSE after the
    // unlink of a *stale* path, so removing first is the standard dance.
    ::unlink(options_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      FailIo("bind " + options_.unix_path);
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) FailIo("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      FailIo("bind 127.0.0.1:" + std::to_string(options_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) != 0) {
      FailIo("getsockname");
    }
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 64) != 0) FailIo("listen");
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void Server::AcceptLoop() {
  support::TraceSink* sink = support::TraceSink::Global();
  if (sink != nullptr) sink->NameThisThread("service acceptor");
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed: shutting down
    }
    // A peer that stops reading must not wedge a scheduler worker inside
    // send() forever (that would stall the drain); after the timeout the
    // connection is treated as gone and its responses are dropped.
    const timeval send_timeout{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_requested_) {
      ::close(fd);
      return;
    }
    support::MetricsRegistry::Add(options_.service.metrics,
                                  "service.connections");
    connections_.emplace_back(
        connection, std::thread([this, connection] { ReadLoop(connection); }));
  }
}

void Server::SendLine(const std::shared_ptr<Connection>& connection,
                      const std::string& line) {
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  if (!connection->open.load(std::memory_order_acquire)) return;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(connection->fd, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // Peer is gone; drop the rest. The computation still warmed the
      // caches, so the work is not wasted.
      connection->open.store(false, std::memory_order_release);
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Server::ReadLoop(std::shared_ptr<Connection> connection) {
  support::TraceSink* sink = support::TraceSink::Global();
  if (sink != nullptr) sink->NameThisThread("service reader");
  std::string pending;
  char buffer[16384];
  for (;;) {
    const ssize_t n = ::recv(connection->fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    pending.append(buffer, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t newline = pending.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = pending.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      service_->Handle(line, [this, connection](const std::string& response) {
        SendLine(connection, response);
      });
    }
    pending.erase(0, start);
    if (pending.size() > options_.max_line_bytes) {
      SendLine(connection,
               protocol::ErrorResponse(
                   "", support::ToString(ErrorCategory::kValidation),
                   "request line exceeds " +
                       std::to_string(options_.max_line_bytes) + " bytes"));
      break;
    }
  }
  connection->open.store(false, std::memory_order_release);
}

void Server::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_requested_) return;
    shutdown_requested_ = true;
  }
  cv_.notify_all();
}

void Server::Wait() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return shutdown_requested_; });
  }
  if (!started_) return;
  started_ = false;

  // 1. Stop accepting: closing the listen socket fails the blocking accept.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;

  // 2. Answer everything already admitted. Connections are still writable,
  // so in-flight clients get their results; anything submitted from here on
  // is shed with "shutting_down".
  service_->Drain();

  // 3. Hang up. shutdown() unblocks the reader threads' recv.
  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (auto& [connection, thread] : connections) {
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (auto& [connection, thread] : connections) {
    if (thread.joinable()) thread.join();
    {
      // Serialise with any responder mid-SendLine before closing the fd.
      std::lock_guard<std::mutex> write_lock(connection->write_mutex);
      connection->open.store(false, std::memory_order_release);
    }
    ::close(connection->fd);
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

}  // namespace ces::service
