#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "service/protocol.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/trace_event.hpp"

namespace ces::service {

namespace {

using support::Error;
using support::ErrorCategory;

[[noreturn]] void FailIo(const std::string& what) {
  throw Error(ErrorCategory::kIo, "server",
              what + ": " + std::strerror(errno));
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  ExplorationService::Options service_options = options_.service;
  service_options.on_shutdown_request = [this] { RequestShutdown(); };
  service_ = std::make_unique<ExplorationService>(service_options);
  handler_ = service_.get();
}

Server::Server(ServerOptions options, LineService& handler)
    : options_(std::move(options)), handler_(&handler) {}

Server::~Server() {
  // Destruction without Wait() still tears everything down.
  RequestShutdown();
  if (started_) Wait();
}

std::string Server::endpoint() const {
  if (!options_.unix_path.empty()) return "unix:" + options_.unix_path;
  return "tcp:127.0.0.1:" + std::to_string(port_);
}

void Server::Start() {
  if (started_) {
    throw Error(ErrorCategory::kUsage, "server", "Start called twice");
  }
  const bool use_unix = !options_.unix_path.empty();
  if (use_unix == (options_.tcp_port >= 0)) {
    throw Error(ErrorCategory::kUsage, "server",
                "select exactly one of unix_path and tcp_port");
  }
  if (use_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw Error(ErrorCategory::kUsage, "server",
                  "unix socket path longer than sockaddr_un allows: " +
                      options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) FailIo("socket");
    // A previous daemon that died uncleanly leaves the inode behind, which
    // bind reports as EADDRINUSE — but blindly unlinking would silently
    // steal the endpoint from a daemon that is still alive. Probe first:
    // a successful connect means a live listener (refuse to start), and
    // only ECONNREFUSED (stale inode) licenses the unlink. ENOENT means
    // there is nothing to remove at all.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe < 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      FailIo("socket");
    }
    if (::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      ::close(probe);
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw Error(ErrorCategory::kIo, "server",
                  "a daemon is already listening on " + options_.unix_path);
    }
    const int probe_errno = errno;
    ::close(probe);
    if (probe_errno == ECONNREFUSED) {
      ::unlink(options_.unix_path.c_str());
    } else if (probe_errno != ENOENT) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      errno = probe_errno;
      FailIo("probe existing socket " + options_.unix_path);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      FailIo("bind " + options_.unix_path);
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) FailIo("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      FailIo("bind 127.0.0.1:" + std::to_string(options_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) != 0) {
      FailIo("getsockname");
    }
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 64) != 0) FailIo("listen");
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void Server::AcceptLoop() {
  support::TraceSink* sink = support::TraceSink::Global();
  if (sink != nullptr) sink->NameThisThread("service acceptor");
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      const int accept_errno = errno;
      if (accept_errno == EINTR || accept_errno == ECONNABORTED) continue;
      {
        // Wait() closes the listen socket only after shutdown_requested_ is
        // set, so a failure during shutdown is always observable here.
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdown_requested_) return;
      }
      if (accept_errno == EMFILE || accept_errno == ENFILE ||
          accept_errno == ENOBUFS || accept_errno == ENOMEM) {
        // Out of fds or kernel memory: a transient condition the daemon
        // must ride out, not a reason to kill the acceptor forever.
        // Reaping finished connections frees fds; then back off briefly.
        ReapFinishedConnections();
        support::MetricsRegistry::Add(options_.service.metrics,
                                      "service.accept_backoff");
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        continue;
      }
      return;  // EBADF/EINVAL etc: the listen socket itself is gone
    }
    ReapFinishedConnections();
    // A peer that stops reading must not wedge a scheduler worker inside
    // send() forever (that would stall the drain); after the timeout the
    // connection is treated as gone and its responses are dropped.
    const timeval send_timeout{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_requested_) {
      ::close(fd);
      return;
    }
    support::MetricsRegistry::Add(options_.service.metrics,
                                  "service.connections");
    connections_.emplace_back(
        connection, std::thread([this, connection] { ReadLoop(connection); }));
    support::MetricsRegistry::SetGauge(options_.service.metrics,
                                       "service.connections.live",
                                       connections_.size());
  }
}

void Server::ReapFinishedConnections() {
  // Sweep connections whose ReadLoop has exited: without this, a
  // long-running daemon under connection churn accumulates one closed-over
  // fd and one finished std::thread per past client until Wait().
  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if (it->first->done.load(std::memory_order_acquire)) {
        finished.emplace_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    support::MetricsRegistry::SetGauge(options_.service.metrics,
                                       "service.connections.live",
                                       connections_.size());
  }
  for (auto& [connection, thread] : finished) {
    if (thread.joinable()) thread.join();
    {
      // Serialise with any responder mid-SendLine before closing the fd;
      // open=false makes late responses no-ops instead of writes to a
      // possibly-reused fd number.
      std::lock_guard<std::mutex> write_lock(connection->write_mutex);
      connection->open.store(false, std::memory_order_release);
    }
    ::close(connection->fd);
  }
}

void Server::SendLine(const std::shared_ptr<Connection>& connection,
                      const std::string& line) {
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  if (!connection->open.load(std::memory_order_acquire)) return;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(connection->fd, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // Peer is gone; drop the rest. The computation still warmed the
      // caches, so the work is not wasted.
      connection->open.store(false, std::memory_order_release);
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Server::ReadLoop(std::shared_ptr<Connection> connection) {
  support::TraceSink* sink = support::TraceSink::Global();
  if (sink != nullptr) sink->NameThisThread("service reader");
  std::string pending;
  char buffer[16384];
  for (;;) {
    const ssize_t n = ::recv(connection->fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    pending.append(buffer, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t newline = pending.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = pending.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handler_->Handle(line, [this, connection](const std::string& response) {
        SendLine(connection, response);
      });
    }
    pending.erase(0, start);
    if (pending.size() > options_.max_line_bytes) {
      SendLine(connection,
               protocol::ErrorResponse(
                   "", support::ToString(ErrorCategory::kValidation),
                   "request line exceeds " +
                       std::to_string(options_.max_line_bytes) + " bytes"));
      break;
    }
  }
  connection->open.store(false, std::memory_order_release);
  connection->done.store(true, std::memory_order_release);
}

void Server::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_requested_) return;
    shutdown_requested_ = true;
  }
  cv_.notify_all();
}

void Server::Wait() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return shutdown_requested_; });
  }
  if (!started_) return;
  started_ = false;

  // 1. Stop accepting: closing the listen socket fails the blocking accept.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;

  // 2. Answer everything already admitted. Connections are still writable,
  // so in-flight clients get their results; anything submitted from here on
  // is shed with "shutting_down".
  handler_->Drain();

  // 3. Hang up. shutdown() unblocks the reader threads' recv.
  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (auto& [connection, thread] : connections) {
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (auto& [connection, thread] : connections) {
    if (thread.joinable()) thread.join();
    {
      // Serialise with any responder mid-SendLine before closing the fd.
      std::lock_guard<std::mutex> write_lock(connection->write_mutex);
      connection->open.store(false, std::memory_order_release);
    }
    ::close(connection->fd);
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

}  // namespace ces::service
