#include "service/trace_store.hpp"

#include <fstream>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/sha256.hpp"
#include "support/trace_event.hpp"
#include "trace/dinero.hpp"
#include "trace/trace_io.hpp"
#include "workloads/workloads.hpp"

namespace ces::service {

namespace {

using support::Error;
using support::ErrorCategory;

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

trace::Trace LoadTraceRef(const std::string& ref, const std::string& kind,
                          support::MetricsRegistry* metrics) {
  support::ScopedTraceSpan span("service.load_trace");
  if (EndsWith(ref, ".din")) {
    std::ifstream is(ref);
    if (!is) {
      throw Error(ErrorCategory::kIo, "dinero", "cannot open " + ref);
    }
    return trace::ReadDinero(is,
                             kind == "instr" ? trace::StreamKind::kInstruction
                                             : trace::StreamKind::kData,
                             metrics);
  }
  // A reference that is not a file on disk but names a built-in workload
  // runs the workload and takes its trace, mirroring the cachedse CLI.
  if (!std::ifstream(ref)) {
    if (const auto* workload = ces::workloads::FindWorkload(ref)) {
      auto run = ces::workloads::Run(*workload);
      if (!run.output_matches) {
        throw Error(ErrorCategory::kInternal, "workload",
                    "verification failed: " + ref);
      }
      trace::Trace trace = kind == "instr"
                               ? std::move(run.instruction_trace)
                               : std::move(run.data_trace);
      support::MetricsRegistry::Add(metrics, "trace.refs_generated",
                                    trace.size());
      return trace;
    }
  }
  return trace::LoadFromFile(ref, metrics);
}

std::string TraceStore::DigestOf(const trace::Trace& trace) {
  support::Sha256 hasher;
  std::uint8_t header[21] = {'C', 'E', 'S', '-', 'T', 'R', '1', 0};
  header[8] = static_cast<std::uint8_t>(trace.kind);
  for (int i = 0; i < 4; ++i) {
    header[9 + i] = static_cast<std::uint8_t>(trace.address_bits >> (8 * i));
  }
  const std::uint64_t count = trace.refs.size();
  for (int i = 0; i < 8; ++i) {
    header[13 + i] = static_cast<std::uint8_t>(count >> (8 * i));
  }
  hasher.Update(header, sizeof(header));
  // References are packed little-endian explicitly so the digest — a wire-
  // visible identifier — is byte-order independent.
  std::uint8_t chunk[4096];
  std::size_t used = 0;
  for (std::uint32_t ref : trace.refs) {
    chunk[used++] = static_cast<std::uint8_t>(ref);
    chunk[used++] = static_cast<std::uint8_t>(ref >> 8);
    chunk[used++] = static_cast<std::uint8_t>(ref >> 16);
    chunk[used++] = static_cast<std::uint8_t>(ref >> 24);
    if (used == sizeof(chunk)) {
      hasher.Update(chunk, used);
      used = 0;
    }
  }
  if (used > 0) hasher.Update(chunk, used);
  return "sha256:" + hasher.FinishHex();
}

TraceStore::TraceStore(std::size_t max_traces,
                       support::MetricsRegistry* metrics)
    : max_traces_(max_traces == 0 ? 1 : max_traces), metrics_(metrics) {}

PinnedTrace TraceStore::Ingest(trace::Trace trace) {
  support::ScopedTraceSpan span("service.store.ingest");
  const std::string digest = DigestOf(trace);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(digest);
    if (it != entries_.end()) {
      it->second.last_use = ++tick_;
      support::MetricsRegistry::Add(metrics_, "service.store.dedup_hits");
      return {it->second.trace, it->second.stats, digest};
    }
  }
  // Stats are part of the pinned state (the stats op and fraction->K
  // resolution read them). The O(n) pass runs outside the lock so a large
  // ingest does not stall concurrent Find/Ingest/GetOrBuildExplorer; a
  // concurrent ingest of the same content may duplicate the work, which the
  // recheck below resolves in favour of the first insert.
  trace::TraceStats stats = trace::ComputeStats(trace);
  auto shared = std::make_shared<const trace::Trace>(std::move(trace));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(digest);
  if (it != entries_.end()) {
    it->second.last_use = ++tick_;
    support::MetricsRegistry::Add(metrics_, "service.store.dedup_hits");
    return {it->second.trace, it->second.stats, digest};
  }
  Entry entry;
  entry.stats = stats;
  entry.trace = shared;
  entry.last_use = ++tick_;
  entries_.emplace(digest, std::move(entry));
  support::MetricsRegistry::Add(metrics_, "service.store.ingested");
  EvictIfNeeded();
  support::MetricsRegistry::SetGauge(metrics_, "service.store.traces",
                                     entries_.size());
  return {std::move(shared), stats, digest};
}

PinnedTrace TraceStore::Find(const std::string& digest) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) return {};
  it->second.last_use = ++tick_;
  return {it->second.trace, it->second.stats, digest};
}

void TraceStore::EvictIfNeeded() {
  while (entries_.size() > max_traces_) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    entries_.erase(victim);
    support::MetricsRegistry::Add(metrics_, "service.store.evicted");
  }
}

std::shared_ptr<const analytic::Explorer> TraceStore::GetOrBuildExplorer(
    const std::string& digest, const analytic::ExplorerOptions& options) {
  const PreludeKey key{options.engine, options.prelude, options.line_words,
                       options.max_index_bits};
  std::shared_ptr<const trace::Trace> trace;
  std::promise<std::shared_ptr<const analytic::Explorer>> promise;
  std::shared_future<std::shared_ptr<const analytic::Explorer>> future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(digest);
    if (it == entries_.end()) {
      throw Error(ErrorCategory::kValidation, "trace-store",
                  "unknown digest " + digest + " (evicted or never ingested)");
    }
    it->second.last_use = ++tick_;
    auto prelude = it->second.preludes.find(key);
    if (prelude != it->second.preludes.end()) {
      future = prelude->second;
      support::MetricsRegistry::Add(metrics_, "service.prelude.reused");
    } else {
      future = promise.get_future().share();
      it->second.preludes.emplace(key, future);
      trace = it->second.trace;
      builder = true;
    }
  }
  if (builder) {
    support::ScopedTraceSpan span("service.prelude.build");
    analytic::ExplorerOptions build_options = options;
    build_options.metrics = metrics_;
    try {
      auto explorer =
          std::make_shared<const analytic::Explorer>(*trace, build_options);
      support::MetricsRegistry::Add(metrics_, "service.prelude.built");
      promise.set_value(std::move(explorer));
    } catch (...) {
      // Drop the failed future so a later request retries the build, and
      // propagate the failure to everyone already waiting on this one.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(digest);
        if (it != entries_.end()) it->second.preludes.erase(key);
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::size_t TraceStore::pinned_traces() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace ces::service
