#include "service/trace_store.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/sha256.hpp"
#include "support/trace_event.hpp"
#include "trace/dinero.hpp"
#include "trace/trace_io.hpp"
#include "workloads/workloads.hpp"

namespace ces::service {

namespace {

using support::Error;
using support::ErrorCategory;

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// The canonical digest preamble: what BeginUpload seeds its incremental
// hasher with must be bit-for-bit what DigestOf hashes first, or streamed
// and in-memory ingests of the same content would stop deduplicating.
void HashDigestHeader(support::Sha256& hasher, trace::StreamKind kind,
                      std::uint32_t address_bits, std::uint64_t count) {
  std::uint8_t header[21] = {'C', 'E', 'S', '-', 'T', 'R', '1', 0};
  header[8] = static_cast<std::uint8_t>(kind);
  for (int i = 0; i < 4; ++i) {
    header[9 + i] = static_cast<std::uint8_t>(address_bits >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    header[13 + i] = static_cast<std::uint8_t>(count >> (8 * i));
  }
  hasher.Update(header, sizeof(header));
}

// Packs references little-endian, the shared byte layout of the digest,
// the chunk payloads and the CTRC spill body.
std::size_t PackRefsLe(const std::uint32_t* refs, std::size_t n,
                       std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i * 4 + 0] = static_cast<std::uint8_t>(refs[i]);
    out[i * 4 + 1] = static_cast<std::uint8_t>(refs[i] >> 8);
    out[i * 4 + 2] = static_cast<std::uint8_t>(refs[i] >> 16);
    out[i * 4 + 3] = static_cast<std::uint8_t>(refs[i] >> 24);
  }
  return n * 4;
}

void WriteU32LeBytes(std::ostream& os, std::uint32_t value) {
  const std::uint8_t bytes[4] = {static_cast<std::uint8_t>(value),
                                 static_cast<std::uint8_t>(value >> 8),
                                 static_cast<std::uint8_t>(value >> 16),
                                 static_cast<std::uint8_t>(value >> 24)};
  os.write(reinterpret_cast<const char*>(bytes), sizeof(bytes));
}

}  // namespace

trace::Trace LoadTraceRef(const std::string& ref, const std::string& kind,
                          support::MetricsRegistry* metrics) {
  support::ScopedTraceSpan span("service.load_trace");
  if (EndsWith(ref, ".din")) {
    std::ifstream is(ref);
    if (!is) {
      throw Error(ErrorCategory::kIo, "dinero", "cannot open " + ref);
    }
    return trace::ReadDinero(is,
                             kind == "instr" ? trace::StreamKind::kInstruction
                                             : trace::StreamKind::kData,
                             metrics);
  }
  // A reference that is not a file on disk but names a built-in workload
  // runs the workload and takes its trace, mirroring the cachedse CLI.
  if (!std::ifstream(ref)) {
    if (const auto* workload = ces::workloads::FindWorkload(ref)) {
      auto run = ces::workloads::Run(*workload);
      if (!run.output_matches) {
        throw Error(ErrorCategory::kInternal, "workload",
                    "verification failed: " + ref);
      }
      trace::Trace trace = kind == "instr"
                               ? std::move(run.instruction_trace)
                               : std::move(run.data_trace);
      support::MetricsRegistry::Add(metrics, "trace.refs_generated",
                                    trace.size());
      return trace;
    }
  }
  return trace::LoadFromFile(ref, metrics);
}

std::string TraceStore::DigestOf(const trace::Trace& trace) {
  support::Sha256 hasher;
  HashDigestHeader(hasher, trace.kind, trace.address_bits, trace.refs.size());
  // References are packed little-endian explicitly so the digest — a wire-
  // visible identifier — is byte-order independent.
  std::uint8_t chunk[4096];
  std::size_t used = 0;
  for (std::uint32_t ref : trace.refs) {
    used += PackRefsLe(&ref, 1, chunk + used);
    if (used == sizeof(chunk)) {
      hasher.Update(chunk, used);
      used = 0;
    }
  }
  if (used > 0) hasher.Update(chunk, used);
  return "sha256:" + hasher.FinishHex();
}

TraceStore::TraceStore(std::size_t max_traces,
                       support::MetricsRegistry* metrics,
                       std::string spill_dir)
    : max_traces_(max_traces == 0 ? 1 : max_traces),
      metrics_(metrics),
      spill_dir_(std::move(spill_dir)) {
  if (spill_dir_.empty()) {
    std::error_code ec;
    const auto base = std::filesystem::temp_directory_path(ec);
    spill_dir_ = (ec ? std::filesystem::path("/tmp") : base) /
                 ("cachedse-spill-" + std::to_string(::getpid()));
  }
}

TraceStore::~TraceStore() {
  // Abandoned sessions and pinned spills live in our (usually per-process)
  // spill directory; sweep them so daemon restarts do not accumulate.
  std::error_code ec;
  for (auto& [token, session] : uploads_) {
    session.out.close();
    std::filesystem::remove(session.path, ec);
  }
  for (auto& [digest, entry] : entries_) {
    if (!entry.spill_path.empty()) {
      std::filesystem::remove(entry.spill_path, ec);
      std::filesystem::remove(
          std::filesystem::path(entry.spill_path).replace_extension(".ctrz"),
          ec);
    }
  }
  std::filesystem::remove(spill_dir_, ec);  // only if now empty
}

PinnedTrace TraceStore::PinOf(const std::string& digest,
                              const Entry& entry) const {
  PinnedTrace pinned;
  pinned.trace = entry.trace;
  pinned.view = entry.view;
  pinned.stats = entry.stats;
  pinned.kind = entry.kind;
  pinned.digest = digest;
  return pinned;
}

void TraceStore::Touch(Entry& entry) {
  lru_.splice(lru_.end(), lru_, entry.lru_it);
}

PinnedTrace TraceStore::Ingest(trace::Trace trace) {
  support::ScopedTraceSpan span("service.store.ingest");
  const std::string digest = DigestOf(trace);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(digest);
    if (it != entries_.end()) {
      Touch(it->second);
      support::MetricsRegistry::Add(metrics_, "service.store.dedup_hits");
      return PinOf(digest, it->second);
    }
  }
  // Stats are part of the pinned state (the stats op and fraction->K
  // resolution read them). The O(n) pass runs outside the lock so a large
  // ingest does not stall concurrent Find/Ingest/GetOrBuildExplorer; a
  // concurrent ingest of the same content may duplicate the work, which the
  // recheck below resolves in favour of the first insert.
  trace::TraceStats stats = trace::ComputeStats(trace);
  const trace::StreamKind kind = trace.kind;
  auto shared = std::make_shared<const trace::Trace>(std::move(trace));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(digest);
  if (it != entries_.end()) {
    Touch(it->second);
    support::MetricsRegistry::Add(metrics_, "service.store.dedup_hits");
    return PinOf(digest, it->second);
  }
  Entry entry;
  entry.stats = stats;
  entry.trace = shared;
  entry.kind = kind;
  entry.lru_it = lru_.insert(lru_.end(), digest);
  entries_.emplace(digest, std::move(entry));
  support::MetricsRegistry::Add(metrics_, "service.store.ingested");
  EvictIfNeeded();
  support::MetricsRegistry::SetGauge(metrics_, "service.store.traces",
                                     entries_.size());
  PinnedTrace pinned;
  pinned.trace = std::move(shared);
  pinned.stats = stats;
  pinned.kind = kind;
  pinned.digest = digest;
  return pinned;
}

PinnedTrace TraceStore::Find(const std::string& digest) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) return {};
  Touch(it->second);
  return PinOf(digest, it->second);
}

void TraceStore::EvictIfNeeded() {
  while (entries_.size() > max_traces_) {
    // lru_ front is by construction the least recently touched digest, so
    // eviction is a pop instead of the old full min-scan over the map.
    const std::string victim = lru_.front();
    auto it = entries_.find(victim);
    if (!it->second.spill_path.empty()) {
      // Drop the raw spill; the mmap view of any in-flight build keeps the
      // inode alive until it unmaps. The compressed archive stays as the
      // at-rest copy (docs/TRACE_FORMATS.md documents the layout).
      std::error_code ec;
      std::filesystem::remove(it->second.spill_path, ec);
    }
    entries_.erase(it);
    lru_.pop_front();
    support::MetricsRegistry::Add(metrics_, "service.store.evicted");
  }
}

std::string TraceStore::EnsureSpillDir() {
  std::error_code ec;
  std::filesystem::create_directories(spill_dir_, ec);
  if (ec) {
    throw Error(ErrorCategory::kIo, "trace-upload",
                "cannot create spill directory " + spill_dir_ + ": " +
                    ec.message());
  }
  return spill_dir_;
}

void TraceStore::DropSessionLocked(const std::string& token) {
  auto it = uploads_.find(token);
  if (it == uploads_.end()) return;
  it->second.out.close();
  std::error_code ec;
  std::filesystem::remove(it->second.path, ec);
  uploads_.erase(it);
}

std::string TraceStore::BeginUpload(trace::StreamKind kind,
                                    std::uint32_t address_bits,
                                    std::uint64_t count, std::string name) {
  if (count > 0xffffffffull) {
    throw Error(ErrorCategory::kRange, "trace-upload",
                "declared count " + std::to_string(count) +
                    " exceeds the u32 CTRC count field");
  }
  const std::string dir = EnsureSpillDir();
  std::lock_guard<std::mutex> lock(uploads_mutex_);
  // Bound abandoned sessions (a client that disconnected mid-upload never
  // sends trace-end): admitting past the cap silently reaps the stalest.
  constexpr std::size_t kMaxOpenUploads = 64;
  while (uploads_.size() >= kMaxOpenUploads) {
    auto oldest = uploads_.begin();
    for (auto it = uploads_.begin(); it != uploads_.end(); ++it) {
      if (it->second.order < oldest->second.order) oldest = it;
    }
    const std::string stale = oldest->first;
    DropSessionLocked(stale);
    support::MetricsRegistry::Add(metrics_, "service.upload.aborted");
  }
  const std::string token = "up-" + std::to_string(++upload_counter_);
  UploadSession session;
  session.kind = kind;
  session.address_bits = address_bits;
  session.count = count;
  session.order = upload_counter_;
  session.name = std::move(name);
  session.path = dir + "/" + token + ".ctrc.part";
  session.out.open(session.path, std::ios::binary | std::ios::trunc);
  if (!session.out) {
    throw Error(ErrorCategory::kIo, "trace-upload",
                "cannot create spill file " + session.path);
  }
  // The spill is a plain CTRC file from byte 0, so the sealed upload mmaps
  // with the ordinary reader path and survives inspection by the CLI.
  session.out.write("CTRC", 4);
  WriteU32LeBytes(session.out, 1);  // version
  WriteU32LeBytes(session.out, static_cast<std::uint32_t>(kind));
  WriteU32LeBytes(session.out, address_bits);
  WriteU32LeBytes(session.out, static_cast<std::uint32_t>(count));
  HashDigestHeader(session.hasher, kind, address_bits, count);
  uploads_.emplace(token, std::move(session));
  support::MetricsRegistry::Add(metrics_, "service.upload.begun");
  support::MetricsRegistry::SetGauge(metrics_, "service.upload.open",
                                     uploads_.size());
  return token;
}

std::uint64_t TraceStore::AppendUploadChunk(const std::string& token,
                                            std::uint64_t seq,
                                            const std::uint32_t* refs,
                                            std::size_t n) {
  std::lock_guard<std::mutex> lock(uploads_mutex_);
  auto it = uploads_.find(token);
  if (it == uploads_.end()) {
    throw Error(ErrorCategory::kValidation, "trace-upload",
                "unknown upload token " + token +
                    " (expired, sealed, or never begun)");
  }
  UploadSession& session = it->second;
  if (seq < session.chunks) {
    // An already-applied chunk again: a client retry after lost responses
    // (the retry machinery may resend a whole pipelined suffix on a fresh
    // connection). Acknowledge without re-applying — the sealed digest is
    // the integrity backstop if a replayed body ever differed.
    support::MetricsRegistry::Add(metrics_, "service.upload.replayed");
    return session.received;
  }
  if (seq != session.chunks) {
    throw Error(ErrorCategory::kValidation, "trace-upload",
                "out-of-order chunk seq " + std::to_string(seq) +
                    " (expected " + std::to_string(session.chunks) + ")");
  }
  if (session.received + n > session.count) {
    throw Error(ErrorCategory::kValidation, "trace-upload",
                "chunk overruns the declared count: " +
                    std::to_string(session.received) + " + " +
                    std::to_string(n) + " > " +
                    std::to_string(session.count));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (session.address_bits < 32 &&
        (refs[i] >> session.address_bits) != 0) {
      throw Error(ErrorCategory::kValidation, "trace-upload",
                  "reference " + std::to_string(session.received + i) +
                      " exceeds address_bits=" +
                      std::to_string(session.address_bits));
    }
  }
  std::uint8_t buffer[4096];
  std::size_t done = 0;
  while (done < n) {
    const std::size_t step = std::min(n - done, sizeof(buffer) / 4);
    const std::size_t bytes = PackRefsLe(refs + done, step, buffer);
    session.out.write(reinterpret_cast<const char*>(buffer),
                      static_cast<std::streamsize>(bytes));
    session.hasher.Update(buffer, bytes);
    done += step;
  }
  if (!session.out) {
    throw Error(ErrorCategory::kIo, "trace-upload",
                "spill write failed: " + session.path);
  }
  ++session.chunks;
  session.received += n;
  support::MetricsRegistry::Add(metrics_, "service.upload.chunks");
  support::MetricsRegistry::Add(metrics_, "service.upload.refs", n);
  return session.received;
}

PinnedTrace TraceStore::FinishUpload(const std::string& token) {
  UploadSession session;
  {
    std::lock_guard<std::mutex> lock(uploads_mutex_);
    auto it = uploads_.find(token);
    if (it == uploads_.end()) {
      throw Error(ErrorCategory::kValidation, "trace-upload",
                  "unknown upload token " + token +
                      " (expired, sealed, or never begun)");
    }
    if (it->second.received != it->second.count) {
      throw Error(ErrorCategory::kValidation, "trace-upload",
                  "upload sealed after " +
                      std::to_string(it->second.received) + " of " +
                      std::to_string(it->second.count) +
                      " declared references");
    }
    session = std::move(it->second);
    uploads_.erase(it);
    support::MetricsRegistry::SetGauge(metrics_, "service.upload.open",
                                       uploads_.size());
  }
  session.out.flush();
  session.out.close();
  if (session.out.fail()) {
    std::error_code ec;
    std::filesystem::remove(session.path, ec);
    throw Error(ErrorCategory::kIo, "trace-upload",
                "spill flush failed: " + session.path);
  }
  const std::string digest = "sha256:" + session.hasher.FinishHex();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(digest);
    if (it != entries_.end()) {
      // Content already pinned (in-memory or a previous upload): the spill
      // taught us nothing new, drop it and refresh the entry.
      std::error_code ec;
      std::filesystem::remove(session.path, ec);
      Touch(it->second);
      support::MetricsRegistry::Add(metrics_, "service.store.dedup_hits");
      support::MetricsRegistry::Add(metrics_, "service.upload.finished");
      return PinOf(digest, it->second);
    }
  }
  // Content-addressed final names: <hex>.ctrc (the raw spill, mmapped) and
  // <hex>.ctrz (the compressed at-rest archive).
  const std::string hex = digest.substr(7);
  const std::string final_path = spill_dir_ + "/" + hex + ".ctrc";
  std::error_code ec;
  std::filesystem::rename(session.path, final_path, ec);
  if (ec) {
    std::filesystem::remove(session.path, ec);
    throw Error(ErrorCategory::kIo, "trace-upload",
                "cannot finalise spill " + final_path + ": " + ec.message());
  }
  std::shared_ptr<trace::MmapTraceView> view;
  try {
    view = std::make_shared<trace::MmapTraceView>(final_path, metrics_);
  } catch (...) {
    std::filesystem::remove(final_path, ec);
    throw;
  }
  view->set_name(session.name);
  // Stats (one bounded-memory streaming pass) and the compressed archive
  // happen outside both locks; concurrent duplicate uploads resolve in
  // favour of the first insert below, exactly like Ingest.
  const trace::TraceStats stats = trace::ComputeStats(*view);
  {
    std::ofstream archive(spill_dir_ + "/" + hex + ".ctrz",
                          std::ios::binary | std::ios::trunc);
    if (archive) trace::WriteCompressed(archive, *view);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(digest);
  if (it != entries_.end()) {
    std::filesystem::remove(final_path, ec);
    Touch(it->second);
    support::MetricsRegistry::Add(metrics_, "service.store.dedup_hits");
    support::MetricsRegistry::Add(metrics_, "service.upload.finished");
    return PinOf(digest, it->second);
  }
  Entry entry;
  entry.view = view;
  entry.spill_path = final_path;
  entry.stats = stats;
  entry.kind = view->kind();
  entry.lru_it = lru_.insert(lru_.end(), digest);
  entries_.emplace(digest, std::move(entry));
  support::MetricsRegistry::Add(metrics_, "service.store.ingested");
  support::MetricsRegistry::Add(metrics_, "service.upload.finished");
  EvictIfNeeded();
  support::MetricsRegistry::SetGauge(metrics_, "service.store.traces",
                                     entries_.size());
  PinnedTrace pinned;
  pinned.view = std::move(view);
  pinned.stats = stats;
  pinned.kind = pinned.view->kind();
  pinned.digest = digest;
  return pinned;
}

void TraceStore::AbortUpload(const std::string& token) {
  std::lock_guard<std::mutex> lock(uploads_mutex_);
  DropSessionLocked(token);
  support::MetricsRegistry::SetGauge(metrics_, "service.upload.open",
                                     uploads_.size());
}

std::shared_ptr<const analytic::Explorer> TraceStore::GetOrBuildExplorer(
    const std::string& digest, const analytic::ExplorerOptions& options,
    bool* reused) {
  const PreludeKey key{options.engine, options.prelude, options.line_words,
                       options.max_index_bits};
  std::shared_ptr<const trace::Trace> trace;
  std::shared_ptr<const trace::TraceView> view;
  std::promise<std::shared_ptr<const analytic::Explorer>> promise;
  std::shared_future<std::shared_ptr<const analytic::Explorer>> future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(digest);
    if (it == entries_.end()) {
      throw Error(ErrorCategory::kValidation, "trace-store",
                  "unknown digest " + digest + " (evicted or never ingested)");
    }
    Touch(it->second);
    auto prelude = it->second.preludes.find(key);
    if (prelude != it->second.preludes.end()) {
      future = prelude->second;
      support::MetricsRegistry::Add(metrics_, "service.prelude.reused");
      if (reused != nullptr) *reused = true;
    } else {
      if (reused != nullptr) *reused = false;
      future = promise.get_future().share();
      it->second.preludes.emplace(key, future);
      trace = it->second.trace;
      view = it->second.view;
      builder = true;
    }
  }
  if (builder) {
    support::ScopedTraceSpan span("service.prelude.build");
    analytic::ExplorerOptions build_options = options;
    build_options.metrics = metrics_;
    try {
      // Spill-backed entries build straight off the mmap view — the prelude
      // streams the trace without materialising it.
      auto explorer =
          trace != nullptr
              ? std::make_shared<const analytic::Explorer>(*trace,
                                                           build_options)
              : std::make_shared<const analytic::Explorer>(*view,
                                                           build_options);
      support::MetricsRegistry::Add(metrics_, "service.prelude.built");
      promise.set_value(std::move(explorer));
    } catch (...) {
      // Drop the failed future so a later request retries the build, and
      // propagate the failure to everyone already waiting on this one.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(digest);
        if (it != entries_.end()) it->second.preludes.erase(key);
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::size_t TraceStore::pinned_traces() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t TraceStore::open_uploads() const {
  std::lock_guard<std::mutex> lock(uploads_mutex_);
  return uploads_.size();
}

}  // namespace ces::service
