#include "service/protocol.hpp"

#include <cinttypes>
#include <cstdio>

#include "service/json.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace ces::service {
namespace protocol {

namespace {

using support::Error;
using support::ErrorCategory;

[[noreturn]] void FailValidation(const std::string& detail) {
  throw Error(ErrorCategory::kValidation, "request", detail);
}

std::string RequireString(const JsonValue& value, const char* key) {
  if (value.kind != JsonValue::Kind::kString) {
    FailValidation(std::string("field '") + key + "' must be a string, got " +
                   ToString(value.kind));
  }
  return value.string;
}

std::uint64_t RequireInteger(const JsonValue& value, const char* key,
                             std::uint64_t max) {
  if (value.kind != JsonValue::Kind::kNumber || !value.is_integer) {
    FailValidation(std::string("field '") + key +
                   "' must be a non-negative integer");
  }
  if (value.integer > max) {
    FailValidation(std::string("field '") + key + "' exceeds " +
                   std::to_string(max));
  }
  return value.integer;
}

std::string RequireDigest(const JsonValue& value, const char* key) {
  const std::string digest = RequireString(value, key);
  if (digest.compare(0, 7, "sha256:") != 0 || digest.size() != 7 + 64) {
    FailValidation(std::string("field '") + key +
                   "' must be 'sha256:' + 64 hex digits");
  }
  return digest;
}

double RequireFraction(const JsonValue& value, const char* key) {
  if (value.kind != JsonValue::Kind::kNumber) {
    FailValidation(std::string("field '") + key + "' must be a number");
  }
  if (!(value.number >= 0.0) || value.number > 1.0) {
    FailValidation(std::string("field '") + key + "' must be in [0, 1]");
  }
  return value.number;
}

std::string U64(std::uint64_t value) { return std::to_string(value); }

void AppendStats(std::string& out, const trace::TraceStats& stats) {
  out += "\"stats\":{\"n\":" + U64(stats.n) +
         ",\"n_unique\":" + U64(stats.n_unique) +
         ",\"max_misses\":" + U64(stats.max_misses) + "}";
}

std::string Head(const std::string& id, const std::string& rid,
                 const char* op) {
  std::string out = "{\"id\":" + support::JsonQuote(id);
  if (!rid.empty()) out += ",\"rid\":" + support::JsonQuote(rid);
  out += ",\"ok\":true,\"op\":" + support::JsonQuote(op);
  return out;
}

}  // namespace

const char* ToString(Op op) {
  switch (op) {
    case Op::kExplore:
      return "explore";
    case Op::kExploreJoint:
      return "explore-joint";
    case Op::kStats:
      return "stats";
    case Op::kIngest:
      return "ingest";
    case Op::kMetrics:
      return "metrics";
    case Op::kPing:
      return "ping";
    case Op::kShutdown:
      return "shutdown";
    case Op::kTraceBegin:
      return "trace-begin";
    case Op::kTraceChunk:
      return "trace-chunk";
    case Op::kTraceEnd:
      return "trace-end";
    case Op::kHealth:
      return "health";
  }
  return "?";
}

Request ParseRequest(const std::string& line) {
  const JsonValue root = ParseJson(line);
  if (root.kind != JsonValue::Kind::kObject) {
    FailValidation("request must be a JSON object");
  }

  Request request;
  bool saw_op = false;
  bool saw_kind = false;
  bool saw_line_words = false;
  bool saw_max_index_bits = false;
  bool saw_space = false;
  bool saw_prune = false;
  bool saw_payload = false;
  bool saw_encoding = false;
  bool saw_name = false;
  bool saw_engine = false;
  for (const auto& [key, value] : root.object) {
    if (key == "id") {
      request.id = RequireString(value, "id");
      if (request.id.empty() || request.id.size() > 128) {
        FailValidation("field 'id' must be 1..128 bytes");
      }
    } else if (key == "op") {
      const std::string name = RequireString(value, "op");
      saw_op = true;
      if (name == "explore") {
        request.op = Op::kExplore;
      } else if (name == "explore-joint") {
        request.op = Op::kExploreJoint;
      } else if (name == "stats") {
        request.op = Op::kStats;
      } else if (name == "ingest") {
        request.op = Op::kIngest;
      } else if (name == "metrics") {
        request.op = Op::kMetrics;
      } else if (name == "ping") {
        request.op = Op::kPing;
      } else if (name == "shutdown") {
        request.op = Op::kShutdown;
      } else if (name == "trace-begin") {
        request.op = Op::kTraceBegin;
      } else if (name == "trace-chunk") {
        request.op = Op::kTraceChunk;
      } else if (name == "trace-end") {
        request.op = Op::kTraceEnd;
      } else if (name == "health") {
        request.op = Op::kHealth;
      } else {
        throw Error(ErrorCategory::kUnsupported, "request",
                    "unknown op '" + name + "'");
      }
    } else if (key == "trace") {
      request.trace = RequireString(value, "trace");
      if (request.trace.empty() || request.trace.size() > 4096) {
        FailValidation("field 'trace' must be 1..4096 bytes");
      }
    } else if (key == "digest") {
      request.digest = RequireDigest(value, "digest");
    } else if (key == "trace_instr") {
      request.trace_instr = RequireString(value, "trace_instr");
      if (request.trace_instr.empty() || request.trace_instr.size() > 4096) {
        FailValidation("field 'trace_instr' must be 1..4096 bytes");
      }
    } else if (key == "digest_instr") {
      request.digest_instr = RequireDigest(value, "digest_instr");
    } else if (key == "kind") {
      request.kind = RequireString(value, "kind");
      saw_kind = true;
      if (request.kind != "data" && request.kind != "instr") {
        FailValidation("field 'kind' must be data|instr");
      }
    } else if (key == "space") {
      request.space = RequireString(value, "space");
      saw_space = true;
      if (request.space != "default" && request.space != "small") {
        FailValidation("field 'space' must be default|small");
      }
    } else if (key == "prune") {
      if (value.kind != JsonValue::Kind::kBool) {
        FailValidation("field 'prune' must be a bool");
      }
      request.prune = value.boolean;
      saw_prune = true;
    } else if (key == "engine") {
      request.engine = RequireString(value, "engine");
      saw_engine = true;
      if (request.engine != "fused" && request.engine != "fused-tree" &&
          request.engine != "reference") {
        FailValidation("field 'engine' must be fused|fused-tree|reference");
      }
    } else if (key == "k") {
      request.k = RequireInteger(value, "k", ~std::uint64_t{0});
      request.has_k = true;
    } else if (key == "fraction") {
      request.fraction = RequireFraction(value, "fraction");
      request.has_fraction = true;
    } else if (key == "line_words") {
      request.line_words = static_cast<std::uint32_t>(
          RequireInteger(value, "line_words", 1u << 16));
      saw_line_words = true;
      if (request.line_words == 0 ||
          (request.line_words & (request.line_words - 1)) != 0) {
        FailValidation("field 'line_words' must be a power of two");
      }
    } else if (key == "max_index_bits") {
      request.max_index_bits = static_cast<std::uint32_t>(
          RequireInteger(value, "max_index_bits", 28));
      saw_max_index_bits = true;
      if (request.max_index_bits == 0) {
        FailValidation("field 'max_index_bits' must be >= 1");
      }
    } else if (key == "deadline_ms") {
      request.deadline_ms =
          RequireInteger(value, "deadline_ms", 86'400'000ull);
    } else if (key == "upload") {
      request.upload = RequireString(value, "upload");
      if (request.upload.empty() || request.upload.size() > 128) {
        FailValidation("field 'upload' must be 1..128 bytes");
      }
    } else if (key == "count") {
      request.count = RequireInteger(value, "count", 0xffffffffull);
      request.has_count = true;
    } else if (key == "seq") {
      request.seq = RequireInteger(value, "seq", 0xffffffffull);
      request.has_seq = true;
    } else if (key == "payload") {
      request.payload = RequireString(value, "payload");
      if (request.payload.empty() || request.payload.size() > (16u << 20)) {
        FailValidation("field 'payload' must be 1..16777216 bytes");
      }
      saw_payload = true;
    } else if (key == "encoding") {
      request.encoding = RequireString(value, "encoding");
      saw_encoding = true;
      if (request.encoding != "hex" && request.encoding != "base64") {
        FailValidation("field 'encoding' must be hex|base64");
      }
    } else if (key == "address_bits") {
      request.address_bits = static_cast<std::uint32_t>(
          RequireInteger(value, "address_bits", 32));
      request.has_address_bits = true;
      if (request.address_bits == 0) {
        FailValidation("field 'address_bits' must be in [1, 32]");
      }
    } else if (key == "name") {
      request.name = RequireString(value, "name");
      saw_name = true;
      if (request.name.size() > 256) {
        FailValidation("field 'name' must be <= 256 bytes");
      }
    } else {
      FailValidation("unknown field '" + key + "'");
    }
  }

  if (request.id.empty()) FailValidation("field 'id' is required");
  if (!saw_op) FailValidation("field 'op' is required");
  const bool needs_trace = request.op == Op::kExplore ||
                           request.op == Op::kExploreJoint ||
                           request.op == Op::kStats ||
                           request.op == Op::kIngest;
  if (needs_trace) {
    if (request.trace.empty() == request.digest.empty()) {
      // stats with neither reference is the live server snapshot (answered
      // inline); everything else still needs exactly one.
      const bool server_stats = request.op == Op::kStats &&
                                request.trace.empty() &&
                                request.digest.empty();
      if (!server_stats) {
        FailValidation(std::string(ToString(request.op)) +
                       " requires exactly one of 'trace' or 'digest'");
      }
    }
    if (request.op == Op::kIngest && request.trace.empty()) {
      FailValidation("ingest requires 'trace' (a digest proves nothing new)");
    }
  }
  if (request.has_k && request.has_fraction) {
    FailValidation("'k' and 'fraction' are mutually exclusive");
  }
  const bool is_upload = request.op == Op::kTraceBegin ||
                         request.op == Op::kTraceChunk ||
                         request.op == Op::kTraceEnd;
  if (is_upload) {
    // Streaming-ingest ops carry only their own vocabulary; exploration
    // fields on them are client bugs, so reject loudly instead of ignoring.
    if (!request.trace.empty() || !request.digest.empty() || saw_engine ||
        request.has_k || request.has_fraction || saw_line_words ||
        saw_max_index_bits) {
      FailValidation(std::string(ToString(request.op)) +
                     " accepts no trace-reference or exploration fields");
    }
    if (request.op == Op::kTraceBegin) {
      if (!request.has_count) FailValidation("trace-begin requires 'count'");
      if (!request.upload.empty() || request.has_seq || saw_payload ||
          saw_encoding) {
        FailValidation(
            "'upload', 'seq', 'payload' and 'encoding' are not valid for "
            "trace-begin (the server issues the token)");
      }
    } else {
      if (request.upload.empty()) {
        FailValidation(std::string(ToString(request.op)) +
                       " requires 'upload' (the token trace-begin returned)");
      }
      if (saw_kind || request.has_count || request.has_address_bits ||
          saw_name) {
        FailValidation(
            "'kind', 'count', 'address_bits' and 'name' are only valid for "
            "trace-begin");
      }
      if (request.op == Op::kTraceChunk) {
        if (!request.has_seq || !saw_payload) {
          FailValidation("trace-chunk requires 'seq' and 'payload'");
        }
      } else if (request.has_seq || saw_payload || saw_encoding) {
        FailValidation(
            "'seq', 'payload' and 'encoding' are not valid for trace-end");
      }
    }
  } else if (!request.upload.empty() || request.has_count ||
             request.has_seq || saw_payload || saw_encoding ||
             request.has_address_bits || saw_name) {
    FailValidation(
        "'upload', 'count', 'seq', 'payload', 'encoding', 'address_bits' "
        "and 'name' are only valid for trace-begin/trace-chunk/trace-end");
  }
  if (request.op == Op::kExploreJoint) {
    // 'trace'/'digest' carry the data stream; the instruction stream comes
    // via exactly one of the *_instr twins. Kinds are implied, and the
    // single-trace explore knobs make no sense against a joint space.
    if (request.trace_instr.empty() == request.digest_instr.empty()) {
      FailValidation(
          "explore-joint requires exactly one of 'trace_instr' or "
          "'digest_instr'");
    }
    if (saw_kind) {
      FailValidation(
          "'kind' is not valid for explore-joint (stream kinds are implied)");
    }
    if (request.has_k || request.has_fraction || saw_line_words ||
        saw_max_index_bits) {
      FailValidation(
          "'k', 'fraction', 'line_words' and 'max_index_bits' are not valid "
          "for explore-joint (the space preset fixes the axes)");
    }
    if (request.engine == "reference") {
      FailValidation("explore-joint engine must be fused|fused-tree");
    }
  } else if (!request.trace_instr.empty() || !request.digest_instr.empty() ||
             saw_space || saw_prune) {
    FailValidation(
        "'trace_instr', 'digest_instr', 'space' and 'prune' are only valid "
        "for explore-joint");
  }
  return request;
}

std::string ExtractRequestId(const std::string& line) {
  try {
    const JsonValue root = ParseJson(line);
    if (root.kind == JsonValue::Kind::kObject) {
      if (const JsonValue* id = root.Find("id");
          id != nullptr && id->kind == JsonValue::Kind::kString &&
          !id->string.empty() && id->string.size() <= 128) {
        return id->string;
      }
    }
  } catch (...) {
  }
  return "";
}

std::string ExtractRequestOp(const std::string& line) {
  try {
    const JsonValue root = ParseJson(line);
    if (root.kind == JsonValue::Kind::kObject) {
      if (const JsonValue* op = root.Find("op");
          op != nullptr && op->kind == JsonValue::Kind::kString) {
        return op->string;
      }
    }
  } catch (...) {
  }
  return "";
}

bool IsIdempotentOp(const std::string& op) {
  return op != "trace-begin" && op != "trace-end";
}

std::string SerializeRequest(const Request& request) {
  std::string out = "{\"id\":" + support::JsonQuote(request.id) +
                    ",\"op\":" + support::JsonQuote(ToString(request.op));
  const bool is_joint = request.op == Op::kExploreJoint;
  const bool takes_trace_ref =
      request.op == Op::kExplore || is_joint || request.op == Op::kStats ||
      request.op == Op::kIngest;
  if (takes_trace_ref) {
    if (!request.trace.empty()) {
      out += ",\"trace\":" + support::JsonQuote(request.trace);
    }
    if (!request.digest.empty()) {
      out += ",\"digest\":" + support::JsonQuote(request.digest);
    }
  }
  if (is_joint) {
    if (!request.trace_instr.empty()) {
      out += ",\"trace_instr\":" + support::JsonQuote(request.trace_instr);
    }
    if (!request.digest_instr.empty()) {
      out += ",\"digest_instr\":" + support::JsonQuote(request.digest_instr);
    }
    out += ",\"engine\":" + support::JsonQuote(request.engine);
    out += ",\"space\":" + support::JsonQuote(request.space);
    out += std::string(",\"prune\":") + (request.prune ? "true" : "false");
  } else if (request.op == Op::kExplore) {
    out += ",\"kind\":" + support::JsonQuote(request.kind);
    out += ",\"engine\":" + support::JsonQuote(request.engine);
    if (request.has_k) {
      out += ",\"k\":" + U64(request.k);
    } else if (request.has_fraction) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", request.fraction);
      out += std::string(",\"fraction\":") + buffer;
    }
    out += ",\"line_words\":" + U64(request.line_words);
    out += ",\"max_index_bits\":" + U64(request.max_index_bits);
  } else if (request.op == Op::kStats || request.op == Op::kIngest) {
    out += ",\"kind\":" + support::JsonQuote(request.kind);
  } else if (request.op == Op::kTraceBegin) {
    out += ",\"kind\":" + support::JsonQuote(request.kind);
    out += ",\"count\":" + U64(request.count);
    out += ",\"address_bits\":" + U64(request.address_bits);
    if (!request.name.empty()) {
      out += ",\"name\":" + support::JsonQuote(request.name);
    }
  } else if (request.op == Op::kTraceChunk) {
    out += ",\"upload\":" + support::JsonQuote(request.upload);
    out += ",\"seq\":" + U64(request.seq);
    out += ",\"payload\":" + support::JsonQuote(request.payload);
    out += ",\"encoding\":" + support::JsonQuote(request.encoding);
  } else if (request.op == Op::kTraceEnd) {
    out += ",\"upload\":" + support::JsonQuote(request.upload);
  }
  // deadline_ms is accepted on every op, so preserve it on every op.
  if (request.deadline_ms > 0) {
    out += ",\"deadline_ms\":" + U64(request.deadline_ms);
  }
  out += "}";
  return out;
}

std::string PingResponse(const std::string& id, const std::string& rid) {
  return Head(id, rid, "ping") + "}";
}

std::string IngestResponse(const std::string& id, const std::string& digest,
                           const trace::TraceStats& stats,
                           const std::string& rid) {
  std::string out = Head(id, rid, "ingest");
  out += ",\"digest\":" + support::JsonQuote(digest) + ",";
  AppendStats(out, stats);
  out += "}";
  return out;
}

std::string StatsResponse(const std::string& id, const std::string& digest,
                          const trace::TraceStats& stats,
                          const std::string& kind, const std::string& rid) {
  std::string out = Head(id, rid, "stats");
  out += ",\"digest\":" + support::JsonQuote(digest) +
         ",\"kind\":" + support::JsonQuote(kind) + ",";
  AppendStats(out, stats);
  out += "}";
  return out;
}

std::string ExploreResponse(const std::string& id, const std::string& digest,
                            const std::string& engine, std::uint64_t k,
                            const trace::TraceStats& stats,
                            const std::vector<analytic::DesignPoint>& points,
                            bool cached, const std::string& rid) {
  std::string out = Head(id, rid, "explore");
  out += ",\"digest\":" + support::JsonQuote(digest) +
         ",\"engine\":" + support::JsonQuote(engine) + ",\"k\":" + U64(k) +
         ",\"cached\":" + (cached ? "true" : "false") + ",";
  AppendStats(out, stats);
  out += ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const analytic::DesignPoint& point = points[i];
    if (i > 0) out += ",";
    out += "{\"depth\":" + U64(point.depth) +
           ",\"assoc\":" + U64(point.assoc) +
           ",\"size_words\":" + U64(point.size_words()) +
           ",\"warm_misses\":" + U64(point.warm_misses) + "}";
  }
  out += "]}";
  return out;
}

std::string ExploreJointResponse(const std::string& id,
                                 const std::string& digest,
                                 const std::string& digest_instr,
                                 const std::string& engine,
                                 const std::string& space, bool prune,
                                 bool cached, const std::string& joint_json,
                                 const std::string& rid) {
  // joint_json is explore::JointReportJson output — already a JSON object
  // with deterministic key order, embedded verbatim.
  std::string out = Head(id, rid, "explore-joint");
  out += ",\"digest\":" + support::JsonQuote(digest) +
         ",\"digest_instr\":" + support::JsonQuote(digest_instr) +
         ",\"engine\":" + support::JsonQuote(engine) +
         ",\"space\":" + support::JsonQuote(space) +
         ",\"prune\":" + (prune ? "true" : "false") +
         ",\"cached\":" + (cached ? "true" : "false") +
         ",\"joint\":" + joint_json + "}";
  return out;
}

std::string MetricsResponse(const std::string& id,
                            const std::string& metrics_json,
                            const std::string& rid) {
  // metrics_json is MetricsRegistry::ToJson output — already a JSON object.
  return Head(id, rid, "metrics") + ",\"metrics\":" + metrics_json + "}";
}

namespace {

// The shared "server" object of ServerStatsResponse and HealthResponse.
// Fixed field order (declaration order of ServerInfo) so operators can diff
// two snapshots textually.
std::string ServerInfoJson(const ServerInfo& info) {
  return "{\"uptime_us\":" + U64(info.uptime_us) +
         ",\"git_sha\":" + support::JsonQuote(info.git_sha) +
         ",\"pid\":" + U64(info.pid) + ",\"jobs\":" + U64(info.jobs) +
         ",\"connections_live\":" + U64(info.connections_live) +
         ",\"connections_total\":" + U64(info.connections_total) +
         ",\"queue_depth\":" + U64(info.queue_depth) +
         ",\"queue_limit\":" + U64(info.queue_limit) +
         ",\"shed_total\":" + U64(info.shed_total) +
         ",\"retry_after_ms\":" + U64(info.retry_after_ms) +
         ",\"draining\":" + (info.draining ? "true" : "false") +
         ",\"traces_pinned\":" + U64(info.traces_pinned) +
         ",\"uploads_open\":" + U64(info.uploads_open) +
         ",\"requests_total\":" + U64(info.requests_total) +
         ",\"simd_kernel\":" + support::JsonQuote(info.simd_kernel) + "}";
}

}  // namespace

std::string ServerStatsResponse(const std::string& id, const ServerInfo& info,
                                const std::string& metrics_json,
                                const std::string& rid) {
  // metrics_json is MetricsRegistry::ToJson output — already a JSON object.
  return Head(id, rid, "stats") + ",\"server\":" + ServerInfoJson(info) +
         ",\"metrics\":" + metrics_json + "}";
}

std::string HealthResponse(const std::string& id, const ServerInfo& info,
                           const std::string& rid) {
  // A daemon that answers at all is alive; "healthy" is the readiness bit —
  // false once a drain begins, so load balancers stop routing to it.
  return Head(id, rid, "health") +
         std::string(",\"healthy\":") + (info.draining ? "false" : "true") +
         ",\"server\":" + ServerInfoJson(info) + "}";
}

std::string TraceBeginResponse(const std::string& id,
                               const std::string& upload, std::uint64_t count,
                               const std::string& rid) {
  return Head(id, rid, "trace-begin") +
         ",\"upload\":" + support::JsonQuote(upload) +
         ",\"count\":" + U64(count) + "}";
}

std::string TraceChunkResponse(const std::string& id,
                               const std::string& upload, std::uint64_t seq,
                               std::uint64_t received,
                               const std::string& rid) {
  return Head(id, rid, "trace-chunk") +
         ",\"upload\":" + support::JsonQuote(upload) + ",\"seq\":" + U64(seq) +
         ",\"received\":" + U64(received) + "}";
}

std::string TraceEndResponse(const std::string& id, const std::string& digest,
                             const trace::TraceStats& stats,
                             const std::string& rid) {
  // Deliberately the ingest shape plus the op tag: a sealed upload is an
  // ingested trace, and clients reuse their ingest handling for it.
  std::string out = Head(id, rid, "trace-end");
  out += ",\"digest\":" + support::JsonQuote(digest) + ",";
  AppendStats(out, stats);
  out += "}";
  return out;
}

std::string ShutdownResponse(const std::string& id, const std::string& rid) {
  return Head(id, rid, "shutdown") + ",\"draining\":true}";
}

std::string ErrorResponse(const std::string& id, const std::string& code,
                          const std::string& message,
                          std::uint64_t retry_after_ms,
                          const std::string& rid) {
  std::string out = "{\"id\":" + support::JsonQuote(id);
  if (!rid.empty()) out += ",\"rid\":" + support::JsonQuote(rid);
  out += ",\"ok\":false";
  if (retry_after_ms > 0) {
    out += ",\"retry_after_ms\":" + U64(retry_after_ms);
  }
  out += ",\"error\":{\"code\":" + support::JsonQuote(code) +
         ",\"message\":" + support::JsonQuote(message) + "}}";
  return out;
}

std::string ErrorResponse(const std::string& id, const support::Error& error,
                          const std::string& rid) {
  return ErrorResponse(id, support::ToString(error.category()), error.what(),
                       0, rid);
}

namespace {

// Re-serialises a parsed JsonValue; used only to hand the nested metrics
// object back to clients, so integer fidelity matters and double formatting
// just needs round-trip precision.
void WriteValue(const JsonValue& value, std::string& out) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      out += "null";
      break;
    case JsonValue::Kind::kBool:
      out += value.boolean ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      if (value.is_integer) {
        out += std::to_string(value.integer);
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.17g", value.number);
        out += buffer;
      }
      break;
    case JsonValue::Kind::kString:
      out += support::JsonQuote(value.string);
      break;
    case JsonValue::Kind::kArray:
      out += '[';
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        if (i > 0) out += ',';
        WriteValue(value.array[i], out);
      }
      out += ']';
      break;
    case JsonValue::Kind::kObject:
      out += '{';
      for (std::size_t i = 0; i < value.object.size(); ++i) {
        if (i > 0) out += ',';
        out += support::JsonQuote(value.object[i].first);
        out += ':';
        WriteValue(value.object[i].second, out);
      }
      out += '}';
      break;
  }
}

std::uint64_t IntegerField(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) FailValidation(std::string("missing '") + key + "'");
  return RequireInteger(*value, key, ~std::uint64_t{0});
}

}  // namespace

Response ParseResponse(const std::string& line) {
  const JsonValue root = ParseJson(line);
  if (root.kind != JsonValue::Kind::kObject) {
    FailValidation("response must be a JSON object");
  }
  Response response;
  response.raw = line;
  const JsonValue* id = root.Find("id");
  if (id == nullptr || id->kind != JsonValue::Kind::kString) {
    FailValidation("response 'id' missing or not a string");
  }
  response.id = id->string;
  if (const JsonValue* rid = root.Find("rid")) {
    response.rid = RequireString(*rid, "rid");
  }
  const JsonValue* ok = root.Find("ok");
  if (ok == nullptr || ok->kind != JsonValue::Kind::kBool) {
    FailValidation("response 'ok' missing or not a bool");
  }
  response.ok = ok->boolean;

  if (!response.ok) {
    const JsonValue* error = root.Find("error");
    if (error == nullptr || error->kind != JsonValue::Kind::kObject) {
      FailValidation("error response without 'error' object");
    }
    const JsonValue* code = error->Find("code");
    const JsonValue* message = error->Find("message");
    if (code == nullptr || code->kind != JsonValue::Kind::kString ||
        message == nullptr || message->kind != JsonValue::Kind::kString) {
      FailValidation("error object must carry string 'code' and 'message'");
    }
    response.error_code = code->string;
    response.error_message = message->string;
    if (const JsonValue* retry = root.Find("retry_after_ms")) {
      response.retry_after_ms =
          RequireInteger(*retry, "retry_after_ms", ~std::uint64_t{0});
    }
    return response;
  }

  if (const JsonValue* digest = root.Find("digest")) {
    response.digest = RequireString(*digest, "digest");
  }
  if (const JsonValue* digest_instr = root.Find("digest_instr")) {
    response.digest_instr = RequireString(*digest_instr, "digest_instr");
  }
  if (const JsonValue* engine = root.Find("engine")) {
    response.engine = RequireString(*engine, "engine");
  }
  if (const JsonValue* space = root.Find("space")) {
    response.space = RequireString(*space, "space");
  }
  if (const JsonValue* prune = root.Find("prune")) {
    if (prune->kind != JsonValue::Kind::kBool) {
      FailValidation("'prune' must be a bool");
    }
    response.prune = prune->boolean;
  }
  if (const JsonValue* k = root.Find("k")) {
    response.k = RequireInteger(*k, "k", ~std::uint64_t{0});
  }
  if (const JsonValue* cached = root.Find("cached")) {
    if (cached->kind != JsonValue::Kind::kBool) {
      FailValidation("'cached' must be a bool");
    }
    response.cached = cached->boolean;
  }
  if (const JsonValue* stats = root.Find("stats")) {
    if (stats->kind != JsonValue::Kind::kObject) {
      FailValidation("'stats' must be an object");
    }
    response.stats.n = IntegerField(*stats, "n");
    response.stats.n_unique = IntegerField(*stats, "n_unique");
    response.stats.max_misses = IntegerField(*stats, "max_misses");
    response.has_stats = true;
  }
  if (const JsonValue* points = root.Find("points")) {
    if (points->kind != JsonValue::Kind::kArray) {
      FailValidation("'points' must be an array");
    }
    for (const JsonValue& entry : points->array) {
      if (entry.kind != JsonValue::Kind::kObject) {
        FailValidation("each point must be an object");
      }
      analytic::DesignPoint point;
      point.depth =
          static_cast<std::uint32_t>(IntegerField(entry, "depth"));
      point.assoc =
          static_cast<std::uint32_t>(IntegerField(entry, "assoc"));
      point.warm_misses = IntegerField(entry, "warm_misses");
      response.points.push_back(point);
    }
  }
  if (const JsonValue* metrics = root.Find("metrics")) {
    WriteValue(*metrics, response.metrics_json);
  }
  if (const JsonValue* upload = root.Find("upload")) {
    response.upload = RequireString(*upload, "upload");
  }
  if (const JsonValue* seq = root.Find("seq")) {
    response.seq = RequireInteger(*seq, "seq", ~std::uint64_t{0});
  }
  if (const JsonValue* received = root.Find("received")) {
    response.received =
        RequireInteger(*received, "received", ~std::uint64_t{0});
  }
  if (const JsonValue* joint = root.Find("joint")) {
    if (joint->kind != JsonValue::Kind::kObject) {
      FailValidation("'joint' must be an object");
    }
    WriteValue(*joint, response.joint_json);
  }
  if (const JsonValue* server = root.Find("server")) {
    if (server->kind != JsonValue::Kind::kObject) {
      FailValidation("'server' must be an object");
    }
    WriteValue(*server, response.server_json);
  }
  if (const JsonValue* healthy = root.Find("healthy")) {
    if (healthy->kind != JsonValue::Kind::kBool) {
      FailValidation("'healthy' must be a bool");
    }
    response.healthy = healthy->boolean;
    response.has_healthy = true;
  }
  return response;
}

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int Base64Value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

constexpr char kBase64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::vector<std::uint32_t> RefsFromBytes(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() % 4 != 0) {
    FailValidation("payload decodes to " + std::to_string(bytes.size()) +
                   " bytes, not a whole number of 4-byte references");
  }
  std::vector<std::uint32_t> refs(bytes.size() / 4);
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const std::uint8_t* p = bytes.data() + i * 4;
    refs[i] = static_cast<std::uint32_t>(p[0]) |
              (static_cast<std::uint32_t>(p[1]) << 8) |
              (static_cast<std::uint32_t>(p[2]) << 16) |
              (static_cast<std::uint32_t>(p[3]) << 24);
  }
  return refs;
}

}  // namespace

std::vector<std::uint32_t> DecodeChunkPayload(const std::string& encoding,
                                              const std::string& payload) {
  std::vector<std::uint8_t> bytes;
  if (encoding == "hex") {
    if (payload.size() % 2 != 0) {
      FailValidation("hex payload must have an even number of digits");
    }
    bytes.reserve(payload.size() / 2);
    for (std::size_t i = 0; i < payload.size(); i += 2) {
      const int hi = HexNibble(payload[i]);
      const int lo = HexNibble(payload[i + 1]);
      if (hi < 0 || lo < 0) {
        FailValidation("hex payload has a non-hex character at offset " +
                       std::to_string(hi < 0 ? i : i + 1));
      }
      bytes.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
  } else if (encoding == "base64") {
    if (payload.size() % 4 != 0) {
      FailValidation("base64 payload length must be a multiple of 4");
    }
    bytes.reserve(payload.size() / 4 * 3);
    for (std::size_t i = 0; i < payload.size(); i += 4) {
      const bool last = i + 4 == payload.size();
      int v[4];
      int pad = 0;
      for (int j = 0; j < 4; ++j) {
        const char c = payload[i + j];
        if (c == '=') {
          // Padding only closes the final quantum, only in the last two
          // positions, and once started never stops.
          if (!last || j < 2) {
            FailValidation("base64 payload has misplaced '=' padding");
          }
          v[j] = 0;
          ++pad;
        } else {
          if (pad > 0) {
            FailValidation("base64 payload has data after '=' padding");
          }
          v[j] = Base64Value(c);
          if (v[j] < 0) {
            FailValidation(
                "base64 payload has an invalid character at offset " +
                std::to_string(i + j));
          }
        }
      }
      const std::uint32_t triple =
          (static_cast<std::uint32_t>(v[0]) << 18) |
          (static_cast<std::uint32_t>(v[1]) << 12) |
          (static_cast<std::uint32_t>(v[2]) << 6) |
          static_cast<std::uint32_t>(v[3]);
      bytes.push_back(static_cast<std::uint8_t>(triple >> 16));
      if (pad < 2) bytes.push_back(static_cast<std::uint8_t>(triple >> 8));
      if (pad < 1) bytes.push_back(static_cast<std::uint8_t>(triple));
    }
  } else {
    FailValidation("unknown payload encoding '" + encoding + "'");
  }
  return RefsFromBytes(bytes);
}

std::string EncodeChunkPayload(const std::string& encoding,
                               const std::uint32_t* refs, std::size_t n) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(n * 4);
  for (std::size_t i = 0; i < n; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(refs[i]));
    bytes.push_back(static_cast<std::uint8_t>(refs[i] >> 8));
    bytes.push_back(static_cast<std::uint8_t>(refs[i] >> 16));
    bytes.push_back(static_cast<std::uint8_t>(refs[i] >> 24));
  }
  std::string out;
  if (encoding == "hex") {
    static const char kHex[] = "0123456789abcdef";
    out.reserve(bytes.size() * 2);
    for (std::uint8_t byte : bytes) {
      out += kHex[byte >> 4];
      out += kHex[byte & 0xf];
    }
  } else if (encoding == "base64") {
    out.reserve((bytes.size() + 2) / 3 * 4);
    std::size_t i = 0;
    for (; i + 3 <= bytes.size(); i += 3) {
      const std::uint32_t triple = (static_cast<std::uint32_t>(bytes[i]) << 16) |
                                   (static_cast<std::uint32_t>(bytes[i + 1]) << 8) |
                                   static_cast<std::uint32_t>(bytes[i + 2]);
      out += kBase64Alphabet[(triple >> 18) & 63];
      out += kBase64Alphabet[(triple >> 12) & 63];
      out += kBase64Alphabet[(triple >> 6) & 63];
      out += kBase64Alphabet[triple & 63];
    }
    if (const std::size_t rest = bytes.size() - i; rest > 0) {
      std::uint32_t triple = static_cast<std::uint32_t>(bytes[i]) << 16;
      if (rest == 2) triple |= static_cast<std::uint32_t>(bytes[i + 1]) << 8;
      out += kBase64Alphabet[(triple >> 18) & 63];
      out += kBase64Alphabet[(triple >> 12) & 63];
      out += rest == 2 ? kBase64Alphabet[(triple >> 6) & 63] : '=';
      out += '=';
    }
  } else {
    FailValidation("unknown payload encoding '" + encoding + "'");
  }
  return out;
}

}  // namespace protocol
}  // namespace ces::service
