// Admission and dispatch, separated from execution.
//
// Dispatcher owns the bounded admission queue, the overload/lifecycle
// policy and the dispatcher thread; what happens to a dequeued batch is the
// BatchExecutor's business. The in-process JobScheduler (scheduler.hpp)
// plugs in an executor that resolves traces and runs the Explorer; the
// fleet router (fleet/router.hpp) plugs in one that forwards every job to
// the worker that owns its digest — same admission queue, same shed
// taxonomy, no Explorer anywhere near it.
//
// Policy, in the order a request meets it (identical to the pre-split
// JobScheduler, which tests pin):
//  * bounded admission — a full queue sheds immediately with "overloaded"
//    and a retry_after_ms hint instead of growing the backlog;
//  * graceful drain — Drain() stops admission ("shutting_down") but every
//    already-admitted request is still answered before Drain returns;
//  * per-request deadlines are enforced by the executor via
//    DeadlineExpired(), because only the executor knows when work starts.
//
// Every job is answered exactly once through Respond()/Fail(), which also
// own the latency metrics and the request-log line; executors may call them
// from any thread (asynchronous executors answer after ExecuteBatch
// returns — Drain() then blocks in the executor's Quiesce()).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "service/protocol.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"

namespace ces::service {

// One admitted request plus the bookkeeping Respond()/Fail() turn into
// metrics and a request-log line.
struct DispatchJob {
  protocol::Request request;
  std::function<void(std::string)> done;
  std::chrono::steady_clock::time_point enqueued;
  // Set when the dispatcher's gulp picks the job up; sheds never get one,
  // so their whole latency is queue time.
  std::chrono::steady_clock::time_point dequeued;
  bool dispatched = false;
  std::chrono::steady_clock::time_point deadline;  // valid if has_deadline
  bool has_deadline = false;
  // Request-log attribution, filled in as the job progresses.
  std::string digest;      // resolved content digest, when known
  std::string outcome;     // see RequestLogEntry; "" logs as "computed"
  std::string error_code;  // error/shed code, "" on success
};

// What a Dispatcher drives. ExecuteBatch must arrange for every job to be
// answered exactly once (inline or later, from any thread); Quiesce blocks
// until every job handed to ExecuteBatch so far has been answered — the
// drain path calls it after the dispatcher thread exits, so a purely
// synchronous executor can keep the default no-op.
class BatchExecutor {
 public:
  virtual ~BatchExecutor() = default;
  virtual void ExecuteBatch(std::deque<DispatchJob> batch) = 0;
  virtual void Quiesce() {}
};

class Dispatcher {
 public:
  struct Options {
    std::size_t queue_limit = 256;       // admission bound (jobs, not bytes)
    std::uint64_t retry_after_ms = 100;  // shed hint for clients
    // One structured line per finished request (see support/log.hpp);
    // nullptr disables request logging.
    support::RequestLog* request_log = nullptr;
  };
  using Responder = std::function<void(std::string)>;

  // The executor must outlive the Dispatcher (declare it first, or Drain()
  // before destroying it).
  Dispatcher(BatchExecutor& executor, Options options,
             support::MetricsRegistry* metrics = nullptr);
  ~Dispatcher();  // implies Drain()

  // Admits one request. Responds exactly once — inline on the calling
  // thread when shed or draining, via the executor otherwise.
  void Submit(protocol::Request request, Responder done);

  // Stops admission, answers everything already queued (including the
  // executor's in-flight asynchronous work, via Quiesce) and joins the
  // dispatcher thread. Idempotent.
  void Drain();

  // Test/ops hook: a paused dispatcher admits but does not process, which
  // makes queue-full shedding and deadline expiry deterministic to observe.
  void Pause();
  void Resume();

  std::size_t queue_depth() const;
  bool draining() const;
  std::uint64_t retry_after_ms() const { return options_.retry_after_ms; }

  // Answers the job exactly once: latency metrics, the request-log line,
  // then the responder. Safe from any thread; a job without a responder
  // (already answered) is a no-op.
  void Respond(DispatchJob& job, const std::string& response);
  // Marks the job failed (outcome + error code for the log) and responds
  // with the matching error line. `outcome` defaults to "error"; shed and
  // deadline paths pass their own.
  void Fail(DispatchJob& job, const std::string& code,
            const std::string& message, std::uint64_t retry_after_ms = 0,
            const char* outcome = "error");

  static bool DeadlineExpired(const DispatchJob& job,
                              std::chrono::steady_clock::time_point now) {
    return job.has_deadline && now > job.deadline;
  }

 private:
  void Loop();

  BatchExecutor& executor_;
  const Options options_;
  support::MetricsRegistry* metrics_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<DispatchJob> queue_;
  bool draining_ = false;
  bool paused_ = false;

  std::thread dispatcher_;
};

}  // namespace ces::service
