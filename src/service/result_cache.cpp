#include "service/result_cache.hpp"

#include <atomic>

#include "support/metrics.hpp"

namespace ces::service {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void FnvMix(std::uint64_t& hash, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
}

template <typename T>
void FnvMixValue(std::uint64_t& hash, T value) {
  std::uint8_t bytes[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  FnvMix(hash, bytes, sizeof(T));
}

}  // namespace

std::uint64_t ResultKey::StableHash() const {
  std::uint64_t hash = kFnvOffset;
  FnvMix(hash, digest.data(), digest.size());
  FnvMixValue(hash, static_cast<std::uint64_t>(engine));
  FnvMixValue(hash, static_cast<std::uint64_t>(line_words));
  FnvMixValue(hash, static_cast<std::uint64_t>(max_index_bits));
  FnvMixValue(hash, k);
  FnvMixValue(hash, static_cast<std::uint64_t>(digest_instr.size()));
  FnvMix(hash, digest_instr.data(), digest_instr.size());
  FnvMixValue(hash, static_cast<std::uint64_t>(variant.size()));
  FnvMix(hash, variant.data(), variant.size());
  return hash;
}

std::size_t CachedResult::CostBytes(const ResultKey& key) const {
  // A deterministic footprint estimate: the variable parts exactly, plus a
  // fixed allowance for node/bookkeeping overhead. What matters for the
  // eviction tests is that the figure depends only on the entry's content.
  constexpr std::size_t kFixedOverhead = 160;
  return kFixedOverhead + key.digest.size() + key.digest_instr.size() +
         key.variant.size() + payload.size() +
         points.size() * sizeof(analytic::DesignPoint);
}

ResultCache::ResultCache(std::size_t byte_budget, std::size_t shards,
                         support::MetricsRegistry* metrics)
    : metrics_(metrics) {
  std::size_t count = 1;
  while (count < shards) count <<= 1;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_budget_ = byte_budget / count;
}

std::size_t ResultCache::ShardOf(const ResultKey& key) const {
  return static_cast<std::size_t>(key.StableHash()) & (shards_.size() - 1);
}

std::shared_ptr<const CachedResult> ResultCache::Lookup(const ResultKey& key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    support::MetricsRegistry::Add(metrics_, "service.cache.miss");
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  support::MetricsRegistry::Add(metrics_, "service.cache.hit");
  return it->second->value;
}

void ResultCache::Insert(const ResultKey& key,
                         std::shared_ptr<const CachedResult> value) {
  const std::size_t cost = value->CostBytes(key);
  Shard& shard = *shards_[ShardOf(key)];
  std::uint64_t evictions = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.bytes -= it->second->cost;
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    shard.lru.push_front(Slot{key, std::move(value), cost});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += cost;
    while (shard.bytes > per_shard_budget_ && shard.lru.size() > 1) {
      const Slot& victim = shard.lru.back();
      shard.bytes -= victim.cost;
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      ++evictions;
    }
  }
  if (evictions > 0) {
    support::MetricsRegistry::Add(metrics_, "service.cache.eviction",
                                  evictions);
  }
  UpdateBytesGauge();
}

std::size_t ResultCache::bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->bytes;
  }
  return total;
}

std::size_t ResultCache::entries() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

void ResultCache::UpdateBytesGauge() {
  if (metrics_ == nullptr) return;
  support::MetricsRegistry::SetGauge(metrics_, "service.cache.bytes", bytes());
}

}  // namespace ces::service
