#include "bus/activity.hpp"

namespace ces::bus {

std::vector<ActivityReport> AnalyzeBusActivity(const trace::Trace& trace,
                                               std::uint32_t bus_width) {
  const Encoding encodings[] = {Encoding::kBinary, Encoding::kGray,
                                Encoding::kT0, Encoding::kBusInvert};
  std::vector<ActivityReport> reports;
  reports.reserve(4);
  for (Encoding encoding : encodings) {
    BusEncoder encoder(encoding, bus_width);
    for (std::uint32_t ref : trace.refs) encoder.Send(ref);
    ActivityReport report;
    report.encoding = encoding;
    report.transitions = encoder.total_transitions();
    report.average_per_word = encoder.AverageTransitions();
    reports.push_back(report);
  }
  const auto binary = static_cast<double>(reports.front().transitions);
  for (ActivityReport& report : reports) {
    report.savings_vs_binary =
        binary == 0 ? 0.0
                    : 1.0 - static_cast<double>(report.transitions) / binary;
  }
  return reports;
}

}  // namespace ces::bus
