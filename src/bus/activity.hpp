// Trace-level bus activity analysis: runs a reference trace through each
// encoding and reports transition counts and savings relative to binary.
#pragma once

#include <vector>

#include "bus/encoding.hpp"
#include "trace/trace.hpp"

namespace ces::bus {

struct ActivityReport {
  Encoding encoding = Encoding::kBinary;
  std::uint64_t transitions = 0;
  double average_per_word = 0.0;
  double savings_vs_binary = 0.0;  // fraction in [0, 1); negative = worse
};

// One report per encoding, binary first.
std::vector<ActivityReport> AnalyzeBusActivity(const trace::Trace& trace,
                                               std::uint32_t bus_width = 32);

}  // namespace ces::bus
