#include "bus/encoding.hpp"

#include <bit>

#include "support/check.hpp"

namespace ces::bus {

const char* ToString(Encoding encoding) {
  switch (encoding) {
    case Encoding::kBinary: return "binary";
    case Encoding::kGray: return "gray";
    case Encoding::kT0: return "t0";
    case Encoding::kBusInvert: return "bus-invert";
  }
  return "?";
}

std::uint32_t BinaryToGray(std::uint32_t value) { return value ^ (value >> 1); }

std::uint32_t GrayToBinary(std::uint32_t gray) {
  std::uint32_t value = gray;
  for (std::uint32_t shift = 1; shift < 32; shift <<= 1) {
    value ^= value >> shift;
  }
  return value;
}

BusEncoder::BusEncoder(Encoding encoding, std::uint32_t bus_width)
    : encoding_(encoding), bus_width_(bus_width) {
  CES_CHECK(bus_width >= 1 && bus_width <= 32);
  mask_ = bus_width == 32 ? 0xffffffffu : (1u << bus_width) - 1;
}

std::uint32_t BusEncoder::Send(std::uint32_t address) {
  address &= mask_;
  std::uint32_t lines = 0;
  std::uint32_t extra = 0;  // transitions on redundant control lines

  switch (encoding_) {
    case Encoding::kBinary:
      lines = address;
      break;
    case Encoding::kGray:
      lines = BinaryToGray(address) & mask_;
      break;
    case Encoding::kT0: {
      // Redundant INC line: while the stream is sequential the address lines
      // freeze (the receiver increments locally); the INC line toggles on
      // entering/leaving a sequential run.
      const bool sequential =
          !first_ && address == ((last_address_ + 1) & mask_);
      extra = (!first_ && sequential != t0_inc_) ? 1u : 0u;
      t0_inc_ = sequential;
      lines = sequential ? last_lines_ : address;
      break;
    }
    case Encoding::kBusInvert: {
      const std::uint32_t plain = address;
      const std::uint32_t inverted = ~address & mask_;
      if (first_) {
        lines = plain;
        invert_state_ = false;
        break;
      }
      const auto cost_plain = static_cast<std::uint32_t>(
          std::popcount((plain ^ last_lines_) & mask_) +
          (invert_state_ ? 1 : 0));
      const auto cost_inverted = static_cast<std::uint32_t>(
          std::popcount((inverted ^ last_lines_) & mask_) +
          (invert_state_ ? 0 : 1));
      if (cost_inverted < cost_plain) {
        extra = invert_state_ ? 0 : 1;
        invert_state_ = true;
        lines = inverted;
      } else {
        extra = invert_state_ ? 1 : 0;
        invert_state_ = false;
        lines = plain;
      }
      break;
    }
  }

  std::uint32_t transitions = extra;
  if (!first_) {
    transitions += static_cast<std::uint32_t>(
        std::popcount((lines ^ last_lines_) & mask_));
  }
  last_lines_ = lines;
  last_address_ = address;
  first_ = false;
  total_transitions_ += transitions;
  ++words_sent_;
  return transitions;
}

}  // namespace ces::bus
