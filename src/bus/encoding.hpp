// Address-bus encodings (extension).
//
// The paper closes with "bus architecture and other system-on-a-chip
// artifacts" as the next exploration axis: off-chip address buses burn
// energy per toggled line, so the reference stream that decides cache misses
// also decides bus power. This module provides the classic low-power
// encodings evaluated over the same traces:
//   * binary    — the address as-is,
//   * gray      — adjacent addresses differ in one bit (sequential fetch),
//   * t0        — sequential addresses send no transition at all (an extra
//                 INC line tells the receiver to increment; Benini et al.),
//   * bus-invert— send the complement (plus one INVERT line) whenever that
//                 halves the Hamming distance (Stan & Burleson).
#pragma once

#include <cstdint>
#include <string>

namespace ces::bus {

enum class Encoding : std::uint8_t {
  kBinary = 0,
  kGray = 1,
  kT0 = 2,
  kBusInvert = 3,
};

const char* ToString(Encoding encoding);

// Binary <-> Gray code.
std::uint32_t BinaryToGray(std::uint32_t value);
std::uint32_t GrayToBinary(std::uint32_t gray);

// Stateful encoder: feeds addresses in trace order, accumulating the number
// of bus-line transitions the chosen encoding would cause (including the
// redundant INC / INVERT lines where applicable).
class BusEncoder {
 public:
  explicit BusEncoder(Encoding encoding, std::uint32_t bus_width = 32);

  // Encodes the next address; returns the number of lines that toggled.
  std::uint32_t Send(std::uint32_t address);

  std::uint64_t total_transitions() const { return total_transitions_; }
  std::uint64_t words_sent() const { return words_sent_; }
  Encoding encoding() const { return encoding_; }

  // Mean toggled lines per word.
  double AverageTransitions() const {
    return words_sent_ == 0
               ? 0.0
               : static_cast<double>(total_transitions_) /
                     static_cast<double>(words_sent_);
  }

 private:
  Encoding encoding_;
  std::uint32_t bus_width_;
  std::uint32_t mask_;
  std::uint32_t last_lines_ = 0;     // current physical line values
  std::uint32_t last_address_ = 0;   // last logical address (for t0)
  bool invert_state_ = false;        // bus-invert polarity line
  bool t0_inc_ = false;              // t0 INC line state
  bool first_ = true;
  std::uint64_t total_transitions_ = 0;
  std::uint64_t words_sent_ = 0;
};

}  // namespace ces::bus
