#include "sim/cpu.hpp"

#include <cstring>

#include "isa/disasm.hpp"
#include "support/check.hpp"

namespace ces::sim {

trace::Trace TraceCollector::TakeInstructionTrace(const std::string& name) {
  trace::Trace out = std::move(instruction_);
  out.name = name;
  instruction_ = trace::Trace{.refs = {}, .address_bits = 32,
                              .kind = trace::StreamKind::kInstruction,
                              .name = {}};
  return out;
}

trace::Trace TraceCollector::TakeDataTrace(const std::string& name) {
  trace::Trace out = std::move(data_);
  out.name = name;
  data_ = trace::Trace{.refs = {}, .address_bits = 32,
                       .kind = trace::StreamKind::kData, .name = {}};
  return out;
}

Cpu::Cpu(const isa::Program& program, std::size_t memory_bytes)
    : memory_(memory_bytes, 0) {
  text_base_ = program.text_base;
  text_limit_ = program.text_base +
                static_cast<std::uint32_t>(program.text.size()) * 4;
  CES_CHECK(text_limit_ <= memory_bytes);
  CES_CHECK(program.data_base + program.data.size() <= memory_bytes);
  CES_CHECK(text_limit_ <= program.data_base || program.data.empty());

  for (std::size_t i = 0; i < program.text.size(); ++i) {
    WriteWord(text_base_ + static_cast<std::uint32_t>(i) * 4, program.text[i]);
  }
  std::memcpy(memory_.data() + program.data_base, program.data.data(),
              program.data.size());

  pc_ = program.entry;
  regs_.fill(0);
  regs_[29] = static_cast<std::uint32_t>(memory_bytes) - 16;  // sp
  regs_[31] = text_limit_;  // ra: returning from main without halt stops too
}

std::uint32_t Cpu::ReadWord(std::uint32_t byte_address) const {
  CES_CHECK(byte_address + 4 <= memory_.size());
  std::uint32_t value;
  std::memcpy(&value, memory_.data() + byte_address, 4);
  return value;
}

void Cpu::WriteWord(std::uint32_t byte_address, std::uint32_t value) {
  CES_CHECK(byte_address + 4 <= memory_.size());
  std::memcpy(memory_.data() + byte_address, &value, 4);
}

std::uint8_t Cpu::ReadByte(std::uint32_t byte_address) const {
  CES_CHECK(byte_address < memory_.size());
  return memory_[byte_address];
}

std::vector<std::uint8_t> Cpu::ReadBlock(std::uint32_t byte_address,
                                         std::size_t length) const {
  CES_CHECK(byte_address + length <= memory_.size());
  return {memory_.begin() + byte_address,
          memory_.begin() + byte_address + static_cast<std::ptrdiff_t>(length)};
}

bool Cpu::CheckAccess(std::uint32_t byte_address, std::uint32_t size) {
  if (byte_address + size > memory_.size() || byte_address % size != 0) {
    error_ = "bad access at 0x" + std::to_string(byte_address);
    return false;
  }
  return true;
}

StopReason Cpu::Run(std::uint64_t max_steps) {
  using isa::Opcode;
  for (std::uint64_t step = 0; step < max_steps; ++step) {
    if (pc_ == text_limit_) return StopReason::kHalted;  // fell off main
    if (pc_ < text_base_ || pc_ >= text_limit_ || pc_ % 4 != 0) {
      error_ = "pc out of text segment: 0x" + std::to_string(pc_);
      return StopReason::kBadAccess;
    }
    if (observer_ != nullptr) observer_->OnInstructionFetch(pc_);

    isa::Instruction ins;
    if (!isa::Decode(ReadWord(pc_), ins)) {
      error_ = "undecodable instruction at 0x" + std::to_string(pc_);
      return StopReason::kBadInstruction;
    }
    std::uint32_t next_pc = pc_ + 4;
    ++retired_;

    const std::uint32_t rs = regs_[ins.rs];
    const std::uint32_t rt = regs_[ins.rt];
    const std::uint32_t rd_in = regs_[ins.rd];
    const auto simm = ins.imm;  // already sign-extended by Decode
    const auto uimm = static_cast<std::uint32_t>(ins.imm) & 0xffff;
    auto set_rd = [&](std::uint32_t value) {
      if (ins.rd != 0) regs_[ins.rd] = value;
    };

    switch (ins.op) {
      case Opcode::kAdd: set_rd(rs + rt); break;
      case Opcode::kSub: set_rd(rs - rt); break;
      case Opcode::kAnd: set_rd(rs & rt); break;
      case Opcode::kOr: set_rd(rs | rt); break;
      case Opcode::kXor: set_rd(rs ^ rt); break;
      case Opcode::kNor: set_rd(~(rs | rt)); break;
      case Opcode::kSlt:
        set_rd(static_cast<std::int32_t>(rs) < static_cast<std::int32_t>(rt));
        break;
      case Opcode::kSltu: set_rd(rs < rt); break;
      case Opcode::kSllv: set_rd(rs << (rt & 31)); break;
      case Opcode::kSrlv: set_rd(rs >> (rt & 31)); break;
      case Opcode::kSrav:
        set_rd(static_cast<std::uint32_t>(static_cast<std::int32_t>(rs) >>
                                          (rt & 31)));
        break;
      case Opcode::kMul: set_rd(rs * rt); break;
      case Opcode::kMulh: {
        const std::int64_t product = static_cast<std::int64_t>(
                                         static_cast<std::int32_t>(rs)) *
                                     static_cast<std::int32_t>(rt);
        set_rd(static_cast<std::uint32_t>(product >> 32));
        break;
      }
      case Opcode::kDiv: {
        const auto a = static_cast<std::int32_t>(rs);
        const auto b = static_cast<std::int32_t>(rt);
        set_rd(b == 0 ? 0 : static_cast<std::uint32_t>(a / b));
        break;
      }
      case Opcode::kRem: {
        const auto a = static_cast<std::int32_t>(rs);
        const auto b = static_cast<std::int32_t>(rt);
        set_rd(b == 0 ? rs : static_cast<std::uint32_t>(a % b));
        break;
      }
      case Opcode::kJr: next_pc = rs; break;
      case Opcode::kJalr:
        set_rd(pc_ + 4);
        next_pc = rs;
        break;

      case Opcode::kAddi: set_rd(rs + static_cast<std::uint32_t>(simm)); break;
      case Opcode::kAndi: set_rd(rs & uimm); break;
      case Opcode::kOri: set_rd(rs | uimm); break;
      case Opcode::kXori: set_rd(rs ^ uimm); break;
      case Opcode::kSlti:
        set_rd(static_cast<std::int32_t>(rs) < simm);
        break;
      case Opcode::kSltiu: set_rd(rs < static_cast<std::uint32_t>(simm)); break;
      case Opcode::kLui: set_rd(uimm << 16); break;
      case Opcode::kSll: set_rd(rs << (uimm & 31)); break;
      case Opcode::kSrl: set_rd(rs >> (uimm & 31)); break;
      case Opcode::kSra:
        set_rd(static_cast<std::uint32_t>(static_cast<std::int32_t>(rs) >>
                                          (uimm & 31)));
        break;

      case Opcode::kLw: case Opcode::kSw: case Opcode::kLb: case Opcode::kLbu:
      case Opcode::kSb: case Opcode::kLh: case Opcode::kLhu: case Opcode::kSh: {
        const std::uint32_t address = rs + static_cast<std::uint32_t>(simm);
        const std::uint32_t size =
            (ins.op == Opcode::kLw || ins.op == Opcode::kSw)   ? 4
            : (ins.op == Opcode::kLh || ins.op == Opcode::kLhu ||
               ins.op == Opcode::kSh)                          ? 2
                                                               : 1;
        if (!CheckAccess(address, size)) return StopReason::kBadAccess;
        const bool is_write = isa::IsStore(ins.op);
        if (observer_ != nullptr) observer_->OnDataAccess(address, is_write);
        switch (ins.op) {
          case Opcode::kLw: set_rd(ReadWord(address)); break;
          case Opcode::kSw: WriteWord(address, rd_in); break;
          case Opcode::kLb:
            set_rd(static_cast<std::uint32_t>(
                static_cast<std::int8_t>(memory_[address])));
            break;
          case Opcode::kLbu: set_rd(memory_[address]); break;
          case Opcode::kSb:
            memory_[address] = static_cast<std::uint8_t>(rd_in & 0xff);
            break;
          case Opcode::kLh: {
            std::uint16_t half;
            std::memcpy(&half, memory_.data() + address, 2);
            set_rd(static_cast<std::uint32_t>(static_cast<std::int16_t>(half)));
            break;
          }
          case Opcode::kLhu: {
            std::uint16_t half;
            std::memcpy(&half, memory_.data() + address, 2);
            set_rd(half);
            break;
          }
          case Opcode::kSh: {
            const auto half = static_cast<std::uint16_t>(rd_in & 0xffff);
            std::memcpy(memory_.data() + address, &half, 2);
            break;
          }
          default: break;
        }
        break;
      }

      case Opcode::kBeq:
        if (rd_in == rs) next_pc = pc_ + 4 + static_cast<std::uint32_t>(simm * 4);
        break;
      case Opcode::kBne:
        if (rd_in != rs) next_pc = pc_ + 4 + static_cast<std::uint32_t>(simm * 4);
        break;
      case Opcode::kBlt:
        if (static_cast<std::int32_t>(rd_in) < static_cast<std::int32_t>(rs)) {
          next_pc = pc_ + 4 + static_cast<std::uint32_t>(simm * 4);
        }
        break;
      case Opcode::kBge:
        if (static_cast<std::int32_t>(rd_in) >= static_cast<std::int32_t>(rs)) {
          next_pc = pc_ + 4 + static_cast<std::uint32_t>(simm * 4);
        }
        break;
      case Opcode::kBltu:
        if (rd_in < rs) next_pc = pc_ + 4 + static_cast<std::uint32_t>(simm * 4);
        break;
      case Opcode::kBgeu:
        if (rd_in >= rs) next_pc = pc_ + 4 + static_cast<std::uint32_t>(simm * 4);
        break;

      case Opcode::kJ: next_pc = ins.target * 4; break;
      case Opcode::kJal:
        regs_[31] = pc_ + 4;
        next_pc = ins.target * 4;
        break;

      case Opcode::kOutb:
        output_.push_back(static_cast<std::uint8_t>(rs & 0xff));
        break;
      case Opcode::kOutw:
        for (int b = 0; b < 4; ++b) {
          output_.push_back(static_cast<std::uint8_t>((rs >> (8 * b)) & 0xff));
        }
        break;
      case Opcode::kHalt: return StopReason::kHalted;
      case Opcode::kOpcodeCount: return StopReason::kBadInstruction;
    }
    pc_ = next_pc;
  }
  error_ = "step limit reached";
  return StopReason::kStepLimit;
}

RunResult RunProgram(const isa::Program& program, const std::string& name,
                     std::uint64_t max_steps, bool keep_combined) {
  Cpu cpu(program);
  TraceCollector collector(keep_combined);
  cpu.set_observer(&collector);
  RunResult result;
  result.stop = cpu.Run(max_steps);
  result.instruction_trace = collector.TakeInstructionTrace(name);
  result.data_trace = collector.TakeDataTrace(name);
  result.combined = collector.TakeCombined();
  result.output = cpu.output();
  result.retired = cpu.retired();
  return result;
}

}  // namespace ces::sim
