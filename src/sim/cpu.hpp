// MR32 functional simulator with memory-reference instrumentation.
//
// This is the repository's stand-in for the paper's instrumented MIPS R3000
// simulator: it executes an assembled Program and reports every instruction
// fetch and every data access to an attached MemoryObserver, from which
// TraceCollector builds the separate instruction and data traces the
// exploration experiments consume (word addresses, matching the fixed
// one-word line size of the analysis).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/isa.hpp"
#include "trace/trace.hpp"

namespace ces::sim {

class MemoryObserver {
 public:
  virtual ~MemoryObserver() = default;
  virtual void OnInstructionFetch(std::uint32_t byte_address) = 0;
  virtual void OnDataAccess(std::uint32_t byte_address, bool is_write) = 0;
};

// Collects word-granular instruction and data traces, plus the merged
// program-order stream the hierarchy simulator consumes.
class TraceCollector : public MemoryObserver {
 public:
  // Merged-stream capture costs memory; off by default.
  explicit TraceCollector(bool keep_combined = false)
      : keep_combined_(keep_combined) {}

  void OnInstructionFetch(std::uint32_t byte_address) override {
    instruction_.refs.push_back(byte_address >> 2);
    if (keep_combined_) {
      combined_.push_back({byte_address >> 2,
                           trace::StreamKind::kInstruction, false});
    }
  }
  void OnDataAccess(std::uint32_t byte_address, bool is_write) override {
    data_.refs.push_back(byte_address >> 2);
    if (keep_combined_) {
      combined_.push_back({byte_address >> 2, trace::StreamKind::kData,
                           is_write});
    }
  }

  // Finalised traces; `name` labels them for the reports.
  trace::Trace TakeInstructionTrace(const std::string& name);
  trace::Trace TakeDataTrace(const std::string& name);
  trace::AccessSequence TakeCombined() { return std::move(combined_); }

 private:
  bool keep_combined_ = false;
  trace::AccessSequence combined_;
  trace::Trace instruction_{.refs = {}, .address_bits = 32,
                            .kind = trace::StreamKind::kInstruction,
                            .name = {}};
  trace::Trace data_{.refs = {}, .address_bits = 32,
                     .kind = trace::StreamKind::kData, .name = {}};
};

enum class StopReason : std::uint8_t {
  kHalted,        // executed halt
  kStepLimit,     // ran out of the step budget
  kBadAccess,     // memory access out of range or misaligned
  kBadInstruction // undecodable opcode
};

class Cpu {
 public:
  // `memory_bytes` must cover text, data and stack; sp starts at the top.
  explicit Cpu(const isa::Program& program,
               std::size_t memory_bytes = 1u << 20);

  void set_observer(MemoryObserver* observer) { observer_ = observer; }

  // Executes until halt or the step limit; returns why it stopped.
  StopReason Run(std::uint64_t max_steps = 200'000'000);

  std::uint32_t reg(std::uint8_t index) const { return regs_[index]; }
  void set_reg(std::uint8_t index, std::uint32_t value) {
    if (index != 0) regs_[index] = value;
  }
  std::uint32_t pc() const { return pc_; }
  std::uint64_t retired() const { return retired_; }
  const std::string& error() const { return error_; }

  // Little-endian memory access helpers (for test setup / verification;
  // not observed by the tracer).
  std::uint32_t ReadWord(std::uint32_t byte_address) const;
  void WriteWord(std::uint32_t byte_address, std::uint32_t value);
  std::uint8_t ReadByte(std::uint32_t byte_address) const;
  std::vector<std::uint8_t> ReadBlock(std::uint32_t byte_address,
                                      std::size_t length) const;

  // Bytes emitted by outb/outw, in order.
  const std::vector<std::uint8_t>& output() const { return output_; }

 private:
  bool CheckAccess(std::uint32_t byte_address, std::uint32_t size);

  std::vector<std::uint8_t> memory_;
  std::array<std::uint32_t, 32> regs_{};
  std::uint32_t pc_ = 0;
  std::uint32_t text_base_ = 0;
  std::uint32_t text_limit_ = 0;
  std::uint64_t retired_ = 0;
  std::vector<std::uint8_t> output_;
  MemoryObserver* observer_ = nullptr;
  std::string error_;
};

// Convenience: assemble, run, and return the collected traces.
struct RunResult {
  StopReason stop = StopReason::kHalted;
  trace::Trace instruction_trace;
  trace::Trace data_trace;
  trace::AccessSequence combined;  // filled only when requested
  std::vector<std::uint8_t> output;
  std::uint64_t retired = 0;
};

RunResult RunProgram(const isa::Program& program, const std::string& name,
                     std::uint64_t max_steps = 200'000'000,
                     bool keep_combined = false);

}  // namespace ces::sim
