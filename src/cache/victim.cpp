#include "cache/victim.hpp"

namespace ces::cache {

VictimCache::VictimCache(const CacheConfig& config,
                         std::uint32_t victim_entries)
    : main_(config),
      line_bits_(config.line_bits()),
      entries_(victim_entries) {}

bool VictimCache::ProbeAndRemove(std::uint32_t line) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].valid && entries_[i].line == line) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      entries_.push_back(Entry{});  // keep the capacity constant
      return true;
    }
  }
  return false;
}

void VictimCache::Insert(std::uint32_t line) {
  if (entries_.empty()) return;
  entries_.pop_back();  // drop the LRU (or a spare invalid) entry
  entries_.insert(entries_.begin(), Entry{.line = line, .valid = true});
}

void VictimCache::Access(std::uint32_t addr, bool is_write) {
  Eviction eviction;
  const AccessOutcome outcome = main_.Access(addr, is_write, &eviction);
  // On a miss, probe for the requested line BEFORE buffering the new victim:
  // with the swap semantics the victim takes the slot the requested line
  // frees, so a one-entry buffer must still catch a two-line ping-pong.
  bool victim_hit = false;
  if (outcome != AccessOutcome::kHit) {
    victim_hit = ProbeAndRemove(addr >> line_bits_);
  }
  if (eviction.valid) Insert(eviction.addr >> line_bits_);
  if (outcome != AccessOutcome::kHit) {
    if (victim_hit) {
      ++stats_.victim_hits;
    } else {
      ++stats_.memory_fetches;
    }
  }
  stats_.main = main_.stats();
}

VictimStats SimulateVictim(const trace::Trace& trace,
                           const CacheConfig& config,
                           std::uint32_t victim_entries) {
  VictimCache cache(config, victim_entries);
  for (std::uint32_t ref : trace.refs) cache.Access(ref);
  return cache.stats();
}

}  // namespace ces::cache
