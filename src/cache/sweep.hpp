// Design-space sweeps over (depth, associativity) using the simulator.
//
// These are the "traditional approach" engines of Figure 1a: every candidate
// configuration is simulated in full. They exist (a) as baselines for the
// run-time comparison and (b) as oracles for the analytical engine's results.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "trace/trace.hpp"

namespace ces::support {
class MetricsRegistry;
class ThreadPool;
}  // namespace ces::support

namespace ces::cache {

struct SweepPoint {
  std::uint32_t depth = 1;
  std::uint32_t assoc = 1;
  CacheStats stats;
};

// Accounting of which configurations of the requested rectangle the sweep
// actually simulated. A config is skipped (never simulated) when it is
// invalid for the policy — e.g. PLRU with a non-power-of-two associativity —
// so a caller asking for max_assoc it can never reach sees it here instead
// of silently missing points; pruned counts configs the stop_at_zero early
// exit proved unnecessary.
struct SweepCoverage {
  std::uint64_t requested = 0;        // (max_index_bits + 1) * max_assoc
  std::uint64_t simulated = 0;        // points actually simulated
  std::uint64_t skipped_invalid = 0;  // invalid configs silently skipped
  std::uint64_t pruned_by_stop = 0;   // cut off by the zero-miss early exit
};

// Simulates every depth in {2^0..2^max_index_bits} x assoc in {1..max_assoc}.
// If stop_at_zero is set, stops raising the associativity for a depth once a
// configuration reaches zero non-cold misses (larger A cannot help).
//
// Depths are independent (each owns its result slot and its serial assoc
// loop, which keeps the early exit exact), so with `jobs > 1` they are
// simulated concurrently on a support::ThreadPool; the returned points — and
// the coverage counts — are identical for every jobs value. jobs == 0 uses
// the hardware concurrency, jobs == 1 is the serial code path.
// When `metrics` is provided, records the coverage counts as counters
// ("sweep.configs_requested", "sweep.configs_simulated",
// "sweep.configs_skipped_invalid", "sweep.configs_pruned"), the total
// references pushed through the simulator ("sweep.refs_simulated"), the
// wall-clock span "sweep.seconds", and two deterministic histograms —
// "sweep.shard_configs" (simulated configs per depth shard) and
// "sweep.warm_misses" (warm misses per simulated config). Counters and
// histograms are deterministic for every jobs value; only the span varies.
// With a global TraceSink installed the sweep emits one "sweep.depth" span
// per depth shard; with a global ProgressReporter it reports per-config
// progress.
std::vector<SweepPoint> ExhaustiveSweep(const trace::Trace& trace,
                                        std::uint32_t max_index_bits,
                                        std::uint32_t max_assoc,
                                        ReplacementPolicy policy =
                                            ReplacementPolicy::kLru,
                                        bool stop_at_zero = true,
                                        std::uint32_t jobs = 1,
                                        SweepCoverage* coverage = nullptr,
                                        support::MetricsRegistry* metrics =
                                            nullptr);

// For one depth, finds the smallest associativity with warm misses <= k by
// linearly raising A and re-simulating — one turn of the traditional
// design-simulate-analyze crank. Returns the chosen A and the number of
// simulator passes spent.
struct IterativeResult {
  std::uint32_t assoc = 1;
  std::uint64_t warm_misses = 0;
  std::uint32_t simulations = 0;
};

IterativeResult IterativeSearch(const trace::Trace& trace,
                                std::uint32_t depth, std::uint64_t k,
                                std::uint32_t max_assoc);

}  // namespace ces::cache
