// Design-space sweeps over (depth, associativity) using the simulator.
//
// These are the "traditional approach" engines of Figure 1a: every candidate
// configuration is simulated in full. They exist (a) as baselines for the
// run-time comparison and (b) as oracles for the analytical engine's results.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "trace/trace.hpp"

namespace ces::cache {

struct SweepPoint {
  std::uint32_t depth = 1;
  std::uint32_t assoc = 1;
  CacheStats stats;
};

// Simulates every depth in {2^0..2^max_index_bits} x assoc in {1..max_assoc}.
// If stop_at_zero is set, stops raising the associativity for a depth once a
// configuration reaches zero non-cold misses (larger A cannot help).
std::vector<SweepPoint> ExhaustiveSweep(const trace::Trace& trace,
                                        std::uint32_t max_index_bits,
                                        std::uint32_t max_assoc,
                                        ReplacementPolicy policy =
                                            ReplacementPolicy::kLru,
                                        bool stop_at_zero = true);

// For one depth, finds the smallest associativity with warm misses <= k by
// linearly raising A and re-simulating — one turn of the traditional
// design-simulate-analyze crank. Returns the chosen A and the number of
// simulator passes spent.
struct IterativeResult {
  std::uint32_t assoc = 1;
  std::uint64_t warm_misses = 0;
  std::uint32_t simulations = 0;
};

IterativeResult IterativeSearch(const trace::Trace& trace,
                                std::uint32_t depth, std::uint64_t k,
                                std::uint32_t max_assoc);

}  // namespace ces::cache
