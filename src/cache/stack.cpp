#include "cache/stack.hpp"

#include <algorithm>
#include <string>

#include "support/check.hpp"
#include "support/fenwick.hpp"
#include "support/metrics.hpp"
#include "support/pool.hpp"
#include "support/progress.hpp"
#include "support/trace_event.hpp"

namespace ces::cache {

std::uint64_t StackProfile::MissesAtAssoc(std::uint32_t assoc) const {
  CES_CHECK(assoc >= 1);
  std::uint64_t misses = 0;
  for (std::size_t d = assoc; d < hist.size(); ++d) misses += hist[d];
  return misses;
}

std::uint32_t StackProfile::MinAssocFor(std::uint64_t k) const {
  // Walk the histogram tail from the largest distance down, accumulating the
  // miss count a given associativity would leave; stop at the first A whose
  // tail exceeds k.
  std::uint64_t tail = 0;
  std::uint32_t assoc = hist.empty() ? 1 : static_cast<std::uint32_t>(hist.size());
  for (std::size_t d = hist.size(); d-- > 1;) {
    tail += hist[d];
    if (tail > k) return static_cast<std::uint32_t>(d + 1);
    assoc = static_cast<std::uint32_t>(d);
  }
  return std::max(assoc, 1u);
}

std::uint64_t StackProfile::WarmAccesses() const {
  std::uint64_t total = 0;
  for (std::uint64_t h : hist) total += h;
  return total;
}

namespace {

// Move-to-front pass restricted to sets in [set_begin, set_end). Every
// reference belongs to exactly one set, so ranges partition the work: the
// full profile is the (order-independent) sum of the range profiles.
void ScanSetRange(const trace::StrippedTrace& stripped, std::uint32_t mask,
                  std::size_t set_begin, std::size_t set_end,
                  StackProfile& profile) {
  // One move-to-front stack of reference ids per set. Distances in embedded
  // traces are small, so the linear scan beats an order-statistics tree.
  std::vector<std::vector<std::uint32_t>> stacks(set_end - set_begin);
  for (std::size_t j = 0; j < stripped.ids.size(); ++j) {
    const std::uint32_t id = stripped.ids[j];
    const std::size_t set = stripped.unique[id] & mask;
    if (set < set_begin || set >= set_end) continue;
    auto& stack = stacks[set - set_begin];
    if (stripped.is_first[j]) {
      ++profile.cold;
      stack.insert(stack.begin(), id);
      continue;
    }
    const auto it = std::find(stack.begin(), stack.end(), id);
    CES_DCHECK(it != stack.end());
    const auto distance = static_cast<std::size_t>(it - stack.begin());
    if (distance >= profile.hist.size()) profile.hist.resize(distance + 1, 0);
    ++profile.hist[distance];
    std::rotate(stack.begin(), it, it + 1);
  }
}

// Bennett-Kruskal pass restricted to sets in [set_begin, set_end): per-set
// subsequences scanned with a Fenwick tree of "most recent occurrence"
// marks, so the number of distinct references between two occurrences is a
// range sum.
void ScanSetRangeTree(const trace::StrippedTrace& stripped, std::uint32_t mask,
                      std::size_t set_begin, std::size_t set_end,
                      StackProfile& profile) {
  std::vector<std::vector<std::uint32_t>> sequences(set_end - set_begin);
  for (std::size_t j = 0; j < stripped.ids.size(); ++j) {
    const std::uint32_t id = stripped.ids[j];
    const std::size_t set = stripped.unique[id] & mask;
    if (set < set_begin || set >= set_end) continue;
    sequences[set - set_begin].push_back(id);
  }

  std::vector<std::size_t> last(stripped.unique_count(), 0);
  std::vector<char> seen(stripped.unique_count(), 0);
  for (const auto& sequence : sequences) {
    if (sequence.empty()) continue;
    FenwickTree marks(sequence.size());
    for (std::size_t t = 0; t < sequence.size(); ++t) {
      const std::uint32_t id = sequence[t];
      if (seen[id]) {
        const std::size_t p = last[id];
        const auto distance = static_cast<std::size_t>(
            t >= p + 2 ? marks.RangeSum(p + 1, t - 1) : 0);
        if (distance >= profile.hist.size()) profile.hist.resize(distance + 1, 0);
        ++profile.hist[distance];
        marks.Add(p, -1);
      } else {
        ++profile.cold;
        seen[id] = 1;
      }
      marks.Add(t, +1);
      last[id] = t;
    }
    // Reset the per-reference state touched by this set (ids are disjoint
    // across sets, so a full clear is unnecessary).
    for (std::uint32_t id : sequence) seen[id] = 0;
  }
}

// Sums the per-chunk partial histograms in chunk order. uint64 addition is
// associative and commutative, so the result is identical to the serial scan
// for every chunk count.
void MergePartials(const std::vector<StackProfile>& partials,
                   StackProfile& profile) {
  for (const StackProfile& partial : partials) {
    profile.cold += partial.cold;
    if (partial.hist.size() > profile.hist.size()) {
      profile.hist.resize(partial.hist.size(), 0);
    }
    for (std::size_t d = 0; d < partial.hist.size(); ++d) {
      profile.hist[d] += partial.hist[d];
    }
  }
}

template <typename Scan>
StackProfile ComputeWithScan(const trace::StrippedTrace& stripped,
                             std::uint32_t index_bits,
                             support::ThreadPool* pool, Scan scan) {
  StackProfile profile;
  profile.index_bits = index_bits;
  const std::uint32_t sets = 1u << index_bits;
  const std::uint32_t mask = sets - 1;
  if (pool != nullptr && pool->jobs() > 1 && sets > 1) {
    std::vector<StackProfile> partials(pool->jobs());
    pool->ParallelForChunks(
        sets, [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          scan(stripped, mask, begin, end, partials[chunk]);
        });
    MergePartials(partials, profile);
  } else {
    scan(stripped, mask, 0, sets, profile);
  }
  // Canonical form: hist always has at least the distance-0 bucket so that
  // profiles from different engines compare equal structurally.
  if (profile.hist.empty()) profile.hist.resize(1, 0);
  return profile;
}

}  // namespace

StackProfile ComputeStackProfile(const trace::StrippedTrace& stripped,
                                 std::uint32_t index_bits,
                                 support::ThreadPool* pool) {
  return ComputeWithScan(stripped, index_bits, pool, ScanSetRange);
}

StackProfile ComputeStackProfileTree(const trace::StrippedTrace& stripped,
                                     std::uint32_t index_bits,
                                     support::ThreadPool* pool) {
  return ComputeWithScan(stripped, index_bits, pool, ScanSetRangeTree);
}

std::vector<StackProfile> ComputeAllDepthProfiles(
    const trace::StrippedTrace& stripped, std::uint32_t max_index_bits,
    support::ThreadPool* pool, bool use_tree,
    support::MetricsRegistry* metrics) {
  support::ScopedSpan span(metrics, "stack.all_depths_seconds");
  support::ScopedTraceSpan trace_span("stack.all_depths");
  std::vector<StackProfile> profiles(max_index_bits + 1);
  const auto compute = [&](std::size_t bits) {
    const auto index_bits = static_cast<std::uint32_t>(bits);
    // One profile span per depth: on the parallel path these land on the
    // worker tracks, which is exactly the per-depth load-balance picture.
    support::ScopedTraceSpan depth_span("stack.scan(bits=" +
                                        std::to_string(index_bits) + ")");
    // Each depth's pass is serial: depth-level slots keep the output
    // placement independent of scheduling, and a nested per-set split would
    // run inline anyway.
    profiles[bits] = use_tree ? ComputeStackProfileTree(stripped, index_bits)
                              : ComputeStackProfile(stripped, index_bits);
    support::ProgressReporter::GlobalTick();
  };
  if (pool != nullptr && pool->jobs() > 1) {
    pool->ParallelFor(profiles.size(), compute);
  } else {
    for (std::size_t bits = 0; bits < profiles.size(); ++bits) compute(bits);
  }
  support::MetricsRegistry::Add(metrics, "stack.passes", profiles.size());
  support::MetricsRegistry::Add(
      metrics, "stack.refs_scanned",
      static_cast<std::uint64_t>(profiles.size()) * stripped.size());
  return profiles;
}

}  // namespace ces::cache
