#include "cache/stack.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/fenwick.hpp"

namespace ces::cache {

std::uint64_t StackProfile::MissesAtAssoc(std::uint32_t assoc) const {
  CES_CHECK(assoc >= 1);
  std::uint64_t misses = 0;
  for (std::size_t d = assoc; d < hist.size(); ++d) misses += hist[d];
  return misses;
}

std::uint32_t StackProfile::MinAssocFor(std::uint64_t k) const {
  // Walk the histogram tail from the largest distance down, accumulating the
  // miss count a given associativity would leave; stop at the first A whose
  // tail exceeds k.
  std::uint64_t tail = 0;
  std::uint32_t assoc = hist.empty() ? 1 : static_cast<std::uint32_t>(hist.size());
  for (std::size_t d = hist.size(); d-- > 1;) {
    tail += hist[d];
    if (tail > k) return static_cast<std::uint32_t>(d + 1);
    assoc = static_cast<std::uint32_t>(d);
  }
  return std::max(assoc, 1u);
}

std::uint64_t StackProfile::WarmAccesses() const {
  std::uint64_t total = 0;
  for (std::uint64_t h : hist) total += h;
  return total;
}

StackProfile ComputeStackProfile(const trace::StrippedTrace& stripped,
                                 std::uint32_t index_bits) {
  StackProfile profile;
  profile.index_bits = index_bits;
  const std::uint32_t sets = 1u << index_bits;
  const std::uint32_t mask = sets - 1;

  // One move-to-front stack of reference ids per set. Distances in embedded
  // traces are small, so the linear scan beats an order-statistics tree.
  std::vector<std::vector<std::uint32_t>> stacks(sets);
  for (std::size_t j = 0; j < stripped.ids.size(); ++j) {
    const std::uint32_t id = stripped.ids[j];
    auto& stack = stacks[stripped.unique[id] & mask];
    if (stripped.is_first[j]) {
      ++profile.cold;
      stack.insert(stack.begin(), id);
      continue;
    }
    const auto it = std::find(stack.begin(), stack.end(), id);
    CES_DCHECK(it != stack.end());
    const auto distance = static_cast<std::size_t>(it - stack.begin());
    if (distance >= profile.hist.size()) profile.hist.resize(distance + 1, 0);
    ++profile.hist[distance];
    std::rotate(stack.begin(), it, it + 1);
  }
  // Canonical form: hist always has at least the distance-0 bucket so that
  // profiles from different engines compare equal structurally.
  if (profile.hist.empty()) profile.hist.resize(1, 0);
  return profile;
}

StackProfile ComputeStackProfileTree(const trace::StrippedTrace& stripped,
                                     std::uint32_t index_bits) {
  StackProfile profile;
  profile.index_bits = index_bits;
  const std::uint32_t sets = 1u << index_bits;
  const std::uint32_t mask = sets - 1;

  // Partition the id sequence by set, then run Bennett-Kruskal on each
  // subsequence: a Fenwick tree marks the most recent position of every
  // distinct reference, so the number of distinct references between two
  // occurrences is a range sum.
  std::vector<std::vector<std::uint32_t>> sequences(sets);
  for (std::size_t j = 0; j < stripped.ids.size(); ++j) {
    const std::uint32_t id = stripped.ids[j];
    sequences[stripped.unique[id] & mask].push_back(id);
  }

  std::vector<std::size_t> last(stripped.unique_count(), 0);
  std::vector<bool> seen(stripped.unique_count(), false);
  for (const auto& sequence : sequences) {
    if (sequence.empty()) continue;
    FenwickTree marks(sequence.size());
    for (std::size_t t = 0; t < sequence.size(); ++t) {
      const std::uint32_t id = sequence[t];
      if (seen[id]) {
        const std::size_t p = last[id];
        const auto distance = static_cast<std::size_t>(
            t >= p + 2 ? marks.RangeSum(p + 1, t - 1) : 0);
        if (distance >= profile.hist.size()) profile.hist.resize(distance + 1, 0);
        ++profile.hist[distance];
        marks.Add(p, -1);
      } else {
        ++profile.cold;
        seen[id] = true;
      }
      marks.Add(t, +1);
      last[id] = t;
    }
    // Reset the per-reference state touched by this set (ids are disjoint
    // across sets, so a full clear is unnecessary).
    for (std::uint32_t id : sequence) seen[id] = false;
  }
  // Restore `cold` semantics: the loop above cleared seen[], but cold was
  // already counted exactly once per unique reference.
  if (profile.hist.empty()) profile.hist.resize(1, 0);
  return profile;
}

std::vector<StackProfile> ComputeAllDepthProfiles(
    const trace::StrippedTrace& stripped, std::uint32_t max_index_bits) {
  std::vector<StackProfile> profiles;
  profiles.reserve(max_index_bits + 1);
  for (std::uint32_t bits = 0; bits <= max_index_bits; ++bits) {
    profiles.push_back(ComputeStackProfile(stripped, bits));
  }
  return profiles;
}

}  // namespace ces::cache
