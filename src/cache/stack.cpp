#include "cache/stack.hpp"

#include <algorithm>
#include <string>

#include "support/check.hpp"
#include "support/fenwick.hpp"
#include "support/metrics.hpp"
#include "support/pool.hpp"
#include "support/progress.hpp"
#include "support/trace_event.hpp"

namespace ces::cache {

void StackProfile::FinalizeSolveCache() {
  miss_tail.assign(hist.size() + 1, 0);
  for (std::size_t d = hist.size(); d-- > 0;) {
    miss_tail[d] = miss_tail[d + 1] + hist[d];
  }
}

std::uint64_t StackProfile::MissesAtAssoc(std::uint32_t assoc) const {
  CES_CHECK(assoc >= 1);
  if (!miss_tail.empty()) {
    return assoc < miss_tail.size() ? miss_tail[assoc] : 0;
  }
  std::uint64_t misses = 0;
  for (std::size_t d = assoc; d < hist.size(); ++d) misses += hist[d];
  return misses;
}

std::uint32_t StackProfile::MinAssocFor(std::uint64_t k) const {
  if (!miss_tail.empty()) {
    // miss_tail is non-increasing over a >= 1 and miss_tail[hist.size()] is
    // zero, so the smallest admissible associativity is a binary search away.
    std::uint32_t lo = 1;
    auto hi = static_cast<std::uint32_t>(miss_tail.size() - 1);
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (miss_tail[mid] <= k) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }
  // Walk the histogram tail from the largest distance down, accumulating the
  // miss count a given associativity would leave; stop at the first A whose
  // tail exceeds k.
  std::uint64_t tail = 0;
  std::uint32_t assoc = hist.empty() ? 1 : static_cast<std::uint32_t>(hist.size());
  for (std::size_t d = hist.size(); d-- > 1;) {
    tail += hist[d];
    if (tail > k) return static_cast<std::uint32_t>(d + 1);
    assoc = static_cast<std::uint32_t>(d);
  }
  return std::max(assoc, 1u);
}

std::uint64_t StackProfile::WarmAccesses() const {
  std::uint64_t total = 0;
  for (std::uint64_t h : hist) total += h;
  return total;
}

namespace {

// Reusable scan state. One instance lives across all the depths a caller (or
// pool chunk) computes, so after the first pass warms it up the per-depth
// baseline allocates nothing per pass: the per-set buckets keep their
// capacity, the per-reference arrays are epoch-stamped instead of cleared,
// and the Fenwick storage is a single high-water-mark buffer.
struct ScanScratch {
  // Per-set MTF stacks (move-to-front scan) or per-set subsequences
  // (Bennett-Kruskal scan), indexed by set - set_begin.
  std::vector<std::vector<std::uint32_t>> buckets;
  std::vector<std::size_t> last;        // per id: position in its sequence
  std::vector<std::uint32_t> epoch_of;  // per id: epoch of last sighting
  std::uint32_t epoch = 0;
  std::vector<std::int64_t> fenwick;    // backing store for FenwickView

  void PrepareBuckets(std::size_t count) {
    if (buckets.size() < count) buckets.resize(count);
    for (std::size_t i = 0; i < count; ++i) buckets[i].clear();
  }

  // A fresh epoch distinct from every stamp in epoch_of; `ids` entries must
  // cover at least [0, ids). Handles (the purely theoretical) counter wrap.
  void NextEpoch(std::size_t ids) {
    if (epoch_of.size() < ids) epoch_of.resize(ids, 0);
    if (last.size() < ids) last.resize(ids, 0);
    if (epoch == ~0u) {
      std::fill(epoch_of.begin(), epoch_of.end(), 0);
      epoch = 0;
    }
    ++epoch;
  }
};

// Move-to-front pass restricted to sets in [set_begin, set_end). Every
// reference belongs to exactly one set, so ranges partition the work: the
// full profile is the (order-independent) sum of the range profiles.
void ScanSetRange(const trace::StrippedTrace& stripped, std::uint32_t mask,
                  std::size_t set_begin, std::size_t set_end,
                  StackProfile& profile, ScanScratch& scratch) {
  // One move-to-front stack of reference ids per set. Distances in embedded
  // traces are small, so the linear scan beats an order-statistics tree.
  scratch.PrepareBuckets(set_end - set_begin);
  for (std::size_t j = 0; j < stripped.ids.size(); ++j) {
    const std::uint32_t id = stripped.ids[j];
    const std::size_t set = stripped.unique[id] & mask;
    if (set < set_begin || set >= set_end) continue;
    auto& stack = scratch.buckets[set - set_begin];
    if (stripped.is_first[j]) {
      ++profile.cold;
      stack.insert(stack.begin(), id);
      continue;
    }
    const auto it = std::find(stack.begin(), stack.end(), id);
    CES_DCHECK(it != stack.end());
    const auto distance = static_cast<std::size_t>(it - stack.begin());
    if (distance >= profile.hist.size()) profile.hist.resize(distance + 1, 0);
    ++profile.hist[distance];
    std::rotate(stack.begin(), it, it + 1);
  }
}

// Bennett-Kruskal pass restricted to sets in [set_begin, set_end): per-set
// subsequences scanned with a Fenwick tree of "most recent occurrence"
// marks, so the number of distinct references between two occurrences is a
// range sum.
void ScanSetRangeTree(const trace::StrippedTrace& stripped, std::uint32_t mask,
                      std::size_t set_begin, std::size_t set_end,
                      StackProfile& profile, ScanScratch& scratch) {
  scratch.PrepareBuckets(set_end - set_begin);
  for (std::size_t j = 0; j < stripped.ids.size(); ++j) {
    const std::uint32_t id = stripped.ids[j];
    const std::size_t set = stripped.unique[id] & mask;
    if (set < set_begin || set >= set_end) continue;
    scratch.buckets[set - set_begin].push_back(id);
  }

  for (std::size_t bucket = 0; bucket < set_end - set_begin; ++bucket) {
    const auto& sequence = scratch.buckets[bucket];
    if (sequence.empty()) continue;
    // Epoch stamping makes the per-reference "seen this set yet?" state
    // reusable without any reset loop; ids are disjoint across sets.
    scratch.NextEpoch(stripped.unique_count());
    if (scratch.fenwick.size() < sequence.size() + 1) {
      scratch.fenwick.resize(sequence.size() + 1, 0);
    }
    FenwickView marks(scratch.fenwick.data(), sequence.size());
    for (std::size_t t = 0; t < sequence.size(); ++t) {
      const std::uint32_t id = sequence[t];
      if (scratch.epoch_of[id] == scratch.epoch) {
        const std::size_t p = scratch.last[id];
        const auto distance = static_cast<std::size_t>(
            t >= p + 2 ? marks.RangeSum(p + 1, t - 1) : 0);
        if (distance >= profile.hist.size()) profile.hist.resize(distance + 1, 0);
        ++profile.hist[distance];
        marks.Add(p, -1);
      } else {
        ++profile.cold;
        scratch.epoch_of[id] = scratch.epoch;
      }
      marks.Add(t, +1);
      scratch.last[id] = t;
    }
    marks.Clear();
  }
}

// Sums the per-chunk partial histograms in chunk order. uint64 addition is
// associative and commutative, so the result is identical to the serial scan
// for every chunk count.
void MergePartials(const std::vector<StackProfile>& partials,
                   StackProfile& profile) {
  for (const StackProfile& partial : partials) {
    profile.cold += partial.cold;
    if (partial.hist.size() > profile.hist.size()) {
      profile.hist.resize(partial.hist.size(), 0);
    }
    for (std::size_t d = 0; d < partial.hist.size(); ++d) {
      profile.hist[d] += partial.hist[d];
    }
  }
}

template <typename Scan>
StackProfile ComputeWithScan(const trace::StrippedTrace& stripped,
                             std::uint32_t index_bits,
                             support::ThreadPool* pool, Scan scan,
                             ScanScratch* scratch) {
  StackProfile profile;
  profile.index_bits = index_bits;
  const std::uint32_t sets = 1u << index_bits;
  const std::uint32_t mask = sets - 1;
  if (pool != nullptr && pool->jobs() > 1 && sets > 1) {
    std::vector<StackProfile> partials(pool->jobs());
    std::vector<ScanScratch> scratches(pool->jobs());
    pool->ParallelForChunks(
        sets, [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          scan(stripped, mask, begin, end, partials[chunk], scratches[chunk]);
        });
    MergePartials(partials, profile);
  } else {
    ScanScratch local;
    scan(stripped, mask, 0, sets, profile, scratch ? *scratch : local);
  }
  // Canonical form: hist always has at least the distance-0 bucket so that
  // profiles from different engines compare equal structurally.
  if (profile.hist.empty()) profile.hist.resize(1, 0);
  return profile;
}

}  // namespace

StackProfile ComputeStackProfile(const trace::StrippedTrace& stripped,
                                 std::uint32_t index_bits,
                                 support::ThreadPool* pool) {
  return ComputeWithScan(stripped, index_bits, pool, ScanSetRange, nullptr);
}

StackProfile ComputeStackProfileTree(const trace::StrippedTrace& stripped,
                                     std::uint32_t index_bits,
                                     support::ThreadPool* pool) {
  return ComputeWithScan(stripped, index_bits, pool, ScanSetRangeTree, nullptr);
}

std::vector<StackProfile> ComputeAllDepthProfiles(
    const trace::StrippedTrace& stripped, std::uint32_t max_index_bits,
    support::ThreadPool* pool, bool use_tree,
    support::MetricsRegistry* metrics) {
  support::ScopedSpan span(metrics, "stack.all_depths_seconds");
  support::ScopedTraceSpan trace_span("stack.all_depths");
  std::vector<StackProfile> profiles(max_index_bits + 1);
  const auto compute = [&](std::size_t bits, ScanScratch& scratch) {
    const auto index_bits = static_cast<std::uint32_t>(bits);
    // One profile span per depth: on the parallel path these land on the
    // worker tracks, which is exactly the per-depth load-balance picture.
    support::ScopedTraceSpan depth_span("stack.scan(bits=" +
                                        std::to_string(index_bits) + ")");
    // Each depth's pass is serial: depth-level slots keep the output
    // placement independent of scheduling, and a nested per-set split would
    // run inline anyway. The chunk's scratch carries over between depths.
    profiles[bits] =
        use_tree ? ComputeWithScan(stripped, index_bits, nullptr,
                                   ScanSetRangeTree, &scratch)
                 : ComputeWithScan(stripped, index_bits, nullptr, ScanSetRange,
                                   &scratch);
    support::ProgressReporter::GlobalTick();
  };
  if (pool != nullptr && pool->jobs() > 1) {
    std::vector<ScanScratch> scratches(pool->jobs());
    pool->ParallelForChunks(
        profiles.size(),
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          for (std::size_t bits = begin; bits < end; ++bits) {
            compute(bits, scratches[chunk]);
          }
        });
  } else {
    ScanScratch scratch;
    for (std::size_t bits = 0; bits < profiles.size(); ++bits) {
      compute(bits, scratch);
    }
  }
  support::MetricsRegistry::Add(metrics, "stack.passes", profiles.size());
  support::MetricsRegistry::Add(
      metrics, "stack.refs_scanned",
      static_cast<std::uint64_t>(profiles.size()) * stripped.size());
  return profiles;
}

}  // namespace ces::cache
