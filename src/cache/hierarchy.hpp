// Two-level memory hierarchy simulator (extension).
//
// The paper's future work lists deeper memory-system exploration; this
// module provides the substrate: split L1 instruction/data caches backed by
// a unified L2, driven by the merged program-order access stream the CPU
// simulator records. L1 misses and L1 dirty-line evictions propagate to L2;
// L2 misses count as main-memory accesses. A simple additive latency model
// turns the counts into an average memory access time.
#pragma once

#include "cache/cache.hpp"
#include "trace/trace.hpp"

namespace ces::cache {

struct HierarchyConfig {
  CacheConfig l1i{.depth = 64, .assoc = 1};
  CacheConfig l1d{.depth = 64, .assoc = 2};
  CacheConfig l2{.depth = 1024, .assoc = 4};
};

struct LatencyModel {
  double l1_ns = 1.0;
  double l2_ns = 8.0;
  double memory_ns = 60.0;
};

struct HierarchyStats {
  CacheStats l1i;
  CacheStats l1d;
  CacheStats l2;
  std::uint64_t memory_accesses = 0;  // L2 misses + L2 writebacks

  std::uint64_t TotalL1Accesses() const {
    return l1i.accesses + l1d.accesses;
  }

  // Average memory access time over all L1 accesses.
  double Amat(const LatencyModel& latency = {}) const;
};

class TwoLevelCache {
 public:
  explicit TwoLevelCache(const HierarchyConfig& config);

  void Access(const trace::Access& access);
  HierarchyStats stats() const;

 private:
  // Forwards one reference to L2, recording a memory access on an L2 miss.
  void AccessL2(std::uint32_t addr, bool is_write);

  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  std::uint64_t extra_memory_accesses_ = 0;
};

HierarchyStats SimulateHierarchy(const trace::AccessSequence& accesses,
                                 const HierarchyConfig& config);

}  // namespace ces::cache
