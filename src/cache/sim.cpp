#include "cache/sim.hpp"

namespace ces::cache {

CacheStats SimulateTrace(const trace::Trace& trace,
                         const CacheConfig& config) {
  Cache cache(config);
  for (std::uint32_t ref : trace.refs) {
    cache.Access(ref, /*is_write=*/false);
  }
  return cache.stats();
}

std::uint64_t WarmMisses(const trace::Trace& trace, std::uint32_t depth,
                         std::uint32_t assoc) {
  CacheConfig config;
  config.depth = depth;
  config.assoc = assoc;
  config.replacement = ReplacementPolicy::kLru;
  return SimulateTrace(trace, config).warm_misses();
}

}  // namespace ces::cache
