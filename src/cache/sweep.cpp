#include "cache/sweep.hpp"

#include <string>

#include "cache/sim.hpp"
#include "support/metrics.hpp"
#include "support/pool.hpp"
#include "support/progress.hpp"
#include "support/trace_event.hpp"

namespace ces::cache {
namespace {

// One depth's serial associativity loop — the parallel unit. The loop stays
// serial so the stop_at_zero early exit sees the same miss counts in the same
// order as the all-serial sweep; each depth writes its own slot.
void SweepOneDepth(const trace::Trace& trace, std::uint32_t bits,
                   std::uint32_t max_assoc, ReplacementPolicy policy,
                   bool stop_at_zero, std::vector<SweepPoint>& points,
                   SweepCoverage& coverage) {
  support::ScopedTraceSpan span("sweep.depth(bits=" + std::to_string(bits) +
                                ")");
  for (std::uint32_t assoc = 1; assoc <= max_assoc; ++assoc) {
    CacheConfig config;
    config.depth = 1u << bits;
    config.assoc = assoc;
    config.replacement = policy;
    if (!config.IsValid()) {
      ++coverage.skipped_invalid;
      continue;
    }
    SweepPoint point;
    point.depth = config.depth;
    point.assoc = assoc;
    point.stats = SimulateTrace(trace, config);
    ++coverage.simulated;
    support::ProgressReporter::GlobalTick();
    const bool done = stop_at_zero && point.stats.warm_misses() == 0;
    points.push_back(point);
    if (done) {
      coverage.pruned_by_stop += max_assoc - assoc;
      break;
    }
  }
}

}  // namespace

std::vector<SweepPoint> ExhaustiveSweep(const trace::Trace& trace,
                                        std::uint32_t max_index_bits,
                                        std::uint32_t max_assoc,
                                        ReplacementPolicy policy,
                                        bool stop_at_zero, std::uint32_t jobs,
                                        SweepCoverage* coverage,
                                        support::MetricsRegistry* metrics) {
  support::ScopedSpan span(metrics, "sweep.seconds");
  support::ScopedTraceSpan trace_span("sweep");
  const std::size_t levels = max_index_bits + 1;
  if (auto* progress = support::ProgressReporter::Global()) {
    progress->BeginPhase("sweep configs",
                         static_cast<std::uint64_t>(levels) * max_assoc);
  }
  std::vector<std::vector<SweepPoint>> per_depth(levels);
  std::vector<SweepCoverage> per_depth_coverage(levels);

  support::ThreadPool pool(jobs == 1 ? 1 : jobs, metrics);
  pool.ParallelFor(levels, [&](std::size_t bits) {
    SweepOneDepth(trace, static_cast<std::uint32_t>(bits), max_assoc, policy,
                  stop_at_zero, per_depth[bits], per_depth_coverage[bits]);
  });
  if (auto* progress = support::ProgressReporter::Global()) {
    progress->EndPhase();
  }

  // Concatenate in depth order — the exact ordering of the serial sweep.
  std::vector<SweepPoint> points;
  SweepCoverage totals;
  totals.requested = static_cast<std::uint64_t>(levels) * max_assoc;
  for (std::size_t bits = 0; bits < levels; ++bits) {
    points.insert(points.end(), per_depth[bits].begin(), per_depth[bits].end());
    totals.simulated += per_depth_coverage[bits].simulated;
    totals.skipped_invalid += per_depth_coverage[bits].skipped_invalid;
    totals.pruned_by_stop += per_depth_coverage[bits].pruned_by_stop;
  }
  if (coverage != nullptr) *coverage = totals;
  if (metrics != nullptr) {
    metrics->Add("sweep.configs_requested", totals.requested);
    metrics->Add("sweep.configs_simulated", totals.simulated);
    metrics->Add("sweep.configs_skipped_invalid", totals.skipped_invalid);
    metrics->Add("sweep.configs_pruned", totals.pruned_by_stop);
    metrics->Add("sweep.refs_simulated", totals.simulated * trace.size());
    // Distributional shape of the sweep, recorded on the calling thread in
    // depth order from the merged results, so the histograms — like the
    // coverage counters — are identical for every jobs value.
    for (std::size_t bits = 0; bits < levels; ++bits) {
      metrics->ObserveHistogram("sweep.shard_configs",
                                per_depth[bits].size());
    }
    for (const SweepPoint& point : points) {
      metrics->ObserveHistogram("sweep.warm_misses",
                                point.stats.warm_misses());
    }
  }
  return points;
}

IterativeResult IterativeSearch(const trace::Trace& trace,
                                std::uint32_t depth, std::uint64_t k,
                                std::uint32_t max_assoc) {
  IterativeResult result;
  for (std::uint32_t assoc = 1; assoc <= max_assoc; ++assoc) {
    ++result.simulations;
    const std::uint64_t misses = WarmMisses(trace, depth, assoc);
    if (misses <= k) {
      result.assoc = assoc;
      result.warm_misses = misses;
      return result;
    }
  }
  result.assoc = max_assoc;
  result.warm_misses = WarmMisses(trace, depth, max_assoc);
  return result;
}

}  // namespace ces::cache
