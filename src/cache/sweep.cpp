#include "cache/sweep.hpp"

#include "cache/sim.hpp"

namespace ces::cache {

std::vector<SweepPoint> ExhaustiveSweep(const trace::Trace& trace,
                                        std::uint32_t max_index_bits,
                                        std::uint32_t max_assoc,
                                        ReplacementPolicy policy,
                                        bool stop_at_zero) {
  std::vector<SweepPoint> points;
  for (std::uint32_t bits = 0; bits <= max_index_bits; ++bits) {
    for (std::uint32_t assoc = 1; assoc <= max_assoc; ++assoc) {
      CacheConfig config;
      config.depth = 1u << bits;
      config.assoc = assoc;
      config.replacement = policy;
      if (!config.IsValid()) continue;
      SweepPoint point;
      point.depth = config.depth;
      point.assoc = assoc;
      point.stats = SimulateTrace(trace, config);
      const bool done = stop_at_zero && point.stats.warm_misses() == 0;
      points.push_back(point);
      if (done) break;
    }
  }
  return points;
}

IterativeResult IterativeSearch(const trace::Trace& trace,
                                std::uint32_t depth, std::uint64_t k,
                                std::uint32_t max_assoc) {
  IterativeResult result;
  for (std::uint32_t assoc = 1; assoc <= max_assoc; ++assoc) {
    ++result.simulations;
    const std::uint64_t misses = WarmMisses(trace, depth, assoc);
    if (misses <= k) {
      result.assoc = assoc;
      result.warm_misses = misses;
      return result;
    }
  }
  result.assoc = max_assoc;
  result.warm_misses = WarmMisses(trace, depth, max_assoc);
  return result;
}

}  // namespace ces::cache
