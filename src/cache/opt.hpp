// Belady's optimal (OPT/MIN) replacement analysis.
//
// OPT evicts the resident line whose next use lies farthest in the future —
// unrealisable in hardware, but the gold standard a policy study compares
// against. Since the LRU-exact analytical explorer picks instances by LRU
// misses, the OPT gap quantifies how much of the remaining headroom any
// smarter replacement policy could still claim at those instances.
//
// Computed offline per set from the trace with precomputed next-use chains;
// cost O(N * assoc) per configuration.
#pragma once

#include <cstdint>

#include "trace/strip.hpp"

namespace ces::cache {

// Non-cold misses of a (2^index_bits, assoc) cache under OPT replacement.
std::uint64_t OptWarmMisses(const trace::StrippedTrace& stripped,
                            std::uint32_t index_bits, std::uint32_t assoc);

}  // namespace ces::cache
