#include "cache/cache.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ces::cache {

const char* ToString(WritePolicy policy) {
  return policy == WritePolicy::kWriteBackAllocate ? "wb" : "wt";
}

const char* ToString(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "lru";
    case ReplacementPolicy::kFifo:
      return "fifo";
    case ReplacementPolicy::kRandom:
      return "random";
    case ReplacementPolicy::kPlru:
      return "plru";
  }
  return "?";
}

std::string CacheConfig::ToString() const {
  return "D=" + std::to_string(depth) + " A=" + std::to_string(assoc) +
         " L=" + std::to_string(line_words) + " " +
         ces::cache::ToString(replacement) + "/" +
         ces::cache::ToString(write_policy);
}

Cache::Cache(const CacheConfig& config) : config_(config), rng_(0xCACE5EED) {
  CES_CHECK(config_.IsValid());
  ways_.assign(static_cast<std::size_t>(config_.depth) * config_.assoc, Way{});
  order_.resize(ways_.size());
  for (std::uint32_t set = 0; set < config_.depth; ++set) {
    for (std::uint32_t way = 0; way < config_.assoc; ++way) {
      order_[static_cast<std::size_t>(set) * config_.assoc + way] = way;
    }
  }
  if (config_.replacement == ReplacementPolicy::kPlru) {
    plru_bits_.assign(static_cast<std::size_t>(config_.depth) * config_.assoc,
                      0);
  }
}

void Cache::Reset() { *this = Cache(config_); }

AccessOutcome Cache::Access(std::uint32_t addr, bool is_write,
                            Eviction* eviction) {
  if (eviction != nullptr) *eviction = Eviction{};
  ++stats_.accesses;
  const std::uint32_t line = addr >> config_.line_bits();
  const std::uint32_t set = line & (config_.depth - 1);
  const std::uint32_t tag = line >> config_.index_bits();
  const std::size_t base = static_cast<std::size_t>(set) * config_.assoc;

  const bool write_through =
      config_.write_policy == WritePolicy::kWriteThroughNoAllocate;
  if (write_through && is_write) ++stats_.write_throughs;

  for (std::uint32_t way = 0; way < config_.assoc; ++way) {
    Way& entry = ways_[base + way];
    if (entry.valid && entry.tag == tag) {
      ++stats_.hits;
      if (is_write && !write_through) entry.dirty = true;
      TouchOnHit(set, way);
      return AccessOutcome::kHit;
    }
  }

  ++stats_.misses;
  const bool cold = touched_lines_.insert(line).second;
  if (cold) ++stats_.cold_misses;

  if (write_through && is_write) {
    // No-allocate: the write went straight to memory; the set is untouched.
    return cold ? AccessOutcome::kColdMiss : AccessOutcome::kConflictMiss;
  }

  const std::uint32_t victim = PickVictim(set);
  Way& entry = ways_[base + victim];
  if (entry.valid) {
    ++stats_.evictions;
    if (entry.dirty) ++stats_.writebacks;
    if (eviction != nullptr) {
      eviction->valid = true;
      eviction->dirty = entry.dirty;
      eviction->addr = ((entry.tag << config_.index_bits()) | set)
                       << config_.line_bits();
    }
  }
  entry = Way{.tag = tag, .valid = true, .dirty = is_write};
  TouchOnFill(set, victim);
  return cold ? AccessOutcome::kColdMiss : AccessOutcome::kConflictMiss;
}

std::uint32_t Cache::PickVictim(std::uint32_t set) {
  const std::size_t base = static_cast<std::size_t>(set) * config_.assoc;
  for (std::uint32_t way = 0; way < config_.assoc; ++way) {
    if (!ways_[base + way].valid) return way;
  }
  switch (config_.replacement) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo:
      return order_[base + config_.assoc - 1];
    case ReplacementPolicy::kRandom:
      return static_cast<std::uint32_t>(rng_.NextBounded(config_.assoc));
    case ReplacementPolicy::kPlru: {
      std::uint32_t node = 1;
      while (node < config_.assoc) {
        node = node * 2 + plru_bits_[base + node];
      }
      return node - config_.assoc;
    }
  }
  return 0;
}

void Cache::TouchOnHit(std::uint32_t set, std::uint32_t way) {
  // FIFO ignores hits; random keeps no state.
  if (config_.replacement == ReplacementPolicy::kLru) {
    const std::size_t base = static_cast<std::size_t>(set) * config_.assoc;
    auto begin = order_.begin() + static_cast<std::ptrdiff_t>(base);
    auto end = begin + config_.assoc;
    auto it = std::find(begin, end, way);
    CES_DCHECK(it != end);
    std::rotate(begin, it, it + 1);
  } else if (config_.replacement == ReplacementPolicy::kPlru) {
    TouchOnFill(set, way);
  }
}

void Cache::TouchOnFill(std::uint32_t set, std::uint32_t way) {
  const std::size_t base = static_cast<std::size_t>(set) * config_.assoc;
  switch (config_.replacement) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      auto begin = order_.begin() + static_cast<std::ptrdiff_t>(base);
      auto end = begin + config_.assoc;
      auto it = std::find(begin, end, way);
      CES_DCHECK(it != end);
      std::rotate(begin, it, it + 1);
      break;
    }
    case ReplacementPolicy::kRandom:
      break;
    case ReplacementPolicy::kPlru: {
      std::uint32_t levels = 0;
      while ((1u << levels) < config_.assoc) ++levels;
      std::uint32_t node = 1;
      for (std::uint32_t l = levels; l-- > 0;) {
        const std::uint32_t direction = (way >> l) & 1u;
        plru_bits_[base + node] = static_cast<std::uint8_t>(direction ^ 1u);
        node = node * 2 + direction;
      }
      break;
    }
  }
}

}  // namespace ces::cache
