#include "cache/opt.hpp"

#include <limits>
#include <vector>

#include "support/check.hpp"

namespace ces::cache {

std::uint64_t OptWarmMisses(const trace::StrippedTrace& stripped,
                            std::uint32_t index_bits, std::uint32_t assoc) {
  CES_CHECK(assoc >= 1);
  constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();
  const std::size_t n = stripped.ids.size();

  // next_use[j] = next position of the same reference after j (kNever if
  // none), built with one backward sweep.
  std::vector<std::size_t> next_use(n, kNever);
  {
    std::vector<std::size_t> upcoming(stripped.unique_count(), kNever);
    for (std::size_t j = n; j-- > 0;) {
      const std::uint32_t id = stripped.ids[j];
      next_use[j] = upcoming[id];
      upcoming[id] = j;
    }
  }

  const std::uint32_t mask = (1u << index_bits) - 1;
  struct Way {
    std::uint32_t id = 0;
    std::size_t next = kNever;
    bool valid = false;
  };
  std::vector<Way> ways(static_cast<std::size_t>(1u << index_bits) * assoc);

  std::uint64_t warm_misses = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t id = stripped.ids[j];
    const std::size_t base =
        static_cast<std::size_t>(stripped.unique[id] & mask) * assoc;

    std::size_t hit_way = kNever;
    std::size_t victim = base;          // way to fill on a miss
    std::size_t farthest = 0;           // victim's next use
    for (std::size_t w = base; w < base + assoc; ++w) {
      if (ways[w].valid && ways[w].id == id) {
        hit_way = w;
        break;
      }
      if (!ways[w].valid) {
        victim = w;
        farthest = kNever;  // empty way always wins
      } else if (farthest != kNever && ways[w].next >= farthest) {
        victim = w;
        farthest = ways[w].next;
      }
    }

    if (hit_way != kNever) {
      ways[hit_way].next = next_use[j];
      continue;
    }
    if (!stripped.is_first[j]) ++warm_misses;
    ways[victim] = Way{.id = id, .next = next_use[j], .valid = true};
  }
  return warm_misses;
}

}  // namespace ces::cache
