// One-pass per-set LRU stack-distance analysis (Mattson et al. [17],
// generalised to set-associative caches by partitioning on the index bits).
//
// For a fixed depth D = 2^index_bits a single pass over the trace yields the
// histogram of per-set stack distances; the number of non-cold misses of a
// D x A LRU cache is then the histogram's tail sum for distances >= A, for
// EVERY A at once. This is the strongest of the "one-pass" baselines the
// paper cites ([16][17]) and doubles as an independent oracle for the
// analytical engine: both must produce identical numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/strip.hpp"

namespace ces::support {
class MetricsRegistry;
class ThreadPool;
}  // namespace ces::support

namespace ces::cache {

struct StackProfile {
  std::uint32_t index_bits = 0;  // depth = 1 << index_bits
  // hist[d] = number of non-cold accesses whose per-set LRU stack distance is
  // exactly d (d = count of distinct same-set lines touched since the
  // previous access to this line). d == 0 accesses hit in any cache.
  std::vector<std::uint64_t> hist;
  std::uint64_t cold = 0;
  // Optional solve cache: miss_tail[a] = sum of hist[d] for d >= a (size
  // hist.size() + 1, non-increasing). Built once by FinalizeSolveCache();
  // empty until then. Not part of the profile's identity — engines compare
  // profiles by hist/cold.
  std::vector<std::uint64_t> miss_tail;

  std::uint32_t depth() const { return 1u << index_bits; }

  // Builds the miss_tail suffix sums so MissesAtAssoc is O(1) and
  // MinAssocFor is O(log hist) — the steady-state hot path when a service
  // batches many K queries against one prelude. Call after hist is final
  // (it caches hist verbatim); idempotent, and must not race with queries,
  // so build it before sharing the profile across threads.
  void FinalizeSolveCache();

  // Non-cold misses of a (depth, assoc) LRU cache. O(1) with the solve
  // cache, O(hist) without.
  std::uint64_t MissesAtAssoc(std::uint32_t assoc) const;

  // Smallest associativity whose non-cold miss count is <= k. This is the
  // paper's per-depth answer. O(log hist) with the solve cache, O(hist)
  // without.
  std::uint32_t MinAssocFor(std::uint64_t k) const;

  // Smallest associativity with zero non-cold misses (the paper's A_zero).
  std::uint32_t ZeroMissAssoc() const { return MinAssocFor(0); }

  // Total non-cold accesses recorded.
  std::uint64_t WarmAccesses() const;
};

// Single pass over the stripped trace for one depth (move-to-front stacks;
// O(N * mean stack depth), the fastest choice for embedded traces whose
// reuse distances are short).
//
// When `pool` is non-null (and has more than one job), the set index space
// is statically partitioned into contiguous ranges, one per pool chunk: every
// reference belongs to exactly one set, so per-set stacks — and therefore the
// per-chunk partial histograms — are independent, and summing the partials in
// chunk order yields a histogram bit-identical to the serial pass for every
// worker count.
StackProfile ComputeStackProfile(const trace::StrippedTrace& stripped,
                                 std::uint32_t index_bits,
                                 support::ThreadPool* pool = nullptr);

// Same result via the Bennett-Kruskal algorithm: per-set subsequences with a
// Fenwick tree of "most recent occurrence" marks, O(N log N) regardless of
// stack depth. Preferable when working sets are large and reuse distances
// long; bench/ablation_engines quantifies the crossover. Parallelised the
// same way (sets partitioned across pool chunks).
StackProfile ComputeStackProfileTree(const trace::StrippedTrace& stripped,
                                     std::uint32_t index_bits,
                                     support::ThreadPool* pool = nullptr);

// Profiles for every depth 2^0 .. 2^max_index_bits (one pass each). With a
// pool, depths are computed concurrently (each depth's pass stays serial —
// depth-level parallelism load-balances better than splitting the few sets
// of the shallow depths); `use_tree` selects the Bennett-Kruskal scan. Scan
// scratch (per-set buckets, per-reference bookkeeping, Fenwick storage) is
// reused across the depths of a chunk, so after warm-up the passes allocate
// nothing per depth.
// When `metrics` is provided, records "stack.passes" (one per depth) and
// "stack.refs_scanned" (trace length x depths — the work a one-pass-per-depth
// prelude performs) plus the wall-clock span "stack.all_depths_seconds".
std::vector<StackProfile> ComputeAllDepthProfiles(
    const trace::StrippedTrace& stripped, std::uint32_t max_index_bits,
    support::ThreadPool* pool = nullptr, bool use_tree = false,
    support::MetricsRegistry* metrics = nullptr);

}  // namespace ces::cache
