// Trace-driven cache simulation (the traditional flow's inner loop).
#pragma once

#include "cache/cache.hpp"
#include "trace/trace.hpp"

namespace ces::cache {

// Runs every reference of `trace` through a fresh cache with `config` and
// returns the final statistics. All references are treated as reads; the
// paper's miss analysis is read/write agnostic (fixed write-back policy).
CacheStats SimulateTrace(const trace::Trace& trace, const CacheConfig& config);

// Convenience: non-cold miss count for (depth, assoc) under LRU — the
// quantity the analytical algorithm predicts exactly.
std::uint64_t WarmMisses(const trace::Trace& trace, std::uint32_t depth,
                         std::uint32_t assoc);

}  // namespace ces::cache
