// Cache organisation parameters.
//
// The paper's design space is (depth D, associativity A) with a fixed line
// size and fixed LRU/write-back policies; this struct carries the two swept
// axes plus the fixed axes so the simulator substrate can also serve the
// replacement-policy and line-size extension studies.
#pragma once

#include <cstdint>
#include <string>

namespace ces::cache {

enum class ReplacementPolicy : std::uint8_t {
  kLru = 0,
  kFifo = 1,
  kRandom = 2,
  kPlru = 3,  // tree pseudo-LRU; associativity must be a power of two
};

// The paper fixes write-back; write-through/no-allocate is provided for the
// policy-study extension (it trades dirty-victim traffic for per-write
// memory traffic and never allocates on write misses).
enum class WritePolicy : std::uint8_t {
  kWriteBackAllocate = 0,
  kWriteThroughNoAllocate = 1,
};

const char* ToString(ReplacementPolicy policy);
const char* ToString(WritePolicy policy);

struct CacheConfig {
  std::uint32_t depth = 1;       // number of sets; power of two
  std::uint32_t assoc = 1;       // ways per set
  std::uint32_t line_words = 1;  // words per line; power of two
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  WritePolicy write_policy = WritePolicy::kWriteBackAllocate;

  std::uint32_t index_bits() const {
    std::uint32_t bits = 0;
    while ((1u << bits) < depth) ++bits;
    return bits;
  }

  std::uint32_t line_bits() const {
    std::uint32_t bits = 0;
    while ((1u << bits) < line_words) ++bits;
    return bits;
  }

  std::uint64_t size_words() const {
    return static_cast<std::uint64_t>(depth) * assoc * line_words;
  }

  bool IsValid() const {
    const auto pow2 = [](std::uint32_t v) { return v && (v & (v - 1)) == 0; };
    if (!pow2(depth) || !pow2(line_words) || assoc == 0) return false;
    if (replacement == ReplacementPolicy::kPlru && !pow2(assoc)) return false;
    return true;
  }

  std::string ToString() const;
};

}  // namespace ces::cache
