// CACTI-lite: closed-form energy / area / access-time estimates.
//
// The paper cites CACTI [11] as the standard cache cost model and lists
// energy-aware exploration as future work. We do not have CACTI's
// technology files, so this module provides a small analytical fit with the
// same qualitative behaviour (documented in DESIGN.md):
//   * dynamic access energy grows with sqrt(capacity) (bitline/wordline
//     halves) plus a per-way term for the parallel tag compares,
//   * leakage grows linearly with capacity,
//   * access time grows with log2(depth) (decoder depth) plus a way-mux term.
// Constants are calibrated to a generic 180 nm node (the paper's era) and
// only relative comparisons between configurations are meaningful.
#pragma once

#include <cstdint>

#include "cache/config.hpp"

namespace ces::cache {

struct EnergyEstimate {
  double read_energy_nj = 0.0;   // per access
  double leakage_mw = 0.0;       // static power
  double access_time_ns = 0.0;   // critical path
  double area_mm2 = 0.0;         // data + tag arrays
};

// `address_bits` sizes the tag array. line size comes from the config.
EnergyEstimate EstimateEnergy(const CacheConfig& config,
                              std::uint32_t address_bits = 32);

// Total energy (nJ) of running `accesses` accesses with `misses` misses,
// charging `miss_penalty_nj` per off-chip refill.
double TotalEnergyNj(const EnergyEstimate& estimate, std::uint64_t accesses,
                     std::uint64_t misses, double miss_penalty_nj = 10.0);

}  // namespace ces::cache
