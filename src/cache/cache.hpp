// Functional set-associative cache model.
//
// This is the "cache simulator" box of the traditional design-simulate-
// analyze loop (Figure 1a of the paper). It models tags, validity, dirt and
// the replacement policy; it does not model timing. Cold (compulsory) misses
// are tracked separately because the paper's miss budget K explicitly
// excludes them.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cache/config.hpp"
#include "support/rng.hpp"

namespace ces::cache {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;       // includes cold misses
  std::uint64_t cold_misses = 0;  // first touch of a line address
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;       // dirty victims (write-back policy)
  std::uint64_t write_throughs = 0;   // per-write traffic (write-through)

  std::uint64_t warm_misses() const { return misses - cold_misses; }
  double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / accesses;
  }
};

enum class AccessOutcome : std::uint8_t { kHit, kColdMiss, kConflictMiss };

// Reports what a miss pushed out, so multi-level hierarchies can propagate
// dirty victims downstream.
struct Eviction {
  bool valid = false;
  bool dirty = false;
  std::uint32_t addr = 0;  // word address of the evicted line's first word
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  // Performs one access to byte-less word address `addr` (the library's
  // traces are word-addressed); `is_write` drives the write-back dirt
  // tracking. When `eviction` is non-null it receives the victim line
  // displaced by a miss (valid=false on hits or fills of empty ways).
  AccessOutcome Access(std::uint32_t addr, bool is_write = false,
                       Eviction* eviction = nullptr);

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return config_; }

  // Drops all contents and statistics.
  void Reset();

 private:
  struct Way {
    std::uint32_t tag = 0;
    bool valid = false;
    bool dirty = false;
  };

  // Picks the victim way within [set*assoc, set*assoc+assoc). Invalid ways
  // are always preferred.
  std::uint32_t PickVictim(std::uint32_t set);
  void TouchOnHit(std::uint32_t set, std::uint32_t way);
  void TouchOnFill(std::uint32_t set, std::uint32_t way);

  CacheConfig config_;
  CacheStats stats_;
  std::vector<Way> ways_;  // set-major: ways_[set * assoc + way]

  // LRU/FIFO: per-set recency/insertion order, most recent (or newest) first.
  std::vector<std::uint32_t> order_;
  // PLRU: per-set tree bits (assoc - 1 internal nodes packed per set).
  std::vector<std::uint8_t> plru_bits_;
  Rng rng_;
  std::unordered_set<std::uint32_t> touched_lines_;
};

}  // namespace ces::cache
