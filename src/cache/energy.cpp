#include "cache/energy.hpp"

#include <cmath>

namespace ces::cache {
namespace {

// Generic 180 nm calibration constants. Only ratios matter.
constexpr double kEnergyBase_nJ = 0.05;
constexpr double kEnergyPerSqrtBit_nJ = 0.002;
constexpr double kEnergyPerWay_nJ = 0.015;
constexpr double kLeakagePerKbit_mW = 0.08;
constexpr double kTimeBase_ns = 0.8;
constexpr double kTimePerDecodeLevel_ns = 0.12;
constexpr double kTimePerWay_ns = 0.1;
constexpr double kAreaPerKbit_mm2 = 0.011;

}  // namespace

EnergyEstimate EstimateEnergy(const CacheConfig& config,
                              std::uint32_t address_bits) {
  const double data_bits =
      static_cast<double>(config.size_words()) * 32.0;
  const std::uint32_t offset_bits = config.line_bits() + config.index_bits();
  const std::uint32_t tag_width =
      address_bits > offset_bits ? address_bits - offset_bits : 1;
  const double tag_bits = static_cast<double>(config.depth) * config.assoc *
                          (tag_width + 2.0);  // +valid +dirty
  const double total_bits = data_bits + tag_bits;

  EnergyEstimate estimate;
  estimate.read_energy_nj = kEnergyBase_nJ +
                            kEnergyPerSqrtBit_nJ * std::sqrt(total_bits) +
                            kEnergyPerWay_nJ * config.assoc;
  estimate.leakage_mw = kLeakagePerKbit_mW * total_bits / 1024.0;
  estimate.access_time_ns = kTimeBase_ns +
                            kTimePerDecodeLevel_ns * config.index_bits() +
                            kTimePerWay_ns * config.assoc;
  estimate.area_mm2 = kAreaPerKbit_mm2 * total_bits / 1024.0;
  return estimate;
}

double TotalEnergyNj(const EnergyEstimate& estimate, std::uint64_t accesses,
                     std::uint64_t misses, double miss_penalty_nj) {
  return estimate.read_energy_nj * static_cast<double>(accesses) +
         miss_penalty_nj * static_cast<double>(misses);
}

}  // namespace ces::cache
