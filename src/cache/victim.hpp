// Victim buffer (Jouppi-style victim cache) extension.
//
// A small fully associative buffer that catches lines evicted from the main
// cache; a main-cache miss that hits the buffer swaps the line back at
// buffer-hit cost instead of paying the memory penalty. The classic result —
// a direct-mapped cache plus a few victim entries rivals a 2-way cache —
// is exactly the kind of organisation trade-off the paper's exploration
// methodology targets, and bench/ablation_victim reproduces it on the
// PowerStone-like workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "trace/trace.hpp"

namespace ces::cache {

struct VictimStats {
  CacheStats main;                 // stats of the primary cache
  std::uint64_t victim_hits = 0;   // main-cache misses served by the buffer
  std::uint64_t memory_fetches = 0;  // misses that reached memory

  // Non-cold misses that actually cost a memory access.
  std::uint64_t EffectiveWarmMisses() const {
    return main.warm_misses() - victim_hits;
  }
};

class VictimCache {
 public:
  // `victim_entries` may be zero (plain cache).
  VictimCache(const CacheConfig& config, std::uint32_t victim_entries);

  void Access(std::uint32_t addr, bool is_write = false);
  const VictimStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint32_t line = 0;
    bool valid = false;
  };

  // Returns true (and removes the entry) if `line` is buffered.
  bool ProbeAndRemove(std::uint32_t line);
  void Insert(std::uint32_t line);

  Cache main_;
  std::uint32_t line_bits_;
  std::vector<Entry> entries_;  // LRU order, most recent first
  VictimStats stats_;
};

VictimStats SimulateVictim(const trace::Trace& trace,
                           const CacheConfig& config,
                           std::uint32_t victim_entries);

}  // namespace ces::cache
