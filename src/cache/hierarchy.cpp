#include "cache/hierarchy.hpp"

namespace ces::cache {

double HierarchyStats::Amat(const LatencyModel& latency) const {
  const std::uint64_t l1_accesses = TotalL1Accesses();
  if (l1_accesses == 0) return 0.0;
  const double total =
      latency.l1_ns * static_cast<double>(l1_accesses) +
      latency.l2_ns * static_cast<double>(l2.accesses) +
      latency.memory_ns * static_cast<double>(memory_accesses);
  return total / static_cast<double>(l1_accesses);
}

TwoLevelCache::TwoLevelCache(const HierarchyConfig& config)
    : l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2) {}

void TwoLevelCache::AccessL2(std::uint32_t addr, bool is_write) {
  Eviction eviction;
  const AccessOutcome outcome = l2_.Access(addr, is_write, &eviction);
  if (outcome != AccessOutcome::kHit) ++extra_memory_accesses_;
  if (eviction.valid && eviction.dirty) ++extra_memory_accesses_;
}

void TwoLevelCache::Access(const trace::Access& access) {
  Cache& l1 =
      access.kind == trace::StreamKind::kInstruction ? l1i_ : l1d_;
  Eviction eviction;
  const AccessOutcome outcome = l1.Access(access.addr, access.is_write,
                                          &eviction);
  if (outcome != AccessOutcome::kHit) {
    AccessL2(access.addr, /*is_write=*/false);  // refill
  }
  if (eviction.valid && eviction.dirty) {
    AccessL2(eviction.addr, /*is_write=*/true);  // write-back of the victim
  }
}

HierarchyStats TwoLevelCache::stats() const {
  HierarchyStats stats;
  stats.l1i = l1i_.stats();
  stats.l1d = l1d_.stats();
  stats.l2 = l2_.stats();
  stats.memory_accesses = extra_memory_accesses_;
  return stats;
}

HierarchyStats SimulateHierarchy(const trace::AccessSequence& accesses,
                                 const HierarchyConfig& config) {
  TwoLevelCache hierarchy(config);
  for (const trace::Access& access : accesses) hierarchy.Access(access);
  return hierarchy.stats();
}

}  // namespace ces::cache
