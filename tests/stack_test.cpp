// Mattson stack-distance analysis: hand-checked histograms plus the
// inclusion property (one pass == simulation at every associativity).
#include <gtest/gtest.h>

#include "cache/sim.hpp"
#include "cache/stack.hpp"
#include "trace/strip.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace ces::cache;
using ces::trace::Strip;
using ces::trace::StrippedTrace;
using ces::trace::Trace;

Trace FromRefs(std::vector<std::uint32_t> refs) {
  Trace trace;
  trace.refs = std::move(refs);
  return trace;
}

TEST(StackProfileTest, FullyAssociativeHistogram) {
  // a b a b a: distances 0-based -> a@2: {b}=1, b@3: {a}=1, a@4: {b}=1.
  const StrippedTrace stripped = Strip(FromRefs({1, 2, 1, 2, 1}));
  const StackProfile profile = ComputeStackProfile(stripped, 0);
  EXPECT_EQ(profile.cold, 2u);
  ASSERT_EQ(profile.hist.size(), 2u);
  EXPECT_EQ(profile.hist[0], 0u);
  EXPECT_EQ(profile.hist[1], 3u);
  EXPECT_EQ(profile.MissesAtAssoc(1), 3u);
  EXPECT_EQ(profile.MissesAtAssoc(2), 0u);
  EXPECT_EQ(profile.MinAssocFor(0), 2u);
  EXPECT_EQ(profile.MinAssocFor(3), 1u);
  EXPECT_EQ(profile.MinAssocFor(2), 2u);
  EXPECT_EQ(profile.ZeroMissAssoc(), 2u);
}

TEST(StackProfileTest, Distance0Repeats) {
  const StrippedTrace stripped = Strip(FromRefs({5, 5, 5, 5}));
  const StackProfile profile = ComputeStackProfile(stripped, 0);
  EXPECT_EQ(profile.cold, 1u);
  EXPECT_EQ(profile.hist[0], 3u);
  EXPECT_EQ(profile.MissesAtAssoc(1), 0u);
  EXPECT_EQ(profile.MinAssocFor(0), 1u);
}

// The suffix-sum solve cache must answer every (assoc, k) query exactly as
// the uncached walk does — including the degenerate histogram shapes.
TEST(StackProfileTest, SolveCacheMatchesUncachedQueries) {
  const std::vector<std::vector<std::uint64_t>> hists = {
      {},           // no histogram at all
      {0},          // canonical empty
      {7},          // only distance-0 hits
      {0, 3},       // the FullyAssociativeHistogram shape
      {2, 0, 5, 0}, // gaps and a trailing zero
      {1, 1, 1, 1, 1},
  };
  for (const auto& hist : hists) {
    StackProfile plain;
    plain.hist = hist;
    StackProfile cached = plain;
    cached.FinalizeSolveCache();
    for (std::uint32_t assoc = 1; assoc <= hist.size() + 2; ++assoc) {
      EXPECT_EQ(cached.MissesAtAssoc(assoc), plain.MissesAtAssoc(assoc))
          << "hist size " << hist.size() << " assoc " << assoc;
    }
    for (std::uint64_t k = 0; k <= 10; ++k) {
      EXPECT_EQ(cached.MinAssocFor(k), plain.MinAssocFor(k))
          << "hist size " << hist.size() << " k " << k;
    }
  }
}

TEST(StackProfileTest, SetPartitioningSeparatesConflicts) {
  // 0 and 4 share a set at depth 4; 1 does not interfere with them.
  const StrippedTrace stripped = Strip(FromRefs({0, 4, 1, 0, 4, 1}));
  const StackProfile depth1 = ComputeStackProfile(stripped, 0);
  EXPECT_EQ(depth1.MissesAtAssoc(1), 3u);   // everything conflicts
  EXPECT_EQ(depth1.MissesAtAssoc(2), 3u);   // distances are all 2
  EXPECT_EQ(depth1.MissesAtAssoc(3), 0u);
  const StackProfile depth4 = ComputeStackProfile(stripped, 2);
  EXPECT_EQ(depth4.MissesAtAssoc(1), 2u);   // only the 0/4 pair conflicts
  EXPECT_EQ(depth4.MissesAtAssoc(2), 0u);
}

TEST(StackProfileTest, EmptyTrace) {
  const StackProfile profile = ComputeStackProfile(Strip(Trace{}), 3);
  EXPECT_EQ(profile.cold, 0u);
  EXPECT_EQ(profile.MissesAtAssoc(1), 0u);
  EXPECT_EQ(profile.MinAssocFor(0), 1u);
}

TEST(StackProfileTest, WarmAccessTotalIsInvariant) {
  ces::Rng rng(5);
  const Trace trace = ces::trace::RandomWorkingSet(rng, 100, 3000);
  const StrippedTrace stripped = Strip(trace);
  for (std::uint32_t bits = 0; bits <= 6; ++bits) {
    const StackProfile profile = ComputeStackProfile(stripped, bits);
    EXPECT_EQ(profile.WarmAccesses(), stripped.warm_count()) << bits;
    EXPECT_EQ(profile.cold, stripped.unique_count());
  }
}

// Property sweep: the one-pass histogram predicts the simulator exactly for
// every (depth, assoc), across trace shapes.
class StackVsSimulator : public ::testing::TestWithParam<int> {};

Trace MakeTraceVariant(int variant) {
  ces::Rng rng(1000 + static_cast<std::uint64_t>(variant));
  switch (variant % 5) {
    case 0: return ces::trace::SequentialLoop(17, 50, 8);
    case 1: return ces::trace::StridedSweep(3, 32, 24, 12);
    case 2: return ces::trace::RandomWorkingSet(rng, 75, 4000);
    case 3: return ces::trace::LocalityMix(rng, 48, 512, 4000);
    default: return ces::trace::PaperExampleTrace();
  }
}

TEST_P(StackVsSimulator, TreeScanMatchesMtfScan) {
  const Trace trace = MakeTraceVariant(GetParam());
  const StrippedTrace stripped = Strip(trace);
  for (std::uint32_t bits = 0; bits <= 6; ++bits) {
    const StackProfile mtf = ComputeStackProfile(stripped, bits);
    const StackProfile tree = ComputeStackProfileTree(stripped, bits);
    EXPECT_EQ(mtf.hist, tree.hist)
        << "variant " << GetParam() << " bits " << bits;
    EXPECT_EQ(mtf.cold, tree.cold);
  }
}

TEST_P(StackVsSimulator, HistogramTailEqualsWarmMisses) {
  const Trace trace = MakeTraceVariant(GetParam());
  const StrippedTrace stripped = Strip(trace);
  for (std::uint32_t bits = 0; bits <= 5; ++bits) {
    const StackProfile profile = ComputeStackProfile(stripped, bits);
    for (std::uint32_t assoc : {1u, 2u, 3u, 4u, 8u}) {
      EXPECT_EQ(profile.MissesAtAssoc(assoc),
                WarmMisses(trace, 1u << bits, assoc))
          << "variant " << GetParam() << " depth " << (1u << bits)
          << " assoc " << assoc;
    }
    // MinAssocFor is minimal and feasible for a spread of budgets.
    for (std::uint64_t k : {0ull, 1ull, 5ull, 50ull, 1000ull}) {
      const std::uint32_t assoc = profile.MinAssocFor(k);
      EXPECT_LE(profile.MissesAtAssoc(assoc), k);
      if (assoc > 1) {
        EXPECT_GT(profile.MissesAtAssoc(assoc - 1), k);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, StackVsSimulator,
                         ::testing::Range(0, 10));

}  // namespace
