#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "trace/dinero.hpp"
#include "trace/strip.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace ces::trace;
using ces::support::Error;
using ces::support::ErrorCategory;
using ces::support::MetricsRegistry;

// Runs `body`, which must throw a structured Error, and returns its category.
ErrorCategory CategoryOf(const std::function<void()>& body) {
  try {
    body();
  } catch (const Error& e) {
    return e.category();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "threw unstructured exception: " << e.what();
    return ErrorCategory::kInternal;
  }
  ADD_FAILURE() << "no error thrown";
  return ErrorCategory::kInternal;
}

void AppendU32(std::string& bytes, std::uint32_t value) {
  bytes.push_back(static_cast<char>(value & 0xff));
  bytes.push_back(static_cast<char>((value >> 8) & 0xff));
  bytes.push_back(static_cast<char>((value >> 16) & 0xff));
  bytes.push_back(static_cast<char>((value >> 24) & 0xff));
}

// A CTRC/CTRZ header with the given count; callers append the payload.
std::string BinaryHeader(const char* magic, std::uint32_t kind,
                         std::uint32_t address_bits, std::uint32_t count,
                         std::uint32_t version = 1) {
  std::string bytes(magic, 4);
  AppendU32(bytes, version);
  AppendU32(bytes, kind);
  AppendU32(bytes, address_bits);
  AppendU32(bytes, count);
  return bytes;
}

TEST(Strip, AssignsIdsInFirstAppearanceOrder) {
  Trace trace;
  trace.refs = {7, 7, 3, 7, 9, 3};
  const StrippedTrace stripped = Strip(trace);
  EXPECT_EQ(stripped.unique, (std::vector<std::uint32_t>{7, 3, 9}));
  EXPECT_EQ(stripped.ids, (std::vector<std::uint32_t>{0, 0, 1, 0, 2, 1}));
  EXPECT_EQ(stripped.is_first,
            (std::vector<bool>{true, false, true, false, true, false}));
  EXPECT_EQ(stripped.warm_count(), 3u);
}

TEST(Strip, EmptyTrace) {
  const StrippedTrace stripped = Strip(Trace{});
  EXPECT_EQ(stripped.size(), 0u);
  EXPECT_EQ(stripped.unique_count(), 0u);
  const TraceStats stats = ComputeStats(stripped);
  EXPECT_EQ(stats.n, 0u);
  EXPECT_EQ(stats.max_misses, 0u);
}

TEST(Stats, MaxMissesIsDepthOneDirectMapped) {
  // 5 5 5 -> two warm hits; 5 6 5 6 -> two warm misses.
  Trace trace;
  trace.refs = {5, 5, 5, 6, 5, 6};
  const TraceStats stats = ComputeStats(trace);
  EXPECT_EQ(stats.n, 6u);
  EXPECT_EQ(stats.n_unique, 2u);
  // Warm accesses: positions 1,2 (hit), 4 (miss), 5 (miss), and position 3 is
  // cold. Position 4 and 5 alternate -> misses.
  EXPECT_EQ(stats.max_misses, 2u);
}

TEST(Stats, MatchesPaperExampleShape) {
  const TraceStats stats = ComputeStats(PaperExampleTrace());
  EXPECT_EQ(stats.n, 10u);
  EXPECT_EQ(stats.n_unique, 5u);
  EXPECT_EQ(stats.max_misses, 5u);  // no adjacent repeats in the example
}

TEST(WithLineSizeTest, ReblocksAddresses) {
  Trace trace;
  trace.refs = {0, 1, 2, 3, 4, 8};
  trace.address_bits = 8;
  const Trace blocked = WithLineSize(trace, 4);
  EXPECT_EQ(blocked.refs, (std::vector<std::uint32_t>{0, 0, 0, 0, 1, 2}));
  EXPECT_EQ(blocked.address_bits, 6u);
  // Identity for one-word lines.
  EXPECT_EQ(WithLineSize(trace, 1).refs, trace.refs);
}

TEST(SignificantBits, ReflectsVaryingBitsOnly) {
  Trace trace;
  trace.refs = {0x1000, 0x1004, 0x1006};
  EXPECT_EQ(SignificantAddressBits(Strip(trace)), 3u);  // bits 0..2 vary
  Trace single;
  single.refs = {0x42, 0x42};
  EXPECT_EQ(SignificantAddressBits(Strip(single)), 0u);
  EXPECT_EQ(SignificantAddressBits(Strip(Trace{})), 0u);
}

TEST(TraceIo, TextRoundTrip) {
  Trace trace = PaperExampleTrace();
  trace.kind = StreamKind::kInstruction;
  std::stringstream stream;
  WriteText(stream, trace);
  const Trace loaded = ReadText(stream);
  EXPECT_EQ(loaded.refs, trace.refs);
  EXPECT_EQ(loaded.kind, trace.kind);
  EXPECT_EQ(loaded.address_bits, trace.address_bits);
  EXPECT_EQ(loaded.name, trace.name);
}

TEST(TraceIo, BinaryRoundTrip) {
  ces::Rng rng(3);
  const Trace trace = RandomWorkingSet(rng, 500, 4096);
  std::stringstream stream;
  WriteBinary(stream, trace);
  const Trace loaded = ReadBinary(stream);
  EXPECT_EQ(loaded.refs, trace.refs);
  EXPECT_EQ(loaded.kind, trace.kind);
}

TEST(TraceIo, CompressedRoundTrip) {
  ces::Rng rng(17);
  Trace trace = LocalityMix(rng, 300, 3000, 20000);
  trace.kind = StreamKind::kInstruction;
  trace.address_bits = 24;
  std::stringstream stream;
  WriteCompressed(stream, trace);
  const Trace loaded = ReadCompressed(stream);
  EXPECT_EQ(loaded.refs, trace.refs);
  EXPECT_EQ(loaded.kind, trace.kind);
  EXPECT_EQ(loaded.address_bits, trace.address_bits);
}

TEST(TraceIo, CompressionShrinksSequentialStreams) {
  // Instruction-fetch-like trace: deltas are mostly +1 -> one byte each.
  const Trace trace = SequentialLoop(0x100000, 512, 40);
  std::stringstream raw;
  WriteBinary(raw, trace);
  std::stringstream packed;
  WriteCompressed(packed, trace);
  EXPECT_LT(packed.str().size() * 3, raw.str().size());
  EXPECT_EQ(ReadCompressed(packed).refs, trace.refs);
}

TEST(TraceIo, CompressedHandlesExtremeDeltas) {
  Trace trace;
  trace.refs = {0, 0xffffffff, 0, 0x80000000, 0x7fffffff, 1};
  std::stringstream stream;
  WriteCompressed(stream, trace);
  EXPECT_EQ(ReadCompressed(stream).refs, trace.refs);
}

TEST(TraceIo, FileDispatchByMagicAndExtension) {
  const Trace trace = PaperExampleTrace();
  const std::string dir = ::testing::TempDir();
  for (const std::string name :
       {std::string("t.trc"), std::string("t.ctr"), std::string("t.ctrz")}) {
    const std::string path = dir + "/" + name;
    SaveToFile(path, trace);
    EXPECT_EQ(LoadFromFile(path).refs, trace.refs) << name;
  }
}

TEST(TraceIo, RejectsGarbage) {
  std::stringstream binary("not a trace at all");
  EXPECT_THROW(ReadBinary(binary), std::runtime_error);
  std::stringstream text("zzz-not-hex");
  EXPECT_THROW(ReadText(text), std::runtime_error);
}

TEST(TraceIo, TextRejectsTrailingGarbage) {
  std::stringstream garbage("deadbeefZZ\n");
  EXPECT_EQ(CategoryOf([&] { ReadText(garbage); }), ErrorCategory::kParse);
  // ...but plain trailing whitespace and CRLF line endings are fine.
  std::stringstream spaced("12 \r\nff\r\n");
  EXPECT_EQ(ReadText(spaced).refs, (std::vector<std::uint32_t>{0x12, 0xff}));
}

TEST(TraceIo, TextRejectsAddressesWiderThan32Bits) {
  std::stringstream wide("1ffffffff\n");
  try {
    ReadText(wide);
    FAIL() << "33-bit address must not silently wrap";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kRange);
    EXPECT_EQ(e.line(), 1u);  // the error names the offending line
  }
}

TEST(TraceIo, TextRejectsUnknownKindHeader) {
  std::stringstream bad("# kind banana\n0\n");
  EXPECT_EQ(CategoryOf([&] { ReadText(bad); }), ErrorCategory::kParse);
}

TEST(TraceIo, TextValidatesAddressBitsHeader) {
  std::stringstream zero("# address_bits 0\n");
  EXPECT_EQ(CategoryOf([&] { ReadText(zero); }), ErrorCategory::kValidation);
  std::stringstream wide("# address_bits 40\n");
  EXPECT_EQ(CategoryOf([&] { ReadText(wide); }), ErrorCategory::kValidation);
  std::stringstream mangled("# address_bits xyz\n");
  EXPECT_EQ(CategoryOf([&] { ReadText(mangled); }), ErrorCategory::kParse);
}

TEST(TraceIo, TextRejectsAddressExceedingDeclaredBits) {
  std::stringstream bad("# address_bits 8\n100\n");  // 0x100 needs 9 bits
  EXPECT_EQ(CategoryOf([&] { ReadText(bad); }), ErrorCategory::kValidation);
  std::stringstream ok("# address_bits 8\nff\n");
  EXPECT_EQ(ReadText(ok).refs, (std::vector<std::uint32_t>{0xff}));
}

TEST(TraceIo, BinaryRejectsOversizedHeaderCount) {
  // A 4-byte corrupt count must not drive a gigabyte reserve: the reader
  // checks the declared count against the remaining stream up front.
  std::string bytes = BinaryHeader("CTRC", 0, 32, 0xffffffffu);
  AppendU32(bytes, 1);
  AppendU32(bytes, 2);
  std::stringstream stream(bytes);
  EXPECT_EQ(CategoryOf([&] { ReadBinary(stream); }),
            ErrorCategory::kValidation);
}

TEST(TraceIo, CompressedRejectsOversizedHeaderCount) {
  std::string bytes = BinaryHeader("CTRZ", 0, 32, 0xffffffffu);
  bytes.push_back('\x02');  // one varint: delta +1
  std::stringstream stream(bytes);
  EXPECT_EQ(CategoryOf([&] { ReadCompressed(stream); }),
            ErrorCategory::kValidation);
}

TEST(TraceIo, BinaryRejectsBadKindAndAddressBits) {
  std::string bad_kind = BinaryHeader("CTRC", 7, 32, 0);
  std::stringstream kind_stream(bad_kind);
  EXPECT_EQ(CategoryOf([&] { ReadBinary(kind_stream); }),
            ErrorCategory::kFormat);
  std::string bad_bits = BinaryHeader("CTRC", 0, 48, 0);
  std::stringstream bits_stream(bad_bits);
  EXPECT_EQ(CategoryOf([&] { ReadBinary(bits_stream); }),
            ErrorCategory::kValidation);
}

TEST(TraceIo, BinaryRejectsRefExceedingDeclaredBits) {
  std::string bytes = BinaryHeader("CTRC", 0, 8, 1);
  AppendU32(bytes, 0x100);  // needs 9 bits
  std::stringstream stream(bytes);
  EXPECT_EQ(CategoryOf([&] { ReadBinary(stream); }),
            ErrorCategory::kValidation);
}

TEST(TraceIo, BinaryReportsTruncationAndBadVersion) {
  // Payload shorter than the declared count: the seekable-stream count check
  // fires before any allocation.
  std::string short_payload = BinaryHeader("CTRC", 0, 32, 1);
  short_payload.push_back('\x01');  // 1 of 4 payload bytes
  std::stringstream stream(short_payload);
  EXPECT_EQ(CategoryOf([&] { ReadBinary(stream); }),
            ErrorCategory::kValidation);

  // Stream ends inside the header.
  std::string header_cut("CTRC", 4);
  AppendU32(header_cut, 1);  // version only; kind/bits/count missing
  std::stringstream cut_stream(header_cut);
  EXPECT_EQ(CategoryOf([&] { ReadBinary(cut_stream); }),
            ErrorCategory::kTruncated);

  std::string bad_version = BinaryHeader("CTRC", 0, 32, 0, /*version=*/9);
  std::stringstream version_stream(bad_version);
  EXPECT_EQ(CategoryOf([&] { ReadBinary(version_stream); }),
            ErrorCategory::kFormat);

  std::stringstream short_magic("CT");
  EXPECT_EQ(CategoryOf([&] { ReadBinary(short_magic); }),
            ErrorCategory::kTruncated);
}

TEST(TraceIo, CompressedMagicToRawReaderIsUnsupportedNotBadMagic) {
  // A CTRZ stream handed to ReadBinary must explain itself, not claim the
  // file is corrupt (and vice versa for CTRC into ReadCompressed).
  const Trace trace = PaperExampleTrace();
  std::stringstream packed;
  WriteCompressed(packed, trace);
  try {
    ReadBinary(packed);
    FAIL() << "CTRZ into ReadBinary must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kUnsupported);
    EXPECT_NE(std::string(e.what()).find("CTRZ"), std::string::npos);
  }
  std::stringstream raw;
  WriteBinary(raw, trace);
  EXPECT_EQ(CategoryOf([&] { ReadCompressed(raw); }),
            ErrorCategory::kUnsupported);
}

TEST(TraceIo, CompressedRejectsDeltaLeavingAddressSpace) {
  std::string bytes = BinaryHeader("CTRZ", 0, 32, 1);
  bytes.push_back('\x01');  // zigzag(-1): previous becomes -1
  std::stringstream stream(bytes);
  EXPECT_EQ(CategoryOf([&] { ReadCompressed(stream); }),
            ErrorCategory::kRange);
}

TEST(TraceIo, RefCountBeyondU32IsRangeNotSilentTruncation) {
  // Regression: the writers used to cast refs.size() straight into the u32
  // count field, so a 2^32+5-reference trace would serialise a count of 5
  // and "round-trip" to a 5-reference trace. The shared guard makes that a
  // structured kRange error — unit-tested directly, since materialising
  // 2^32 references is not an option.
  EXPECT_EQ(internal::CheckedRefCount(0, "t"), 0u);
  EXPECT_EQ(internal::CheckedRefCount(0xffffffffu, "t"), 0xffffffffu);
  if constexpr (sizeof(std::size_t) > 4) {
    const auto wrap = static_cast<std::size_t>(0x100000000ull);
    EXPECT_EQ(CategoryOf([&] { internal::CheckedRefCount(wrap, "t"); }),
              ErrorCategory::kRange);
    EXPECT_EQ(CategoryOf([&] { internal::CheckedRefCount(wrap + 5, "t"); }),
              ErrorCategory::kRange);
  }
}

TEST(TraceIo, CompressedRejectsNonCanonicalAndOverflowingVarints) {
  // 0x80 0x00 decodes to the same value as a bare 0x00: two byte strings
  // aliasing one trace. The reader insists on the canonical (shortest)
  // encoding, so a tampered-but-equal stream cannot share a digest with the
  // original.
  std::string overlong = BinaryHeader("CTRZ", 0, 32, 1);
  overlong.push_back('\x80');
  overlong.push_back('\x00');
  std::stringstream overlong_stream(overlong);
  EXPECT_EQ(CategoryOf([&] { ReadCompressed(overlong_stream); }),
            ErrorCategory::kFormat);

  // Nine continuation groups put the final group at bit 63; a value of 2
  // there needs bit 64. Must be kFormat, not a silent wrap into a bogus
  // delta.
  std::string overflow = BinaryHeader("CTRZ", 0, 32, 1);
  for (int i = 0; i < 9; ++i) overflow.push_back('\x80');
  overflow.push_back('\x02');
  std::stringstream overflow_stream(overflow);
  EXPECT_EQ(CategoryOf([&] { ReadCompressed(overflow_stream); }),
            ErrorCategory::kFormat);
}

TEST(TraceIo, TextNameHeaderSurvivesHostileNames) {
  // Regression: ReadText used `header >> name`, which stops at the first
  // space — "qsort (small run)" silently round-tripped as "qsort".
  for (const std::string name :
       {std::string("qsort (small run)"), std::string("tabs\tand  runs"),
        std::string("trailing # hash")}) {
    Trace trace = PaperExampleTrace();
    trace.name = name;
    std::stringstream stream;
    WriteText(stream, trace);
    EXPECT_EQ(ReadText(stream).name, name) << name;
  }
  // Edge whitespace trims, interior whitespace survives, and the "-"
  // placeholder still means "no name".
  std::stringstream padded("# name   spaced  out  \n0\n");
  EXPECT_EQ(ReadText(padded).name, "spaced  out");
  std::stringstream dashed("# name -\n0\n");
  EXPECT_TRUE(ReadText(dashed).name.empty());
}

TEST(TraceIo, LoadFromFileMissingIsIoError) {
  EXPECT_EQ(
      CategoryOf([] { LoadFromFile("/nonexistent/trace.ctr"); }),
      ErrorCategory::kIo);
}

TEST(TraceIo, ReadersRecordMetrics) {
  MetricsRegistry metrics;
  std::stringstream text("# ces trace v1\n# exotic header\n\n12\n34\n");
  EXPECT_EQ(ReadText(text, &metrics).refs.size(), 2u);
  EXPECT_EQ(metrics.counter("trace.refs_parsed"), 2u);
  EXPECT_EQ(metrics.counter("trace.lines_skipped"), 1u);
  EXPECT_EQ(metrics.counter("trace.headers_ignored"), 1u);

  MetricsRegistry binary_metrics;
  const Trace trace = PaperExampleTrace();
  std::stringstream stream;
  WriteBinary(stream, trace);
  ReadBinary(stream, &binary_metrics);
  EXPECT_EQ(binary_metrics.counter("trace.refs_parsed"), trace.size());
}

TEST(Dinero, ReadsSelectedStream) {
  std::stringstream din(
      "# comment\n"
      "2 400\n"   // ifetch at byte 0x400 -> word 0x100
      "0 1000\n"  // read
      "1 1004\n"  // write
      "2 404\n");
  const Trace instr = ReadDinero(din, StreamKind::kInstruction);
  EXPECT_EQ(instr.refs, (std::vector<std::uint32_t>{0x100, 0x101}));
  din.clear();
  din.seekg(0);
  const Trace data = ReadDinero(din, StreamKind::kData);
  EXPECT_EQ(data.refs, (std::vector<std::uint32_t>{0x400, 0x401}));
}

TEST(Dinero, RoundTrip) {
  Trace trace = PaperExampleTrace();
  trace.kind = StreamKind::kData;
  std::stringstream stream;
  WriteDinero(stream, trace);
  const Trace loaded = ReadDinero(stream, StreamKind::kData);
  EXPECT_EQ(loaded.refs, trace.refs);

  Trace instr = PaperExampleTrace();
  instr.kind = StreamKind::kInstruction;
  std::stringstream istream2;
  WriteDinero(istream2, instr);
  EXPECT_EQ(ReadDinero(istream2, StreamKind::kInstruction).refs, instr.refs);
}

TEST(Dinero, RejectsMalformedInput) {
  std::stringstream bad_label("7 400\n");
  EXPECT_THROW(ReadDinero(bad_label, StreamKind::kData), std::runtime_error);
  std::stringstream bad_address("0 zz\n");
  EXPECT_THROW(ReadDinero(bad_address, StreamKind::kData), std::runtime_error);
}

TEST(Dinero, RoundTripsHighAddressesWithoutOverflow) {
  // Regression: WriteDinero used to shift the 32-bit word address left by
  // two without widening, corrupting every ref >= 2^30.
  Trace trace;
  trace.kind = StreamKind::kData;
  trace.refs = {0x3fffffffu, 0x40000000u, 0xdeadbeefu, 0xffffffffu};
  std::stringstream stream;
  WriteDinero(stream, trace);
  EXPECT_EQ(ReadDinero(stream, StreamKind::kData).refs, trace.refs);
}

TEST(Dinero, RejectsAddressesBeyondWordAddressSpace) {
  // Byte addresses up to 34 bits are word addresses; 35 bits would wrap.
  std::stringstream wide("0 7ffffffffff\n");
  try {
    ReadDinero(wide, StreamKind::kData);
    FAIL() << "wide address must not silently wrap";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kRange);
    EXPECT_EQ(e.line(), 1u);
  }
  // The largest representable byte address still round-trips.
  std::stringstream max("0 3fffffffc\n");
  EXPECT_EQ(ReadDinero(max, StreamKind::kData).refs,
            (std::vector<std::uint32_t>{0xffffffffu}));
}

TEST(Dinero, RejectsTrailingGarbageAndCountsFiltered) {
  std::stringstream garbage("0 400 junk\n");
  EXPECT_EQ(CategoryOf([&] { ReadDinero(garbage, StreamKind::kData); }),
            ErrorCategory::kParse);
  MetricsRegistry metrics;
  std::stringstream din("# c\n2 400\n0 1000\n1 1004\n");
  const Trace data = ReadDinero(din, StreamKind::kData, &metrics);
  EXPECT_EQ(data.refs.size(), 2u);
  EXPECT_EQ(metrics.counter("trace.refs_parsed"), 2u);
  EXPECT_EQ(metrics.counter("dinero.records_filtered"), 1u);
  EXPECT_EQ(metrics.counter("trace.lines_skipped"), 1u);
}

TEST(Synthetic, SequentialLoopShape) {
  const Trace trace = SequentialLoop(100, 8, 3);
  EXPECT_EQ(trace.size(), 24u);
  const TraceStats stats = ComputeStats(trace);
  EXPECT_EQ(stats.n_unique, 8u);
  EXPECT_EQ(trace.refs.front(), 100u);
  EXPECT_EQ(trace.refs.back(), 107u);
}

TEST(Synthetic, StridedSweepAddresses) {
  const Trace trace = StridedSweep(0, 64, 4, 2);
  EXPECT_EQ(trace.refs, (std::vector<std::uint32_t>{0, 64, 128, 192, 0, 64,
                                                    128, 192}));
}

TEST(Synthetic, RandomWorkingSetBounds) {
  ces::Rng rng(11);
  const Trace trace = RandomWorkingSet(rng, 32, 1000, 500);
  EXPECT_EQ(trace.size(), 1000u);
  for (std::uint32_t ref : trace.refs) {
    EXPECT_GE(ref, 500u);
    EXPECT_LT(ref, 532u);
  }
  EXPECT_LE(ComputeStats(trace).n_unique, 32u);
}

TEST(Synthetic, LocalityMixMostlyHot) {
  ces::Rng rng(13);
  const Trace trace = LocalityMix(rng, 64, 4096, 20000, 0.9);
  std::size_t hot = 0;
  for (std::uint32_t ref : trace.refs) hot += ref < 64;
  // Hot runs are longer than cold runs, so well over half the references
  // land in the hot region.
  EXPECT_GT(hot, trace.size() / 2);
}

TEST(Synthetic, DeterministicForSameSeed) {
  ces::Rng a(99);
  ces::Rng b(99);
  EXPECT_EQ(LocalityMix(a, 128, 1024, 5000).refs,
            LocalityMix(b, 128, 1024, 5000).refs);
}

}  // namespace
