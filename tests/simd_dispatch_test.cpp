// The SIMD dispatch layer contract (support/simd.hpp): the cpuid probe is
// internally consistent, the CES_SIMD/--simd precedence rule is exactly
// "flag beats env beats detection, clamped to what the host supports", and
// every vectorized kernel is bit-exact against its scalar twin — including
// never writing outside the output runs the stable partition owns. The
// forced-path differential sweep then pins the end-to-end guarantee: forcing
// scalar vs AVX2 leaves profiles, solve results and the deterministic
// metrics surface byte-identical over 100 traces at jobs 1/2/8.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analytic/explorer.hpp"
#include "analytic/fast.hpp"
#include "cache/stack.hpp"
#include "support/metrics.hpp"
#include "support/pool.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "trace/strip.hpp"
#include "trace/synthetic.hpp"

namespace {

namespace simd = ces::support::simd;
using ces::cache::StackProfile;

// RAII guard: saves the process-wide forced level on entry, restores it on
// exit, so tests can force freely without leaking state into each other.
class ForcedLevelGuard {
 public:
  ForcedLevelGuard() : had_(simd::ForcedLevel(&saved_)) {}
  ~ForcedLevelGuard() {
    if (had_) {
      simd::ForceLevel(saved_);
    } else {
      simd::ClearForcedLevel();
    }
  }

 private:
  simd::Level saved_ = simd::Level::kScalar;
  bool had_;
};

// True when the AVX2 kernel table is actually runnable here: the host
// detects AVX2 and the -mavx2 translation unit was compiled in. KernelsFor
// degrades in either failure case, so this is one query.
bool Avx2KernelsAvailable() {
  return simd::KernelsFor(simd::Level::kAvx2).level == simd::Level::kAvx2;
}

TEST(SimdDispatchTest, ProbeShapeIsConsistent) {
  const simd::CpuFeatures features = simd::ProbeCpu();
  // AVX2 without OS-enabled YMM state would fault on the first vector op;
  // the probe must never report that combination.
  if (features.avx2) {
    EXPECT_TRUE(features.os_avx);
  }
  EXPECT_EQ(simd::DetectedLevel(),
            features.avx2 ? simd::Level::kAvx2 : simd::Level::kScalar);
  // Cached: repeated probes agree.
  EXPECT_EQ(simd::DetectedLevel(), simd::DetectedLevel());
  const simd::CpuFeatures again = simd::ProbeCpu();
  EXPECT_EQ(features.os_avx, again.os_avx);
  EXPECT_EQ(features.avx2, again.avx2);
}

TEST(SimdDispatchTest, LevelNamesRoundTrip) {
  EXPECT_STREQ(simd::LevelName(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::LevelName(simd::Level::kAvx2), "avx2");
  for (const simd::Level level : {simd::Level::kScalar, simd::Level::kAvx2}) {
    simd::Level parsed = simd::Level::kScalar;
    ASSERT_TRUE(simd::ParseLevel(simd::LevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  for (const char* bad : {"", "AVX2", "Scalar", "sse", "avx", "scalar ",
                          "avx2\n", "2"}) {
    simd::Level untouched = simd::Level::kAvx2;
    EXPECT_FALSE(simd::ParseLevel(bad, &untouched)) << "'" << bad << "'";
    EXPECT_EQ(untouched, simd::Level::kAvx2) << "'" << bad << "'";
  }
}

TEST(SimdDispatchTest, ResolvePrecedenceIsFlagOverEnvOverDetection) {
  const simd::Level scalar = simd::Level::kScalar;
  const simd::Level avx2 = simd::Level::kAvx2;

  // No overrides: plain detection.
  EXPECT_EQ(simd::Resolve(avx2, nullptr, nullptr), avx2);
  EXPECT_EQ(simd::Resolve(scalar, nullptr, nullptr), scalar);

  // Env beats detection, downward.
  EXPECT_EQ(simd::Resolve(avx2, "scalar", nullptr), scalar);
  // Unparseable env is ignored, not an error.
  EXPECT_EQ(simd::Resolve(avx2, "turbo", nullptr), avx2);
  EXPECT_EQ(simd::Resolve(avx2, "", nullptr), avx2);

  // Flag beats env.
  EXPECT_EQ(simd::Resolve(avx2, "scalar", &avx2), avx2);
  EXPECT_EQ(simd::Resolve(avx2, "avx2", &scalar), scalar);

  // Requests above detection clamp down instead of failing — env and flag
  // alike. This is the graceful-fallback contract.
  EXPECT_EQ(simd::Resolve(scalar, "avx2", nullptr), scalar);
  EXPECT_EQ(simd::Resolve(scalar, nullptr, &avx2), scalar);
  EXPECT_EQ(simd::Resolve(scalar, "scalar", &avx2), scalar);
}

TEST(SimdDispatchTest, ForceLevelWinsUntilCleared) {
  ForcedLevelGuard guard;

  simd::ForceLevel(simd::Level::kScalar);
  simd::Level forced = simd::Level::kAvx2;
  ASSERT_TRUE(simd::ForcedLevel(&forced));
  EXPECT_EQ(forced, simd::Level::kScalar);
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  EXPECT_EQ(simd::ActiveKernels().level, simd::Level::kScalar);

  // Forcing above detection degrades to the detected level via the clamp.
  simd::ForceLevel(simd::Level::kAvx2);
  EXPECT_EQ(simd::ActiveLevel(),
            simd::DetectedLevel() == simd::Level::kAvx2 ? simd::Level::kAvx2
                                                        : simd::Level::kScalar);

  simd::ClearForcedLevel();
  EXPECT_FALSE(simd::ForcedLevel(&forced));
}

TEST(SimdDispatchTest, KernelTablesDegradeAndSelfDescribe) {
  const simd::Kernels& scalar = simd::KernelsFor(simd::Level::kScalar);
  EXPECT_EQ(scalar.level, simd::Level::kScalar);
  EXPECT_STREQ(scalar.name, "scalar");
  EXPECT_NE(scalar.count_zero_bits, nullptr);
  EXPECT_NE(scalar.partition_pair, nullptr);
  EXPECT_NE(scalar.gather, nullptr);

  const simd::Kernels& best = simd::KernelsFor(simd::Level::kAvx2);
  // Never above what the host (or the build) can run.
  EXPECT_LE(static_cast<std::uint32_t>(best.level),
            static_cast<std::uint32_t>(simd::DetectedLevel()));
  EXPECT_STREQ(best.name, simd::LevelName(best.level));
  EXPECT_NE(best.count_zero_bits, nullptr);
  EXPECT_NE(best.partition_pair, nullptr);
  EXPECT_NE(best.gather, nullptr);
}

// Bit-exactness of each kernel against a naive reference, over sizes that
// exercise the empty case, sub-vector tails, exact vector multiples and
// large ragged arrays. Canary slots beyond each output run verify the
// masked-store discipline: the partition must never touch bytes outside the
// two runs it owns, because sibling subtree segments are scanned
// concurrently by pool workers.
TEST(SimdDispatchTest, KernelsMatchNaiveReference) {
  constexpr std::uint32_t kCanary = 0xA5A5A5A5u;
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (Avx2KernelsAvailable()) levels.push_back(simd::Level::kAvx2);

  ces::Rng rng(20260809);
  const std::uint32_t table_size = 4096;
  std::vector<std::uint32_t> table(table_size);
  for (auto& slot : table) {
    slot = static_cast<std::uint32_t>(rng.NextInRange(0, 0xFFFFFFFFull));
  }

  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{7},
        std::size_t{8}, std::size_t{9}, std::size_t{16}, std::size_t{31},
        std::size_t{100}, std::size_t{1000}, std::size_t{4097}}) {
    std::vector<std::uint32_t> ids(n);
    std::vector<std::uint32_t> addrs(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<std::uint32_t>(rng.NextInRange(0, table_size - 1));
      addrs[i] = static_cast<std::uint32_t>(rng.NextInRange(0, 0xFFFFFFFFull));
    }
    for (const std::uint32_t shift : {0u, 1u, 5u, 17u, 31u}) {
      // Naive references.
      std::size_t naive_zeros = 0;
      std::vector<std::uint32_t> naive_ids_left, naive_addrs_left;
      std::vector<std::uint32_t> naive_ids_right, naive_addrs_right;
      for (std::size_t i = 0; i < n; ++i) {
        if (((addrs[i] >> shift) & 1u) == 0) {
          ++naive_zeros;
          naive_ids_left.push_back(ids[i]);
          naive_addrs_left.push_back(addrs[i]);
        } else {
          naive_ids_right.push_back(ids[i]);
          naive_addrs_right.push_back(addrs[i]);
        }
      }
      std::vector<std::uint32_t> naive_gather(n);
      for (std::size_t i = 0; i < n; ++i) naive_gather[i] = table[ids[i]];

      for (const simd::Level level : levels) {
        SCOPED_TRACE(std::string(simd::LevelName(level)) + " n=" +
                     std::to_string(n) + " shift=" + std::to_string(shift));
        const simd::Kernels& kernels = simd::KernelsFor(level);
        ASSERT_EQ(kernels.level, level);

        EXPECT_EQ(kernels.count_zero_bits(addrs.data(), n, shift),
                  naive_zeros);

        constexpr std::size_t kPad = 16;
        std::vector<std::uint32_t> ids_left(naive_zeros + kPad, kCanary);
        std::vector<std::uint32_t> addrs_left(naive_zeros + kPad, kCanary);
        std::vector<std::uint32_t> ids_right(n - naive_zeros + kPad, kCanary);
        std::vector<std::uint32_t> addrs_right(n - naive_zeros + kPad,
                                               kCanary);
        kernels.partition_pair(ids.data(), addrs.data(), n, shift,
                               ids_left.data(), addrs_left.data(),
                               ids_right.data(), addrs_right.data());
        for (std::size_t i = 0; i < naive_zeros; ++i) {
          ASSERT_EQ(ids_left[i], naive_ids_left[i]) << "left slot " << i;
          ASSERT_EQ(addrs_left[i], naive_addrs_left[i]) << "left slot " << i;
        }
        for (std::size_t i = 0; i < n - naive_zeros; ++i) {
          ASSERT_EQ(ids_right[i], naive_ids_right[i]) << "right slot " << i;
          ASSERT_EQ(addrs_right[i], naive_addrs_right[i])
              << "right slot " << i;
        }
        for (std::size_t i = 0; i < kPad; ++i) {
          ASSERT_EQ(ids_left[naive_zeros + i], kCanary)
              << "write past the left run at +" << i;
          ASSERT_EQ(addrs_left[naive_zeros + i], kCanary)
              << "write past the left run at +" << i;
          ASSERT_EQ(ids_right[n - naive_zeros + i], kCanary)
              << "write past the right run at +" << i;
          ASSERT_EQ(addrs_right[n - naive_zeros + i], kCanary)
              << "write past the right run at +" << i;
        }

        std::vector<std::uint32_t> gathered(n + kPad, kCanary);
        kernels.gather(ids.data(), n, table.data(), gathered.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(gathered[i], naive_gather[i]) << "gather slot " << i;
        }
        for (std::size_t i = 0; i < kPad; ++i) {
          ASSERT_EQ(gathered[n + i], kCanary)
              << "write past the gather output at +" << i;
        }
      }
    }
  }
}

// The traversal reports which kernel ran as the volatile gauge
// "explore.simd_kernel" (numeric Level value) — present in the full metrics
// snapshot, absent from the deterministic surface, so kernel selection can
// never perturb a byte-identity diff.
TEST(SimdDispatchTest, GaugeRecordsKernelAndStaysOutOfDeterministicJson) {
  const auto stripped = ces::trace::Strip(ces::trace::PaperExampleTrace());
  ces::support::MetricsRegistry metrics;
  ces::analytic::FusedPreludeOptions options;
  options.metrics = &metrics;
  (void)ces::analytic::ComputeMissProfilesFused(stripped, 3, options);
  EXPECT_EQ(metrics.gauge("explore.simd_kernel"),
            static_cast<std::uint64_t>(simd::ActiveKernels().level));
  EXPECT_NE(metrics.ToJson(/*include_volatile=*/true)
                .find("\"explore.simd_kernel\""),
            std::string::npos);
  EXPECT_EQ(metrics.ToJson(/*include_volatile=*/false)
                .find("\"explore.simd_kernel\""),
            std::string::npos);
}

void ExpectSameProfile(const StackProfile& a, const StackProfile& b) {
  EXPECT_EQ(a.index_bits, b.index_bits);
  EXPECT_EQ(a.cold, b.cold);
  ASSERT_EQ(a.hist, b.hist);
}

// The end-to-end identity gate: force scalar, then force AVX2, over the
// paper example plus 100 random traces, both scan variants, jobs 1/2/8.
// Profiles and the deterministic metrics surface must be byte-identical —
// kernel selection is an implementation detail that may never reach results.
// Mirrors FusedSubtreeParallelDifferentialSweep, with the kernel level as
// the differential axis instead of the pool size.
TEST(SimdDispatchTest, ForcedPathDifferentialSweep) {
  if (!Avx2KernelsAvailable()) {
    GTEST_SKIP() << "AVX2 kernels unavailable (detected="
                 << simd::LevelName(simd::DetectedLevel())
                 << "); nothing to differentiate against scalar";
  }
  ForcedLevelGuard guard;

  std::vector<ces::trace::Trace> traces;
  traces.push_back(ces::trace::PaperExampleTrace());
  ces::Rng rng(20260806);
  while (traces.size() < 101) {
    const auto length = static_cast<std::uint32_t>(rng.NextInRange(20, 1500));
    if (traces.size() % 2 == 0) {
      const auto working = static_cast<std::uint32_t>(rng.NextInRange(2, 500));
      traces.push_back(ces::trace::RandomWorkingSet(rng, working, length));
    } else {
      const auto hot = static_cast<std::uint32_t>(rng.NextInRange(1, 64));
      const auto cold = static_cast<std::uint32_t>(rng.NextInRange(1, 512));
      traces.push_back(ces::trace::LocalityMix(rng, hot, cold, length));
    }
  }

  ces::support::ThreadPool pool2(2);
  ces::support::ThreadPool pool8(8);
  for (std::size_t t = 0; t < traces.size(); ++t) {
    SCOPED_TRACE("trace " + std::to_string(t));
    const auto stripped = ces::trace::Strip(traces[t]);
    for (const bool use_tree : {false, true}) {
      for (ces::support::ThreadPool* pool :
           {static_cast<ces::support::ThreadPool*>(nullptr), &pool2, &pool8}) {
        std::vector<StackProfile> expected;
        std::string expected_metrics;
        for (const simd::Level level :
             {simd::Level::kScalar, simd::Level::kAvx2}) {
          simd::ForceLevel(level);
          ces::support::MetricsRegistry metrics;
          ces::analytic::FusedPreludeOptions options;
          options.pool = pool;
          options.metrics = &metrics;
          const auto profiles =
              use_tree ? ces::analytic::ComputeMissProfilesFusedTree(
                             stripped, 6, options)
                       : ces::analytic::ComputeMissProfilesFused(stripped, 6,
                                                                 options);
          const std::string json = metrics.ToJson(/*include_volatile=*/false);
          if (expected.empty()) {
            expected = profiles;
            expected_metrics = json;
          } else {
            ASSERT_EQ(profiles.size(), expected.size());
            for (std::size_t i = 0; i < profiles.size(); ++i) {
              ExpectSameProfile(profiles[i], expected[i]);
            }
            EXPECT_EQ(json, expected_metrics)
                << "use_tree=" << use_tree << " jobs "
                << (pool == nullptr ? 1u : pool->jobs());
          }
        }
      }
    }
  }
}

// Solve results ride on the profiles, so they inherit identity — but pin it
// directly anyway: the optimal (D, A) schedule for several budgets must not
// depend on the kernel level.
TEST(SimdDispatchTest, SolveIsKernelLevelInvariant) {
  if (!Avx2KernelsAvailable()) {
    GTEST_SKIP() << "AVX2 kernels unavailable (detected="
                 << simd::LevelName(simd::DetectedLevel()) << ")";
  }
  ForcedLevelGuard guard;

  ces::Rng rng(42);
  std::vector<ces::trace::Trace> traces;
  traces.push_back(ces::trace::PaperExampleTrace());
  traces.push_back(ces::trace::RandomWorkingSet(rng, 300, 4000));
  traces.push_back(ces::trace::LocalityMix(rng, 64, 2048, 3000));

  for (const auto& trace : traces) {
    for (const auto engine :
         {ces::analytic::Engine::kFused, ces::analytic::Engine::kFusedTree}) {
      simd::ForceLevel(simd::Level::kScalar);
      const ces::analytic::Explorer scalar(
          trace, {.engine = engine, .max_index_bits = 6, .jobs = 2});
      simd::ForceLevel(simd::Level::kAvx2);
      const ces::analytic::Explorer avx2(
          trace, {.engine = engine, .max_index_bits = 6, .jobs = 2});
      ASSERT_EQ(scalar.profiles().size(), avx2.profiles().size());
      for (std::size_t i = 0; i < scalar.profiles().size(); ++i) {
        ExpectSameProfile(scalar.profiles()[i], avx2.profiles()[i]);
      }
      for (const std::uint64_t k : {0ull, 3ull, 25ull}) {
        const auto a = scalar.Solve(k);
        const auto b = avx2.Solve(k);
        ASSERT_EQ(a.points.size(), b.points.size());
        for (std::size_t i = 0; i < a.points.size(); ++i) {
          EXPECT_EQ(a.points[i].depth, b.points[i].depth);
          EXPECT_EQ(a.points[i].assoc, b.points[i].assoc);
          EXPECT_EQ(a.points[i].warm_misses, b.points[i].warm_misses);
        }
      }
    }
  }
}

}  // namespace
