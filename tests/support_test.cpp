#include <gtest/gtest.h>

#include <array>
#include <set>

#include "support/bitset.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/fenwick.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using ces::ArgParser;
using ces::AsciiTable;
using ces::DynamicBitset;
using ces::Rng;

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.None());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(bits.Test(i));
}

TEST(DynamicBitset, SetResetTest) {
  DynamicBitset bits(130);  // spans three 64-bit words
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(129);
  EXPECT_EQ(bits.Count(), 4u);
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  bits.Reset(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(DynamicBitset, IntersectionAndCount) {
  DynamicBitset a(200);
  DynamicBitset b(200);
  for (std::size_t i = 0; i < 200; i += 2) a.Set(i);   // evens
  for (std::size_t i = 0; i < 200; i += 3) b.Set(i);   // multiples of 3
  EXPECT_EQ(DynamicBitset::IntersectionSize(a, b), 34u);  // multiples of 6
  const DynamicBitset c = DynamicBitset::Intersection(a, b);
  EXPECT_EQ(c.Count(), 34u);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(c.Test(i), i % 6 == 0) << i;
  }
}

TEST(DynamicBitset, UnionWith) {
  DynamicBitset a(70);
  DynamicBitset b(70);
  a.Set(1);
  b.Set(69);
  a.UnionWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(69));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(DynamicBitset, IterationIsAscendingAndComplete) {
  DynamicBitset bits(300);
  const std::set<std::size_t> expected = {0, 1, 63, 64, 65, 127, 128, 299};
  for (std::size_t i : expected) bits.Set(i);
  std::vector<std::size_t> seen;
  bits.ForEachSetBit([&seen](std::size_t pos) { seen.push_back(pos); });
  EXPECT_EQ(seen, std::vector<std::size_t>(expected.begin(), expected.end()));
  EXPECT_EQ(bits.ToVector().size(), expected.size());
}

TEST(DynamicBitset, ClearAndEquality) {
  DynamicBitset a(40);
  DynamicBitset b(40);
  a.Set(5);
  EXPECT_NE(a, b);
  a.Clear();
  EXPECT_EQ(a, b);
}

TEST(FenwickTreeTest, PrefixAndRangeSums) {
  ces::FenwickTree tree(10);
  tree.Add(0, 5);
  tree.Add(3, 2);
  tree.Add(9, 1);
  EXPECT_EQ(tree.PrefixSum(0), 5);
  EXPECT_EQ(tree.PrefixSum(2), 5);
  EXPECT_EQ(tree.PrefixSum(3), 7);
  EXPECT_EQ(tree.PrefixSum(9), 8);
  EXPECT_EQ(tree.RangeSum(1, 3), 2);
  EXPECT_EQ(tree.RangeSum(4, 8), 0);
  EXPECT_EQ(tree.RangeSum(0, 9), 8);
  EXPECT_EQ(tree.RangeSum(5, 4), 0);  // empty range
}

TEST(FenwickTreeTest, NegativeDeltasAndUpdates) {
  ces::FenwickTree tree(8);
  for (std::size_t i = 0; i < 8; ++i) tree.Add(i, 1);
  EXPECT_EQ(tree.PrefixSum(7), 8);
  tree.Add(2, -1);
  tree.Add(5, -1);
  EXPECT_EQ(tree.RangeSum(0, 7), 6);
  EXPECT_EQ(tree.RangeSum(2, 2), 0);
  EXPECT_EQ(tree.RangeSum(3, 5), 2);
}

TEST(FenwickTreeTest, MatchesNaiveOnRandomOps) {
  ces::Rng rng(31);
  ces::FenwickTree tree(64);
  std::vector<std::int64_t> naive(64, 0);
  for (int step = 0; step < 2000; ++step) {
    const auto pos = static_cast<std::size_t>(rng.NextBounded(64));
    const auto delta = rng.NextInRange(-3, 3);
    tree.Add(pos, delta);
    naive[pos] += delta;
    const auto lo = static_cast<std::size_t>(rng.NextBounded(64));
    const auto hi = static_cast<std::size_t>(rng.NextBounded(64));
    if (lo <= hi) {
      std::int64_t expected = 0;
      for (std::size_t i = lo; i <= hi; ++i) expected += naive[i];
      ASSERT_EQ(tree.RangeSum(lo, hi), expected) << "step " << step;
    }
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInBounds) {
  Rng rng(7);
  std::array<int, 10> buckets{};
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t value = rng.NextBounded(10);
    ASSERT_LT(value, 10u);
    ++buckets[value];
  }
  for (int count : buckets) EXPECT_GT(count, 700);  // roughly uniform
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t value = rng.NextInRange(-3, 3);
    ASSERT_GE(value, -3);
    ASSERT_LE(value, 3);
    saw_lo |= value == -3;
    saw_hi |= value == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable table({"Name", "Value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "23456"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("Name"), std::string::npos);
  EXPECT_NE(rendered.find("longer"), std::string::npos);
  // All lines equal width.
  std::size_t width = std::string::npos;
  std::size_t start = 0;
  while (start < rendered.size()) {
    const std::size_t eol = rendered.find('\n', start);
    const std::size_t len = eol - start;
    if (width == std::string::npos) width = len;
    EXPECT_EQ(len, width);
    start = eol + 1;
  }
}

TEST(Format, Thousands) {
  EXPECT_EQ(ces::FormatWithThousands(0), "0");
  EXPECT_EQ(ces::FormatWithThousands(999), "999");
  EXPECT_EQ(ces::FormatWithThousands(1000), "1,000");
  EXPECT_EQ(ces::FormatWithThousands(1234567), "1,234,567");
}

TEST(Format, Seconds) {
  EXPECT_NE(ces::FormatSeconds(0.0000005).find("us"), std::string::npos);
  EXPECT_NE(ces::FormatSeconds(0.5).find("ms"), std::string::npos);
  EXPECT_NE(ces::FormatSeconds(2.0).find("s"), std::string::npos);
}

TEST(ArgParserTest, ParsesAllForms) {
  const char* argv[] = {"prog",         "--alpha=3",  "--beta", "7",
                        "--gamma",      "positional", "--flag"};
  ArgParser args(7, argv);
  EXPECT_EQ(args.GetInt("alpha", 0), 3);
  EXPECT_EQ(args.GetInt("beta", 0), 7);
  EXPECT_EQ(args.GetString("gamma", ""), "positional");
  EXPECT_TRUE(args.GetBool("flag", false));
  EXPECT_EQ(args.GetInt("missing", 42), 42);
  EXPECT_FALSE(args.Has("missing"));
}

TEST(ArgParserTest, BoolFalseValues) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=yes"};
  ArgParser args(4, argv);
  EXPECT_FALSE(args.GetBool("a", true));
  EXPECT_FALSE(args.GetBool("b", true));
  EXPECT_TRUE(args.GetBool("c", false));
}

using ces::support::Error;
using ces::support::ErrorCategory;
using ces::support::MetricsRegistry;

TEST(StructuredError, WhatIncludesCategoryContextAndLine) {
  const Error error(ErrorCategory::kParse, "trace-text", "bad hex", 42);
  EXPECT_STREQ(error.what(), "[parse] trace-text: line 42: bad hex");
  EXPECT_EQ(error.category(), ErrorCategory::kParse);
  EXPECT_EQ(error.context(), "trace-text");
  EXPECT_EQ(error.detail(), "bad hex");
  EXPECT_EQ(error.line(), 42u);
  EXPECT_EQ(error.byte_offset(), Error::kNoOffset);
}

TEST(StructuredError, WhatIncludesByteOffsetWhenNoLine) {
  const Error error(ErrorCategory::kTruncated, "trace-binary", "short read",
                    Error::kNoLine, 16);
  EXPECT_STREQ(error.what(), "[truncated] trace-binary: byte 16: short read");
  EXPECT_EQ(error.byte_offset(), 16u);
}

TEST(StructuredError, IsACatchableRuntimeError) {
  try {
    throw Error(ErrorCategory::kIo, "trace-file", "cannot open x");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "[io] trace-file: cannot open x");
    return;
  }
  FAIL() << "Error must derive from std::runtime_error";
}

TEST(StructuredError, ExitCodesAreDistinctAndStable) {
  const ErrorCategory all[] = {
      ErrorCategory::kIo,          ErrorCategory::kFormat,
      ErrorCategory::kParse,       ErrorCategory::kRange,
      ErrorCategory::kTruncated,   ErrorCategory::kUnsupported,
      ErrorCategory::kValidation,  ErrorCategory::kUsage,
      ErrorCategory::kInternal};
  std::set<int> codes;
  for (ErrorCategory category : all) {
    const int code = ces::support::ExitCodeFor(category);
    EXPECT_NE(code, 0) << ces::support::ToString(category);
    EXPECT_NE(code, 1) << ces::support::ToString(category);
    codes.insert(code);
  }
  EXPECT_EQ(codes.size(), std::size(all));  // one exit code per category
  EXPECT_EQ(ces::support::ExitCodeFor(ErrorCategory::kUsage), 2);
  EXPECT_STREQ(ces::support::ToString(ErrorCategory::kValidation),
               "validation");
}

TEST(Metrics, CountersAccumulateAndMissingReadsZero) {
  MetricsRegistry metrics;
  metrics.Add("a.b");
  metrics.Add("a.b", 4);
  EXPECT_EQ(metrics.counter("a.b"), 5u);
  EXPECT_EQ(metrics.counter("never.seen"), 0u);
}

TEST(Metrics, JsonIsSortedAndCountersOnlyByDefault) {
  MetricsRegistry metrics;
  metrics.Add("zeta", 2);
  metrics.Add("alpha", 1);
  metrics.SetGauge("pool.jobs", 8);
  metrics.Observe("span.x", 0.25);
  EXPECT_EQ(metrics.ToJson(), "{\"counters\":{\"alpha\":1,\"zeta\":2}}");
  const std::string full = metrics.ToJson(/*include_volatile=*/true);
  EXPECT_NE(full.find("\"gauges\":{\"pool.jobs\":8}"), std::string::npos);
  EXPECT_NE(full.find("\"span.x\""), std::string::npos);
  EXPECT_NE(full.find("\"count\":1"), std::string::npos);
}

TEST(Metrics, NullSafeStaticsAreNoOps) {
  MetricsRegistry::Add(nullptr, "a");
  MetricsRegistry::SetGauge(nullptr, "g", 1);
  MetricsRegistry::Observe(nullptr, "s", 1.0);
  {
    ces::support::ScopedSpan span(nullptr, "s");
  }
  MetricsRegistry metrics;
  MetricsRegistry::Add(&metrics, "a", 3);
  EXPECT_EQ(metrics.counter("a"), 3u);
}

TEST(Metrics, ScopedSpanRecordsElapsedTime) {
  MetricsRegistry metrics;
  {
    ces::support::ScopedSpan span(&metrics, "work");
  }
  {
    ces::support::ScopedSpan span(&metrics, "work");
  }
  EXPECT_GE(metrics.span_seconds("work"), 0.0);
  const std::string json = metrics.ToJson(true);
  EXPECT_NE(json.find("\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

}  // namespace
