#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "json_validator.hpp"
#include "support/bitset.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/fenwick.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/progress.hpp"
#include "support/rng.hpp"
#include "support/sha256.hpp"
#include "support/table.hpp"
#include "support/trace_event.hpp"

namespace {

using ces::ArgParser;
using ces::AsciiTable;
using ces::DynamicBitset;
using ces::Rng;

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.None());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(bits.Test(i));
}

TEST(DynamicBitset, SetResetTest) {
  DynamicBitset bits(130);  // spans three 64-bit words
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(129);
  EXPECT_EQ(bits.Count(), 4u);
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  bits.Reset(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(DynamicBitset, IntersectionAndCount) {
  DynamicBitset a(200);
  DynamicBitset b(200);
  for (std::size_t i = 0; i < 200; i += 2) a.Set(i);   // evens
  for (std::size_t i = 0; i < 200; i += 3) b.Set(i);   // multiples of 3
  EXPECT_EQ(DynamicBitset::IntersectionSize(a, b), 34u);  // multiples of 6
  const DynamicBitset c = DynamicBitset::Intersection(a, b);
  EXPECT_EQ(c.Count(), 34u);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(c.Test(i), i % 6 == 0) << i;
  }
}

TEST(DynamicBitset, UnionWith) {
  DynamicBitset a(70);
  DynamicBitset b(70);
  a.Set(1);
  b.Set(69);
  a.UnionWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(69));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(DynamicBitset, IterationIsAscendingAndComplete) {
  DynamicBitset bits(300);
  const std::set<std::size_t> expected = {0, 1, 63, 64, 65, 127, 128, 299};
  for (std::size_t i : expected) bits.Set(i);
  std::vector<std::size_t> seen;
  bits.ForEachSetBit([&seen](std::size_t pos) { seen.push_back(pos); });
  EXPECT_EQ(seen, std::vector<std::size_t>(expected.begin(), expected.end()));
  EXPECT_EQ(bits.ToVector().size(), expected.size());
}

TEST(DynamicBitset, ClearAndEquality) {
  DynamicBitset a(40);
  DynamicBitset b(40);
  a.Set(5);
  EXPECT_NE(a, b);
  a.Clear();
  EXPECT_EQ(a, b);
}

TEST(FenwickTreeTest, PrefixAndRangeSums) {
  ces::FenwickTree tree(10);
  tree.Add(0, 5);
  tree.Add(3, 2);
  tree.Add(9, 1);
  EXPECT_EQ(tree.PrefixSum(0), 5);
  EXPECT_EQ(tree.PrefixSum(2), 5);
  EXPECT_EQ(tree.PrefixSum(3), 7);
  EXPECT_EQ(tree.PrefixSum(9), 8);
  EXPECT_EQ(tree.RangeSum(1, 3), 2);
  EXPECT_EQ(tree.RangeSum(4, 8), 0);
  EXPECT_EQ(tree.RangeSum(0, 9), 8);
  EXPECT_EQ(tree.RangeSum(5, 4), 0);  // empty range
}

TEST(FenwickTreeTest, NegativeDeltasAndUpdates) {
  ces::FenwickTree tree(8);
  for (std::size_t i = 0; i < 8; ++i) tree.Add(i, 1);
  EXPECT_EQ(tree.PrefixSum(7), 8);
  tree.Add(2, -1);
  tree.Add(5, -1);
  EXPECT_EQ(tree.RangeSum(0, 7), 6);
  EXPECT_EQ(tree.RangeSum(2, 2), 0);
  EXPECT_EQ(tree.RangeSum(3, 5), 2);
}

TEST(FenwickTreeTest, MatchesNaiveOnRandomOps) {
  ces::Rng rng(31);
  ces::FenwickTree tree(64);
  std::vector<std::int64_t> naive(64, 0);
  for (int step = 0; step < 2000; ++step) {
    const auto pos = static_cast<std::size_t>(rng.NextBounded(64));
    const auto delta = rng.NextInRange(-3, 3);
    tree.Add(pos, delta);
    naive[pos] += delta;
    const auto lo = static_cast<std::size_t>(rng.NextBounded(64));
    const auto hi = static_cast<std::size_t>(rng.NextBounded(64));
    if (lo <= hi) {
      std::int64_t expected = 0;
      for (std::size_t i = lo; i <= hi; ++i) expected += naive[i];
      ASSERT_EQ(tree.RangeSum(lo, hi), expected) << "step " << step;
    }
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInBounds) {
  Rng rng(7);
  std::array<int, 10> buckets{};
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t value = rng.NextBounded(10);
    ASSERT_LT(value, 10u);
    ++buckets[value];
  }
  for (int count : buckets) EXPECT_GT(count, 700);  // roughly uniform
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t value = rng.NextInRange(-3, 3);
    ASSERT_GE(value, -3);
    ASSERT_LE(value, 3);
    saw_lo |= value == -3;
    saw_hi |= value == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable table({"Name", "Value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "23456"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("Name"), std::string::npos);
  EXPECT_NE(rendered.find("longer"), std::string::npos);
  // All lines equal width.
  std::size_t width = std::string::npos;
  std::size_t start = 0;
  while (start < rendered.size()) {
    const std::size_t eol = rendered.find('\n', start);
    const std::size_t len = eol - start;
    if (width == std::string::npos) width = len;
    EXPECT_EQ(len, width);
    start = eol + 1;
  }
}

TEST(Format, Thousands) {
  EXPECT_EQ(ces::FormatWithThousands(0), "0");
  EXPECT_EQ(ces::FormatWithThousands(999), "999");
  EXPECT_EQ(ces::FormatWithThousands(1000), "1,000");
  EXPECT_EQ(ces::FormatWithThousands(1234567), "1,234,567");
}

TEST(Format, Seconds) {
  EXPECT_NE(ces::FormatSeconds(0.0000005).find("us"), std::string::npos);
  EXPECT_NE(ces::FormatSeconds(0.5).find("ms"), std::string::npos);
  EXPECT_NE(ces::FormatSeconds(2.0).find("s"), std::string::npos);
}

TEST(ArgParserTest, ParsesAllForms) {
  const char* argv[] = {"prog",         "--alpha=3",  "--beta", "7",
                        "--gamma",      "positional", "--flag"};
  ArgParser args(7, argv);
  EXPECT_EQ(args.GetInt("alpha", 0), 3);
  EXPECT_EQ(args.GetInt("beta", 0), 7);
  EXPECT_EQ(args.GetString("gamma", ""), "positional");
  EXPECT_TRUE(args.GetBool("flag", false));
  EXPECT_EQ(args.GetInt("missing", 42), 42);
  EXPECT_FALSE(args.Has("missing"));
}

TEST(ArgParserTest, BoolFalseValues) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=yes"};
  ArgParser args(4, argv);
  EXPECT_FALSE(args.GetBool("a", true));
  EXPECT_FALSE(args.GetBool("b", true));
  EXPECT_TRUE(args.GetBool("c", false));
}

using ces::support::Error;
using ces::support::ErrorCategory;
using ces::support::MetricsRegistry;

TEST(StructuredError, WhatIncludesCategoryContextAndLine) {
  const Error error(ErrorCategory::kParse, "trace-text", "bad hex", 42);
  EXPECT_STREQ(error.what(), "[parse] trace-text: line 42: bad hex");
  EXPECT_EQ(error.category(), ErrorCategory::kParse);
  EXPECT_EQ(error.context(), "trace-text");
  EXPECT_EQ(error.detail(), "bad hex");
  EXPECT_EQ(error.line(), 42u);
  EXPECT_EQ(error.byte_offset(), Error::kNoOffset);
}

TEST(StructuredError, WhatIncludesByteOffsetWhenNoLine) {
  const Error error(ErrorCategory::kTruncated, "trace-binary", "short read",
                    Error::kNoLine, 16);
  EXPECT_STREQ(error.what(), "[truncated] trace-binary: byte 16: short read");
  EXPECT_EQ(error.byte_offset(), 16u);
}

TEST(StructuredError, IsACatchableRuntimeError) {
  try {
    throw Error(ErrorCategory::kIo, "trace-file", "cannot open x");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "[io] trace-file: cannot open x");
    return;
  }
  FAIL() << "Error must derive from std::runtime_error";
}

TEST(StructuredError, ExitCodesAreDistinctAndStable) {
  const ErrorCategory all[] = {
      ErrorCategory::kIo,          ErrorCategory::kFormat,
      ErrorCategory::kParse,       ErrorCategory::kRange,
      ErrorCategory::kTruncated,   ErrorCategory::kUnsupported,
      ErrorCategory::kValidation,  ErrorCategory::kUsage,
      ErrorCategory::kInternal};
  std::set<int> codes;
  for (ErrorCategory category : all) {
    const int code = ces::support::ExitCodeFor(category);
    EXPECT_NE(code, 0) << ces::support::ToString(category);
    EXPECT_NE(code, 1) << ces::support::ToString(category);
    codes.insert(code);
  }
  EXPECT_EQ(codes.size(), std::size(all));  // one exit code per category
  EXPECT_EQ(ces::support::ExitCodeFor(ErrorCategory::kUsage), 2);
  EXPECT_STREQ(ces::support::ToString(ErrorCategory::kValidation),
               "validation");
}

TEST(Metrics, CountersAccumulateAndMissingReadsZero) {
  MetricsRegistry metrics;
  metrics.Add("a.b");
  metrics.Add("a.b", 4);
  EXPECT_EQ(metrics.counter("a.b"), 5u);
  EXPECT_EQ(metrics.counter("never.seen"), 0u);
}

TEST(Metrics, JsonIsSortedAndCountersOnlyByDefault) {
  MetricsRegistry metrics;
  metrics.Add("zeta", 2);
  metrics.Add("alpha", 1);
  metrics.SetGauge("pool.jobs", 8);
  metrics.Observe("span.x", 0.25);
  EXPECT_EQ(metrics.ToJson(), "{\"counters\":{\"alpha\":1,\"zeta\":2}}");
  const std::string full = metrics.ToJson(/*include_volatile=*/true);
  EXPECT_NE(full.find("\"gauges\":{\"pool.jobs\":8}"), std::string::npos);
  EXPECT_NE(full.find("\"span.x\""), std::string::npos);
  EXPECT_NE(full.find("\"count\":1"), std::string::npos);
}

TEST(Metrics, NullSafeStaticsAreNoOps) {
  MetricsRegistry::Add(nullptr, "a");
  MetricsRegistry::SetGauge(nullptr, "g", 1);
  MetricsRegistry::Observe(nullptr, "s", 1.0);
  {
    ces::support::ScopedSpan span(nullptr, "s");
  }
  MetricsRegistry metrics;
  MetricsRegistry::Add(&metrics, "a", 3);
  EXPECT_EQ(metrics.counter("a"), 3u);
}

TEST(Metrics, ScopedSpanRecordsElapsedTime) {
  MetricsRegistry metrics;
  {
    ces::support::ScopedSpan span(&metrics, "work");
  }
  {
    ces::support::ScopedSpan span(&metrics, "work");
  }
  EXPECT_GE(metrics.span_seconds("work"), 0.0);
  const std::string json = metrics.ToJson(true);
  EXPECT_NE(json.find("\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

TEST(Metrics, JsonEscapesHostileMetricNames) {
  // Regression: names containing quotes, backslashes, and control characters
  // must not break the JSON surface (they used to be emitted verbatim).
  MetricsRegistry metrics;
  metrics.Add(std::string("a\"b\\c\nd\x01" "e"), 7);
  const std::string json = metrics.ToJson();
  EXPECT_EQ(json, "{\"counters\":{\"a\\\"b\\\\c\\nd\\u0001e\":7}}");
  const ces::testjson::JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << validator.error();
}

TEST(JsonEscape, CoversEveryEscapeClass) {
  using ces::support::JsonEscape;
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("\" \\"), "\\\" \\\\");
  EXPECT_EQ(JsonEscape("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
  EXPECT_EQ(JsonEscape(std::string("\x01\x1f")), "\\u0001\\u001f");
  EXPECT_EQ(ces::support::JsonQuote("a"), "\"a\"");
}

TEST(MetricsHistogram, PowerOfTwoBucketBoundaries) {
  using ces::support::MetricsRegistry;
  // Bucket 0 holds exactly the value 0; bucket b>0 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(MetricsRegistry::HistogramBucket(0), 0u);
  EXPECT_EQ(MetricsRegistry::HistogramBucket(1), 1u);
  EXPECT_EQ(MetricsRegistry::HistogramBucket(2), 2u);
  EXPECT_EQ(MetricsRegistry::HistogramBucket(3), 2u);
  EXPECT_EQ(MetricsRegistry::HistogramBucket(4), 3u);
  EXPECT_EQ(MetricsRegistry::HistogramBucket(7), 3u);
  EXPECT_EQ(MetricsRegistry::HistogramBucket(8), 4u);
  for (std::size_t bucket = 1; bucket < 20; ++bucket) {
    const auto [lo, hi] = MetricsRegistry::HistogramBucketRange(bucket);
    EXPECT_EQ(MetricsRegistry::HistogramBucket(lo), bucket);
    EXPECT_EQ(MetricsRegistry::HistogramBucket(hi), bucket);
    EXPECT_EQ(MetricsRegistry::HistogramBucket(hi + 1), bucket + 1);
  }
}

TEST(MetricsHistogram, ObserveAccumulatesWeightsAndSums) {
  MetricsRegistry metrics;
  metrics.ObserveHistogram("h", 0);
  metrics.ObserveHistogram("h", 1);
  metrics.ObserveHistogram("h", 5, 3);  // weight 3 in bucket 3
  metrics.ObserveHistogram("h", 9, 0);  // weight 0 is a no-op
  const auto snapshot = metrics.histogram("h");
  ASSERT_EQ(snapshot.buckets.size(), 4u);
  EXPECT_EQ(snapshot.buckets[0], 1u);
  EXPECT_EQ(snapshot.buckets[1], 1u);
  EXPECT_EQ(snapshot.buckets[2], 0u);
  EXPECT_EQ(snapshot.buckets[3], 3u);
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_EQ(snapshot.sum, 0u + 1u + 3u * 5u);
  EXPECT_EQ(metrics.histogram("missing").count, 0u);
}

TEST(MetricsHistogram, JsonSectionIsDeterministicAndOmittedWhenEmpty) {
  MetricsRegistry metrics;
  metrics.Add("c", 1);
  EXPECT_EQ(metrics.ToJson(), "{\"counters\":{\"c\":1}}");
  metrics.ObserveHistogram("z.h", 4);
  metrics.ObserveHistogram("a.h", 0);
  const std::string json = metrics.ToJson();
  EXPECT_EQ(json,
            "{\"counters\":{\"c\":1},\"histograms\":{"
            "\"a.h\":{\"buckets\":[1],\"count\":1,\"sum\":0},"
            "\"z.h\":{\"buckets\":[0,0,0,1],\"count\":1,\"sum\":4}}}");
  const ces::testjson::JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << validator.error();
  // Histograms are part of the deterministic section: present without
  // include_volatile, and order-independent in what they accumulate.
  MetricsRegistry other;
  other.ObserveHistogram("a.h", 0);
  other.ObserveHistogram("z.h", 4);
  other.Add("c", 1);
  EXPECT_EQ(other.ToJson(), json);
}

// Brute-force oracle: expand every bucket into `count` copies of its upper
// bound (the value Percentile reports for anything landing there), sort, and
// index with the nearest-rank rule rank = clamp(ceil(q*n), 1, n).
std::uint64_t BruteForcePercentile(
    const MetricsRegistry::HistogramSnapshot& snapshot, double q) {
  std::vector<std::uint64_t> values;
  for (std::size_t b = 0; b < snapshot.buckets.size(); ++b) {
    for (std::uint64_t i = 0; i < snapshot.buckets[b]; ++i) {
      values.push_back(MetricsRegistry::HistogramBucketRange(b).second);
    }
  }
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  if (rank == 0) rank = 1;
  if (rank > values.size()) rank = values.size();
  return values[rank - 1];
}

TEST(MetricsHistogram, PercentileMatchesBruteForceOracle) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.histogram("empty").Percentile(0.5), 0u);

  // A deterministic mix: zeros, small values, heavy tail, weighted entries.
  ces::Rng rng(0xfeedu);
  metrics.ObserveHistogram("h", 0, 3);
  metrics.ObserveHistogram("h", 1);
  metrics.ObserveHistogram("h", 1'000'000, 2);
  for (int i = 0; i < 500; ++i) {
    metrics.ObserveHistogram("h", rng.NextBounded(100'000));
  }
  const auto snapshot = metrics.histogram("h");
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(snapshot.Percentile(q), BruteForcePercentile(snapshot, q))
        << "q=" << q;
  }

  // Single observation: every quantile is that observation's bucket bound.
  MetricsRegistry one;
  one.ObserveHistogram("h", 42);
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(one.histogram("h").Percentile(q),
              MetricsRegistry::HistogramBucketRange(
                  MetricsRegistry::HistogramBucket(42))
                  .second);
  }
}

TEST(MetricsHistogram, VolatileHistogramsStayOutOfDeterministicJson) {
  MetricsRegistry metrics;
  metrics.Add("c", 1);
  metrics.ObserveVolatileHistogram("latency_us", 123);
  // Deterministic surface is untouched by volatile observations...
  EXPECT_EQ(metrics.ToJson(), "{\"counters\":{\"c\":1}}");
  // ...but the volatile view carries them, with exact percentiles on demand.
  const std::string full = metrics.ToJson(true, true);
  EXPECT_NE(full.find("\"volatile_histograms\""), std::string::npos);
  EXPECT_NE(full.find("\"latency_us\""), std::string::npos);
  EXPECT_NE(full.find("\"p99\":"), std::string::npos);
  const ces::testjson::JsonValidator validator(full);
  EXPECT_TRUE(validator.Valid()) << validator.error();
  EXPECT_EQ(metrics.volatile_histogram("latency_us").count, 1u);
  MetricsRegistry::ObserveVolatileHistogram(nullptr, "x", 1);  // null-safe
}

TEST(MetricsPrometheus, ExpositionCoversEverySeriesFamily) {
  MetricsRegistry metrics;
  metrics.Add("service.requests", 3);
  metrics.SetGauge("pool.jobs", 8);
  metrics.Observe("solve.time", 0.5);
  metrics.ObserveHistogram("explore.k", 4, 2);
  metrics.ObserveHistogram("explore.k", 0);
  const std::string text = metrics.ToPrometheus();

  // Scalar families: counter and gauge, names sanitised to ces_ + [a-z0-9_].
  EXPECT_NE(text.find("# TYPE ces_service_requests counter\n"
                      "ces_service_requests 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ces_pool_jobs gauge\nces_pool_jobs 8\n"),
            std::string::npos);
  // Spans surface as a seconds summary.
  EXPECT_NE(text.find("ces_solve_time_seconds_count 1\n"), std::string::npos);
  // Histograms are cumulative: bucket 0 (le="0") holds 1, and by the upper
  // bound of value 4's bucket (le="7") all 3 observations have accumulated.
  EXPECT_NE(text.find("# TYPE ces_explore_k histogram\n"), std::string::npos);
  EXPECT_NE(text.find("ces_explore_k_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("ces_explore_k_bucket{le=\"7\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("ces_explore_k_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("ces_explore_k_sum 8\n"), std::string::npos);
  EXPECT_NE(text.find("ces_explore_k_count 3\n"), std::string::npos);
}

// --------------------------------------------------------------------------
// Structured request log

TEST(RequestLog, FormatsFixedFieldOrderAndEscapesHostileStrings) {
  ces::support::RequestLogEntry entry;
  entry.ts_us = 12;
  entry.rid = "r7";
  entry.id = "a\"b";
  entry.op = "explore";
  entry.trace = "evil\"name\n\\x.trc";
  entry.digest = "sha256:00";
  entry.outcome = "computed";
  entry.error = "";
  entry.queue_us = 3;
  entry.exec_us = 4;
  entry.total_us = 7;
  entry.bytes = 99;
  const std::string line = ces::support::FormatRequestLogLine(entry);
  EXPECT_EQ(line,
            "{\"ts_us\":12,\"rid\":\"r7\",\"id\":\"a\\\"b\","
            "\"op\":\"explore\",\"trace\":\"evil\\\"name\\n\\\\x.trc\","
            "\"digest\":\"sha256:00\",\"outcome\":\"computed\","
            "\"error\":\"\",\"queue_us\":3,\"exec_us\":4,\"total_us\":7,"
            "\"bytes\":99}");
  const ces::testjson::JsonValidator validator(line);
  EXPECT_TRUE(validator.Valid()) << validator.error();
}

TEST(RequestLog, WritesOneLinePerEntryAndNullStaticsAreNoOps) {
  const std::string path =
      std::string(::testing::TempDir()) + "request_log_test.ndjson";
  std::remove(path.c_str());
  {
    ces::support::RequestLog log;
    ASSERT_TRUE(log.Open(path));
    ces::support::RequestLogEntry entry;
    entry.rid = "r1";
    entry.op = "ping";
    ces::support::RequestLog::Write(&log, entry);
    entry.rid = "r2";
    log.Write(entry);
    EXPECT_GE(ces::support::RequestLog::NowUs(&log), 0u);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content(4096, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 2);
  EXPECT_NE(content.find("\"rid\":\"r1\""), std::string::npos);
  EXPECT_NE(content.find("\"rid\":\"r2\""), std::string::npos);
  // Null-safe statics: no crash, NowUs reads 0.
  ces::support::RequestLog::Write(nullptr, ces::support::RequestLogEntry{});
  EXPECT_EQ(ces::support::RequestLog::NowUs(nullptr), 0u);
  std::remove(path.c_str());
}

TEST(TraceSink, EmitsValidNestedChromeTraceJson) {
  ces::support::TraceSink sink;
  sink.NameThisThread("main");
  {
    ces::support::ScopedTraceSpan outer("outer", &sink);
    {
      ces::support::ScopedTraceSpan inner("inner", &sink);
    }
    sink.Instant("marker");
  }
  const std::string json = sink.ToJson();
  const auto checks = ces::testjson::CheckTraceEvents(json);
  EXPECT_TRUE(checks.ok()) << checks.error << "\n" << json;
  EXPECT_EQ(checks.spans, 2u);
  // 1 metadata + 2 B + 2 E + 1 instant
  EXPECT_EQ(checks.events, 6u);
  EXPECT_NE(json.find("\"name\":\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(TraceSink, PerThreadTracksNestIndependently) {
  ces::support::TraceSink sink;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      sink.NameThisThread("worker " + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        ces::support::ScopedTraceSpan outer("outer", &sink);
        ces::support::ScopedTraceSpan inner("inner", &sink);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto checks = ces::testjson::CheckTraceEvents(sink.ToJson());
  EXPECT_TRUE(checks.ok()) << checks.error;
  EXPECT_EQ(checks.spans,
            static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
  // One track per thread (each also carries its metadata event).
  EXPECT_EQ(checks.per_tid.size(), static_cast<std::size_t>(kThreads));
}

TEST(TraceSink, GlobalIsNullByDefaultAndSpansAreNoOps) {
  EXPECT_EQ(ces::support::TraceSink::Global(), nullptr);
  {
    ces::support::ScopedTraceSpan span("ignored");  // must not crash
  }
  ces::support::TraceSink sink;
  ces::support::TraceSink::SetGlobal(&sink);
  {
    ces::support::ScopedTraceSpan span("seen");
  }
  ces::support::TraceSink::SetGlobal(nullptr);
  {
    ces::support::ScopedTraceSpan span("ignored again");
  }
  EXPECT_EQ(sink.event_count(), 2u);  // one B + one E
}

TEST(TraceSink, ScopedSpanSurvivesGlobalClearedMidSpan) {
  // The span captures the sink at construction, so clearing the global
  // between B and E must not lose the E (or crash).
  ces::support::TraceSink sink;
  ces::support::TraceSink::SetGlobal(&sink);
  {
    ces::support::ScopedTraceSpan span("work");
    ces::support::TraceSink::SetGlobal(nullptr);
  }
  const auto checks = ces::testjson::CheckTraceEvents(sink.ToJson());
  EXPECT_TRUE(checks.ok()) << checks.error;
  EXPECT_EQ(checks.spans, 1u);
}

TEST(ProgressReporter, RendersPhasesToStream) {
  std::FILE* stream = std::tmpfile();
  ASSERT_NE(stream, nullptr);
  {
    // Interval 0 renders every tick; tmpfile is never a TTY, so the output
    // is plain lines.
    ces::support::ProgressReporter reporter(stream, 0.0);
    ces::support::ProgressReporter::SetGlobal(&reporter);
    reporter.BeginPhase("scan", 4);
    for (int i = 0; i < 4; ++i) {
      ces::support::ProgressReporter::GlobalTick();
    }
    reporter.EndPhase();
    EXPECT_EQ(reporter.done(), 4u);
    ces::support::ProgressReporter::SetGlobal(nullptr);
  }
  std::rewind(stream);
  std::string output;
  char buffer[256];
  while (std::fgets(buffer, sizeof(buffer), stream) != nullptr) {
    output += buffer;
  }
  std::fclose(stream);
  EXPECT_NE(output.find("scan 0/4 (0%)"), std::string::npos);
  EXPECT_NE(output.find("scan 4/4 (100%) [done]"), std::string::npos);
}

TEST(ProgressReporter, TicksWithoutAnOpenPhaseAreSilent) {
  std::FILE* stream = std::tmpfile();
  ASSERT_NE(stream, nullptr);
  {
    ces::support::ProgressReporter reporter(stream, 0.0);
    reporter.Tick(3);
    EXPECT_EQ(reporter.done(), 3u);
  }
  std::rewind(stream);
  EXPECT_EQ(std::fgetc(stream), EOF);
  std::fclose(stream);
}

// FIPS 180-2 appendix B test vectors, plus the incremental-update contract
// the TraceStore relies on (arbitrary chunking must not change the digest).

TEST(Sha256, Fips180OneBlockMessage) {
  EXPECT_EQ(
      ces::support::Sha256::HexOf("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, Fips180TwoBlockMessage) {
  EXPECT_EQ(
      ces::support::Sha256::HexOf(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, Fips180EmptyMessage) {
  EXPECT_EQ(
      ces::support::Sha256::HexOf(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Fips180MillionAs) {
  ces::support::Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(
      hasher.FinishHex(),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalChunkingMatchesOneShot) {
  // The exact FIPS padding boundaries (55/56/63/64/65 bytes) are where
  // buffered implementations break, so sweep lengths across them with a
  // deterministic byte pattern and varying chunk sizes.
  std::string message;
  for (int i = 0; i < 200; ++i) {
    message.push_back(static_cast<char>((i * 37 + 11) & 0xFF));
  }
  for (std::size_t length : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 127u, 200u}) {
    const std::string_view whole(message.data(), length);
    const std::string expected = ces::support::Sha256::HexOf(whole);
    for (std::size_t chunk : {1u, 3u, 64u, 200u}) {
      ces::support::Sha256 hasher;
      for (std::size_t at = 0; at < length; at += chunk) {
        hasher.Update(whole.substr(at, chunk));
      }
      EXPECT_EQ(hasher.FinishHex(), expected)
          << "length=" << length << " chunk=" << chunk;
    }
  }
}

TEST(Sha256, ResetAllowsReuseAndUpdateAfterFinishThrows) {
  ces::support::Sha256 hasher;
  hasher.Update("abc");
  EXPECT_EQ(
      hasher.FinishHex(),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_THROW(hasher.Update("more"), ces::support::Error);
  hasher.Reset();
  hasher.Update("abc");
  EXPECT_EQ(
      hasher.FinishHex(),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

}  // namespace
