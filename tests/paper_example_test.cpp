// Pins the paper's running example end-to-end: Table 1 (trace), Table 2
// (stripped trace), Table 3 (zero/one sets), Table 4 (MRCT), Figure 3
// (BCAT), and the worked postlude numbers of section 2.3.
//
// The paper numbers references 1..5; the library's ids are 0-based, so every
// expectation below is the paper value minus one.
#include <gtest/gtest.h>

#include "analytic/bcat.hpp"
#include "analytic/explorer.hpp"
#include "analytic/fast.hpp"
#include "analytic/mrct.hpp"
#include "analytic/postlude.hpp"
#include "analytic/zeroone.hpp"
#include "cache/sim.hpp"
#include "cache/stack.hpp"
#include "trace/strip.hpp"
#include "trace/synthetic.hpp"

namespace {

using ces::DynamicBitset;
using namespace ces::analytic;
using namespace ces::trace;

StrippedTrace PaperStripped() { return Strip(PaperExampleTrace()); }

std::vector<std::uint32_t> Ids(const DynamicBitset& set) {
  return set.ToVector();
}

TEST(PaperExample, Table1Trace) {
  const Trace trace = PaperExampleTrace();
  ASSERT_EQ(trace.size(), 10u);
  EXPECT_EQ(trace.address_bits, 4u);
}

TEST(PaperExample, Table2StrippedTrace) {
  const StrippedTrace stripped = PaperStripped();
  EXPECT_EQ(stripped.unique_count(), 5u);
  // Unique references in first-appearance order: 1011 1100 0110 0011 0100.
  const std::vector<std::uint32_t> expected_unique = {0xB, 0xC, 0x6, 0x3, 0x4};
  EXPECT_EQ(stripped.unique, expected_unique);
  // Identifier sequence (paper ids minus one).
  const std::vector<std::uint32_t> expected_ids = {0, 1, 2, 3, 0,
                                                   4, 1, 3, 0, 2};
  EXPECT_EQ(stripped.ids, expected_ids);
}

TEST(PaperExample, Table3ZeroOneSets) {
  const StrippedTrace stripped = PaperStripped();
  const ZeroOneSets sets = BuildZeroOneSets(stripped, 4);
  ASSERT_EQ(sets.bit_count(), 4u);
  // Paper ids {2,3,5} -> 0-based {1,2,4}, etc.
  EXPECT_EQ(Ids(sets.zero[0]), (std::vector<std::uint32_t>{1, 2, 4}));
  EXPECT_EQ(Ids(sets.one[0]), (std::vector<std::uint32_t>{0, 3}));
  EXPECT_EQ(Ids(sets.zero[1]), (std::vector<std::uint32_t>{1, 4}));
  EXPECT_EQ(Ids(sets.one[1]), (std::vector<std::uint32_t>{0, 2, 3}));
  EXPECT_EQ(Ids(sets.zero[2]), (std::vector<std::uint32_t>{0, 3}));
  EXPECT_EQ(Ids(sets.one[2]), (std::vector<std::uint32_t>{1, 2, 4}));
  EXPECT_EQ(Ids(sets.zero[3]), (std::vector<std::uint32_t>{2, 3, 4}));
  EXPECT_EQ(Ids(sets.one[3]), (std::vector<std::uint32_t>{0, 1}));
}

TEST(PaperExample, Table4Mrct) {
  const Mrct mrct = Mrct::Build(PaperStripped());
  ASSERT_EQ(mrct.unique_count(), 5u);
  // Reference 1 (id 0): {{2,3,4},{2,4,5}} -> {{1,2,3},{1,3,4}}.
  ASSERT_EQ(mrct.ConflictsOf(0).size(), 2u);
  EXPECT_EQ(mrct.ConflictsOf(0)[0], (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(mrct.ConflictsOf(0)[1], (std::vector<std::uint32_t>{1, 3, 4}));
  // Reference 2 (id 1): {{1,3,4,5}} -> {{0,2,3,4}}.
  ASSERT_EQ(mrct.ConflictsOf(1).size(), 1u);
  EXPECT_EQ(mrct.ConflictsOf(1)[0], (std::vector<std::uint32_t>{0, 2, 3, 4}));
  // Reference 3 (id 2): {{1,2,4,5}} -> {{0,1,3,4}}.
  ASSERT_EQ(mrct.ConflictsOf(2).size(), 1u);
  EXPECT_EQ(mrct.ConflictsOf(2)[0], (std::vector<std::uint32_t>{0, 1, 3, 4}));
  // Reference 4 (id 3): {{1,2,5}} -> {{0,1,4}}.
  ASSERT_EQ(mrct.ConflictsOf(3).size(), 1u);
  EXPECT_EQ(mrct.ConflictsOf(3)[0], (std::vector<std::uint32_t>{0, 1, 4}));
  // Reference 5 (id 4): no non-cold occurrence.
  EXPECT_TRUE(mrct.ConflictsOf(4).empty());
}

TEST(PaperExample, MrctNaiveMatchesStackBuild) {
  const StrippedTrace stripped = PaperStripped();
  EXPECT_EQ(Mrct::Build(stripped), Mrct::BuildNaive(stripped));
}

TEST(PaperExample, Figure3Bcat) {
  const StrippedTrace stripped = PaperStripped();
  const ZeroOneSets sets = BuildZeroOneSets(stripped, 4);
  const Bcat bcat = Bcat::Build(sets, stripped.unique_count(), 4);

  // Root: all five references.
  const Bcat::Node& root = bcat.node(0);
  EXPECT_EQ(Ids(root.refs), (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));

  // Level 1: {2,3,5} and {1,4} (paper ids).
  ASSERT_EQ(bcat.LevelNodes(1).size(), 2u);
  EXPECT_EQ(Ids(bcat.node(root.left).refs),
            (std::vector<std::uint32_t>{1, 2, 4}));
  EXPECT_EQ(Ids(bcat.node(root.right).refs),
            (std::vector<std::uint32_t>{0, 3}));

  // Level 2: L00={2,5}, L01={3}, L10={}, L11={1,4}.
  const Bcat::Node& left = bcat.node(root.left);
  const Bcat::Node& right = bcat.node(root.right);
  EXPECT_EQ(Ids(bcat.node(left.left).refs),
            (std::vector<std::uint32_t>{1, 4}));
  EXPECT_EQ(Ids(bcat.node(left.right).refs),
            (std::vector<std::uint32_t>{2}));
  EXPECT_TRUE(bcat.node(right.left).refs.None());
  EXPECT_EQ(Ids(bcat.node(right.right).refs),
            (std::vector<std::uint32_t>{0, 3}));

  // Zero-miss associativities per level (paper: A=3 at depth 2, A=2 at 4).
  EXPECT_EQ(bcat.MaxCardinalityAtLevel(0), 5u);
  EXPECT_EQ(bcat.MaxCardinalityAtLevel(1), 3u);
  EXPECT_EQ(bcat.MaxCardinalityAtLevel(2), 2u);
  EXPECT_EQ(bcat.MaxCardinalityAtLevel(3), 2u);
  EXPECT_EQ(bcat.MaxCardinalityAtLevel(4), 1u);
}

TEST(PaperExample, Section23WorkedMissCounts) {
  // The paper counts, for node S={1,4} at level 2 with A=1, one miss per
  // conflict-set intersection: three in total (two for reference 1, one for
  // reference 4). With the sibling {2,5} contributing one more, depth 4 at
  // A=1 has 4 non-cold misses.
  const StrippedTrace stripped = PaperStripped();
  const ZeroOneSets sets = BuildZeroOneSets(stripped, 4);
  const Bcat bcat = Bcat::Build(sets, stripped.unique_count(), 4);
  const Mrct mrct = Mrct::Build(stripped);
  const auto profiles = ComputeMissProfiles(bcat, mrct, stripped.warm_count(),
                                            stripped.unique_count(), 4);
  ASSERT_EQ(profiles.size(), 5u);

  // Depth 1 (fully shared row): every warm access with >= 1 distinct
  // intervening reference misses at A=1: all five of them.
  EXPECT_EQ(profiles[0].MissesAtAssoc(1), 5u);
  // Depth 2: 3 misses from {1,4}-node accesses + 2 from {2,3,5} at A=1.
  EXPECT_EQ(profiles[1].MissesAtAssoc(1), 5u);
  EXPECT_EQ(profiles[1].MissesAtAssoc(2), 2u);
  EXPECT_EQ(profiles[1].MissesAtAssoc(3), 0u);
  // Depth 4: 4 misses at A=1 (worked example), zero at A=2.
  EXPECT_EQ(profiles[2].MissesAtAssoc(1), 4u);
  EXPECT_EQ(profiles[2].MissesAtAssoc(2), 0u);
  // Depth 8 keeps both pairs together; depth 16 isolates everything.
  EXPECT_EQ(profiles[3].MissesAtAssoc(1), 4u);
  EXPECT_EQ(profiles[4].MissesAtAssoc(1), 0u);
}

TEST(PaperExample, OptimalSetForZeroMisses) {
  const Explorer explorer(PaperExampleTrace(),
                          {.engine = Engine::kReference, .max_index_bits = 4});
  const ExplorationResult result = explorer.Solve(0);
  ASSERT_EQ(result.points.size(), 5u);
  const std::vector<std::uint32_t> expected_assoc = {5, 3, 2, 2, 1};
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    EXPECT_EQ(result.points[i].depth, 1u << i);
    EXPECT_EQ(result.points[i].assoc, expected_assoc[i]) << "depth " << (1 << i);
    EXPECT_EQ(result.points[i].warm_misses, 0u);
  }
}

TEST(PaperExample, OptimalSetForRelaxedBudgets) {
  const Explorer explorer(PaperExampleTrace(),
                          {.engine = Engine::kFused, .max_index_bits = 4});
  // K=2 admits A=2 at depth 2 (exactly two leftover misses).
  EXPECT_EQ(explorer.Solve(2).points[1].assoc, 2u);
  EXPECT_EQ(explorer.Solve(2).points[1].warm_misses, 2u);
  // K=1 does not.
  EXPECT_EQ(explorer.Solve(1).points[1].assoc, 3u);
  // K >= 5 (every warm reference may miss) admits direct-mapped everywhere.
  for (const DesignPoint& point : explorer.Solve(5).points) {
    EXPECT_EQ(point.assoc, 1u);
  }
}

TEST(PaperExample, AllEnginesAgreeWithSimulator) {
  const Trace trace = PaperExampleTrace();
  const StrippedTrace stripped = Strip(trace);
  const auto fused = ComputeMissProfilesFused(stripped, 4);
  for (std::uint32_t bits = 0; bits <= 4; ++bits) {
    const auto mattson = ces::cache::ComputeStackProfile(stripped, bits);
    EXPECT_EQ(fused[bits].hist, mattson.hist) << "depth " << (1 << bits);
    for (std::uint32_t assoc = 1; assoc <= 5; ++assoc) {
      EXPECT_EQ(fused[bits].MissesAtAssoc(assoc),
                ces::cache::WarmMisses(trace, 1u << bits, assoc))
          << "depth " << (1 << bits) << " assoc " << assoc;
    }
  }
}

}  // namespace
