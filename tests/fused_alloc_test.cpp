// Pins the fused prelude's allocation-freedom contract: once
// FusedPreludeOptions::after_setup has fired, the traversal — node scans,
// partitions, subtree fan-out, histogram merge and canonicalisation — runs
// without touching the heap. The serial path must be exactly zero
// allocations; the parallel path is allowed the pool-dispatch constant
// (std::function wrappers are small enough for SBO on the toolchains we
// build with, but the bound keeps the test honest rather than
// stdlib-version-brittle).
//
// The counter lives in a replaced global operator new, which is why this
// contract has its own binary: counting is only armed inside the traversal,
// so gtest's own allocations never pollute the measurement.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "analytic/fast.hpp"
#include "support/pool.hpp"
#include "support/rng.hpp"
#include "trace/strip.hpp"
#include "trace/synthetic.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

std::uint64_t CountTraversalAllocations(const ces::trace::StrippedTrace& s,
                                        bool use_tree,
                                        ces::support::ThreadPool* pool) {
  ces::analytic::FusedPreludeOptions options;
  options.pool = pool;
  options.after_setup = [] {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  };
  const auto profiles =
      use_tree ? ces::analytic::ComputeMissProfilesFusedTree(s, 8, options)
               : ces::analytic::ComputeMissProfilesFused(s, 8, options);
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_EQ(profiles.size(), 9u);
  return g_allocations.load(std::memory_order_relaxed);
}

ces::trace::StrippedTrace TestStripped() {
  ces::Rng rng(42);
  return ces::trace::Strip(ces::trace::LocalityMix(rng, 128, 2048, 50000));
}

TEST(FusedAllocTest, SerialTraversalIsAllocationFree) {
  const auto stripped = TestStripped();
  for (const bool use_tree : {false, true}) {
    EXPECT_EQ(CountTraversalAllocations(stripped, use_tree, nullptr), 0u)
        << "use_tree=" << use_tree;
  }
}

TEST(FusedAllocTest, ParallelTraversalAllocatesAtMostDispatchConstant) {
  const auto stripped = TestStripped();
  ces::support::ThreadPool pool(8);
  for (const bool use_tree : {false, true}) {
    EXPECT_LE(CountTraversalAllocations(stripped, use_tree, &pool), 16u)
        << "use_tree=" << use_tree;
  }
}

}  // namespace
