// Robustness fuzzing (deterministic): random instruction words through the
// decoder/disassembler/CPU, random text through the assembler, and a
// malformed-trace corpus plus mutation fuzzing through every trace reader.
// Nothing here may crash, hang, over-allocate, or corrupt state — errors
// must surface as decode failures, AssemblyError, a StopReason, or a
// support::Error with a stable category.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <sstream>
#include <string>

#include "isa/assembler.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "isa/disasm.hpp"
#include "isa/isa.hpp"
#include "sim/cpu.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "trace/dinero.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace ces::isa;

TEST(FuzzDecode, RandomWordsNeverCrash) {
  ces::Rng rng(0xF022);
  for (int i = 0; i < 200000; ++i) {
    const auto word = static_cast<std::uint32_t>(rng.Next());
    Instruction instruction;
    if (Decode(word, instruction)) {
      // Whatever decoded must re-encode into a decodable word (fields are
      // masked on encode, so this is idempotence, not identity).
      Instruction second;
      EXPECT_TRUE(Decode(Encode(instruction), second));
      EXPECT_EQ(second, instruction);
      const std::string text = Disassemble(instruction, 0x1000);
      EXPECT_FALSE(text.empty());
    }
  }
}

TEST(FuzzCpu, RandomValidProgramsAlwaysTerminate) {
  ces::Rng rng(0xF0C9);
  for (int program_index = 0; program_index < 200; ++program_index) {
    Program program;
    const int length = 4 + static_cast<int>(rng.NextBounded(60));
    for (int i = 0; i < length; ++i) {
      Instruction ins;
      ins.op = static_cast<Opcode>(
          rng.NextBounded(static_cast<std::uint64_t>(Opcode::kOpcodeCount)));
      ins.rd = static_cast<std::uint8_t>(rng.NextBounded(32));
      ins.rs = static_cast<std::uint8_t>(rng.NextBounded(32));
      ins.rt = static_cast<std::uint8_t>(rng.NextBounded(32));
      ins.shamt = static_cast<std::uint8_t>(rng.NextBounded(32));
      ins.imm = static_cast<std::int16_t>(rng.Next());
      ins.target = static_cast<std::uint32_t>(rng.NextBounded(1u << 10));
      program.text.push_back(Encode(ins));
    }
    program.text.push_back(
        Encode(Instruction{.op = Opcode::kHalt}));  // reachable or not

    ces::sim::Cpu cpu(program, 1u << 18);
    const ces::sim::StopReason reason = cpu.Run(50'000);
    // Any reason is acceptable; the point is that Run returned and left the
    // CPU in a queryable state.
    (void)reason;
    EXPECT_LE(cpu.retired(), 50'000u);
    for (std::uint8_t r = 0; r < 32; ++r) (void)cpu.reg(r);
    EXPECT_EQ(cpu.reg(0), 0u);  // r0 must survive any instruction mix
  }
}

TEST(FuzzAssembler, RandomTextNeverCrashes) {
  ces::Rng rng(0xFA53);
  static const char* kFragments[] = {
      "add", "lw", "t0", "t1", ",", "(", ")", "0x", "123", "-", "label",
      ":", ".word", ".data", ".text", "li", "beq", "\"str\"", "#c", "$3",
      ".equ", "sp", "4(sp)", "main", "jal", ".space", "zz", "+", ".align"};
  for (int i = 0; i < 3000; ++i) {
    std::string source;
    const int tokens = 1 + static_cast<int>(rng.NextBounded(40));
    for (int t = 0; t < tokens; ++t) {
      source += kFragments[rng.NextBounded(std::size(kFragments))];
      source += rng.NextBool(0.3) ? "\n" : " ";
    }
    try {
      const Program program = Assemble(source);
      (void)program;
    } catch (const AssemblyError&) {
      // expected for most inputs
    }
  }
}

using ces::support::Error;
using ces::support::ErrorCategory;

namespace corpus {

void AppendU32(std::string& bytes, std::uint32_t value) {
  bytes.push_back(static_cast<char>(value & 0xff));
  bytes.push_back(static_cast<char>((value >> 8) & 0xff));
  bytes.push_back(static_cast<char>((value >> 16) & 0xff));
  bytes.push_back(static_cast<char>((value >> 24) & 0xff));
}

std::string Header(const char* magic, std::uint32_t kind, std::uint32_t bits,
                   std::uint32_t count, std::uint32_t version = 1) {
  std::string bytes(magic, 4);
  AppendU32(bytes, version);
  AppendU32(bytes, kind);
  AppendU32(bytes, bits);
  AppendU32(bytes, count);
  return bytes;
}

struct BinaryCase {
  const char* name;
  std::string bytes;
  bool compressed;  // which reader the fixture targets
  ErrorCategory expected;
};

std::vector<BinaryCase> BinaryCases() {
  std::vector<BinaryCase> cases;
  cases.push_back({"empty stream", "", false, ErrorCategory::kTruncated});
  cases.push_back({"short magic", "CT", false, ErrorCategory::kTruncated});
  cases.push_back({"garbage magic", "XXXXYYYYZZZZWWWW", false,
                   ErrorCategory::kFormat});
  cases.push_back({"ctrz into raw reader", Header("CTRZ", 0, 32, 0), false,
                   ErrorCategory::kUnsupported});
  cases.push_back({"ctrc into compressed reader", Header("CTRC", 0, 32, 0),
                   true, ErrorCategory::kUnsupported});
  cases.push_back({"bad version", Header("CTRC", 0, 32, 0, 2), false,
                   ErrorCategory::kFormat});
  cases.push_back({"bad kind", Header("CTRC", 9, 32, 0), false,
                   ErrorCategory::kFormat});
  cases.push_back({"zero address bits", Header("CTRC", 0, 0, 0), false,
                   ErrorCategory::kValidation});
  cases.push_back({"oversized address bits", Header("CTRC", 0, 64, 0), false,
                   ErrorCategory::kValidation});
  cases.push_back({"header cut mid-field", std::string("CTRC\x01\x00", 6),
                   false, ErrorCategory::kTruncated});
  // Oversized counts: a 4-byte lie must not drive a giant reserve.
  cases.push_back({"oversized raw count", Header("CTRC", 0, 32, 0xffffffffu),
                   false, ErrorCategory::kValidation});
  {
    std::string bytes = Header("CTRZ", 0, 32, 0xfffffff0u);
    bytes.push_back('\x02');
    cases.push_back({"oversized compressed count", bytes, true,
                     ErrorCategory::kValidation});
  }
  {
    std::string bytes = Header("CTRC", 0, 8, 1);
    AppendU32(bytes, 0x1ff);  // 9 bits > declared 8
    cases.push_back({"ref exceeds address_bits", bytes, false,
                     ErrorCategory::kValidation});
  }
  {
    std::string bytes = Header("CTRZ", 0, 32, 1);
    bytes.push_back('\x01');  // zigzag(-1): walks below address 0
    cases.push_back({"delta below zero", bytes, true, ErrorCategory::kRange});
  }
  {
    std::string bytes = Header("CTRZ", 0, 32, 2);
    bytes.push_back('\x02');  // +1
    bytes.push_back('\x80');  // truncated varint (continuation, then EOF)
    cases.push_back({"truncated varint", bytes, true,
                     ErrorCategory::kTruncated});
  }
  {
    std::string bytes = Header("CTRZ", 0, 32, 1);
    for (int i = 0; i < 11; ++i) bytes.push_back('\x80');  // 11 continuations
    bytes.push_back('\x01');
    cases.push_back({"overlong varint", bytes, true, ErrorCategory::kFormat});
  }
  {
    std::string bytes = Header("CTRZ", 0, 32, 1);
    bytes.push_back('\x80');  // non-canonical encoding of 0 (0x80 0x00)
    bytes.push_back('\x00');
    cases.push_back({"non-canonical varint", bytes, true,
                     ErrorCategory::kFormat});
  }
  {
    std::string bytes = Header("CTRZ", 0, 32, 1);
    for (int i = 0; i < 9; ++i) bytes.push_back('\x80');
    bytes.push_back('\x02');  // bit 64: does not fit a u64
    cases.push_back({"overflowing varint", bytes, true,
                     ErrorCategory::kFormat});
  }
  return cases;
}

struct TextCase {
  const char* name;
  const char* text;
  bool dinero;
  ErrorCategory expected;
};

constexpr TextCase kTextCases[] = {
    {"not hex", "zzz\n", false, ErrorCategory::kParse},
    {"trailing garbage", "12fxq\n", false, ErrorCategory::kParse},
    {"33-bit address", "1ffffffff\n", false, ErrorCategory::kRange},
    {"unknown kind", "# kind banana\n", false, ErrorCategory::kParse},
    {"bad address_bits", "# address_bits 99\n", false,
     ErrorCategory::kValidation},
    {"address beyond declared bits", "# address_bits 4\nff\n", false,
     ErrorCategory::kValidation},
    {"dinero bad label", "9 400\n", true, ErrorCategory::kParse},
    {"dinero negative label", "-1 400\n", true, ErrorCategory::kParse},
    {"dinero bad address", "0 zz\n", true, ErrorCategory::kParse},
    {"dinero 35-bit address", "0 7ffffffffff\n", true, ErrorCategory::kRange},
    {"dinero trailing garbage", "0 400 junk\n", true, ErrorCategory::kParse},
};

}  // namespace corpus

TEST(FuzzTraceCorpus, EveryMalformedFixtureHasAStableCategory) {
  for (const auto& c : corpus::BinaryCases()) {
    std::stringstream stream(c.bytes);
    try {
      if (c.compressed) {
        ces::trace::ReadCompressed(stream);
      } else {
        ces::trace::ReadBinary(stream);
      }
      ADD_FAILURE() << c.name << ": expected a structured error";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), c.expected) << c.name << ": " << e.what();
    }
  }
  for (const auto& c : corpus::kTextCases) {
    std::stringstream stream(c.text);
    try {
      if (c.dinero) {
        ces::trace::ReadDinero(stream, ces::trace::StreamKind::kData);
      } else {
        ces::trace::ReadText(stream);
      }
      ADD_FAILURE() << c.name << ": expected a structured error";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), c.expected) << c.name << ": " << e.what();
    }
  }
}

TEST(FuzzTraceReaders, EveryTruncationOfAValidStreamIsHandled) {
  const ces::trace::Trace trace = ces::trace::SequentialLoop(0x4000, 64, 3);
  for (const bool compressed : {false, true}) {
    std::stringstream full;
    if (compressed) {
      ces::trace::WriteCompressed(full, trace);
    } else {
      ces::trace::WriteBinary(full, trace);
    }
    const std::string bytes = full.str();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      std::stringstream cut(bytes.substr(0, len));
      try {
        if (compressed) {
          ces::trace::ReadCompressed(cut);
        } else {
          ces::trace::ReadBinary(cut);
        }
        ADD_FAILURE() << "prefix of " << len << " bytes parsed as complete";
      } catch (const Error&) {
        // any structured category is fine; crashing or unstructured is not
      }
    }
  }
}

TEST(FuzzTraceReaders, RandomMutationsNeverCrashOrOverAllocate) {
  ces::Rng rng(0x7ACE);
  const ces::trace::Trace trace = ces::trace::SequentialLoop(0x1000, 48, 2);
  std::stringstream raw;
  ces::trace::WriteBinary(raw, trace);
  std::stringstream packed;
  ces::trace::WriteCompressed(packed, trace);
  const std::string originals[] = {raw.str(), packed.str()};
  for (int round = 0; round < 4000; ++round) {
    std::string bytes = originals[rng.NextBounded(2)];
    const int flips = 1 + static_cast<int>(rng.NextBounded(8));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.NextBounded(bytes.size())] =
          static_cast<char>(rng.NextBounded(256));
    }
    std::stringstream stream(bytes);
    try {
      const ces::trace::Trace loaded =
          bytes.compare(0, 4, "CTRZ") == 0
              ? ces::trace::ReadCompressed(stream)
              : ces::trace::ReadBinary(stream);
      // Mutations that still parse must respect the declared address width.
      EXPECT_LE(loaded.address_bits, 32u);
    } catch (const Error&) {
      // expected for most mutations
    }
  }
}

TEST(FuzzTraceReaders, RandomTextLinesNeverCrash) {
  ces::Rng rng(0x7EC7);
  static const char* kFragments[] = {
      "#", " ", "kind", "name", "address_bits", "instruction", "data",
      "deadbeef", "12", "ffffffffff", "zz", "-", "0", "1", "2", "7", "400",
      "\t", "banana"};
  for (int round = 0; round < 3000; ++round) {
    std::string source;
    const int tokens = 1 + static_cast<int>(rng.NextBounded(24));
    for (int t = 0; t < tokens; ++t) {
      source += kFragments[rng.NextBounded(std::size(kFragments))];
      source += rng.NextBool(0.3) ? "\n" : " ";
    }
    for (const bool dinero : {false, true}) {
      std::stringstream stream(source);
      try {
        if (dinero) {
          ces::trace::ReadDinero(stream, ces::trace::StreamKind::kData);
        } else {
          ces::trace::ReadText(stream);
        }
      } catch (const Error&) {
        // expected for most inputs
      }
    }
  }
}

// ---------------------------------------------------------------------------
// NDJSON request fuzzing: nothing a client sends over the wire may kill the
// daemon. The parser must turn every malformed line into a support::Error
// with a stable category, and ExplorationService::Handle must convert that
// into exactly one structured error response — never a throw, never silence.

namespace ndjson_corpus {

struct RequestCase {
  const char* name;
  const char* line;
  ErrorCategory expected;
};

constexpr RequestCase kRequestCases[] = {
    {"empty line", "", ErrorCategory::kParse},
    {"not json", "hello there", ErrorCategory::kParse},
    {"truncated object", "{\"id\":\"1\",", ErrorCategory::kParse},
    {"array not object", "[1,2,3]", ErrorCategory::kValidation},
    {"bare string", "\"ping\"", ErrorCategory::kValidation},
    {"missing id", "{\"op\":\"ping\"}", ErrorCategory::kValidation},
    {"missing op", "{\"id\":\"1\"}", ErrorCategory::kValidation},
    {"unknown op", "{\"id\":\"1\",\"op\":\"dance\"}",
     ErrorCategory::kUnsupported},
    {"unknown field", "{\"id\":\"1\",\"op\":\"ping\",\"bogus\":1}",
     ErrorCategory::kValidation},
    {"duplicate key", "{\"id\":\"1\",\"id\":\"2\",\"op\":\"ping\"}",
     ErrorCategory::kParse},
    {"id wrong type", "{\"id\":7,\"op\":\"ping\"}",
     ErrorCategory::kValidation},
    {"explore without trace", "{\"id\":\"1\",\"op\":\"explore\"}",
     ErrorCategory::kValidation},
    {"explore with both refs",
     "{\"id\":\"1\",\"op\":\"explore\",\"trace\":\"x\",\"digest\":"
     "\"sha256:0000000000000000000000000000000000000000000000000000000000"
     "000000\"}",
     ErrorCategory::kValidation},
    {"bad digest", "{\"id\":\"1\",\"op\":\"stats\",\"digest\":\"sha1:ab\"}",
     ErrorCategory::kValidation},
    {"k and fraction",
     "{\"id\":\"1\",\"op\":\"explore\",\"trace\":\"x\",\"k\":1,"
     "\"fraction\":0.5}",
     ErrorCategory::kValidation},
    {"fraction out of range",
     "{\"id\":\"1\",\"op\":\"explore\",\"trace\":\"x\",\"fraction\":1.5}",
     ErrorCategory::kValidation},
    {"negative k",
     "{\"id\":\"1\",\"op\":\"explore\",\"trace\":\"x\",\"k\":-3}",
     ErrorCategory::kValidation},
    {"line_words not a power of two",
     "{\"id\":\"1\",\"op\":\"explore\",\"trace\":\"x\",\"line_words\":3}",
     ErrorCategory::kValidation},
    {"max_index_bits too large",
     "{\"id\":\"1\",\"op\":\"explore\",\"trace\":\"x\",\"max_index_bits\":"
     "40}",
     ErrorCategory::kValidation},
    {"explore-joint without instr stream",
     "{\"id\":\"1\",\"op\":\"explore-joint\",\"trace\":\"x\"}",
     ErrorCategory::kValidation},
    {"explore-joint with both instr refs",
     "{\"id\":\"1\",\"op\":\"explore-joint\",\"trace\":\"x\","
     "\"trace_instr\":\"y\",\"digest_instr\":"
     "\"sha256:0000000000000000000000000000000000000000000000000000000000"
     "000000\"}",
     ErrorCategory::kValidation},
    {"explore-joint with k",
     "{\"id\":\"1\",\"op\":\"explore-joint\",\"trace\":\"x\","
     "\"trace_instr\":\"y\",\"k\":1}",
     ErrorCategory::kValidation},
    {"explore-joint with kind",
     "{\"id\":\"1\",\"op\":\"explore-joint\",\"trace\":\"x\","
     "\"trace_instr\":\"y\",\"kind\":\"instr\"}",
     ErrorCategory::kValidation},
    {"explore-joint reference engine",
     "{\"id\":\"1\",\"op\":\"explore-joint\",\"trace\":\"x\","
     "\"trace_instr\":\"y\",\"engine\":\"reference\"}",
     ErrorCategory::kValidation},
    {"explore-joint unknown space",
     "{\"id\":\"1\",\"op\":\"explore-joint\",\"trace\":\"x\","
     "\"trace_instr\":\"y\",\"space\":\"huge\"}",
     ErrorCategory::kValidation},
    {"space on plain explore",
     "{\"id\":\"1\",\"op\":\"explore\",\"trace\":\"x\","
     "\"space\":\"small\"}",
     ErrorCategory::kValidation},
    {"prune not a bool",
     "{\"id\":\"1\",\"op\":\"explore-joint\",\"trace\":\"x\","
     "\"trace_instr\":\"y\",\"prune\":1}",
     ErrorCategory::kValidation},
    {"trace-begin without count",
     "{\"id\":\"1\",\"op\":\"trace-begin\",\"kind\":\"data\"}",
     ErrorCategory::kValidation},
    {"trace-begin with exploration field",
     "{\"id\":\"1\",\"op\":\"trace-begin\",\"count\":4,\"k\":1}",
     ErrorCategory::kValidation},
    {"trace-begin with trace reference",
     "{\"id\":\"1\",\"op\":\"trace-begin\",\"count\":4,\"trace\":\"x\"}",
     ErrorCategory::kValidation},
    {"trace-chunk without seq",
     "{\"id\":\"1\",\"op\":\"trace-chunk\",\"upload\":\"up-1\","
     "\"payload\":\"00000000\"}",
     ErrorCategory::kValidation},
    {"trace-chunk without payload",
     "{\"id\":\"1\",\"op\":\"trace-chunk\",\"upload\":\"up-1\",\"seq\":0}",
     ErrorCategory::kValidation},
    {"trace-chunk unknown encoding",
     "{\"id\":\"1\",\"op\":\"trace-chunk\",\"upload\":\"up-1\",\"seq\":0,"
     "\"payload\":\"00000000\",\"encoding\":\"utf7\"}",
     ErrorCategory::kValidation},
    {"trace-end with payload",
     "{\"id\":\"1\",\"op\":\"trace-end\",\"upload\":\"up-1\","
     "\"payload\":\"00\"}",
     ErrorCategory::kValidation},
    {"trace-end without upload",
     "{\"id\":\"1\",\"op\":\"trace-end\"}", ErrorCategory::kValidation},
    {"upload token on explore",
     "{\"id\":\"1\",\"op\":\"explore\",\"trace\":\"x\","
     "\"upload\":\"up-1\"}",
     ErrorCategory::kValidation},
    {"lone surrogate escape", "{\"id\":\"\\ud800\",\"op\":\"ping\"}",
     ErrorCategory::kParse},
    {"trailing bytes", "{\"id\":\"1\",\"op\":\"ping\"} extra",
     ErrorCategory::kParse},
    {"deep nesting",
     "{\"id\":[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[0]]]]]]]]]]]]]]]]]]]]"
     "]]]]]]]]]]]]]]]]]]]]}",
     ErrorCategory::kParse},
};

const char* kValidLines[] = {
    "{\"id\":\"1\",\"op\":\"ping\"}",
    "{\"id\":\"2\",\"op\":\"metrics\"}",
    "{\"id\":\"3\",\"op\":\"stats\",\"trace\":\"no-such-file.trc\"}",
    "{\"id\":\"4\",\"op\":\"explore\",\"trace\":\"no-such-file.trc\","
    "\"engine\":\"fused\",\"fraction\":0.05,\"line_words\":2,"
    "\"max_index_bits\":8,\"deadline_ms\":1000}",
    "{\"id\":\"5\",\"op\":\"ingest\",\"trace\":\"no-such-file.trc\","
    "\"kind\":\"instr\"}",
    "{\"id\":\"6\",\"op\":\"explore-joint\",\"trace\":\"no-such-file.trc\","
    "\"trace_instr\":\"also-missing.trc\",\"engine\":\"fused-tree\","
    "\"space\":\"small\",\"prune\":false,\"deadline_ms\":1000}",
    "{\"id\":\"7\",\"op\":\"trace-begin\",\"count\":4,\"kind\":\"instr\","
    "\"address_bits\":16,\"name\":\"uploaded trace\"}",
    "{\"id\":\"8\",\"op\":\"trace-chunk\",\"upload\":\"up-1\",\"seq\":0,"
    "\"payload\":\"0010000000200000\",\"encoding\":\"hex\"}",
    "{\"id\":\"9\",\"op\":\"trace-chunk\",\"upload\":\"up-1\",\"seq\":1,"
    "\"payload\":\"ABCDEFGH\",\"encoding\":\"base64\"}",
    "{\"id\":\"10\",\"op\":\"trace-end\",\"upload\":\"up-1\"}",
};

}  // namespace ndjson_corpus

TEST(FuzzServiceRequests, CorpusHasStableCategories) {
  for (const auto& c : ndjson_corpus::kRequestCases) {
    try {
      ces::service::ParseRequest(c.line);
      ADD_FAILURE() << c.name << ": expected a structured error";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), c.expected) << c.name << ": " << e.what();
    }
  }
  for (const char* line : ndjson_corpus::kValidLines) {
    EXPECT_NO_THROW(ces::service::ParseRequest(line)) << line;
  }
}

TEST(FuzzServiceRequests, ByteFlipsAndTruncationsNeverCrashTheParser) {
  ces::Rng rng(0x5EC1);
  for (const char* valid : ndjson_corpus::kValidLines) {
    const std::string base = valid;
    // Every truncation of every valid request.
    for (std::size_t len = 0; len < base.size(); ++len) {
      try {
        ces::service::ParseRequest(base.substr(0, len));
      } catch (const Error&) {
        // any structured category is fine
      }
    }
    // Byte flips: 1..4 mutations per round, including NUL and high bytes.
    for (int round = 0; round < 2000; ++round) {
      std::string mutated = base;
      const int flips = 1 + static_cast<int>(rng.NextBounded(4));
      for (int f = 0; f < flips; ++f) {
        mutated[rng.NextBounded(mutated.size())] =
            static_cast<char>(rng.NextBounded(256));
      }
      try {
        ces::service::ParseRequest(mutated);
      } catch (const Error&) {
        // expected for most mutants
      }
    }
  }
}

TEST(FuzzService, HandleAnswersEveryLineExactlyOnceAndNeverThrows) {
  // The full daemon surface minus the socket: every line — valid, mutated,
  // or token soup — must produce exactly one response, and malformed ones a
  // structured ok:false with a code. jobs=1 keeps the harness cheap.
  ces::service::ExplorationService::Options options;
  options.jobs = 1;
  options.cache_bytes = 1u << 16;
  options.queue_limit = 64;
  ces::service::ExplorationService service(options);

  ces::Rng rng(0x5EC2);
  auto roundtrip = [&service](const std::string& line) {
    std::promise<std::string> promise;
    auto future = promise.get_future();
    service.Handle(line, [&promise](const std::string& response) {
      promise.set_value(response);
    });
    ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "no response for: " << line;
    const std::string response = future.get();
    ces::service::Response decoded;
    ASSERT_NO_THROW(decoded = ces::service::ParseResponse(response))
        << "undecodable response " << response << " for: " << line;
  };

  for (const auto& c : ndjson_corpus::kRequestCases) roundtrip(c.line);
  for (const char* valid : ndjson_corpus::kValidLines) {
    const std::string base = valid;
    roundtrip(base);
    for (int round = 0; round < 150; ++round) {
      std::string mutated = base;
      const int flips = 1 + static_cast<int>(rng.NextBounded(3));
      for (int f = 0; f < flips; ++f) {
        mutated[rng.NextBounded(mutated.size())] =
            static_cast<char>(1 + rng.NextBounded(255));
      }
      roundtrip(mutated);
    }
  }
  // Token soup: random JSON-ish fragments glued together.
  static const char* kFragments[] = {
      "{", "}", "[", "]", ":", ",", "\"id\"", "\"op\"", "\"explore\"",
      "\"trace\"", "\"k\"", "1e309", "0.05", "-1", "18446744073709551616",
      "null", "true", "\\u0000", "\"\\ud800\"", "\xff\xfe", "   "};
  for (int round = 0; round < 500; ++round) {
    std::string soup;
    const int tokens = 1 + static_cast<int>(rng.NextBounded(24));
    for (int t = 0; t < tokens; ++t) {
      soup += kFragments[rng.NextBounded(std::size(kFragments))];
    }
    roundtrip(soup);
  }
}

TEST(FuzzAssembler, ValidProgramsRoundTripThroughDisassembler) {
  // Assemble, disassemble every word, re-assemble the disassembly of the
  // register-register subset, and compare. (Only ops whose disassembly is
  // directly re-assemblable participate.)
  const Program program = Assemble(R"(
        .text
main:   add  t0, t1, t2
        sub  s0, s1, s2
        and  a0, a1, a2
        slt  v0, t3, t4
        mul  t5, t6, t7
        halt
)");
  std::string round;
  for (std::uint32_t word : program.text) {
    round += "        " + DisassembleWord(word) + "\n";
  }
  const Program again = Assemble(".text\n" + round);
  EXPECT_EQ(again.text, program.text);
}

}  // namespace
