// Robustness fuzzing (deterministic): random instruction words through the
// decoder/disassembler/CPU, and random text through the assembler. Nothing
// here may crash, hang, or corrupt state — errors must surface as decode
// failures, AssemblyError, or a StopReason.
#include <gtest/gtest.h>

#include <string>

#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "isa/isa.hpp"
#include "sim/cpu.hpp"
#include "support/rng.hpp"

namespace {

using namespace ces::isa;

TEST(FuzzDecode, RandomWordsNeverCrash) {
  ces::Rng rng(0xF022);
  for (int i = 0; i < 200000; ++i) {
    const auto word = static_cast<std::uint32_t>(rng.Next());
    Instruction instruction;
    if (Decode(word, instruction)) {
      // Whatever decoded must re-encode into a decodable word (fields are
      // masked on encode, so this is idempotence, not identity).
      Instruction second;
      EXPECT_TRUE(Decode(Encode(instruction), second));
      EXPECT_EQ(second, instruction);
      const std::string text = Disassemble(instruction, 0x1000);
      EXPECT_FALSE(text.empty());
    }
  }
}

TEST(FuzzCpu, RandomValidProgramsAlwaysTerminate) {
  ces::Rng rng(0xF0C9);
  for (int program_index = 0; program_index < 200; ++program_index) {
    Program program;
    const int length = 4 + static_cast<int>(rng.NextBounded(60));
    for (int i = 0; i < length; ++i) {
      Instruction ins;
      ins.op = static_cast<Opcode>(
          rng.NextBounded(static_cast<std::uint64_t>(Opcode::kOpcodeCount)));
      ins.rd = static_cast<std::uint8_t>(rng.NextBounded(32));
      ins.rs = static_cast<std::uint8_t>(rng.NextBounded(32));
      ins.rt = static_cast<std::uint8_t>(rng.NextBounded(32));
      ins.shamt = static_cast<std::uint8_t>(rng.NextBounded(32));
      ins.imm = static_cast<std::int16_t>(rng.Next());
      ins.target = static_cast<std::uint32_t>(rng.NextBounded(1u << 10));
      program.text.push_back(Encode(ins));
    }
    program.text.push_back(
        Encode(Instruction{.op = Opcode::kHalt}));  // reachable or not

    ces::sim::Cpu cpu(program, 1u << 18);
    const ces::sim::StopReason reason = cpu.Run(50'000);
    // Any reason is acceptable; the point is that Run returned and left the
    // CPU in a queryable state.
    (void)reason;
    EXPECT_LE(cpu.retired(), 50'000u);
    for (std::uint8_t r = 0; r < 32; ++r) (void)cpu.reg(r);
    EXPECT_EQ(cpu.reg(0), 0u);  // r0 must survive any instruction mix
  }
}

TEST(FuzzAssembler, RandomTextNeverCrashes) {
  ces::Rng rng(0xFA53);
  static const char* kFragments[] = {
      "add", "lw", "t0", "t1", ",", "(", ")", "0x", "123", "-", "label",
      ":", ".word", ".data", ".text", "li", "beq", "\"str\"", "#c", "$3",
      ".equ", "sp", "4(sp)", "main", "jal", ".space", "zz", "+", ".align"};
  for (int i = 0; i < 3000; ++i) {
    std::string source;
    const int tokens = 1 + static_cast<int>(rng.NextBounded(40));
    for (int t = 0; t < tokens; ++t) {
      source += kFragments[rng.NextBounded(std::size(kFragments))];
      source += rng.NextBool(0.3) ? "\n" : " ";
    }
    try {
      const Program program = Assemble(source);
      (void)program;
    } catch (const AssemblyError&) {
      // expected for most inputs
    }
  }
}

TEST(FuzzAssembler, ValidProgramsRoundTripThroughDisassembler) {
  // Assemble, disassemble every word, re-assemble the disassembly of the
  // register-register subset, and compare. (Only ops whose disassembly is
  // directly re-assemblable participate.)
  const Program program = Assemble(R"(
        .text
main:   add  t0, t1, t2
        sub  s0, s1, s2
        and  a0, a1, a2
        slt  v0, t3, t4
        mul  t5, t6, t7
        halt
)");
  std::string round;
  for (std::uint32_t word : program.text) {
    round += "        " + DisassembleWord(word) + "\n";
  }
  const Program again = Assemble(".text\n" + round);
  EXPECT_EQ(again.text, program.text);
}

}  // namespace
