// Write-policy, Belady-OPT and victim-buffer tests (the policy-study
// extensions around the paper's fixed LRU/write-back assumption).
#include <gtest/gtest.h>

#include "cache/opt.hpp"
#include "cache/sim.hpp"
#include "cache/stack.hpp"
#include "cache/victim.hpp"
#include "support/rng.hpp"
#include "trace/strip.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace ces::cache;
using ces::trace::Strip;
using ces::trace::Trace;

CacheConfig Make(std::uint32_t depth, std::uint32_t assoc,
                 WritePolicy write_policy = WritePolicy::kWriteBackAllocate) {
  CacheConfig config;
  config.depth = depth;
  config.assoc = assoc;
  config.write_policy = write_policy;
  return config;
}

TEST(WritePolicyTest, WriteThroughNeverWritesBack) {
  Cache cache(Make(1, 1, WritePolicy::kWriteThroughNoAllocate));
  cache.Access(0, true);
  cache.Access(1, true);
  cache.Access(2, true);
  EXPECT_EQ(cache.stats().writebacks, 0u);
  EXPECT_EQ(cache.stats().write_throughs, 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);  // no-allocate: nothing ever filled
}

TEST(WritePolicyTest, WriteMissDoesNotAllocate) {
  Cache cache(Make(4, 1, WritePolicy::kWriteThroughNoAllocate));
  cache.Access(0, false);            // read fill
  cache.Access(4, true);             // write miss, same set: must not evict 0
  EXPECT_EQ(cache.Access(0, false), AccessOutcome::kHit);
  // The written line is still absent.
  EXPECT_NE(cache.Access(4, false), AccessOutcome::kHit);
}

TEST(WritePolicyTest, WriteHitDoesNotDirtyTheLine) {
  Cache cache(Make(1, 1, WritePolicy::kWriteThroughNoAllocate));
  cache.Access(0, false);
  cache.Access(0, true);  // write hit goes through; line stays clean
  cache.Access(1, false); // evicts line 0
  EXPECT_EQ(cache.stats().writebacks, 0u);
  EXPECT_EQ(cache.stats().write_throughs, 1u);
}

TEST(WritePolicyTest, ReadOnlyTrafficIsPolicyInvariant) {
  ces::Rng rng(7);
  const Trace trace = ces::trace::LocalityMix(rng, 32, 128, 2000);
  const CacheStats wb = SimulateTrace(trace, Make(8, 2));
  const CacheStats wt =
      SimulateTrace(trace, Make(8, 2, WritePolicy::kWriteThroughNoAllocate));
  EXPECT_EQ(wb.hits, wt.hits);
  EXPECT_EQ(wb.misses, wt.misses);
  EXPECT_EQ(wt.write_throughs, 0u);
}

TEST(OptTest, HandComputedExample) {
  // Trace a b c a b c with a 2-way fully associative cache.
  // LRU thrashes (every warm access misses); OPT keeps 'a' then reuses:
  // classic Belady advantage.
  Trace trace;
  trace.refs = {1, 2, 3, 1, 2, 3};
  const auto stripped = Strip(trace);
  const std::uint64_t lru =
      ComputeStackProfile(stripped, 0).MissesAtAssoc(2);
  const std::uint64_t opt = OptWarmMisses(stripped, 0, 2);
  EXPECT_EQ(lru, 3u);
  EXPECT_EQ(opt, 1u);  // only one of the re-references must miss
}

TEST(OptTest, NeverWorseThanLruAnywhere) {
  for (int seed = 0; seed < 6; ++seed) {
    ces::Rng rng(9100 + static_cast<std::uint64_t>(seed));
    const Trace trace = ces::trace::LocalityMix(rng, 48, 256, 3000);
    const auto stripped = Strip(trace);
    for (std::uint32_t bits = 0; bits <= 4; ++bits) {
      const auto profile = ComputeStackProfile(stripped, bits);
      for (std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
        EXPECT_LE(OptWarmMisses(stripped, bits, assoc),
                  profile.MissesAtAssoc(assoc))
            << "seed " << seed << " bits " << bits << " assoc " << assoc;
      }
    }
  }
}

TEST(OptTest, DirectMappedHasNoChoice) {
  // With one way there is nothing to decide: OPT == LRU exactly.
  ces::Rng rng(11);
  const Trace trace = ces::trace::RandomWorkingSet(rng, 64, 3000);
  const auto stripped = Strip(trace);
  for (std::uint32_t bits = 0; bits <= 5; ++bits) {
    EXPECT_EQ(OptWarmMisses(stripped, bits, 1),
              ComputeStackProfile(stripped, bits).MissesAtAssoc(1))
        << bits;
  }
}

TEST(OptTest, ZeroMissWhenWorkingSetFits) {
  const Trace trace = ces::trace::SequentialLoop(0, 16, 10);
  const auto stripped = Strip(trace);
  EXPECT_EQ(OptWarmMisses(stripped, 0, 16), 0u);
  EXPECT_EQ(OptWarmMisses(stripped, 2, 4), 0u);
}

TEST(VictimTest, ZeroEntriesEqualsPlainCache) {
  ces::Rng rng(21);
  const Trace trace = ces::trace::LocalityMix(rng, 40, 300, 3000);
  const CacheConfig config = Make(16, 1);
  const VictimStats with_buffer = SimulateVictim(trace, config, 0);
  const CacheStats plain = SimulateTrace(trace, config);
  EXPECT_EQ(with_buffer.main.misses, plain.misses);
  EXPECT_EQ(with_buffer.victim_hits, 0u);
  EXPECT_EQ(with_buffer.EffectiveWarmMisses(), plain.warm_misses());
}

TEST(VictimTest, CatchesDirectMappedPingPong) {
  // Addresses 0 and 16 collide in a depth-16 direct-mapped cache; a single
  // victim entry turns the ping-pong into swaps.
  Trace trace;
  for (int i = 0; i < 50; ++i) {
    trace.refs.push_back(0);
    trace.refs.push_back(16);
  }
  const VictimStats stats = SimulateVictim(trace, Make(16, 1), 1);
  EXPECT_EQ(stats.main.warm_misses(), 98u);  // main cache still ping-pongs
  EXPECT_EQ(stats.victim_hits, 98u);         // ...but the buffer catches all
  EXPECT_EQ(stats.EffectiveWarmMisses(), 0u);
  EXPECT_EQ(stats.memory_fetches, 2u);       // the two cold fills
}

TEST(VictimTest, FewEntriesApproachTwoWayCache) {
  ces::Rng rng(22);
  const Trace trace = ces::trace::LocalityMix(rng, 200, 800, 8000);
  const std::uint64_t direct = SimulateTrace(trace, Make(64, 1)).warm_misses();
  const std::uint64_t two_way = SimulateTrace(trace, Make(64, 2)).warm_misses();
  const std::uint64_t with_victims =
      SimulateVictim(trace, Make(64, 1), 4).EffectiveWarmMisses();
  // Jouppi's observation: a small victim buffer recovers part of the gap to
  // 2-way. On this capacity-dominated trace the recovery is partial; the
  // conflict-dominated case below is exact.
  EXPECT_LT(with_victims, direct);
  EXPECT_LE(two_way, direct);
}

TEST(VictimTest, RemovesPureConflictMissesEntirely) {
  // Three lines colliding in one set: even a 2-way cache thrashes under
  // LRU, but a direct-mapped cache plus two victim entries holds all three.
  Trace trace;
  for (int i = 0; i < 200; ++i) trace.refs.push_back((i % 3) * 64);
  const std::uint64_t direct = SimulateTrace(trace, Make(64, 1)).warm_misses();
  const std::uint64_t two_way = SimulateTrace(trace, Make(64, 2)).warm_misses();
  const VictimStats stats = SimulateVictim(trace, Make(64, 1), 2);
  EXPECT_EQ(direct, 197u);
  EXPECT_EQ(two_way, 197u);  // LRU 2-way also thrashes on a 3-line cycle
  EXPECT_EQ(stats.EffectiveWarmMisses(), 0u);
  EXPECT_EQ(stats.memory_fetches, 3u);
}

}  // namespace
