// Joint L1I x L1D x L2 explorer: Pareto properties, derived-parameter
// validation, proportional interleave, stable report keys, and the
// simulator cross-validation satellite (>= 200 sampled configurations
// against cache/hierarchy).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analytic/explorer.hpp"
#include "cache/hierarchy.hpp"
#include "explore/joint.hpp"
#include "explore/pareto.hpp"
#include "explore/report.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace ces::explore;
using ces::Rng;
using ces::cache::CacheConfig;
using ces::cache::HierarchyConfig;
using ces::cache::HierarchyStats;
using ces::cache::ReplacementPolicy;
using ces::cache::SimulateHierarchy;
using ces::cache::WritePolicy;
using ces::trace::Access;
using ces::trace::AccessSequence;
using ces::trace::StreamKind;
using ces::trace::Trace;

AccessSequence TestStream(std::uint64_t seed, std::size_t scale = 1,
                          double write_fraction = 0.0) {
  Rng rng(seed);
  const Trace instr = ces::trace::SequentialLoop(
      0, static_cast<std::uint32_t>(24 + rng.NextBounded(40)),
      static_cast<std::uint32_t>(4 * scale));
  const Trace data = ces::trace::RandomWorkingSet(
      rng, static_cast<std::uint32_t>(16 + rng.NextBounded(48)),
      static_cast<std::uint32_t>(120 * scale), /*base=*/4096);
  AccessSequence merged = InterleaveProportional(instr, data);
  if (write_fraction > 0.0) {
    for (Access& access : merged) {
      if (access.kind == StreamKind::kData) {
        access.is_write = rng.NextBool(write_fraction);
      }
    }
  }
  return merged;
}

// Every valid configuration of a space, scored through the same path the
// explorer uses — the ground-truth candidate set for the front properties.
std::vector<JointPoint> AllPoints(const AccessSequence& accesses,
                                  const JointSpace& space) {
  std::vector<JointPoint> points;
  for (std::uint32_t line : space.l1i.lines) {
    for (std::uint32_t di : space.l1i.depths) {
      for (std::uint32_t ai : space.l1i.assocs) {
        for (std::uint32_t dd : space.l1d.depths) {
          for (std::uint32_t ad : space.l1d.assocs) {
            for (std::uint32_t l2_line : space.l2.lines) {
              for (std::uint32_t d2 : space.l2.depths) {
                for (std::uint32_t a2 : space.l2.assocs) {
                  HierarchyConfig config;
                  config.l1i = CacheConfig{di, ai, line, space.l1i_policy,
                                           WritePolicy::kWriteBackAllocate};
                  config.l1d = CacheConfig{dd, ad, line, space.l1d_policy,
                                           WritePolicy::kWriteBackAllocate};
                  config.l2 = CacheConfig{d2, a2, l2_line, space.l2_policy,
                                          WritePolicy::kWriteBackAllocate};
                  if (!ValidateJointConfig(config)) continue;
                  points.push_back(
                      JointPoint{config, EvaluateJointConfig(accesses, config)});
                }
              }
            }
          }
        }
      }
    }
  }
  return points;
}

TEST(JointValidation, DerivedParameterRules) {
  HierarchyConfig config;
  config.l1i = CacheConfig{4, 1, 2};
  config.l1d = CacheConfig{4, 2, 2};
  config.l2 = CacheConfig{32, 2, 4};
  EXPECT_TRUE(ValidateJointConfig(config));

  HierarchyConfig bad = config;
  bad.l1d.line_words = 4;  // split L1s must share one line size
  EXPECT_FALSE(ValidateJointConfig(bad));

  bad = config;
  bad.l2.line_words = 1;  // L2 line must be >= L1 line
  EXPECT_FALSE(ValidateJointConfig(bad));

  bad = config;
  bad.l2 = CacheConfig{4, 1, 2};  // L2 smaller than the L1s it backs
  EXPECT_FALSE(ValidateJointConfig(bad));

  bad = config;
  bad.l1i.depth = 3;  // non-power-of-two depth
  EXPECT_FALSE(ValidateJointConfig(bad));

  bad = config;
  bad.l1d.replacement = ReplacementPolicy::kPlru;
  bad.l1d.assoc = 3;  // PLRU needs a power-of-two associativity
  EXPECT_FALSE(ValidateJointConfig(bad));

  EXPECT_THROW(EvaluateJointConfig({}, bad), ces::support::Error);
}

TEST(JointValidation, SpaceAndPolicyNames) {
  EXPECT_GT(JointSpaceByName("default").TotalConfigs(), 0u);
  EXPECT_GT(JointSpaceByName("small").TotalConfigs(), 0u);
  EXPECT_THROW(JointSpaceByName("huge"), ces::support::Error);
  EXPECT_EQ(ReplacementPolicyByName("plru"), ReplacementPolicy::kPlru);
  EXPECT_THROW(ReplacementPolicyByName("mru"), ces::support::Error);
}

TEST(JointInterleave, ProportionalMergeIsDeterministicAndFair) {
  Trace instr;
  instr.kind = StreamKind::kInstruction;
  for (std::uint32_t i = 0; i < 30; ++i) instr.refs.push_back(i);
  Trace data;
  for (std::uint32_t i = 0; i < 10; ++i) data.refs.push_back(1000 + i);

  const AccessSequence merged = InterleaveProportional(instr, data);
  ASSERT_EQ(merged.size(), 40u);
  // Relative order within each stream is preserved and the instruction
  // stream leads at every prefix by the 3:1 ratio (within one access).
  std::uint64_t seen_instr = 0;
  std::uint64_t seen_data = 0;
  std::uint32_t next_instr = 0;
  std::uint32_t next_data = 1000;
  for (const Access& access : merged) {
    EXPECT_FALSE(access.is_write);
    if (access.kind == StreamKind::kInstruction) {
      EXPECT_EQ(access.addr, next_instr++);
      ++seen_instr;
    } else {
      EXPECT_EQ(access.addr, next_data++);
      ++seen_data;
    }
    // i * Nd <= d * Ni + Ni: the merge never lets either stream lag.
    EXPECT_LE(seen_data * 3, seen_instr + 3);
  }
  EXPECT_EQ(seen_instr, 30u);
  EXPECT_EQ(seen_data, 10u);
  const AccessSequence again = InterleaveProportional(instr, data);
  ASSERT_EQ(again.size(), merged.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(again[i].addr, merged[i].addr);
    EXPECT_EQ(again[i].kind, merged[i].kind);
  }
}

TEST(JointPareto, FrontMembersAreMutuallyNonDominated) {
  const AccessSequence accesses = TestStream(1);
  const JointResult result = ExploreJoint(accesses, JointSpace::Small());
  ASSERT_FALSE(result.front.empty());
  for (const JointPoint& a : result.front) {
    for (const JointPoint& b : result.front) {
      EXPECT_FALSE(JointDominates(a.metrics, b.metrics))
          << JointConfigKey(a.config) << " dominates "
          << JointConfigKey(b.config);
    }
  }
}

TEST(JointPareto, EveryDominatedCandidateIsExcluded) {
  const AccessSequence accesses = TestStream(2);
  const JointSpace space = JointSpace::Small();
  const std::vector<JointPoint> all = AllPoints(accesses, space);
  const JointResult result = ExploreJoint(accesses, space);

  const auto on_front = [&](const HierarchyConfig& config) {
    const std::string key = JointConfigKey(config);
    return std::any_of(result.front.begin(), result.front.end(),
                       [&](const JointPoint& p) {
                         return JointConfigKey(p.config) == key;
                       });
  };
  for (const JointPoint& candidate : all) {
    const bool dominated =
        std::any_of(all.begin(), all.end(), [&](const JointPoint& other) {
          return JointDominates(other.metrics, candidate.metrics);
        });
    EXPECT_EQ(on_front(candidate.config), !dominated)
        << JointConfigKey(candidate.config);
  }
}

TEST(JointPareto, FrontInvariantToInsertionOrder) {
  const AccessSequence accesses = TestStream(3);
  std::vector<JointPoint> points =
      AllPoints(accesses, JointSpace::Small());
  ASSERT_GT(points.size(), 4u);
  const std::vector<JointPoint> front = JointParetoFront(points);

  Rng rng(99);
  for (int round = 0; round < 5; ++round) {
    // Fisher-Yates with the repo Rng: std::shuffle is implementation-defined.
    for (std::size_t i = points.size(); i > 1; --i) {
      std::swap(points[i - 1], points[rng.NextBounded(i)]);
    }
    const std::vector<JointPoint> again = JointParetoFront(points);
    ASSERT_EQ(again.size(), front.size());
    for (std::size_t i = 0; i < front.size(); ++i) {
      EXPECT_EQ(JointConfigKey(again[i].config),
                JointConfigKey(front[i].config));
    }
  }
}

TEST(JointPareto, FrontAndCountersInvariantToJobs) {
  const AccessSequence accesses = TestStream(4, 2);
  const JointSpace space = JointSpace::Small();
  JointOptions options;
  options.jobs = 1;
  const JointResult base = ExploreJoint(accesses, space, options);
  const std::string base_json = JointReportJson(base, space);
  for (std::uint32_t jobs : {2u, 8u}) {
    options.jobs = jobs;
    const JointResult result = ExploreJoint(accesses, space, options);
    EXPECT_EQ(JointReportJson(result, space), base_json) << "jobs=" << jobs;
  }
}

TEST(JointReport, StableKeyOrderAcrossEngines) {
  const AccessSequence accesses = TestStream(5);
  const JointSpace space = JointSpace::Small();
  JointOptions options;
  options.engine = ces::analytic::Engine::kFused;
  const std::string fused =
      JointReportJson(ExploreJoint(accesses, space, options), space);
  options.engine = ces::analytic::Engine::kFusedTree;
  const std::string tree =
      JointReportJson(ExploreJoint(accesses, space, options), space);
  EXPECT_EQ(fused, tree);

  // Fixed explicit key order — no map iteration anywhere in the emitters.
  const char* ordered[] = {"\"schema\"", "\"space\"",  "\"counts\"",
                           "\"front\"",  "\"config\"", "\"key\"",
                           "\"l1i\"",    "\"depth\"",  "\"assoc\"",
                           "\"line_words\"", "\"policy\"", "\"metrics\"",
                           "\"l1i_misses\"", "\"amat_ns\"", "\"energy_nj\""};
  std::size_t at = 0;
  for (const char* key : ordered) {
    at = fused.find(key, at);
    ASSERT_NE(at, std::string::npos) << key;
  }
}

TEST(JointReport, RenderIncludesPruningWinLine) {
  const AccessSequence accesses = TestStream(6);
  const JointResult result = ExploreJoint(accesses, JointSpace::Small());
  const std::string text = RenderJointFront(result);
  EXPECT_NE(text.find("pruning win: skipped "), std::string::npos);
  EXPECT_NE(text.find("Pareto front"), std::string::npos);
  const std::string csv = JointFrontCsv(result.front);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            result.front.size() + 1);
}

// --- simulator cross-validation (satellite: >= 200 sampled configs) ---

struct PolicyCase {
  ReplacementPolicy l1;
  ReplacementPolicy l2;
};

HierarchyConfig SampleConfig(Rng& rng, const PolicyCase& policies) {
  for (;;) {
    const std::uint32_t line = 1u << rng.NextBounded(3);        // 1/2/4
    const std::uint32_t l2_line = line << rng.NextBounded(2);   // >= line
    HierarchyConfig config;
    config.l1i = CacheConfig{1u << rng.NextBounded(5), 1u << rng.NextBounded(3),
                             line, policies.l1,
                             WritePolicy::kWriteBackAllocate};
    config.l1d = CacheConfig{1u << rng.NextBounded(5), 1u << rng.NextBounded(3),
                             line, policies.l1,
                             WritePolicy::kWriteBackAllocate};
    config.l2 = CacheConfig{1u << (3 + rng.NextBounded(5)),
                            1u << rng.NextBounded(3), l2_line, policies.l2,
                            WritePolicy::kWriteBackAllocate};
    if (ValidateJointConfig(config)) return config;
  }
}

// The L2 reference stream the hierarchy produces for this L1 pair (refill,
// then the dirty victim's write-back), replayed through the functional cache
// model — an independent reconstruction of the analytic path's input.
Trace CaptureL2Stream(const AccessSequence& accesses,
                      const HierarchyConfig& config) {
  ces::cache::Cache l1i(config.l1i);
  ces::cache::Cache l1d(config.l1d);
  Trace stream;
  for (const Access& access : accesses) {
    ces::cache::Cache& l1 =
        access.kind == StreamKind::kInstruction ? l1i : l1d;
    ces::cache::Eviction eviction;
    const ces::cache::AccessOutcome outcome =
        l1.Access(access.addr, access.is_write, &eviction);
    if (outcome != ces::cache::AccessOutcome::kHit) {
      stream.refs.push_back(access.addr);
    }
    if (eviction.valid && eviction.dirty) stream.refs.push_back(eviction.addr);
  }
  return stream;
}

TEST(JointCrossValidation, MatchesHierarchySimulatorOn200Configs) {
  const PolicyCase cases[] = {
      {ReplacementPolicy::kLru, ReplacementPolicy::kLru},
      {ReplacementPolicy::kLru, ReplacementPolicy::kFifo},
      {ReplacementPolicy::kLru, ReplacementPolicy::kPlru},
      {ReplacementPolicy::kFifo, ReplacementPolicy::kLru},
      {ReplacementPolicy::kPlru, ReplacementPolicy::kLru},
  };
  const AccessSequence traces[] = {TestStream(7, 2, 0.0),
                                   TestStream(8, 2, 0.3),
                                   TestStream(9, 1, 0.5)};
  Rng rng(0xC0FFEE);
  int checked = 0;
  for (int i = 0; i < 220; ++i) {
    const PolicyCase& policies = cases[i % 5];
    const AccessSequence& accesses = traces[i % 3];
    const HierarchyConfig config = SampleConfig(rng, policies);
    const JointMetrics metrics = EvaluateJointConfig(accesses, config);
    const HierarchyStats sim = SimulateHierarchy(accesses, config);

    // L1s are simulated functionally: exact for every policy, writes
    // included.
    ASSERT_EQ(metrics.l1i_misses, sim.l1i.misses) << JointConfigKey(config);
    ASSERT_EQ(metrics.l1d_misses, sim.l1d.misses) << JointConfigKey(config);
    ASSERT_EQ(metrics.l1d_writebacks, sim.l1d.writebacks)
        << JointConfigKey(config);
    ASSERT_EQ(metrics.l2_accesses, sim.l2.accesses) << JointConfigKey(config);

    if (policies.l2 == ReplacementPolicy::kLru) {
      // LRU L2: the stack profile of the captured L2 stream is exact.
      ASSERT_EQ(metrics.l2_misses, sim.l2.misses) << JointConfigKey(config);
    } else {
      // Non-LRU L2: the estimate and the simulation both lie in the
      // documented bracket [cold, cold + warm_LRU(D2, 1)] — cold misses are
      // policy-independent, and any demand policy hits every per-set
      // stack-distance-0 access (see docs/JOINT_DSE.md).
      const Trace l2_stream = CaptureL2Stream(accesses, config);
      ASSERT_EQ(sim.l2.accesses, l2_stream.refs.size());
      if (l2_stream.refs.empty()) {
        ASSERT_EQ(sim.l2.misses, 0u);
        ASSERT_EQ(metrics.l2_misses, 0u);
        continue;
      }
      ces::analytic::ExplorerOptions options;
      options.line_words = config.l2.line_words;
      options.max_index_bits = std::max(1u, config.l2.index_bits());
      const ces::analytic::Explorer explorer(l2_stream, options);
      const std::uint32_t bits =
          std::min(config.l2.index_bits(), explorer.max_index_bits());
      const ces::cache::StackProfile& profile = explorer.profiles()[bits];
      const std::uint64_t cold = profile.cold;
      const std::uint64_t upper = cold + profile.MissesAtAssoc(1);
      ASSERT_GE(sim.l2.misses, cold) << JointConfigKey(config);
      ASSERT_LE(sim.l2.misses, upper) << JointConfigKey(config);
      ASSERT_GE(metrics.l2_misses, cold) << JointConfigKey(config);
      ASSERT_LE(metrics.l2_misses, upper) << JointConfigKey(config);
    }
    ++checked;
  }
  EXPECT_GE(checked, 200);
}

TEST(JointMetricsTest, DerivedObjectivesAreConsistent) {
  const AccessSequence accesses = TestStream(10);
  HierarchyConfig config;
  config.l1i = CacheConfig{8, 1, 1};
  config.l1d = CacheConfig{8, 2, 1};
  config.l2 = CacheConfig{64, 2, 2};
  const JointMetrics metrics = EvaluateJointConfig(accesses, config);
  EXPECT_EQ(metrics.l2_accesses, metrics.l1i_misses + metrics.l1d_misses +
                                     metrics.l1d_writebacks);
  EXPECT_EQ(metrics.misses,
            metrics.l1i_misses + metrics.l1d_misses + metrics.l2_misses);
  EXPECT_EQ(metrics.size_words, config.l1i.size_words() +
                                    config.l1d.size_words() +
                                    config.l2.size_words());
  const ces::cache::LatencyModel latency = DeriveLatency(config);
  EXPECT_GT(latency.l1_ns, 0.0);
  EXPECT_GT(latency.l2_ns, 4.0);
  EXPECT_DOUBLE_EQ(latency.memory_ns, 60.0);
  EXPECT_GE(metrics.amat_ns, latency.l1_ns);
  EXPECT_GT(metrics.energy_nj, 0.0);
}

}  // namespace
