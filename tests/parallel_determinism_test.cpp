// Determinism of every parallel layer: output with jobs=4 must be
// element-for-element identical to jobs=1 — same points, same histograms,
// same coverage counters — on synthetic traces and a real workload trace.
// This is the contract that lets --jobs default to the hardware concurrency
// without perturbing any recorded experiment.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analytic/explorer.hpp"
#include "analytic/fast.hpp"
#include "cache/stack.hpp"
#include "cache/sweep.hpp"
#include "explore/strategy.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/pool.hpp"
#include "support/rng.hpp"
#include "trace/strip.hpp"
#include "trace/synthetic.hpp"
#include "workloads/workloads.hpp"

namespace {

using ces::cache::StackProfile;

std::vector<ces::trace::Trace> TestTraces() {
  std::vector<ces::trace::Trace> traces;
  traces.push_back(ces::trace::PaperExampleTrace());
  traces.push_back(ces::trace::SequentialLoop(0x40, 96, 5));
  traces.push_back(ces::trace::StridedSweep(0, 64, 48, 6));
  {
    ces::Rng rng(2026);
    traces.push_back(ces::trace::RandomWorkingSet(rng, 300, 4000));
  }
  {
    ces::Rng rng(7);
    traces.push_back(ces::trace::LocalityMix(rng, 64, 2048, 3000));
  }
  return traces;
}

// A real workload trace (crc at the small scale), cached across tests.
const ces::trace::Trace& WorkloadTrace() {
  static const ces::trace::Trace trace = [] {
    const auto* workload =
        ces::workloads::FindWorkload("crc", ces::workloads::Scale::kSmall);
    CES_CHECK(workload != nullptr);
    auto run = ces::workloads::Run(*workload);
    CES_CHECK(run.output_matches);
    return run.data_trace;
  }();
  return trace;
}

void ExpectSameProfile(const StackProfile& a, const StackProfile& b) {
  EXPECT_EQ(a.index_bits, b.index_bits);
  EXPECT_EQ(a.cold, b.cold);
  ASSERT_EQ(a.hist, b.hist);
}

void ExpectSamePoints(const std::vector<ces::analytic::DesignPoint>& a,
                      const std::vector<ces::analytic::DesignPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].depth, b[i].depth) << "depth slot " << i;
    EXPECT_EQ(a[i].assoc, b[i].assoc) << "depth slot " << i;
    EXPECT_EQ(a[i].warm_misses, b[i].warm_misses) << "depth slot " << i;
  }
}

TEST(ParallelDeterminismTest, ExhaustiveSweepPointsAndCoverage) {
  auto traces = TestTraces();
  traces.push_back(WorkloadTrace());
  for (std::size_t t = 0; t < traces.size(); ++t) {
    for (const bool stop_at_zero : {true, false}) {
      ces::cache::SweepCoverage serial_cov;
      ces::cache::SweepCoverage parallel_cov;
      const auto serial = ces::cache::ExhaustiveSweep(
          traces[t], 5, 4, ces::cache::ReplacementPolicy::kLru, stop_at_zero,
          /*jobs=*/1, &serial_cov);
      const auto parallel = ces::cache::ExhaustiveSweep(
          traces[t], 5, 4, ces::cache::ReplacementPolicy::kLru, stop_at_zero,
          /*jobs=*/4, &parallel_cov);
      ASSERT_EQ(serial.size(), parallel.size())
          << "trace " << t << " stop_at_zero=" << stop_at_zero;
      for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].depth, parallel[i].depth);
        EXPECT_EQ(serial[i].assoc, parallel[i].assoc);
        EXPECT_EQ(serial[i].stats.misses, parallel[i].stats.misses);
        EXPECT_EQ(serial[i].stats.cold_misses, parallel[i].stats.cold_misses);
      }
      EXPECT_EQ(serial_cov.requested, parallel_cov.requested);
      EXPECT_EQ(serial_cov.simulated, parallel_cov.simulated);
      EXPECT_EQ(serial_cov.skipped_invalid, parallel_cov.skipped_invalid);
      EXPECT_EQ(serial_cov.pruned_by_stop, parallel_cov.pruned_by_stop);
    }
  }
}

TEST(ParallelDeterminismTest, StackProfileSetPartitioning) {
  ces::support::ThreadPool pool(4);
  auto traces = TestTraces();
  traces.push_back(WorkloadTrace());
  for (const auto& trace : traces) {
    const auto stripped = ces::trace::Strip(trace);
    for (std::uint32_t bits = 0; bits <= 5; ++bits) {
      ExpectSameProfile(ces::cache::ComputeStackProfile(stripped, bits),
                        ces::cache::ComputeStackProfile(stripped, bits, &pool));
      ExpectSameProfile(
          ces::cache::ComputeStackProfileTree(stripped, bits),
          ces::cache::ComputeStackProfileTree(stripped, bits, &pool));
    }
  }
}

TEST(ParallelDeterminismTest, AllDepthProfilesDepthPartitioning) {
  ces::support::ThreadPool pool(4);
  for (const auto& trace : TestTraces()) {
    const auto stripped = ces::trace::Strip(trace);
    for (const bool use_tree : {false, true}) {
      const auto serial = ces::cache::ComputeAllDepthProfiles(
          stripped, 6, nullptr, use_tree);
      const auto parallel = ces::cache::ComputeAllDepthProfiles(
          stripped, 6, &pool, use_tree);
      ASSERT_EQ(serial.size(), parallel.size());
      for (std::size_t i = 0; i < serial.size(); ++i) {
        ExpectSameProfile(serial[i], parallel[i]);
      }
    }
  }
}

TEST(ParallelDeterminismTest, EveryStrategyIsJobsInvariant) {
  const auto strategies = ces::explore::AllStrategies();
  auto traces = TestTraces();
  traces.push_back(WorkloadTrace());
  for (const auto& trace : traces) {
    for (const auto& strategy : strategies) {
      const auto serial = strategy->Explore(trace, 12, 5, /*jobs=*/1);
      const auto parallel = strategy->Explore(trace, 12, 5, /*jobs=*/4);
      SCOPED_TRACE(strategy->name());
      ExpectSamePoints(serial.points, parallel.points);
      EXPECT_EQ(serial.simulated_references, parallel.simulated_references);
    }
  }
}

TEST(ParallelDeterminismTest, ExplorerProfilesAreJobsInvariant) {
  for (const auto& trace : TestTraces()) {
    for (const auto engine : {ces::analytic::Engine::kFused,
                              ces::analytic::Engine::kFusedTree,
                              ces::analytic::Engine::kReference}) {
      const ces::analytic::Explorer serial(
          trace, {.engine = engine, .max_index_bits = 6, .jobs = 1});
      const ces::analytic::Explorer parallel(
          trace, {.engine = engine, .max_index_bits = 6, .jobs = 4});
      ASSERT_EQ(serial.profiles().size(), parallel.profiles().size());
      for (std::size_t i = 0; i < serial.profiles().size(); ++i) {
        ExpectSameProfile(serial.profiles()[i], parallel.profiles()[i]);
      }
      for (const std::uint64_t k : {0ull, 3ull, 25ull}) {
        ExpectSamePoints(serial.Solve(k).points, parallel.Solve(k).points);
      }
    }
  }
}

// The per-depth baseline is an explicit opt-in now (never a hidden jobs>1
// fallback) and must keep producing the same profiles as the fused traversal
// — that is what makes it a cross-validation oracle.
TEST(ParallelDeterminismTest, PerDepthPreludeMatchesFusedTraversal) {
  for (const auto& trace : TestTraces()) {
    for (const auto engine :
         {ces::analytic::Engine::kFused, ces::analytic::Engine::kFusedTree}) {
      const ces::analytic::Explorer fused(
          trace, {.engine = engine, .max_index_bits = 6, .jobs = 4});
      const ces::analytic::Explorer per_depth(
          trace, {.engine = engine,
                  .max_index_bits = 6,
                  .jobs = 4,
                  .prelude = ces::analytic::PreludeMode::kPerDepth});
      ASSERT_EQ(fused.profiles().size(), per_depth.profiles().size());
      for (std::size_t i = 0; i < fused.profiles().size(); ++i) {
        ExpectSameProfile(fused.profiles()[i], per_depth.profiles()[i]);
      }
    }
  }
}

// Differential sweep for the subtree-parallel fused prelude: both scan
// variants, jobs in {1, 2, 8}, over the paper example plus 100 random
// synthetic traces. Profiles AND the deterministic metrics surface (the
// explore.fused_nodes / explore.fused_refs work counters) must be
// byte-identical to the serial traversal — the cut level, chunking and merge
// order may never leak into results.
TEST(ParallelDeterminismTest, FusedSubtreeParallelDifferentialSweep) {
  std::vector<ces::trace::Trace> traces;
  traces.push_back(ces::trace::PaperExampleTrace());
  ces::Rng rng(20260806);
  while (traces.size() < 101) {
    const auto length = static_cast<std::uint32_t>(rng.NextInRange(20, 1500));
    if (traces.size() % 2 == 0) {
      const auto working = static_cast<std::uint32_t>(rng.NextInRange(2, 500));
      traces.push_back(ces::trace::RandomWorkingSet(rng, working, length));
    } else {
      const auto hot = static_cast<std::uint32_t>(rng.NextInRange(1, 64));
      const auto cold = static_cast<std::uint32_t>(rng.NextInRange(1, 512));
      traces.push_back(ces::trace::LocalityMix(rng, hot, cold, length));
    }
  }

  ces::support::ThreadPool pool2(2);
  ces::support::ThreadPool pool8(8);
  for (std::size_t t = 0; t < traces.size(); ++t) {
    SCOPED_TRACE("trace " + std::to_string(t));
    const auto stripped = ces::trace::Strip(traces[t]);
    for (const bool use_tree : {false, true}) {
      std::vector<StackProfile> expected;
      std::string expected_metrics;
      for (ces::support::ThreadPool* pool :
           {static_cast<ces::support::ThreadPool*>(nullptr), &pool2, &pool8}) {
        ces::support::MetricsRegistry metrics;
        ces::analytic::FusedPreludeOptions options;
        options.pool = pool;
        options.metrics = &metrics;
        const auto profiles =
            use_tree ? ces::analytic::ComputeMissProfilesFusedTree(stripped, 6,
                                                                   options)
                     : ces::analytic::ComputeMissProfilesFused(stripped, 6,
                                                               options);
        const std::string json = metrics.ToJson(/*include_volatile=*/false);
        if (expected.empty()) {
          expected = profiles;
          expected_metrics = json;
        } else {
          ASSERT_EQ(profiles.size(), expected.size());
          for (std::size_t i = 0; i < profiles.size(); ++i) {
            ExpectSameProfile(profiles[i], expected[i]);
          }
          EXPECT_EQ(json, expected_metrics)
              << "use_tree=" << use_tree << " jobs "
              << (pool == nullptr ? 1u : pool->jobs());
        }
      }
    }
  }
}

// The deterministic metrics surface — counters AND histograms — must be
// byte-identical across jobs values and engines; this is what lets CI diff
// --metrics=json between --jobs=1/2/8 runs.
TEST(ParallelDeterminismTest, MetricsJsonIsJobsAndEngineInvariant) {
  for (const auto& trace : TestTraces()) {
    std::string expected;
    for (const auto engine : {ces::analytic::Engine::kFused,
                              ces::analytic::Engine::kFusedTree}) {
      for (const std::uint32_t jobs : {1u, 2u, 8u}) {
        ces::support::MetricsRegistry metrics;
        const ces::analytic::Explorer explorer(trace,
                                               {.engine = engine,
                                                .max_index_bits = 6,
                                                .jobs = jobs,
                                                .metrics = &metrics});
        (void)explorer.Solve(3);
        const std::string json = metrics.ToJson(/*include_volatile=*/false);
        EXPECT_NE(json.find("\"histograms\""), std::string::npos);
        if (expected.empty()) {
          expected = json;
        } else {
          EXPECT_EQ(json, expected)
              << "engine " << static_cast<int>(engine) << " jobs " << jobs;
        }
      }
    }
  }
}

TEST(ParallelDeterminismTest, SweepMetricsJsonIsJobsInvariant) {
  const auto& trace = WorkloadTrace();
  std::string expected;
  for (const std::uint32_t jobs : {1u, 2u, 8u}) {
    ces::support::MetricsRegistry metrics;
    (void)ces::cache::ExhaustiveSweep(trace, 5, 4,
                                      ces::cache::ReplacementPolicy::kLru,
                                      /*stop_at_zero=*/true, jobs,
                                      /*coverage=*/nullptr, &metrics);
    const std::string json = metrics.ToJson(/*include_volatile=*/false);
    EXPECT_NE(json.find("\"sweep.shard_configs\""), std::string::npos);
    EXPECT_NE(json.find("\"sweep.warm_misses\""), std::string::npos);
    if (expected.empty()) {
      expected = json;
    } else {
      EXPECT_EQ(json, expected) << "jobs " << jobs;
    }
  }
}

// jobs=0 (hardware concurrency, whatever it is on the host) must also match.
TEST(ParallelDeterminismTest, HardwareConcurrencyDefaultMatchesSerial) {
  const auto& trace = WorkloadTrace();
  const auto serial =
      ces::explore::OnePassStackStrategy().Explore(trace, 20, 5, /*jobs=*/1);
  const auto hw =
      ces::explore::OnePassStackStrategy().Explore(trace, 20, 5, /*jobs=*/0);
  ExpectSamePoints(serial.points, hw.points);
  EXPECT_EQ(serial.simulated_references, hw.simulated_references);
}

}  // namespace
